#!/usr/bin/env bash
# CI entry point: configure, build, run the whole test bed, then confirm the
# tier-1 label resolved to the full bed without re-executing it. Usage:
#   ci/check.sh [--bench] [build-dir]
#
# --bench additionally runs the perf bed at reduced scale and records the
# numbers (BENCH_parallel.json, the unified-runner RunResult
# BENCH_session.json, the Table II metric sweep BENCH_metrics.json, the
# scalar-vs-SIMD tensor kernel sweep BENCH_tensor.json, the exchange-policy
# sweep BENCH_exchange.json, the legacy-vs-store
# data-plane sweep BENCH_datastore.json, the serving-plane
# latency/QPS sweep BENCH_serving.json with its telemetry stream
# SMOKE_serving.jsonl, and a smoke-run telemetry stream
# SMOKE_telemetry.jsonl in the build dir), so perf and quality PRs can show
# deltas.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
RUN_BENCH=0
if [ "${1:-}" = "--bench" ]; then
  RUN_BENCH=1
  shift
fi
BUILD="${1:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$JOBS"

cd "$BUILD"
ctest --output-on-failure -j "$JOBS"

# The tensor microkernel seam must hold under both kernel kinds: run the
# tier-1 bed once pinned to the scalar reference and once pinned to the SIMD
# path, so a regression in either (or a test that only passes on the process
# default) fails here rather than on someone's machine.
echo "=== tier1 bed with CELLGAN_TENSOR_KERNEL=scalar ==="
CELLGAN_TENSOR_KERNEL=scalar ctest --output-on-failure -j "$JOBS" -L tier1
echo "=== tier1 bed with CELLGAN_TENSOR_KERNEL=simd ==="
CELLGAN_TENSOR_KERNEL=simd ctest --output-on-failure -j "$JOBS" -L tier1

# Same discipline for the data plane: every `--data-plane auto` consumer must
# behave identically when the process default flips to the shared SampleStore,
# so run the tier-1 bed once with the store plane forced.
echo "=== tier1 bed with CELLGAN_DATA_PLANE=store ==="
CELLGAN_DATA_PLANE=store ctest --output-on-failure -j "$JOBS" -L tier1

# And for the population-exchange seam: `--exchange auto` consumers must keep
# working when the process default flips to LTFB tournaments (tests that pin
# semantics of a specific policy set config.exchange_policy explicitly, so
# this run exercises exactly the auto-resolving surface).
echo "=== tier1 bed with CELLGAN_EXCHANGE=ltfb ==="
CELLGAN_EXCHANGE=ltfb ctest --output-on-failure -j "$JOBS" -L tier1

# The label machinery must keep covering the whole bed: a tier-1 run that
# silently matches zero (or few) tests would let label-filtered CI jobs pass
# while executing nothing.
TOTAL="$(ctest -N | tail -1 | grep -o '[0-9]\+')"
TIER1="$(ctest -N -L tier1 | tail -1 | grep -o '[0-9]\+')"
echo "tier1 label covers $TIER1 of $TOTAL tests"
if [ -z "$TIER1" ] || [ "$TIER1" -ne "$TOTAL" ]; then
  echo "error: tier1 label no longer covers the full test bed" >&2
  exit 1
fi

# Multi-process smoke at reduced scale: fork a world of 3 real processes
# (1x2 grid + master) over the TCP transport and require rank 0's RunResult
# to match the in-process distributed backend bit for bit. This also runs as
# the `examples.launch_tcp_smoke` ctest; the explicit invocation archives
# the rank JSONs as CI artifacts.
echo "=== smoke: cellgan_launch world=3 over TCP + parity check ==="
./examples/cellgan_launch --grid-rows 1 --grid-cols 2 --iterations 2 \
  --samples 64 --cost-profile table3 \
  --rank-results "$BUILD/SMOKE_launch_tcp" --verify-parity true

# Chaos smoke: SIGKILL rank 2 after epoch 1, respawn it, roll the world back
# to the last common checkpoint, replay — and still demand bit-identical
# parity with the undisturbed in-process backend. The rank-0 telemetry
# stream (archived as a CI artifact) shows the recovery: epochs re-published
# after the rollback appear twice. Also runs as the
# `examples.launch_chaos_smoke` ctest; the explicit invocation archives the
# recovery artifacts.
echo "=== smoke: cellgan_launch chaos (kill + respawn + rollback) + parity ==="
rm -rf "$BUILD/SMOKE_chaos_ck" "$BUILD/SMOKE_chaos_telemetry.jsonl"
./examples/cellgan_launch --grid-rows 1 --grid-cols 2 --iterations 4 \
  --samples 64 --cost-profile table3 \
  --rank-results "$BUILD/SMOKE_launch_chaos" --verify-parity true \
  --recover-dir "$BUILD/SMOKE_chaos_ck" --kill-rank 2 --kill-at-epoch 1 \
  --telemetry "$BUILD/SMOKE_chaos_telemetry.jsonl"
grep -q '"event"' "$BUILD/SMOKE_chaos_telemetry.jsonl" || {
  echo "error: chaos run produced no telemetry stream" >&2
  exit 1
}

if [ "$RUN_BENCH" -eq 1 ]; then
  echo "=== bench: table3_scaling (reduced scale) -> BENCH_parallel.json ==="
  BENCH_THREADS=$(( JOBS < 2 ? 2 : JOBS ))
  ./bench/table3_scaling --iterations 4 --repetitions 2 --samples 64 \
    --threads "$BENCH_THREADS" --json "$BUILD/BENCH_parallel.json"
  echo "=== bench: unified runner (threads backend) -> BENCH_session.json ==="
  ./examples/cellgan_run --backend threads --threads "$BENCH_THREADS" \
    --iterations 4 --grid 2 --samples 64 --cost-profile table3 \
    --result-json "$BUILD/BENCH_session.json"
  echo "=== bench: table2_metrics (reduced scale) -> BENCH_metrics.json ==="
  ./bench/table2_metrics --iterations 4 --samples 96 --max-side 2 \
    --eval-every 2 --eval-samples 48 --json "$BUILD/BENCH_metrics.json"
  echo "=== smoke: observability (eval + telemetry) -> SMOKE_telemetry.jsonl ==="
  rm -f "$BUILD/SMOKE_telemetry.jsonl"
  ./examples/cellgan_run --backend threads --threads 2 --iterations 4 \
    --grid 2 --samples 64 --cost-profile table3 --eval-every 2 \
    --eval-samples 48 --telemetry "$BUILD/SMOKE_telemetry.jsonl"
  grep -q '"event":"metrics"' "$BUILD/SMOKE_telemetry.jsonl" || {
    echo "error: telemetry stream has no metrics records" >&2
    exit 1
  }
  echo "=== bench: exchange_compare (policy x grid sweep) -> BENCH_exchange.json ==="
  ./bench/exchange_compare --iterations 4 --samples 96 --max-side 3 \
    --json "$BUILD/BENCH_exchange.json"
  grep -q '"deterministic": true' "$BUILD/BENCH_exchange.json" || {
    echo "error: an exchange policy diverged between repeated runs" >&2
    exit 1
  }
  echo "=== bench: micro_tensor (scalar vs SIMD) -> BENCH_tensor.json ==="
  ./bench/micro_tensor --min-time 0.05 --threads 1,2,4 \
    --json "$BUILD/BENCH_tensor.json"
  grep -q '"best_single_thread_gemm_speedup"' "$BUILD/BENCH_tensor.json" || {
    echo "error: BENCH_tensor.json missing the kernel speedup summary" >&2
    exit 1
  }
  echo "=== bench: data_plane (legacy vs store sweep) -> BENCH_datastore.json ==="
  ./bench/data_plane --samples 1000 --iterations 3 --lanes 1,2,4 \
    --feed-epochs 10 --json "$BUILD/BENCH_datastore.json"
  grep -q '"parity": true' "$BUILD/BENCH_datastore.json" || {
    echo "error: store plane is not bit-identical to the legacy loader" >&2
    exit 1
  }
  echo "=== bench: serve_load (QPS sweep, in-process server) -> BENCH_serving.json ==="
  rm -f "$BUILD/SMOKE_serving.jsonl"
  ./bench/serve_load --qps 25,50,100 --duration-s 1.5 --count 8 \
    --iterations 4 --out-dir "$BUILD/serve_bench_out" \
    --json "$BUILD/BENCH_serving.json" \
    --telemetry "$BUILD/SMOKE_serving.jsonl"
  grep -q '"p99_ms"' "$BUILD/BENCH_serving.json" || {
    echo "error: BENCH_serving.json missing latency percentiles" >&2
    exit 1
  }
  grep -q '"parity": true' "$BUILD/BENCH_serving.json" || {
    echo "error: serve path is not bit-identical to Session::sample_best" >&2
    exit 1
  }
  grep -q '"event":"serve_request"' "$BUILD/SMOKE_serving.jsonl" || {
    echo "error: serving telemetry stream has no serve_request records" >&2
    exit 1
  }
  echo "=== smoke: cellgan_serve daemon + cellgan_client over loopback ==="
  ./examples/cellgan_serve --checkpoint "$BUILD/serve_bench_out/serve_bench.ckpt" \
    --listen 127.0.0.1:0 > "$BUILD/SMOKE_serve_daemon.log" &
  SERVE_PID=$!
  for _ in $(seq 1 50); do
    grep -q 'listening on' "$BUILD/SMOKE_serve_daemon.log" && break
    sleep 0.1
  done
  SERVE_EP="$(grep -o 'listening on .*' "$BUILD/SMOKE_serve_daemon.log" | awk '{print $3}')"
  if [ -z "$SERVE_EP" ]; then
    echo "error: cellgan_serve did not announce an endpoint" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  ./examples/cellgan_client --connect "$SERVE_EP" --qps 20 --duration-s 1 \
    --count 8 --stats true --shutdown true
  wait "$SERVE_PID" || {
    echo "error: cellgan_serve did not exit cleanly after shutdown" >&2
    exit 1
  }
  grep -q 'cellgan_serve done' "$BUILD/SMOKE_serve_daemon.log" || {
    echo "error: daemon log missing the drain summary" >&2
    exit 1
  }
fi
