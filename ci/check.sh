#!/usr/bin/env bash
# CI entry point: configure, build, run the whole test bed, then confirm the
# tier-1 label resolved to the full bed without re-executing it. Usage:
#   ci/check.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$JOBS"

cd "$BUILD"
ctest --output-on-failure -j "$JOBS"

# The label machinery must keep covering the whole bed: a tier-1 run that
# silently matches zero (or few) tests would let label-filtered CI jobs pass
# while executing nothing.
TOTAL="$(ctest -N | tail -1 | grep -o '[0-9]\+')"
TIER1="$(ctest -N -L tier1 | tail -1 | grep -o '[0-9]\+')"
echo "tier1 label covers $TIER1 of $TOTAL tests"
if [ -z "$TIER1" ] || [ "$TIER1" -ne "$TOTAL" ]; then
  echo "error: tier1 label no longer covers the full test bed" >&2
  exit 1
fi
