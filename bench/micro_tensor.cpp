// Tensor microkernel benchmark: scalar vs SIMD across the paper's layer
// shapes and thread counts, emitting BENCH_tensor.json.
//
// Self-contained (no Google Benchmark) so the sweep always builds and the
// JSON carries exactly the fields CI asserts on: per-shape GFLOP/s for both
// kernel kinds, the simd/scalar speedup, and the best single-thread GEMM
// speedup (`ci/check.sh --bench` reads it; the README table is generated
// from the same file).
//
//   micro_tensor [--min-time SECONDS] [--json PATH] [--threads LIST]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace cellgan;
using Clock = std::chrono::steady_clock;

/// Runs `body` repeatedly until `min_seconds` of wall time accumulate (at
/// least three iterations) and returns seconds per iteration.
template <typename Body>
double time_per_iteration(double min_seconds, const Body& body) {
  body();  // warm up: pools spun up, panels packed once, pages faulted in
  std::size_t iterations = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    body();
    ++iterations;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds || iterations < 3);
  return elapsed / static_cast<double>(iterations);
}

enum class GemmOp { kNn, kTn, kNt };

const char* to_string(GemmOp op) {
  switch (op) {
    case GemmOp::kNn: return "matmul";
    case GemmOp::kTn: return "matmul_tn";
    case GemmOp::kNt: return "matmul_nt";
  }
  return "?";
}

struct GemmShape {
  std::size_t m, k, n;
};

struct GemmResult {
  GemmOp op;
  GemmShape shape;
  std::size_t threads;
  double scalar_gflops = 0.0;
  double simd_gflops = 0.0;
  double speedup() const {
    return scalar_gflops > 0.0 ? simd_gflops / scalar_gflops : 0.0;
  }
};

double run_gemm_gflops(GemmOp op, const GemmShape& shape,
                       tensor::KernelKind kind, double min_seconds) {
  common::Rng rng(1);
  // Operand storage per op: TN takes A as (k x m), NT takes B as (n x k).
  const std::size_t a_rows = op == GemmOp::kTn ? shape.k : shape.m;
  const std::size_t a_cols = op == GemmOp::kTn ? shape.m : shape.k;
  const std::size_t b_rows = op == GemmOp::kNt ? shape.n : shape.k;
  const std::size_t b_cols = op == GemmOp::kNt ? shape.k : shape.n;
  const tensor::Tensor a = tensor::Tensor::randn(a_rows, a_cols, rng);
  const tensor::Tensor b = tensor::Tensor::randn(b_rows, b_cols, rng);
  tensor::set_kernel_kind(kind);
  volatile float sink = 0.0f;
  const double seconds = time_per_iteration(min_seconds, [&] {
    tensor::Tensor c = op == GemmOp::kNn   ? tensor::matmul(a, b)
                       : op == GemmOp::kTn ? tensor::matmul_tn(a, b)
                                           : tensor::matmul_nt(a, b);
    sink = sink + c.at(0, 0);
  });
  const double flops =
      2.0 * static_cast<double>(shape.m) * static_cast<double>(shape.k) *
      static_cast<double>(shape.n);
  return flops / seconds * 1e-9;
}

struct ElementwiseResult {
  std::string op;
  std::size_t elements;
  double scalar_gelems = 0.0;  ///< 1e9 elements per second
  double simd_gelems = 0.0;
  double speedup() const {
    return scalar_gelems > 0.0 ? simd_gelems / scalar_gelems : 0.0;
  }
};

double run_elementwise_gelems(const std::string& op, const tensor::Tensor& x,
                              const tensor::Tensor& y,
                              tensor::KernelKind kind, double min_seconds) {
  tensor::set_kernel_kind(kind);
  volatile float sink = 0.0f;
  const double seconds = time_per_iteration(min_seconds, [&] {
    tensor::Tensor r =
        op == "add"             ? tensor::add(x, y)
        : op == "mul"           ? tensor::mul(x, y)
        : op == "scale"         ? tensor::scale(x, 0.37f)
        : op == "tanh_forward"  ? tensor::tanh_forward(x)
        : op == "sigmoid_forward" ? tensor::sigmoid_forward(x)
                                  : tensor::leaky_relu_forward(x, 0.2f);
    sink = sink + r.at(0, 0);
  });
  return static_cast<double>(x.size()) / seconds * 1e-9;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli(
      "Tensor microkernel sweep: scalar vs SIMD GFLOP/s on the paper's layer "
      "shapes; writes BENCH_tensor.json");
  cli.add_flag("min-time", "0.2", "seconds of wall time per measurement");
  cli.add_flag("json", "BENCH_tensor.json", "output JSON path (empty = skip)");
  cli.add_flag("threads", "1,2,4", "comma-separated GEMM thread counts");
  if (!cli.parse(argc, argv)) return 1;
  const double min_seconds = cli.get_double("min-time");
  const std::string json_path = cli.get("json");

  std::vector<std::size_t> thread_counts;
  {
    std::stringstream ss(cli.get("threads"));
    for (std::string item; std::getline(ss, item, ',');) {
      const long v = std::strtol(item.c_str(), nullptr, 10);
      if (v >= 1) thread_counts.push_back(static_cast<std::size_t>(v));
    }
    if (thread_counts.empty()) thread_counts.push_back(1);
  }

  // The paper's layer shapes at batch 100: generator 64->256->256->784,
  // discriminator 784->{128,256}->... (Section IV network sizes).
  const GemmShape shapes[] = {{100, 784, 128},
                              {100, 784, 256},
                              {100, 64, 256},
                              {100, 256, 256},
                              {100, 256, 784}};
  const GemmOp ops[] = {GemmOp::kNn, GemmOp::kTn, GemmOp::kNt};

  std::printf("tensor kernels: simd path = %s\n",
              tensor::simd_instruction_set());
  std::printf("%-10s %15s %8s %14s %14s %8s\n", "op", "shape", "threads",
              "scalar GF/s", "simd GF/s", "speedup");

  std::vector<GemmResult> gemm_results;
  double best_single_thread_speedup = 0.0;
  for (const std::size_t threads : thread_counts) {
    common::set_global_pool_threads(threads);
    for (const GemmOp op : ops) {
      for (const GemmShape& shape : shapes) {
        GemmResult r{op, shape, threads, 0.0, 0.0};
        r.scalar_gflops =
            run_gemm_gflops(op, shape, tensor::KernelKind::kScalar, min_seconds);
        r.simd_gflops =
            run_gemm_gflops(op, shape, tensor::KernelKind::kSimd, min_seconds);
        if (threads == 1) {
          best_single_thread_speedup =
              std::max(best_single_thread_speedup, r.speedup());
        }
        std::printf("%-10s %5zux%4zux%4zu %8zu %14.2f %14.2f %7.2fx\n",
                    to_string(op), shape.m, shape.k, shape.n, threads,
                    r.scalar_gflops, r.simd_gflops, r.speedup());
        gemm_results.push_back(r);
      }
    }
  }
  common::set_global_pool_threads(1);

  std::vector<ElementwiseResult> ew_results;
  {
    common::Rng rng(2);
    const tensor::Tensor x = tensor::Tensor::randn(100, 784, rng);
    const tensor::Tensor y = tensor::Tensor::randn(100, 784, rng);
    for (const char* op : {"add", "mul", "scale", "tanh_forward",
                           "sigmoid_forward", "leaky_relu_forward"}) {
      ElementwiseResult r{op, x.size(), 0.0, 0.0};
      r.scalar_gelems = run_elementwise_gelems(
          op, x, y, tensor::KernelKind::kScalar, min_seconds);
      r.simd_gelems =
          run_elementwise_gelems(op, x, y, tensor::KernelKind::kSimd,
                                 min_seconds);
      std::printf("%-19s %7zu elems %12.2f %14.2f Gelem/s %6.2fx\n", op,
                  r.elements, r.scalar_gelems, r.simd_gelems, r.speedup());
      ew_results.push_back(r);
    }
  }

  std::printf("best single-thread GEMM speedup (simd/scalar): %.2fx\n",
              best_single_thread_speedup);

  if (!json_path.empty()) {
    std::ostringstream out;
    out << "{\n  \"simd_instruction_set\": \""
        << tensor::simd_instruction_set() << "\",\n";
    out << "  \"min_time_seconds\": " << format_double(min_seconds) << ",\n";
    out << "  \"best_single_thread_gemm_speedup\": "
        << format_double(best_single_thread_speedup) << ",\n";
    out << "  \"gemm\": [\n";
    for (std::size_t i = 0; i < gemm_results.size(); ++i) {
      const GemmResult& r = gemm_results[i];
      out << "    {\"op\": \"" << to_string(r.op) << "\", \"m\": " << r.shape.m
          << ", \"k\": " << r.shape.k << ", \"n\": " << r.shape.n
          << ", \"threads\": " << r.threads
          << ", \"scalar_gflops\": " << format_double(r.scalar_gflops)
          << ", \"simd_gflops\": " << format_double(r.simd_gflops)
          << ", \"speedup\": " << format_double(r.speedup()) << "}"
          << (i + 1 < gemm_results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"elementwise\": [\n";
    for (std::size_t i = 0; i < ew_results.size(); ++i) {
      const ElementwiseResult& r = ew_results[i];
      out << "    {\"op\": \"" << r.op << "\", \"elements\": " << r.elements
          << ", \"scalar_gelems_per_s\": " << format_double(r.scalar_gelems)
          << ", \"simd_gelems_per_s\": " << format_double(r.simd_gelems)
          << ", \"speedup\": " << format_double(r.speedup()) << "}"
          << (i + 1 < ew_results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::ofstream file(json_path);
    if (!file) {
      std::fprintf(stderr, "micro_tensor: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    file << out.str();
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
