// Microbenchmarks of the tensor/NN kernels on the paper's layer shapes —
// the per-iteration compute the virtual-time model charges for.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/gan_trainer.hpp"
#include "core/genome.hpp"
#include "nn/gan_models.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace cellgan;

void BM_Gemm(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  common::Rng rng(1);
  const tensor::Tensor a = tensor::Tensor::randn(m, k, rng);
  const tensor::Tensor b = tensor::Tensor::randn(k, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
// The paper's generator layers at batch 100: 100x64 * 64x256, 100x256 *
// 256x256, 100x256 * 256x784; discriminator first layer 100x784 * 784x256.
BENCHMARK(BM_Gemm)->Args({100, 64, 256})->Args({100, 256, 256})
    ->Args({100, 256, 784})->Args({100, 784, 256});

void BM_GemmThreaded(benchmark::State& state) {
  common::set_global_pool_threads(static_cast<std::size_t>(state.range(0)));
  common::Rng rng(1);
  const tensor::Tensor a = tensor::Tensor::randn(256, 256, rng);
  const tensor::Tensor b = tensor::Tensor::randn(256, 256, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  common::set_global_pool_threads(1);
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 256 * 256);
}
BENCHMARK(BM_GemmThreaded)->Arg(1)->Arg(2);

void BM_TanhForward(benchmark::State& state) {
  common::Rng rng(2);
  const tensor::Tensor x = tensor::Tensor::randn(100, 784, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::tanh_forward(x));
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_TanhForward);

void BM_BceWithLogits(benchmark::State& state) {
  common::Rng rng(3);
  const tensor::Tensor logits = tensor::Tensor::randn(100, 1, rng);
  const tensor::Tensor target = tensor::Tensor::full(100, 1, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::bce_with_logits(logits, target));
  }
}
BENCHMARK(BM_BceWithLogits);

void BM_GeneratorForward(benchmark::State& state) {
  common::Rng rng(4);
  const nn::GanArch arch = nn::GanArch::paper();
  nn::Sequential g = nn::make_generator(arch, rng);
  const tensor::Tensor z = tensor::Tensor::randn(100, arch.latent_dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.forward(z));
  }
}
BENCHMARK(BM_GeneratorForward);

void BM_DiscriminatorStep(benchmark::State& state) {
  // One full adversarial discriminator update at paper scale: the dominant
  // per-batch cost in the train routine.
  common::Rng rng(5);
  const nn::GanArch arch = nn::GanArch::paper();
  nn::Sequential g = nn::make_generator(arch, rng);
  nn::Sequential d = nn::make_discriminator(arch, rng);
  nn::Adam opt(2e-4);
  const tensor::Tensor real = tensor::Tensor::randn(100, arch.image_dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_discriminator_step(d, opt, g, real, arch.latent_dim, rng));
  }
}
BENCHMARK(BM_DiscriminatorStep);

void BM_GenomeSerialize(benchmark::State& state) {
  common::Rng rng(6);
  const nn::GanArch arch = nn::GanArch::paper();
  nn::Sequential g = nn::make_generator(arch, rng);
  nn::Sequential d = nn::make_discriminator(arch, rng);
  core::CellGenome genome = core::CellGenome::capture(g, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(genome.serialize());
  }
  state.SetBytesProcessed(state.iterations() * genome.byte_size());
}
BENCHMARK(BM_GenomeSerialize);

void BM_AdamStep(benchmark::State& state) {
  common::Rng rng(7);
  const nn::GanArch arch = nn::GanArch::paper();
  nn::Sequential g = nn::make_generator(arch, rng);
  nn::Adam opt(2e-4);
  // Populate gradients once.
  const tensor::Tensor z = tensor::Tensor::randn(10, arch.latent_dim, rng);
  (void)g.forward(z);
  (void)g.backward(tensor::Tensor::full(10, arch.image_dim, 1.0f));
  for (auto _ : state) {
    opt.step(g);
  }
  state.SetItemsProcessed(state.iterations() * g.parameter_count());
}
BENCHMARK(BM_AdamStep);

}  // namespace

BENCHMARK_MAIN();
