// Ablation: data dieting — each cell trains on an independent random
// fraction of the training set (the same authors' follow-up direction,
// ref. [20] of the paper). Reports quality and the per-cell data footprint:
// the trade the technique offers is memory (and data-loading time) against
// generator fitness.
#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  common::CliParser cli("ablation_dieting: per-cell training-data fractions");
  cli.add_flag("iterations", "12", "training epochs");
  cli.add_flag("samples", "400", "synthetic training samples");
  if (!cli.parse(argc, argv)) return 1;

  core::TrainingConfig config = core::TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 3;
  config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  config.batches_per_iteration = 2;
  const auto dataset = core::make_matched_dataset(
      config, static_cast<std::size_t>(cli.get_int("samples")), 7);

  std::printf("ablation: data dieting on a 3x3 grid, %u iterations, %zu"
              " samples\n",
              config.iterations, dataset.size());
  std::printf("  %-10s | %16s | %12s %12s\n", "fraction", "samples/cell",
              "best G loss", "mean G loss");
  for (const double fraction : {1.0, 0.5, 0.25, 0.1}) {
    config.data_dieting_fraction = fraction;
    core::SequentialTrainer trainer(config, dataset);
    const core::TrainOutcome outcome = trainer.run();
    const double best = *std::min_element(outcome.g_fitnesses.begin(),
                                          outcome.g_fitnesses.end());
    double mean = 0.0;
    for (const double f : outcome.g_fitnesses) mean += f;
    mean /= outcome.g_fitnesses.size();
    const auto per_cell = fraction >= 1.0
                              ? dataset.size()
                              : std::max<std::size_t>(
                                    config.batch_size,
                                    static_cast<std::size_t>(
                                        fraction * static_cast<double>(dataset.size())));
    std::printf("  %-10.2f | %16zu | %12.4f %12.4f\n", fraction, per_cell, best,
                mean);
  }
  std::printf("\nreading: the neighborhood exchange lets cells compensate for"
              "\nreduced private data — quality degrades gracefully while the"
              "\nper-cell footprint shrinks linearly\n");
  return 0;
}
