// Ablation: data dieting — each cell trains on an independent random
// fraction of the training set (the same authors' follow-up direction,
// ref. [20] of the paper). Reports quality and the per-cell data footprint:
// the trade the technique offers is memory (and data-loading time) against
// generator fitness.
#include <algorithm>
#include <cstdio>

#include "core/session.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.grid_rows = defaults.config.grid_cols = 3;
  defaults.config.iterations = 12;
  defaults.config.batches_per_iteration = 2;
  defaults.dataset.samples = 400;
  auto spec = core::RunSpec::from_args(
      argc, argv, "ablation_dieting: per-cell training-data fractions", defaults);
  if (!spec) return 1;
  if (!spec->result_json.empty()) {
    std::fprintf(stderr, "note: --result-json is ignored by this sweep bench\n");
    spec->result_json.clear();
  }

  // Resolve the dataset once (with a clean error) and share it across the
  // sweep points.
  core::Session data_session(*spec);
  if (!data_session.prepare()) {
    std::fprintf(stderr, "error: %s\n", data_session.error().c_str());
    return 1;
  }
  const std::size_t dataset_size = data_session.train_set().size();

  std::printf("ablation: data dieting on a %ux%u grid, %u iterations, %zu"
              " samples\n",
              spec->config.grid_rows, spec->config.grid_cols,
              spec->config.iterations, dataset_size);
  std::printf("  %-10s | %16s | %12s %12s\n", "fraction", "samples/cell",
              "best G loss", "mean G loss");
  for (const double fraction : {1.0, 0.5, 0.25, 0.1}) {
    core::RunSpec run_spec = *spec;
    run_spec.config.data_dieting_fraction = fraction;
    core::Session session(run_spec);
    session.set_datasets(data_session.train_set(), data_session.test_set());
    const core::RunResult outcome = session.run();
    const double best = *std::min_element(outcome.g_fitnesses.begin(),
                                          outcome.g_fitnesses.end());
    double mean = 0.0;
    for (const double f : outcome.g_fitnesses) mean += f;
    mean /= outcome.g_fitnesses.size();
    const auto per_cell =
        fraction >= 1.0
            ? dataset_size
            : std::max<std::size_t>(
                  run_spec.config.batch_size,
                  static_cast<std::size_t>(
                      fraction * static_cast<double>(dataset_size)));
    std::printf("  %-10.2f | %16zu | %12.4f %12.4f\n", fraction, per_cell, best,
                mean);
  }
  std::printf("\nreading: the neighborhood exchange lets cells compensate for"
              "\nreduced private data — quality degrades gracefully while the"
              "\nper-cell footprint shrinks linearly\n");
  return 0;
}
