// Ablation: adversarial objective (the Mustangs dimension).
//
// Lipizzaner fixes the heuristic (non-saturating) loss; Mustangs mutates the
// objective each epoch among {heuristic, minimax, least-squares}. This bench
// trains the same 3x3 grid under each fixed objective plus the Mustangs mix
// and reports final generator fitness (evaluated with the common heuristic
// metric for comparability) and its spread across cells.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"

namespace {

using namespace cellgan;

struct LossResult {
  double best = 0.0;
  double mean = 0.0;
  double spread = 0.0;
};

LossResult run_mode(core::TrainingConfig config, const data::Dataset& dataset,
                    core::LossMode mode) {
  config.loss_mode = mode;
  core::SequentialTrainer trainer(config, dataset);
  const core::TrainOutcome outcome = trainer.run();
  LossResult result;
  result.best = *std::min_element(outcome.g_fitnesses.begin(),
                                  outcome.g_fitnesses.end());
  double sum = 0.0;
  for (const double f : outcome.g_fitnesses) sum += f;
  result.mean = sum / outcome.g_fitnesses.size();
  double var = 0.0;
  for (const double f : outcome.g_fitnesses) {
    var += (f - result.mean) * (f - result.mean);
  }
  result.spread = std::sqrt(var / outcome.g_fitnesses.size());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("ablation_losses: Lipizzaner vs Mustangs objectives");
  cli.add_flag("iterations", "12", "training epochs");
  cli.add_flag("samples", "300", "synthetic training samples");
  if (!cli.parse(argc, argv)) return 1;

  core::TrainingConfig config = core::TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 3;
  config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  config.batches_per_iteration = 2;
  const auto dataset = core::make_matched_dataset(
      config, static_cast<std::size_t>(cli.get_int("samples")), 7);

  std::printf("ablation: adversarial objective on a 3x3 grid, %u iterations\n",
              config.iterations);
  std::printf("  %-16s | %12s %12s %12s\n", "objective", "best G loss",
              "mean G loss", "cell spread");
  for (const core::LossMode mode :
       {core::LossMode::kHeuristic, core::LossMode::kMinimax,
        core::LossMode::kLeastSquares, core::LossMode::kMustangs}) {
    const LossResult r = run_mode(config, dataset, mode);
    std::printf("  %-16s | %12.4f %12.4f %12.4f\n", core::to_string(mode), r.best,
                r.mean, r.spread);
  }
  std::printf("\nreading: fitness is evaluated with the shared heuristic"
              " metric;\nthe Mustangs mix explores all three objectives"
              " within one run\n");
  return 0;
}
