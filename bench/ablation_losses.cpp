// Ablation: adversarial objective (the Mustangs dimension).
//
// Lipizzaner fixes the heuristic (non-saturating) loss; Mustangs mutates the
// objective each epoch among {heuristic, minimax, least-squares}. This bench
// trains the same 3x3 grid under each fixed objective plus the Mustangs mix
// and reports final generator fitness (evaluated with the common heuristic
// metric for comparability) and its spread across cells.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/session.hpp"

namespace {

using namespace cellgan;

struct LossResult {
  double best = 0.0;
  double mean = 0.0;
  double spread = 0.0;
};

LossResult run_mode(core::RunSpec spec, core::LossMode mode,
                    const data::Dataset& train, const data::Dataset& test) {
  spec.config.loss_mode = mode;
  core::Session session(spec);
  session.set_datasets(train, test);
  const core::RunResult outcome = session.run();
  LossResult result;
  result.best = *std::min_element(outcome.g_fitnesses.begin(),
                                  outcome.g_fitnesses.end());
  double sum = 0.0;
  for (const double f : outcome.g_fitnesses) sum += f;
  result.mean = sum / outcome.g_fitnesses.size();
  double var = 0.0;
  for (const double f : outcome.g_fitnesses) {
    var += (f - result.mean) * (f - result.mean);
  }
  result.spread = std::sqrt(var / outcome.g_fitnesses.size());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.grid_rows = defaults.config.grid_cols = 3;
  defaults.config.iterations = 12;
  defaults.config.batches_per_iteration = 2;
  defaults.dataset.samples = 300;
  auto spec = core::RunSpec::from_args(
      argc, argv, "ablation_losses: Lipizzaner vs Mustangs objectives", defaults);
  if (!spec) return 1;
  if (!spec->result_json.empty()) {
    std::fprintf(stderr, "note: --result-json is ignored by this sweep bench\n");
    spec->result_json.clear();
  }
  core::Session data_session(*spec);
  if (!data_session.prepare()) {
    std::fprintf(stderr, "error: %s\n", data_session.error().c_str());
    return 1;
  }

  std::printf("ablation: adversarial objective on a %ux%u grid, %u iterations\n",
              spec->config.grid_rows, spec->config.grid_cols,
              spec->config.iterations);
  std::printf("  %-16s | %12s %12s %12s\n", "objective", "best G loss",
              "mean G loss", "cell spread");
  for (const core::LossMode mode :
       {core::LossMode::kHeuristic, core::LossMode::kMinimax,
        core::LossMode::kLeastSquares, core::LossMode::kMustangs}) {
    const LossResult r = run_mode(*spec, mode, data_session.train_set(),
                                  data_session.test_set());
    std::printf("  %-16s | %12.4f %12.4f %12.4f\n", core::to_string(mode), r.best,
                r.mean, r.spread);
  }
  std::printf("\nreading: fitness is evaluated with the shared heuristic"
              " metric;\nthe Mustangs mix explores all three objectives"
              " within one run\n");
  return 0;
}
