// Ablation: neighborhood size / shape vs training quality and communication
// volume. The paper fixes s=5 (five-cell); this bench compares:
//   isolated  (s=1, no coevolution — plain per-cell GAN training)
//   ring      (s=3, E/W neighbors)
//   moore5    (s=5, the paper's N/S/W/E)
//   moore9    (s=9, full 8-neighbor Moore)
// on a 4x4 grid, reporting final best generator loss, mean generator loss,
// and exchanged bytes per iteration (the comm cost the topology implies).
#include <cstdio>
#include <numeric>

#include "core/comm_manager.hpp"
#include "core/session.hpp"

namespace {

using namespace cellgan;

void apply_topology(core::Grid& grid, const std::string& name) {
  if (name == "isolated") {
    for (int cell = 0; cell < grid.size(); ++cell) grid.set_neighbors(cell, {});
  } else if (name == "ring") {
    for (int cell = 0; cell < grid.size(); ++cell) {
      const auto coord = grid.coords_of(cell);
      grid.set_neighbors(cell, {grid.cell_of({coord.row, coord.col - 1}),
                                grid.cell_of({coord.row, coord.col + 1})});
    }
  } else if (name == "moore5") {
    grid.reset_default_neighborhoods();
  } else if (name == "moore9") {
    for (int cell = 0; cell < grid.size(); ++cell) {
      const auto coord = grid.coords_of(cell);
      std::vector<int> neighbors;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          neighbors.push_back(grid.cell_of({coord.row + dr, coord.col + dc}));
        }
      }
      grid.set_neighbors(cell, std::move(neighbors));
    }
  }
}

struct AblationResult {
  double best_g_loss = 0.0;
  double mean_g_loss = 0.0;
  double bytes_per_iteration = 0.0;
};

AblationResult run_topology(const core::TrainingConfig& config,
                            const data::Dataset& dataset,
                            const std::string& topology) {
  core::Grid grid(static_cast<int>(config.grid_rows),
                  static_cast<int>(config.grid_cols));
  apply_topology(grid, topology);

  core::ExecContext context;  // real-time
  common::Rng master(config.seed);
  core::GenomeStore store(grid.size());
  std::vector<std::unique_ptr<core::CellTrainer>> cells;
  std::vector<std::unique_ptr<core::LocalCommManager>> comms;
  for (int cell = 0; cell < grid.size(); ++cell) {
    cells.push_back(std::make_unique<core::CellTrainer>(
        config, grid, cell, dataset, master.fork(cell), context));
    comms.push_back(
        std::make_unique<core::LocalCommManager>(store, grid, cell, context));
  }

  double bytes_total = 0.0;
  std::vector<std::vector<std::vector<std::uint8_t>>> inboxes(
      grid.size(), std::vector<std::vector<std::uint8_t>>(grid.size()));
  for (std::uint32_t iter = 0; iter < config.iterations; ++iter) {
    // Two-phase epoch over the staged store: step + publish everyone, cross
    // the epoch barrier, then collect next epoch's inboxes.
    for (int cell = 0; cell < grid.size(); ++cell) {
      cells[cell]->step(inboxes[cell]);
      comms[cell]->publish(cells[cell]->export_genome());
    }
    store.flip();
    for (int cell = 0; cell < grid.size(); ++cell) {
      inboxes[cell] = comms[cell]->collect();
      for (const auto& payload : inboxes[cell]) {
        bytes_total += static_cast<double>(payload.size());
      }
    }
  }

  AblationResult result;
  result.best_g_loss = cells[0]->g_fitness();
  double sum = 0.0;
  for (const auto& cell : cells) {
    result.best_g_loss = std::min(result.best_g_loss, cell->g_fitness());
    sum += cell->g_fitness();
  }
  result.mean_g_loss = sum / grid.size();
  result.bytes_per_iteration = bytes_total / config.iterations;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.grid_rows = defaults.config.grid_cols = 4;
  defaults.config.iterations = 10;
  defaults.config.batches_per_iteration = 2;
  defaults.dataset.samples = 300;
  common::CliParser cli("ablation_neighborhood: sub-population size sweep");
  core::RunSpec::add_flags(cli, defaults);
  if (!cli.parse(argc, argv)) return 1;
  const auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;

  // The topology sweep drives Grid/CellTrainer directly; flags and dataset
  // resolution come from the shared RunSpec/Session machinery. Flags that
  // only steer a Session backend have nothing to act on here.
  for (const char* flag : {"backend", "threads", "cost-profile", "result-json"}) {
    if (cli.was_set(flag)) {
      std::fprintf(stderr,
                   "note: --%s is ignored (this sweep drives the grid directly)\n",
                   flag);
    }
  }
  const core::TrainingConfig& config = spec->config;
  core::Session session(*spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  const data::Dataset& dataset = session.train_set();

  std::printf("ablation: neighborhood topology on a %ux%u grid, %u iterations\n",
              config.grid_rows, config.grid_cols, config.iterations);
  std::printf("  %-10s %6s | %12s %12s | %16s\n", "topology", "s", "best G loss",
              "mean G loss", "KB/iteration");
  for (const char* topology : {"isolated", "ring", "moore5", "moore9"}) {
    const AblationResult r = run_topology(config, dataset, topology);
    const int s = topology == std::string("isolated")  ? 1
                  : topology == std::string("ring")    ? 3
                  : topology == std::string("moore5")  ? 5
                                                       : 9;
    std::printf("  %-10s %6d | %12.4f %12.4f | %16.1f\n", topology, s,
                r.best_g_loss, r.mean_g_loss, r.bytes_per_iteration / 1024.0);
  }
  std::printf("\nreading: larger neighborhoods move more bytes per epoch;\n"
              "coevolution (s>1) shares fitter genomes across the torus\n");
  return 0;
}
