// Table II — quality of the generative models per grid size: the inception
// score (and FID / mode coverage, which the paper discusses qualitatively)
// of the best neighborhood's mixture after training 2x2 / 3x3 / 4x4 grids,
// measured end-to-end through the observer bus: the trainer publishes epoch
// records, metrics::EvaluatorObserver samples each generator and the best
// mixture every --eval-every epochs and scores them against the held-out
// set — the same wiring `cellgan_run --eval-every` uses, on synthetic data
// or real MNIST (`--dataset idx:DIR`).
//
// Methodology (DESIGN.md §1): the in-domain MLP classifier stands in for the
// Inception network, preserving the fitness-ordering role the paper assigns
// to the score; runs are reduced-scale reproductions, so the measured trend
// across grid sizes (larger grids -> better mixtures), not the absolute
// paper numbers, is the comparison target.
//
// --json FILE writes the measured rows as machine-readable JSON so CI can
// archive metric numbers (ci/check.sh --bench -> BENCH_metrics.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "metrics/evaluator_observer.hpp"

namespace {

using namespace cellgan;

struct GridMetrics {
  int side = 0;
  double mean_cell_is = 0.0;   ///< mean per-generator IS at the final eval
  double best_cell_is = 0.0;
  double mixture_is = 0.0;     ///< Table II's quality column
  double fid = 0.0;
  std::size_t modes_covered = 0;
  double tvd_from_uniform = 0.0;
  double virtual_min = 0.0;    ///< run makespan, for the time-vs-quality view
  std::size_t evals = 0;       ///< metric snapshots taken during the run
};

GridMetrics run_grid(const core::RunSpec& base, int side) {
  core::RunSpec spec = base;
  spec.config.grid_rows = spec.config.grid_cols = static_cast<std::uint32_t>(side);

  core::Session session(spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    std::exit(1);
  }
  metrics::EvaluatorOptions options;
  options.eval_every = spec.observers.eval_every;
  options.samples = spec.observers.eval_samples;
  metrics::EvaluatorObserver evaluator(session.spec().config, session.test_set(),
                                       options);
  session.observers().subscribe(&evaluator);
  const core::RunResult result = session.run();

  GridMetrics row;
  row.side = side;
  row.virtual_min = result.virtual_s / 60.0;
  row.evals = evaluator.history().size();
  if (result.metrics.has_value()) {
    const core::MetricSnapshot& final_snapshot = *result.metrics;
    double total = 0.0, best = 0.0;
    for (const double is : final_snapshot.cell_is) {
      total += is;
      best = std::max(best, is);
    }
    row.mean_cell_is =
        final_snapshot.cell_is.empty()
            ? 0.0
            : total / static_cast<double>(final_snapshot.cell_is.size());
    row.best_cell_is = best;
    row.mixture_is = final_snapshot.mixture_is;
    row.fid = final_snapshot.fid;
    row.modes_covered = final_snapshot.modes_covered;
    row.tvd_from_uniform = final_snapshot.tvd_from_uniform;
  }
  return row;
}

void write_json(const std::string& path, const std::vector<GridMetrics>& rows,
                const core::RunSpec& base) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"table2_metrics\",\n");
  std::fprintf(f, "  \"schema_version\": %u,\n", core::kRunJsonSchemaVersion);
  // The dataset text embeds a user path: escape it for valid JSON.
  std::string dataset_text;
  for (const char c : base.dataset.to_text()) {
    if (c == '"' || c == '\\') dataset_text += '\\';
    dataset_text += c;
  }
  std::fprintf(f, "  \"iterations\": %u,\n  \"eval_every\": %u,\n"
               "  \"eval_samples\": %zu,\n  \"dataset\": \"%s\",\n"
               "  \"grids\": [\n",
               base.config.iterations, base.observers.eval_every,
               base.observers.eval_samples, dataset_text.c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GridMetrics& r = rows[i];
    std::fprintf(f,
                 "    {\"side\": %d, \"mean_cell_is\": %.6f, "
                 "\"best_cell_is\": %.6f, \"mixture_is\": %.6f,\n"
                 "     \"fid\": %.6f, \"modes_covered\": %zu, "
                 "\"tvd_from_uniform\": %.6f,\n"
                 "     \"virtual_min\": %.6f, \"evals\": %zu}%s\n",
                 r.side, r.mean_cell_is, r.best_cell_is, r.mixture_is, r.fid,
                 r.modes_covered, r.tvd_from_uniform, r.virtual_min, r.evals,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.iterations = 12;
  defaults.dataset.samples = 200;
  defaults.cost_profile = core::CostProfileKind::kTable3;
  defaults.observers.eval_every = 4;
  defaults.observers.eval_samples = 128;

  common::CliParser cli("table2_metrics: Table II reproduction (generator "
                        "quality per grid size, via the observer bus)");
  core::RunSpec::add_flags(cli, defaults);
  cli.add_flag("max-side", "4", "largest grid side to run (2..max-side)");
  cli.add_flag("json", "", "write machine-readable results to this file");
  if (!cli.parse(argc, argv)) return 1;
  auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;
  if (spec->observers.eval_every == 0) {
    std::fprintf(stderr, "--eval-every must be >= 1 for this bench\n");
    return 1;
  }
  const int max_side = static_cast<int>(cli.get_int("max-side"));
  if (max_side < 2) {
    std::fprintf(stderr, "--max-side must be >= 2\n");
    return 1;
  }

  std::printf("Table II: generator quality per grid size (%u iterations, "
              "eval every %u)\n",
              spec->config.iterations, spec->observers.eval_every);
  std::printf("  %-6s | %10s %10s %10s | %8s %8s %6s | %10s\n", "grid",
              "cell IS", "best IS", "mix IS", "FID", "tvd", "modes",
              "virt(min)");
  std::vector<GridMetrics> rows;
  for (int side = 2; side <= max_side; ++side) {
    const GridMetrics r = run_grid(*spec, side);
    rows.push_back(r);
    std::printf("  %dx%-4d | %10.3f %10.3f %10.3f | %8.3f %8.3f %5zu/10 |"
                " %10.2f\n",
                r.side, r.side, r.mean_cell_is, r.best_cell_is, r.mixture_is,
                r.fid, r.tvd_from_uniform, r.modes_covered, r.virtual_min);
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) write_json(json_path, rows, *spec);

  std::printf("\nshape check: the paper's Table II trend is larger grids ->"
              " better mixtures\n(higher IS); absolute values depend on the"
              " reduced scale and the in-domain\nclassifier — see DESIGN.md"
              " §1 and EXPERIMENTS.md\n");
  return 0;
}
