// Table I — parameters settings of the trained GANs.
//
// Prints the default TrainingConfig side by side with the paper's values and
// exits non-zero on any mismatch, so the configuration table is regenerated
// (and guarded) like every other experiment.
#include <cstdio>
#include <cstdlib>

#include "core/config.hpp"

namespace {

int failures = 0;

void row(const char* parameter, double ours, double paper) {
  const bool ok = ours == paper;
  if (!ok) ++failures;
  std::printf("  %-34s %12g %12g   %s\n", parameter, ours, paper,
              ok ? "ok" : "MISMATCH");
}

}  // namespace

int main() {
  using cellgan::core::TrainingConfig;
  const TrainingConfig config;  // library defaults must equal Table I

  std::printf("Table I: parameters settings of the trained GANs\n");
  std::printf("  %-34s %12s %12s\n", "parameter", "this repo", "paper");
  std::printf("  -- network topology --\n");
  row("input neurons (latent)", static_cast<double>(config.arch.latent_dim), 64);
  row("number of hidden layers", static_cast<double>(config.arch.hidden_layers), 2);
  row("neurons per hidden layer", static_cast<double>(config.arch.hidden_dim), 256);
  row("output neurons", static_cast<double>(config.arch.image_dim), 784);
  std::printf("  -- coevolutionary settings --\n");
  row("iterations", config.iterations, 200);
  row("population size per cell", config.population_per_cell, 1);
  row("tournament size", config.tournament_size, 2);
  row("mixture mutation scale", config.mixture_mutation_scale, 0.01);
  std::printf("  -- hyperparameter mutation --\n");
  row("initial learning rate (Adam)", config.initial_learning_rate, 0.0002);
  row("mutation rate (sigma)", config.lr_mutation_sigma, 0.0001);
  row("mutation probability", config.lr_mutation_probability, 0.5);
  std::printf("  -- training settings --\n");
  row("batch size", config.batch_size, 100);
  row("skip N disc. steps", config.discriminator_skip_steps, 1);
  std::printf("  -- derived network sizes --\n");
  std::printf("  %-34s %12zu\n", "generator parameters",
              config.arch.generator_parameter_count());
  std::printf("  %-34s %12zu\n", "discriminator parameters",
              config.arch.discriminator_parameter_count());

  if (failures != 0) {
    std::fprintf(stderr, "%d Table I mismatches\n", failures);
    return EXIT_FAILURE;
  }
  std::printf("all Table I parameters match the paper\n");
  return EXIT_SUCCESS;
}
