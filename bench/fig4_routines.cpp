// Fig. 4 — execution time comparison for single-node and parallel versions
// of the main routines (the bar chart over Table IV's data). Emits both a
// CSV series (for plotting) and an ASCII bar rendering.
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "core/session.hpp"

namespace {

using namespace cellgan;

void ascii_bar(const char* label, double value, double max_value) {
  const int width = static_cast<int>(56.0 * value / max_value);
  std::printf("  %-16s %7.1f |", label, value);
  for (int i = 0; i < width; ++i) std::printf("#");
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("fig4_routines: Fig. 4 reproduction (4x4 grid)");
  cli.add_flag("iterations", "20", "epochs per run");
  cli.add_flag("samples", "200", "synthetic training samples");
  if (!cli.parse(argc, argv)) return 1;

  core::RunSpec spec;
  spec.config = core::TrainingConfig::tiny();
  spec.config.grid_rows = spec.config.grid_cols = 4;
  spec.config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  spec.dataset.samples = static_cast<std::size_t>(cli.get_int("samples"));
  spec.cost_profile = core::CostProfileKind::kTable4;

  core::Session seq_session(spec);
  const core::RunResult seq_outcome = seq_session.run();

  core::RunSpec dist_spec = spec;
  dist_spec.backend = core::Backend::kDistributed;
  core::Session dist_session(dist_spec);
  dist_session.set_cost_model(seq_session.cost_model());
  dist_session.set_datasets(seq_session.train_set(), seq_session.test_set());
  const core::RunResult dist_outcome = dist_session.run();

  struct Series {
    const char* name;
    const char* routine;
  };
  const Series series[] = {
      {"gather", common::routine::kGather},
      {"train", common::routine::kTrain},
      {"update genomes", common::routine::kUpdateGenomes},
      {"mutate", common::routine::kMutate},
  };

  std::printf("Fig. 4 data (CSV): routine,single_node_min,parallel_min\n");
  double values[4][2];
  double max_value = 0.0;
  for (int i = 0; i < 4; ++i) {
    values[i][0] = seq_outcome.profiler.cost(series[i].routine).virtual_s / 60.0;
    values[i][1] = dist_outcome.slave_routine_virtual_min(series[i].routine);
    max_value = std::max({max_value, values[i][0], values[i][1]});
    std::printf("%s,%.2f,%.2f\n", series[i].name, values[i][0], values[i][1]);
  }

  std::printf("\nsingle-node (virtual minutes):\n");
  for (int i = 0; i < 4; ++i) ascii_bar(series[i].name, values[i][0], max_value);
  std::printf("parallel (virtual minutes):\n");
  for (int i = 0; i < 4; ++i) ascii_bar(series[i].name, values[i][1], max_value);
  std::printf("\npaper series: single-node 19.4/264.9/199.8/25.6,"
              " parallel 19.4/43.8/16.8/17.9\n");
  return 0;
}
