// Data-plane sweep: legacy DataLoader vs shared prefetching SampleStore
// across grid sizes and lane counts, emitting BENCH_datastore.json.
//
// Two measurements per point, both over the same mmap-backed IDX dataset
// (written once from the synthetic generator so the bench is hermetic):
//
//   * session: full training runs on the threads backend with
//     --data-plane legacy vs store — the end-to-end wall clock and the
//     bit-parity gate (`"parity": true` is asserted by ci/check.sh --bench);
//   * feed: lane-parallel batch-draw throughput with a consumer-side touch
//     of every float (the overlap the prefetcher exists to exploit) —
//     isolates the data plane from GEMM noise;
//   * ingest: time from IDX file on disk to the first staged minibatch plus
//     the per-process float heap each plane needs — the store mmaps the byte
//     plane and stages one batch, the legacy loader must read and normalize
//     the whole file first.
//
// The JSON records the machine's core count: on a single-core container the
// prefetch pool cannot overlap anything, so feed throughput there measures
// pure staging overhead, not the design point.
//
//   data_plane [--samples N] [--iterations N] [--lanes LIST] [--grids LIST]
//              [--feed-epochs N] [--json PATH]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/session.hpp"
#include "data/dataloader.hpp"
#include "data/idx.hpp"
#include "data/synthetic_mnist.hpp"
#include "datastore/batch_feed.hpp"
#include "datastore/epoch_view.hpp"
#include "datastore/prefetcher.hpp"
#include "datastore/sample_store.hpp"
#include "datastore/stats.hpp"

namespace {

using namespace cellgan;
using Clock = std::chrono::steady_clock;

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

/// Write a synthetic MNIST-shaped IDX quartet under `dir`.
bool write_idx_dataset(const std::string& dir, std::size_t train_n,
                       std::size_t test_n, std::uint64_t seed) {
  std::filesystem::create_directories(dir);
  const auto write_split = [&](const char* images_name, const char* labels_name,
                               std::size_t n, std::uint64_t split_seed) {
    const data::Dataset set = data::make_synthetic_mnist(n, split_seed);
    data::IdxImages images;
    images.count = static_cast<std::uint32_t>(n);
    images.rows = data::kImageSide;
    images.cols = data::kImageSide;
    images.pixels.resize(n * data::kImageDim);
    const auto floats = set.images.data();
    for (std::size_t i = 0; i < floats.size(); ++i) {
      const float v = (floats[i] + 1.0f) * 127.5f;
      images.pixels[i] = static_cast<std::uint8_t>(
          v < 0.0f ? 0.0f : (v > 255.0f ? 255.0f : v));
    }
    std::vector<std::uint8_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
      labels[i] = static_cast<std::uint8_t>(set.labels[i]);
    }
    return data::write_idx_images(dir + "/" + images_name, images) &&
           data::write_idx_labels(dir + "/" + labels_name, labels);
  };
  return write_split("train-images-idx3-ubyte", "train-labels-idx1-ubyte",
                     train_n, seed) &&
         write_split("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte", test_n,
                     seed + 1);
}

struct SessionRow {
  std::string grid;
  std::size_t lanes = 0;
  std::string plane;
  double wall_s = 0.0;
};

struct FeedRow {
  std::size_t lanes = 0;
  std::string plane;
  double batches_per_s = 0.0;
};

std::vector<std::size_t> parse_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  for (std::string item; std::getline(ss, item, ',');) {
    const long v = std::strtol(item.c_str(), nullptr, 10);
    if (v >= 1) out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) out.push_back(1);
  return out;
}

/// Lane-parallel feed throughput: every lane draws every batch of `epochs`
/// epochs from its own feed and touches every float (the consumer-side work
/// training does). Returns aggregate batches per second.
double feed_throughput(bool store_plane, std::size_t lanes, std::size_t epochs,
                       const data::Dataset& dataset,
                       const std::shared_ptr<datastore::SampleStore>& store,
                       std::size_t batch_size) {
  std::atomic<double> sink{0.0};
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  std::atomic<std::size_t> batches{0};
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    threads.emplace_back([&, lane] {
      common::Rng rng(97 + lane);
      std::unique_ptr<datastore::BatchFeed> feed;
      if (store_plane) {
        feed = std::make_unique<datastore::StoreFeed>(store, batch_size);
      } else {
        feed = std::make_unique<datastore::LegacyFeed>(dataset, batch_size);
      }
      double local = 0.0;
      std::size_t drawn = 0;
      for (std::size_t e = 0; e < epochs; ++e) {
        feed->reshuffle(rng);
        for (std::size_t b = 0; b < feed->batches_per_epoch(); ++b) {
          const tensor::Tensor batch = feed->batch(b);
          for (const float v : batch.data()) local += v;  // consumer touch
          ++drawn;
        }
      }
      sink.store(sink.load() + local);
      batches.fetch_add(drawn);
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::printf("  feed %-6s lanes=%zu: %8.1f batches/s (sink %.1f)\n",
              store_plane ? "store" : "legacy", lanes,
              static_cast<double>(batches.load()) / seconds, sink.load());
  return static_cast<double>(batches.load()) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli(
      "Data-plane sweep: legacy loader vs prefetching SampleStore across "
      "grids and lanes; writes BENCH_datastore.json");
  cli.add_flag("samples", "2000", "IDX training samples to generate");
  cli.add_flag("iterations", "4", "training epochs per session point");
  cli.add_flag("lanes", "1,2,4", "comma-separated worker lane counts");
  cli.add_flag("grids", "2,4", "comma-separated grid cell counts (2=1x2, 4=2x2)");
  cli.add_flag("feed-epochs", "30", "epochs per lane in the feed microbench");
  cli.add_flag("json", "BENCH_datastore.json", "output JSON path (empty = skip)");
  if (!cli.parse(argc, argv)) return 1;

  // Give the staging pool enough workers for the widest lane sweep (the env
  // is only a default: an explicit CELLGAN_PREFETCH_THREADS wins).
  setenv("CELLGAN_PREFETCH_THREADS", "4", /*overwrite=*/0);

  const std::size_t samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto lanes_list = parse_list(cli.get("lanes"));
  const auto grid_list = parse_list(cli.get("grids"));
  const std::string idx_dir = "data_plane_idx";
  if (!write_idx_dataset(idx_dir, samples, samples / 6 + 8, 5)) {
    std::fprintf(stderr, "data_plane: cannot write IDX dataset under %s\n",
                 idx_dir.c_str());
    return 1;
  }

  // --- end-to-end session sweep -------------------------------------------
  bool parity = true;
  std::vector<SessionRow> session_rows;
  for (const std::size_t cells : grid_list) {
    for (const std::size_t lanes : lanes_list) {
      std::vector<double> fitness[2];
      for (const bool store_plane : {false, true}) {
        core::RunSpec spec;
        spec.backend = core::Backend::kThreads;
        spec.threads = lanes;
        spec.dataset.kind = core::DatasetSpec::Kind::kIdx;
        spec.dataset.idx_dir = idx_dir;
        spec.config = core::TrainingConfig::tiny();
        spec.config.arch.image_dim = data::kImageDim;  // full-res: mmap path
        spec.config.grid_rows = cells == 2 ? 1 : 2;
        spec.config.grid_cols = 2;
        spec.config.batch_size = 100;
        spec.config.fitness_eval_samples = 100;
        spec.config.batches_per_iteration = 4;
        spec.config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
        spec.config.data_plane = store_plane ? datastore::DataPlane::kStore
                                             : datastore::DataPlane::kLegacy;
        core::Session session(spec);
        if (!session.prepare()) {
          std::fprintf(stderr, "data_plane: %s\n", session.error().c_str());
          return 1;
        }
        const core::RunResult result = session.run();
        fitness[store_plane ? 1 : 0] = result.g_fitnesses;
        SessionRow row;
        row.grid = cells == 2 ? "1x2" : "2x2";
        row.lanes = lanes;
        row.plane = store_plane ? "store" : "legacy";
        row.wall_s = result.wall_s;
        session_rows.push_back(row);
        std::printf("session grid=%s lanes=%zu plane=%-6s wall=%.3fs\n",
                    row.grid.c_str(), lanes, row.plane.c_str(), row.wall_s);
      }
      if (fitness[0] != fitness[1]) {
        parity = false;
        std::fprintf(stderr,
                     "data_plane: PARITY VIOLATION at %zu cells, %zu lanes\n",
                     cells, lanes);
      }
    }
  }

  // --- feed-level throughput ----------------------------------------------
  auto loaded = data::load_mnist_idx(idx_dir);
  if (!loaded) return 1;
  const data::Dataset train = std::move(loaded->first);
  auto store = datastore::SampleStore::map_idx(idx_dir + "/train-images-idx3-ubyte");
  const std::size_t feed_epochs =
      static_cast<std::size_t>(cli.get_int("feed-epochs"));
  std::vector<FeedRow> feed_rows;
  for (const std::size_t lanes : lanes_list) {
    for (const bool store_plane : {false, true}) {
      FeedRow row;
      row.lanes = lanes;
      row.plane = store_plane ? "store" : "legacy";
      row.batches_per_s =
          feed_throughput(store_plane, lanes, feed_epochs, train, store, 100);
      feed_rows.push_back(row);
    }
  }

  // --- ingest latency + footprint -----------------------------------------
  // Legacy: read + normalize the whole file into a float heap, then gather
  // the first batch. Store: mmap, stage one batch straight from the bytes.
  double legacy_first_ms = 0.0, store_first_ms = 0.0;
  {
    const auto t0 = Clock::now();
    auto pair = data::load_mnist_idx(idx_dir);
    if (!pair) return 1;
    data::DataLoader loader(pair->first, 100);
    const tensor::Tensor first = loader.batch(0);
    legacy_first_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count() +
        first.data()[0] * 0.0;
  }
  {
    const auto t0 = Clock::now();
    auto mapped =
        datastore::SampleStore::map_idx(idx_dir + "/train-images-idx3-ubyte");
    std::vector<std::uint32_t> order(mapped->samples());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    datastore::EpochView view(mapped, order, 100);
    const tensor::Tensor first = view.batch(0);
    store_first_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count() +
        first.data()[0] * 0.0;
  }
  const std::size_t legacy_heap = samples * data::kImageDim * sizeof(float);
  std::printf("ingest legacy: %.2f ms to first batch, %zu heap bytes\n",
              legacy_first_ms, legacy_heap);
  std::printf("ingest store:  %.2f ms to first batch, 0 heap bytes (mmap)\n",
              store_first_ms);

  const datastore::StatsSnapshot stats = datastore::stats().snapshot();
  std::printf("store counters: hits=%llu waits=%llu stalls=%llu staged=%llu\n",
              static_cast<unsigned long long>(stats.prefetch_hits),
              static_cast<unsigned long long>(stats.prefetch_waits),
              static_cast<unsigned long long>(stats.prefetch_stalls),
              static_cast<unsigned long long>(stats.staged_batches));
  std::printf("parity: %s\n", parity ? "true" : "FALSE");

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    std::ostringstream out;
    out << "{\n  \"parity\": " << (parity ? "true" : "false") << ",\n";
    out << "  \"samples\": " << samples << ",\n";
    out << "  \"cores\": " << std::thread::hardware_concurrency() << ",\n";
    out << "  \"ingest\": {\n";
    out << "    \"legacy_first_batch_ms\": " << format_double(legacy_first_ms)
        << ",\n";
    out << "    \"store_first_batch_ms\": " << format_double(store_first_ms)
        << ",\n";
    out << "    \"legacy_heap_bytes\": " << legacy_heap << ",\n";
    out << "    \"store_heap_bytes\": 0\n  },\n";
    out << "  \"bytes_mapped\": " << stats.bytes_mapped << ",\n";
    out << "  \"prefetch_hits\": " << stats.prefetch_hits << ",\n";
    out << "  \"prefetch_waits\": " << stats.prefetch_waits << ",\n";
    out << "  \"prefetch_stalls\": " << stats.prefetch_stalls << ",\n";
    out << "  \"session\": [\n";
    for (std::size_t i = 0; i < session_rows.size(); ++i) {
      const SessionRow& r = session_rows[i];
      out << "    {\"grid\": \"" << r.grid << "\", \"lanes\": " << r.lanes
          << ", \"plane\": \"" << r.plane << "\", \"wall_s\": "
          << format_double(r.wall_s) << "}"
          << (i + 1 < session_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"feed\": [\n";
    for (std::size_t i = 0; i < feed_rows.size(); ++i) {
      const FeedRow& r = feed_rows[i];
      out << "    {\"lanes\": " << r.lanes << ", \"plane\": \"" << r.plane
          << "\", \"batches_per_s\": " << format_double(r.batches_per_s) << "}"
          << (i + 1 < feed_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::ofstream file(json_path);
    if (!file) {
      std::fprintf(stderr, "data_plane: cannot write %s\n", json_path.c_str());
      return 1;
    }
    file << out.str();
    std::printf("wrote %s\n", json_path.c_str());
  }
  return parity ? 0 : 2;
}
