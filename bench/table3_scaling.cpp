// Table III — execution times of GAN training: single-core vs the
// parallel/distributed implementation, for 2x2, 3x3 and 4x4 grids, with the
// speedup column. Ten repetitions per grid (like the paper) give the
// avg +- std of the distributed times. With --threads N an extra
// "multithread" column runs the in-process ParallelTrainer: same process,
// cells stepped concurrently on N worker lanes — virtual time shows the
// max-over-lanes makespan (the "p cores" view) and wall time shows the
// real speedup this machine's cores deliver.
//
// Methodology (DESIGN.md §4, EXPERIMENTS.md): the *real* training code runs
// at reduced scale (tiny networks, few iterations) and per-rank virtual
// clocks advance through the calibrated cost model; Table II's resource
// summary is printed from the actual world layout. Wall-clock times of the
// reduced runs are also reported (honest small-scale measurement on this
// machine) — the virtual-time columns are the paper-scale reproduction.
//
// --json FILE writes the measured rows as machine-readable JSON so CI can
// archive bench numbers (ci/check.sh --bench -> BENCH_parallel.json) and
// future perf PRs can show deltas.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/session.hpp"

namespace {

using namespace cellgan;

struct GridResult {
  int side = 0;
  double seq_virtual_min = 0.0;
  double seq_wall_s = 0.0;
  double seq_train_flops = 0.0;
  double mt_virtual_min = 0.0;   ///< ParallelTrainer makespan (0 if not run)
  double mt_wall_s = 0.0;
  double mt_train_flops = 0.0;
  bool mt_flops_match = true;    ///< parallel run did exactly the seq work
  bool mt_profile_match = true;  ///< per-routine virtual totals agree
  double dist_virtual_min_avg = 0.0;
  double dist_virtual_min_std = 0.0;
  double dist_wall_s = 0.0;
};

GridResult run_grid(int side, std::uint32_t iterations, int repetitions,
                    std::size_t samples, std::size_t threads) {
  core::RunSpec spec;
  spec.config = core::TrainingConfig::tiny();
  spec.config.grid_rows = spec.config.grid_cols = static_cast<std::uint32_t>(side);
  spec.config.iterations = iterations;
  spec.dataset.samples = samples;
  // The table3 profile calibrates the cost model on this exact configuration:
  // the probe measures real flops/bytes per cell-iteration, the targets are
  // normalized to this run's iteration count (Session does both).
  spec.cost_profile = core::CostProfileKind::kTable3;

  GridResult result;
  result.side = side;

  core::Session seq_session(spec);
  const core::RunResult seq_outcome = seq_session.run();
  result.seq_virtual_min = seq_outcome.virtual_s / 60.0;
  result.seq_wall_s = seq_outcome.wall_s;
  result.seq_train_flops = seq_outcome.train_flops;
  // Calibrate and resolve the dataset once; the multithread and distributed
  // sessions share both.
  const core::CostModel cost = seq_session.cost_model();

  if (threads > 1) {
    core::RunSpec mt_spec = spec;
    mt_spec.backend = core::Backend::kThreads;
    mt_spec.threads = threads;
    core::Session mt_session(mt_spec);
    mt_session.set_cost_model(cost);
    mt_session.set_datasets(seq_session.train_set(), seq_session.test_set());
    const core::RunResult mt_outcome = mt_session.run();
    result.mt_virtual_min = mt_outcome.virtual_s / 60.0;
    result.mt_wall_s = mt_outcome.wall_s;
    result.mt_train_flops = mt_outcome.train_flops;
    result.mt_flops_match = mt_outcome.train_flops == seq_outcome.train_flops;
    for (const char* routine :
         {common::routine::kTrain, common::routine::kUpdateGenomes,
          common::routine::kMutate, common::routine::kGather}) {
      const double seq_vs = seq_outcome.profiler.cost(routine).virtual_s;
      const double mt_vs = mt_outcome.profiler.cost(routine).virtual_s;
      if (std::abs(seq_vs - mt_vs) > 1e-9 * std::max(1.0, seq_vs)) {
        result.mt_profile_match = false;
      }
    }
  }

  std::vector<double> dist_minutes;
  double wall_total = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    core::RunSpec rep_spec = spec;
    rep_spec.backend = core::Backend::kDistributed;
    rep_spec.config.seed = spec.config.seed + 1000 + static_cast<std::uint64_t>(rep);
    core::Session rep_session(rep_spec);
    rep_session.set_cost_model(cost);
    rep_session.set_datasets(seq_session.train_set(), seq_session.test_set());
    const core::RunResult outcome = rep_session.run();
    dist_minutes.push_back(outcome.virtual_s / 60.0);
    wall_total += outcome.wall_s;
  }
  double sum = 0.0;
  for (const double m : dist_minutes) sum += m;
  result.dist_virtual_min_avg = sum / dist_minutes.size();
  double var = 0.0;
  for (const double m : dist_minutes) {
    var += (m - result.dist_virtual_min_avg) * (m - result.dist_virtual_min_avg);
  }
  result.dist_virtual_min_std =
      dist_minutes.size() > 1 ? std::sqrt(var / (dist_minutes.size() - 1)) : 0.0;
  result.dist_wall_s = wall_total / repetitions;
  return result;
}

void write_json(const std::string& path, const std::vector<GridResult>& rows,
                std::uint32_t iterations, std::size_t threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"table3_scaling\",\n");
  std::fprintf(f, "  \"iterations\": %u,\n  \"threads\": %zu,\n  \"grids\": [\n",
               iterations, threads);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GridResult& r = rows[i];
    std::fprintf(f,
                 "    {\"side\": %d, \"seq_virtual_min\": %.6f, "
                 "\"seq_wall_s\": %.6f, \"seq_train_flops\": %.0f,\n"
                 "     \"mt_virtual_min\": %.6f, \"mt_wall_s\": %.6f, "
                 "\"mt_wall_speedup\": %.4f, \"mt_virtual_speedup\": %.4f,\n"
                 "     \"mt_flops_match\": %s, \"mt_profile_match\": %s,\n"
                 "     \"dist_virtual_min_avg\": %.6f, "
                 "\"dist_virtual_min_std\": %.6f, \"dist_wall_s\": %.6f}%s\n",
                 r.side, r.seq_virtual_min, r.seq_wall_s, r.seq_train_flops,
                 r.mt_virtual_min, r.mt_wall_s,
                 r.mt_wall_s > 0.0 ? r.seq_wall_s / r.mt_wall_s : 0.0,
                 r.mt_virtual_min > 0.0 ? r.seq_virtual_min / r.mt_virtual_min : 0.0,
                 r.mt_flops_match ? "true" : "false",
                 r.mt_profile_match ? "true" : "false", r.dist_virtual_min_avg,
                 r.dist_virtual_min_std, r.dist_wall_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("table3_scaling: Table III reproduction");
  cli.add_flag("iterations", "20", "epochs per run (charges normalized to this)");
  cli.add_flag("repetitions", "10", "distributed repetitions per grid");
  cli.add_flag("samples", "200", "synthetic training samples");
  cli.add_flag("threads", "0",
               "worker lanes for an extra in-process multithread column "
               "(0 = skip)");
  cli.add_flag("json", "", "write machine-readable results to this file");
  if (!cli.parse(argc, argv)) return 1;

  const auto iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  const int repetitions = static_cast<int>(cli.get_int("repetitions"));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));

  // Paper values for side-by-side comparison (Table III).
  struct PaperRow {
    double seq, dist, dist_std, speedup;
  };
  const PaperRow paper[] = {{339.6, 39.81, 0.01, 8.53},
                            {999.5, 73.24, 2.56, 13.65},
                            {1920.0, 126.68, 3.42, 15.17}};

  std::printf("Table II: resources used on each execution\n");
  std::printf("  %-10s %8s %12s\n", "grid size", "# cores", "memory (MB)");
  for (const int side : {2, 3, 4}) {
    const int cells = side * side;
    // Per-process working set: center pair + scratch pair + 4 neighbor
    // genomes at paper scale (~2.2 MB/genome) plus data and runtime.
    const double mb_per_slave = (4 + 4) * 2.2 + 512.0;
    std::printf("  %dx%-8d %8d %12.0f\n", side, side, cells + 1,
                (cells + 1) * mb_per_slave);
  }

  std::vector<GridResult> rows;
  std::printf("\nTable III: execution times of GAN training (virtual minutes,"
              " paper-scale)\n");
  std::printf("  %-9s | %9s %9s | %17s %15s | %8s %8s | %12s %12s\n", "grid",
              "seq(min)", "paper", "dist(min)", "paper", "speedup", "paper",
              "seq wall(s)", "dist wall(s)");
  for (int i = 0; i < 3; ++i) {
    const int side = i + 2;
    const GridResult r = run_grid(side, iterations, repetitions, samples, threads);
    rows.push_back(r);
    const double speedup = r.seq_virtual_min / r.dist_virtual_min_avg;
    std::printf(
        "  %dx%-7d | %9.1f %9.1f | %8.2f+-%-6.2f %8.2f+-%-4.2f | %8.2f %8.2f |"
        " %12.2f %12.2f\n",
        side, side, r.seq_virtual_min, paper[i].seq, r.dist_virtual_min_avg,
        r.dist_virtual_min_std, paper[i].dist, paper[i].dist_std, speedup,
        paper[i].speedup, r.seq_wall_s, r.dist_wall_s);
  }

  if (threads > 1) {
    std::printf("\nmultithread column: ParallelTrainer, %zu worker lanes"
                " (in-process)\n", threads);
    std::printf("  %-9s | %9s %12s | %11s %12s | %10s %7s %7s\n", "grid",
                "mt(min)", "virt speedup", "mt wall(s)", "wall speedup",
                "flops", "profile", "");
    for (const GridResult& r : rows) {
      std::printf("  %dx%-7d | %9.1f %12.2f | %11.2f %12.2f | %10s %7s\n",
                  r.side, r.side, r.mt_virtual_min,
                  r.mt_virtual_min > 0.0 ? r.seq_virtual_min / r.mt_virtual_min : 0.0,
                  r.mt_wall_s,
                  r.mt_wall_s > 0.0 ? r.seq_wall_s / r.mt_wall_s : 0.0,
                  r.mt_flops_match ? "match" : "MISMATCH",
                  r.mt_profile_match ? "match" : "MISMATCH");
    }
    std::printf("  (wall speedup is bounded by this machine's cores; the"
                " virtual column is the calibrated p-core makespan)\n");
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) write_json(json_path, rows, iterations, threads);

  std::printf("\nshape check: superlinear speedup at 2x2/3x3 (memory-pressure"
              " model),\nsublinear at 4x4 (management + gather overhead) — see"
              " EXPERIMENTS.md\n");
  return 0;
}
