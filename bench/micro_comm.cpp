// Microbenchmarks of the minimpi message layer: point-to-point throughput,
// collective costs, and the per-epoch genome allgather at paper payload
// sizes — the real (wall-clock) costs of the in-process transport.
#include <benchmark/benchmark.h>

#include "minimpi/comm.hpp"
#include "minimpi/runtime.hpp"

namespace {

using namespace cellgan::minimpi;

void BM_PingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Runtime runtime(2);
  // Drive the benchmark loop from rank 0; rank 1 echoes until poisoned.
  std::vector<std::uint8_t> payload(bytes, 7);
  runtime.run([&](Comm& world) {
    if (world.rank() == 0) {
      for (auto _ : state) {
        world.send(1, 1, payload);
        benchmark::DoNotOptimize(world.recv(1, 2));
      }
      world.send(1, 99, {});  // stop
    } else {
      for (;;) {
        Message m = world.recv(0, kAnyTag);
        if (m.tag == 99) break;
        world.send(0, 2, m.payload);
      }
    }
  });
  state.SetBytesProcessed(state.iterations() * 2 * bytes);
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_Barrier(benchmark::State& state) {
  // Rank 0 drives the benchmark loop; after each barrier it broadcasts a
  // continue/stop flag so the other ranks mirror the unknown iteration count.
  const int n = static_cast<int>(state.range(0));
  Runtime runtime(n);
  runtime.run([&](Comm& world) {
    if (world.rank() == 0) {
      for (auto _ : state) {
        world.barrier();
        std::vector<std::uint8_t> go{1};
        world.bcast(go, 0);
      }
      std::vector<std::uint8_t> stop{0};
      world.barrier();
      world.bcast(stop, 0);
    } else {
      for (;;) {
        world.barrier();
        std::vector<std::uint8_t> go;
        world.bcast(go, 0);
        if (go[0] == 0) break;
      }
    }
  });
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(5)->Arg(17);

void BM_GenomeAllgather(benchmark::State& state) {
  // The per-epoch exchange: every active slave allgathers its serialized
  // center genome. Payload 2.2 MB = the paper's full MLP pair. Rank 0
  // broadcasts a continue/stop flag BEFORE each collective so every rank
  // joins exactly the collectives that will complete.
  const int n = static_cast<int>(state.range(0));
  const std::size_t bytes = 2'205'716;
  Runtime runtime(n);
  runtime.run([&](Comm& world) {
    std::vector<std::uint8_t> genome(bytes,
                                     static_cast<std::uint8_t>(world.rank()));
    if (world.rank() == 0) {
      for (auto _ : state) {
        std::vector<std::uint8_t> go{1};
        world.bcast(go, 0);
        benchmark::DoNotOptimize(world.allgather(genome));
      }
      std::vector<std::uint8_t> stop{0};
      world.bcast(stop, 0);
    } else {
      for (;;) {
        std::vector<std::uint8_t> go;
        world.bcast(go, 0);
        if (go[0] == 0) break;
        benchmark::DoNotOptimize(world.allgather(genome));
      }
    }
  });
  state.SetBytesProcessed(state.iterations() * bytes * (n - 1));
}
BENCHMARK(BM_GenomeAllgather)->Arg(2)->Arg(4);

void BM_CommSplit(benchmark::State& state) {
  Runtime runtime(4);
  runtime.run([&](Comm& world) {
    if (world.rank() == 0) {
      for (auto _ : state) {
        std::vector<std::uint8_t> go{1};
        world.bcast(go, 0);
        benchmark::DoNotOptimize(world.split(0, world.rank()));
      }
      std::vector<std::uint8_t> stop{0};
      world.bcast(stop, 0);
    } else {
      for (;;) {
        std::vector<std::uint8_t> go;
        world.bcast(go, 0);
        if (go[0] == 0) break;
        benchmark::DoNotOptimize(world.split(0, world.rank()));
      }
    }
  });
}
BENCHMARK(BM_CommSplit);

}  // namespace

BENCHMARK_MAIN();
