// Serving benchmark: latency/throughput of the micro-batching sample server
// under open-loop load. Trains a tiny grid, checkpoints it, starts an
// in-process serve::Server on a loopback ephemeral port, verifies the serve
// path is bit-identical to Session::sample_best(seed) (the benchmark is
// meaningless if the fast path returns different bytes), then sweeps offered
// QPS levels with serve::run_open_loop and emits BENCH_serving.json:
// p50/p95/p99 latency, achieved throughput and mean batch occupancy per
// level. ci/check.sh --bench runs this and asserts on the artifact.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/checkpoint.hpp"
#include "core/session.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

std::vector<double> parse_levels(const std::string& text) {
  std::vector<double> levels;
  std::string token;
  for (const char c : text + ",") {
    if (c == ',') {
      if (!token.empty()) levels.push_back(std::stod(token));
      token.clear();
    } else {
      token += c;
    }
  }
  return levels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cellgan;

  common::CliParser cli("serve_load: open-loop QPS sweep against the sample server");
  cli.add_flag("qps", "25,50,100", "comma-separated offered QPS levels");
  cli.add_flag("duration-s", "1.5", "send window per level");
  cli.add_flag("count", "8", "samples per request");
  cli.add_flag("max-batch", "8", "server micro-batch size bound");
  cli.add_flag("max-delay-us", "2000", "server micro-batch delay bound");
  cli.add_flag("iterations", "4", "training iterations for the served model");
  cli.add_flag("out-dir", "out", "work directory for the checkpoint");
  cli.add_flag("json", "BENCH_serving.json", "benchmark artifact path");
  cli.add_flag("telemetry", "", "append serve_request/serve_batch JSONL here");
  if (!cli.parse(argc, argv)) return 1;

  // A small served model: the bench measures the serving plane, not
  // training quality, so tiny() keeps the forward cheap enough that the
  // batcher (not the GEMM) is the object under test.
  core::RunSpec spec;
  spec.config = core::TrainingConfig::tiny();
  spec.config.iterations =
      static_cast<std::uint32_t>(cli.get_int("iterations"));
  spec.backend = core::Backend::kSequential;

  core::Session session(spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("training served model (%u iterations)...\n",
              spec.config.iterations);
  const core::RunResult outcome = session.run();

  const std::filesystem::path out_dir(cli.get("out-dir"));
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string checkpoint_path = (out_dir / "serve_bench.ckpt").string();
  if (!core::save_checkpoint(checkpoint_path,
                             session.result_checkpoint(outcome))) {
    std::fprintf(stderr, "error: cannot write %s\n", checkpoint_path.c_str());
    return 1;
  }

  core::EventBus bus;
  std::unique_ptr<core::JsonlTelemetrySink> sink;
  if (!cli.get("telemetry").empty()) {
    sink = std::make_unique<core::JsonlTelemetrySink>(cli.get("telemetry"));
    if (!sink->ok()) return 1;
    bus.subscribe(sink.get());
  }

  serve::ServerOptions options;
  options.checkpoint = checkpoint_path;
  options.batch.max_batch = static_cast<std::size_t>(cli.get_int("max-batch"));
  options.batch.max_delay_us =
      static_cast<std::uint32_t>(cli.get_int("max-delay-us"));
  serve::Server server(options, sink ? &bus : nullptr);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("serving %s on %s\n", checkpoint_path.c_str(),
              server.endpoint().to_string().c_str());

  serve::ServeClient client;
  if (!client.connect(server.endpoint(), 10.0, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // Parity gate: the serve path must return the Session's exact bytes.
  const std::uint64_t parity_seed = 7;
  const std::uint32_t parity_count =
      static_cast<std::uint32_t>(cli.get_int("count"));
  const auto id = client.send_request(parity_seed, parity_count);
  serve::ServeClient::Completion completion;
  bool parity = id != 0 && client.wait(id, &completion, 30.0) &&
                completion.response.ok();
  if (parity) {
    const tensor::Tensor direct =
        session.sample_best(outcome, parity_count, parity_seed);
    const auto a = completion.response.samples;
    const auto b = direct.data();
    parity = a.size() == b.size();
    for (std::size_t i = 0; parity && i < a.size(); ++i) parity = a[i] == b[i];
  }
  std::printf("serve/session parity: %s\n", parity ? "bit-identical" : "MISMATCH");

  const auto levels = parse_levels(cli.get("qps"));
  std::vector<std::string> level_jsons;
  for (const double qps : levels) {
    serve::LoadOptions load;
    load.qps = qps;
    load.duration_s = cli.get_double("duration-s");
    load.count = parity_count;
    load.seed_base = 1000;
    const auto report = serve::run_open_loop(client, load);
    std::printf("qps %6.1f -> p50 %.2fms p95 %.2fms p99 %.2fms "
                "achieved %.1f/s mean batch %.2f (%llu/%llu ok)\n",
                qps, report.p50_ms, report.p95_ms, report.p99_ms,
                report.achieved_qps, report.mean_batch_requests,
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.sent));
    level_jsons.push_back(report.to_json());
  }

  client.close();
  server.drain_and_stop();

  std::string json = "{\n  \"schema_version\": 1,\n  \"bench\": \"serving\",\n";
  json += "  \"parity\": ";
  json += parity ? "true" : "false";
  json += ",\n  \"count\": " + std::to_string(parity_count);
  json += ",\n  \"max_batch\": " + std::to_string(options.batch.max_batch);
  json += ",\n  \"max_delay_us\": " +
          std::to_string(options.batch.max_delay_us);
  json += ",\n  \"levels\": [\n";
  for (std::size_t i = 0; i < level_jsons.size(); ++i) {
    json += "    " + level_jsons[i];
    if (i + 1 < level_jsons.size()) json += ",";
    json += "\n";
  }
  json += "  ]\n}\n";
  if (std::FILE* f = std::fopen(cli.get("json").c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", cli.get("json").c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", cli.get("json").c_str());
    return 1;
  }
  return parity ? 0 : 1;
}
