// Ablation: straggler sensitivity of the exchange mode.
//
// The paper runs on a best-effort cluster where per-process speed varies,
// and its implementation synchronizes the grid with a per-epoch allgather.
// This bench sweeps the straggler jitter sigma for both exchange modes:
//   allgather       — lockstep; per-iteration noise compounds as a
//                     max-of-members effect every epoch;
//   async-neighbors — point-to-point newest-available exchange; a slave
//                     never waits, so noise averages instead of compounding.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/distributed_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"

namespace {

using namespace cellgan;

double run_with_sigma(core::TrainingConfig config, const data::Dataset& dataset,
                      const core::WorkloadProbe& probe, double sigma,
                      core::ExchangeMode mode) {
  config.exchange_mode = mode;
  core::CostProfile profile = core::CostProfile::table3();
  profile.reference_iterations = static_cast<double>(config.iterations);
  profile.straggler_sigma = sigma;
  profile.node_sigma = 0.0;  // isolate per-iteration noise
  const core::CostModel cost = core::CostModel::calibrated(profile, probe);
  const core::DistributedOutcome outcome =
      core::run_distributed(config, dataset, cost);
  return outcome.virtual_makespan_s / 60.0;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("ablation_sync: straggler jitter vs makespan");
  cli.add_flag("iterations", "20", "training epochs");
  cli.add_flag("samples", "200", "synthetic training samples");
  cli.add_flag("grid", "3", "grid side");
  if (!cli.parse(argc, argv)) return 1;

  core::TrainingConfig config = core::TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = static_cast<std::uint32_t>(cli.get_int("grid"));
  config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  const auto dataset = core::make_matched_dataset(
      config, static_cast<std::size_t>(cli.get_int("samples")), 7);
  const core::WorkloadProbe probe =
      core::SequentialTrainer::measure_workload(config, dataset);

  std::printf("ablation: exchange mode under straggler noise (%ux%u grid,"
              " %u iterations)\n",
              config.grid_rows, config.grid_cols, config.iterations);
  const double sync_base =
      run_with_sigma(config, dataset, probe, 0.0, core::ExchangeMode::kAllgather);
  const double async_base = run_with_sigma(config, dataset, probe, 0.0,
                                           core::ExchangeMode::kAsyncNeighbors);
  std::printf("  %-8s | %16s %10s | %16s %10s\n", "sigma", "allgather(min)",
              "slowdown", "async(min)", "slowdown");
  std::printf("  %-8.2f | %16.2f %10s | %16.2f %10s\n", 0.0, sync_base, "1.000x",
              async_base, "1.000x");
  for (const double sigma : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    const double sync_makespan =
        run_with_sigma(config, dataset, probe, sigma, core::ExchangeMode::kAllgather);
    const double async_makespan = run_with_sigma(
        config, dataset, probe, sigma, core::ExchangeMode::kAsyncNeighbors);
    std::printf("  %-8.2f | %16.2f %9.3fx | %16.2f %9.3fx\n", sigma, sync_makespan,
                sync_makespan / sync_base, async_makespan,
                async_makespan / async_base);
  }
  std::printf("\nreading: the allgather's per-epoch barrier compounds per-rank\n"
              "noise into a max-of-members penalty; async newest-available\n"
              "exchange keeps the makespan at the mean rank speed (and moves\n"
              "s-1 instead of n-1 genomes per epoch)\n");
  return 0;
}
