// Ablation: straggler sensitivity of the exchange mode.
//
// The paper runs on a best-effort cluster where per-process speed varies,
// and its implementation synchronizes the grid with a per-epoch allgather.
// This bench sweeps the straggler jitter sigma for both exchange modes:
//   allgather       — lockstep; per-iteration noise compounds as a
//                     max-of-members effect every epoch;
//   async-neighbors — point-to-point newest-available exchange; a slave
//                     never waits, so noise averages instead of compounding.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/session.hpp"

namespace {

using namespace cellgan;

double run_with_sigma(core::RunSpec spec, const core::WorkloadProbe& probe,
                      const data::Dataset& train, const data::Dataset& test,
                      double sigma, core::ExchangeMode mode) {
  spec.config.exchange_mode = mode;
  core::CostProfile profile = core::CostProfile::table3();
  profile.reference_iterations = static_cast<double>(spec.config.iterations);
  profile.straggler_sigma = sigma;
  profile.node_sigma = 0.0;  // isolate per-iteration noise
  core::Session session(spec);
  session.set_cost_model(core::CostModel::calibrated(profile, probe));
  session.set_datasets(train, test);
  return session.run().virtual_s / 60.0;
}

}  // namespace

int main(int argc, char** argv) {
  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.grid_rows = defaults.config.grid_cols = 3;
  defaults.config.iterations = 20;
  defaults.dataset.samples = 200;
  defaults.backend = core::Backend::kDistributed;
  auto spec = core::RunSpec::from_args(
      argc, argv, "ablation_sync: straggler jitter vs makespan", defaults);
  if (!spec) return 1;
  if (!spec->result_json.empty()) {
    std::fprintf(stderr, "note: --result-json is ignored by this sweep bench\n");
    spec->result_json.clear();
  }
  const core::TrainingConfig& config = spec->config;

  core::Session probe_session(*spec);
  if (!probe_session.prepare()) {
    std::fprintf(stderr, "error: %s\n", probe_session.error().c_str());
    return 1;
  }
  const data::Dataset& train = probe_session.train_set();
  const data::Dataset& test = probe_session.test_set();
  const core::WorkloadProbe probe = core::TrainerCore::measure_workload(config, train);

  std::printf("ablation: exchange mode under straggler noise (%ux%u grid,"
              " %u iterations)\n",
              config.grid_rows, config.grid_cols, config.iterations);
  const double sync_base = run_with_sigma(*spec, probe, train, test, 0.0,
                                          core::ExchangeMode::kAllgather);
  const double async_base = run_with_sigma(*spec, probe, train, test, 0.0,
                                           core::ExchangeMode::kAsyncNeighbors);
  std::printf("  %-8s | %16s %10s | %16s %10s\n", "sigma", "allgather(min)",
              "slowdown", "async(min)", "slowdown");
  std::printf("  %-8.2f | %16.2f %10s | %16.2f %10s\n", 0.0, sync_base, "1.000x",
              async_base, "1.000x");
  for (const double sigma : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    const double sync_makespan = run_with_sigma(
        *spec, probe, train, test, sigma, core::ExchangeMode::kAllgather);
    const double async_makespan = run_with_sigma(
        *spec, probe, train, test, sigma, core::ExchangeMode::kAsyncNeighbors);
    std::printf("  %-8.2f | %16.2f %9.3fx | %16.2f %9.3fx\n", sigma, sync_makespan,
                sync_makespan / sync_base, async_makespan,
                async_makespan / async_base);
  }
  std::printf("\nreading: the allgather's per-epoch barrier compounds per-rank\n"
              "noise into a max-of-members penalty; async newest-available\n"
              "exchange keeps the makespan at the mean rank speed (and moves\n"
              "s-1 instead of n-1 genomes per epoch)\n");
  return 0;
}
