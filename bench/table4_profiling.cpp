// Table IV — profiling of the four most time-consuming routines of GAN
// training (gather, train, update-genomes, mutate) at 4x4: single-core
// totals vs distributed per-slave times, acceleration and speedup columns.
//
// Calibrated with the table4 cost profile (the paper's profiled run is a
// different configuration than its Table III run — the two tables disagree
// on overall speedup; see EXPERIMENTS.md). Routine times come out of the
// per-rank Profiler buckets filled by the real trainer code.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/session.hpp"

namespace {

using namespace cellgan;

struct RoutineRow {
  const char* name;
  const char* routine;
  double paper_seq;
  double paper_dist;
};

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("table4_profiling: Table IV reproduction (4x4 grid)");
  cli.add_flag("iterations", "20", "epochs per run");
  cli.add_flag("samples", "200", "synthetic training samples");
  if (!cli.parse(argc, argv)) return 1;

  core::RunSpec spec;
  spec.config = core::TrainingConfig::tiny();
  spec.config.grid_rows = spec.config.grid_cols = 4;
  spec.config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  spec.dataset.samples = static_cast<std::size_t>(cli.get_int("samples"));
  // table4 calibration (targets normalized to this run's iteration count).
  spec.cost_profile = core::CostProfileKind::kTable4;

  core::Session seq_session(spec);
  const core::RunResult seq_outcome = seq_session.run();

  core::RunSpec dist_spec = spec;
  dist_spec.backend = core::Backend::kDistributed;
  core::Session dist_session(dist_spec);
  dist_session.set_cost_model(seq_session.cost_model());
  dist_session.set_datasets(seq_session.train_set(), seq_session.test_set());
  const core::RunResult dist_outcome = dist_session.run();

  const RoutineRow rows[] = {
      {"gather", common::routine::kGather, 19.4, 19.4},
      {"train", common::routine::kTrain, 264.9, 43.8},
      {"update genomes", common::routine::kUpdateGenomes, 199.8, 16.8},
      {"mutate", common::routine::kMutate, 25.6, 17.9},
  };

  std::printf("Table IV: profiling of the most consuming routines (virtual"
              " minutes, 4x4 grid)\n");
  std::printf("  %-16s | %9s %9s | %9s %9s | %7s %7s | %8s %8s\n", "routine",
              "seq", "paper", "dist", "paper", "accel", "paper", "speedup",
              "paper");
  double seq_total = 0.0, dist_total = 0.0, paper_seq_total = 0.0,
         paper_dist_total = 0.0;
  for (const RoutineRow& row : rows) {
    // Single-core column: total across the whole process (16 cells).
    const double seq_min =
        seq_outcome.profiler.cost(row.routine).virtual_s / 60.0;
    // Distributed column: per-slave average (the paper's per-process view).
    const double dist_min = dist_outcome.slave_routine_virtual_min(row.routine);
    const double accel = 100.0 * (1.0 - dist_min / seq_min);
    const double paper_accel = 100.0 * (1.0 - row.paper_dist / row.paper_seq);
    std::printf("  %-16s | %9.1f %9.1f | %9.1f %9.1f | %6.1f%% %6.1f%% |"
                " %8.2f %8.2f\n",
                row.name, seq_min, row.paper_seq, dist_min, row.paper_dist,
                accel, paper_accel, seq_min / dist_min,
                row.paper_seq / row.paper_dist);
    seq_total += seq_min;
    dist_total += dist_min;
    paper_seq_total += row.paper_seq;
    paper_dist_total += row.paper_dist;
  }
  std::printf("  %-16s | %9.1f %9.1f | %9.1f %9.1f | %6.1f%% %6.1f%% |"
              " %8.2f %8.2f\n",
              "overall", seq_total, paper_seq_total, dist_total,
              paper_dist_total, 100.0 * (1.0 - dist_total / seq_total),
              100.0 * (1.0 - paper_dist_total / paper_seq_total),
              seq_total / dist_total, paper_seq_total / paper_dist_total);
  std::printf("\nshape check: gather ~1x (same elapsed in both versions),\n"
              "update-genomes accelerates most, mutate least among compute"
              " routines\n");
  return 0;
}
