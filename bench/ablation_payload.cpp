// Ablation: exchange payload size vs gather cost.
//
// The gather routine's cost is driven by the genome payload (the paper's
// full MLPs serialize to ~2.2 MB per cell). This bench sweeps the hidden
// width of the networks, measures the actual serialized genome, and reports
// the per-iteration virtual gather cost on a 3x3 grid — confirming the
// linear payload/time relation the NetModel charges.
#include <cstdio>

#include "common/cli.hpp"
#include "core/distributed_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"

namespace {

using namespace cellgan;

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("ablation_payload: genome size vs gather time");
  cli.add_flag("iterations", "10", "training epochs");
  cli.add_flag("samples", "200", "synthetic training samples");
  if (!cli.parse(argc, argv)) return 1;

  // Calibrate ONCE at a reference width, then hold the network model fixed
  // while the payload sweeps — otherwise per-width recalibration would hide
  // the effect by construction.
  const auto iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  core::TrainingConfig reference = core::TrainingConfig::tiny();
  reference.arch.hidden_dim = 16;
  reference.grid_rows = reference.grid_cols = 3;
  reference.iterations = iterations;
  const auto reference_dataset = core::make_matched_dataset(reference, samples, 7);
  const core::WorkloadProbe reference_probe =
      core::SequentialTrainer::measure_workload(reference, reference_dataset);
  core::CostProfile profile = core::CostProfile::table3();
  profile.reference_iterations = static_cast<double>(iterations);
  profile.straggler_sigma = 0.0;  // isolate the payload effect
  profile.node_sigma = 0.0;
  const core::CostModel cost = core::CostModel::calibrated(profile, reference_probe);

  std::printf("ablation: exchange payload vs gather cost (3x3 grid, fixed"
              " network model)\n");
  std::printf("  %-12s | %14s | %20s | %18s\n", "hidden dim", "genome (KB)",
              "gather (min/run)", "min per MB-iter");

  for (const std::size_t hidden : {8u, 16u, 32u, 64u}) {
    core::TrainingConfig config = reference;
    config.arch.hidden_dim = hidden;
    const auto dataset = core::make_matched_dataset(config, samples, 7);
    const core::WorkloadProbe probe =
        core::SequentialTrainer::measure_workload(config, dataset);

    const core::DistributedOutcome outcome =
        core::run_distributed(config, dataset, cost);
    const double gather_min =
        outcome.slave_routine_virtual_min(common::routine::kGather);
    const double genome_kb = probe.genome_bytes / 1024.0;
    const double mb_iter = probe.genome_bytes / (1024.0 * 1024.0) *
                           static_cast<double>(config.iterations);
    std::printf("  %-12zu | %14.1f | %20.3f | %18.3f\n", hidden, genome_kb,
                gather_min, gather_min / mb_iter);
  }
  std::printf("\nreading: gather time scales linearly with the serialized"
              " genome\n(constant minutes per transferred megabyte), so wider"
              " networks pay\nproportionally more for the per-epoch"
              " exchange\n");
  return 0;
}
