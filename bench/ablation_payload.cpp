// Ablation: exchange payload size vs gather cost.
//
// The gather routine's cost is driven by the genome payload (the paper's
// full MLPs serialize to ~2.2 MB per cell). This bench sweeps the hidden
// width of the networks, measures the actual serialized genome, and reports
// the per-iteration virtual gather cost on a 3x3 grid — confirming the
// linear payload/time relation the NetModel charges.
#include <cstdio>

#include "core/session.hpp"

namespace {

using namespace cellgan;

}  // namespace

int main(int argc, char** argv) {
  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.arch.hidden_dim = 16;
  defaults.config.grid_rows = defaults.config.grid_cols = 3;
  defaults.config.iterations = 10;
  defaults.dataset.samples = 200;
  defaults.backend = core::Backend::kDistributed;
  auto spec = core::RunSpec::from_args(
      argc, argv, "ablation_payload: genome size vs gather time", defaults);
  if (!spec) return 1;
  if (!spec->result_json.empty()) {
    std::fprintf(stderr, "note: --result-json is ignored by this sweep bench\n");
    spec->result_json.clear();
  }

  // Calibrate ONCE at the reference width, then hold the network model fixed
  // while the payload sweeps — otherwise per-width recalibration would hide
  // the effect by construction. The custom profile (jitter zeroed to isolate
  // the payload effect) goes in through Session::set_cost_model.
  core::Session reference_session(*spec);
  if (!reference_session.prepare()) {
    std::fprintf(stderr, "error: %s\n", reference_session.error().c_str());
    return 1;
  }
  const core::WorkloadProbe reference_probe = core::TrainerCore::measure_workload(
      spec->config, reference_session.train_set());
  core::CostProfile profile = core::CostProfile::table3();
  profile.reference_iterations = static_cast<double>(spec->config.iterations);
  profile.straggler_sigma = 0.0;  // isolate the payload effect
  profile.node_sigma = 0.0;
  const core::CostModel cost =
      core::CostModel::calibrated(profile, reference_probe);

  std::printf("ablation: exchange payload vs gather cost (%ux%u grid, fixed"
              " network model)\n", spec->config.grid_rows, spec->config.grid_cols);
  std::printf("  %-12s | %14s | %20s | %18s\n", "hidden dim", "genome (KB)",
              "gather (min/run)", "min per MB-iter");

  for (const std::size_t hidden : {8u, 16u, 32u, 64u}) {
    core::RunSpec run_spec = *spec;
    run_spec.config.arch.hidden_dim = hidden;
    core::Session session(run_spec);
    session.set_cost_model(cost);
    // The dataset depends only on the image dimension, which the sweep holds
    // fixed — share the reference session's copy.
    session.set_datasets(reference_session.train_set(),
                         reference_session.test_set());
    if (!session.prepare()) {
      std::fprintf(stderr, "error: %s\n", session.error().c_str());
      return 1;
    }
    const core::WorkloadProbe probe = core::TrainerCore::measure_workload(
        run_spec.config, session.train_set());
    const core::RunResult outcome = session.run();
    const double gather_min =
        outcome.slave_routine_virtual_min(common::routine::kGather);
    const double genome_kb = probe.genome_bytes / 1024.0;
    const double mb_iter = probe.genome_bytes / (1024.0 * 1024.0) *
                           static_cast<double>(run_spec.config.iterations);
    std::printf("  %-12zu | %14.1f | %20.3f | %18.3f\n", hidden, genome_kb,
                gather_min, gather_min / mb_iter);
  }
  std::printf("\nreading: gather time scales linearly with the serialized"
              " genome\n(constant minutes per transferred megabyte), so wider"
              " networks pay\nproportionally more for the per-epoch"
              " exchange\n");
  return 0;
}
