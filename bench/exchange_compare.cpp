// Exchange-policy comparison: the three registered population-exchange
// policies (cellular five-cell adoption, LTFB pairwise tournaments, GAP
// discriminator rotation) swept across grid sizes on identical seeds. Per
// (policy, grid) cell the bench reports the final best/mean generator loss,
// the exchange traffic the policy generated (events, adoptions, genome
// bytes), and the virtual makespan — the quality-vs-communication trade the
// policies exist to explore.
//
// Every configuration runs TWICE and the rows must agree bit for bit: the
// policies are pure functions of (seed, cell, epoch), so any divergence is a
// determinism regression. The JSON carries the verdict as `"deterministic"`
// and ci/check.sh --bench gates on it (BENCH_exchange.json).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "evolve/exchange.hpp"

namespace {

using namespace cellgan;

/// Aggregates the "event":"exchange" stream of one run.
struct ExchangeStats final : core::TrainObserver {
  void on_exchange(const core::CellEpochRecord& record) override {
    ++events;
    if (record.exchange_g_adopted != 0) ++g_adoptions;
    if (record.exchange_d_adopted != 0) ++d_adoptions;
    bytes += record.exchange_bytes;
  }
  std::size_t events = 0;
  std::size_t g_adoptions = 0;
  std::size_t d_adoptions = 0;
  double bytes = 0.0;
};

struct Row {
  std::string policy;
  int side = 0;
  double best_g = 0.0;
  double mean_g = 0.0;
  std::size_t events = 0;
  std::size_t g_adoptions = 0;
  std::size_t d_adoptions = 0;
  double exchange_mb = 0.0;
  double virtual_min = 0.0;
  bool deterministic = false;
};

struct RunSample {
  std::vector<double> g_fitnesses;
  double best_g = 0.0;
  double virtual_s = 0.0;
  ExchangeStats stats;
};

RunSample run_once(const core::RunSpec& spec) {
  core::Session session(spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    std::exit(1);
  }
  RunSample sample;
  session.observers().subscribe(&sample.stats);
  const core::RunResult result = session.run();
  sample.g_fitnesses = result.g_fitnesses;
  sample.best_g = result.g_fitnesses.empty()
                      ? 0.0
                      : result.g_fitnesses[static_cast<std::size_t>(result.best_cell)];
  sample.virtual_s = result.virtual_s;
  return sample;
}

Row run_config(const core::RunSpec& base, evolve::ExchangePolicyKind policy,
               int side) {
  core::RunSpec spec = base;
  spec.config.exchange_policy = policy;
  spec.config.grid_rows = spec.config.grid_cols = static_cast<std::uint32_t>(side);

  const RunSample first = run_once(spec);
  const RunSample second = run_once(spec);

  Row row;
  row.policy = evolve::to_string(policy);
  row.side = side;
  row.best_g = first.best_g;
  double total = 0.0;
  for (const double g : first.g_fitnesses) total += g;
  row.mean_g = first.g_fitnesses.empty()
                   ? 0.0
                   : total / static_cast<double>(first.g_fitnesses.size());
  row.events = first.stats.events;
  row.g_adoptions = first.stats.g_adoptions;
  row.d_adoptions = first.stats.d_adoptions;
  row.exchange_mb = first.stats.bytes / (1024.0 * 1024.0);
  row.virtual_min = first.virtual_s / 60.0;
  row.deterministic = first.g_fitnesses == second.g_fitnesses &&
                      first.virtual_s == second.virtual_s &&
                      first.stats.events == second.stats.events &&
                      first.stats.bytes == second.stats.bytes;
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                const core::RunSpec& base, bool deterministic) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"exchange_compare\",\n");
  std::fprintf(f, "  \"schema_version\": %u,\n", core::kRunJsonSchemaVersion);
  std::fprintf(f, "  \"iterations\": %u,\n  \"exchange_every\": %u,\n",
               base.config.iterations, base.config.exchange_every);
  std::fprintf(f, "  \"deterministic\": %s,\n", deterministic ? "true" : "false");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"side\": %d, \"best_g\": %.6f, "
                 "\"mean_g\": %.6f,\n"
                 "     \"exchange_events\": %zu, \"g_adoptions\": %zu, "
                 "\"d_adoptions\": %zu,\n"
                 "     \"exchange_mb\": %.3f, \"virtual_min\": %.6f, "
                 "\"deterministic\": %s}%s\n",
                 r.policy.c_str(), r.side, r.best_g, r.mean_g, r.events,
                 r.g_adoptions, r.d_adoptions, r.exchange_mb, r.virtual_min,
                 r.deterministic ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.iterations = 8;
  defaults.dataset.samples = 200;
  defaults.cost_profile = core::CostProfileKind::kTable3;

  common::CliParser cli(
      "exchange_compare: policy x grid sweep of the population-exchange "
      "subsystem (quality, traffic, determinism)");
  core::RunSpec::add_flags(cli, defaults);
  cli.add_flag("max-side", "3", "largest grid side to run (2..max-side)");
  cli.add_flag("json", "", "write machine-readable results to this file");
  if (!cli.parse(argc, argv)) return 1;
  const auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;
  const int max_side = static_cast<int>(cli.get_int("max-side"));
  if (max_side < 2) {
    std::fprintf(stderr, "--max-side must be >= 2\n");
    return 1;
  }

  std::printf("exchange policy comparison (%u iterations, exchange every %u)\n",
              spec->config.iterations, spec->config.exchange_every);
  std::printf("  %-8s %-5s | %10s %10s | %7s %6s %6s %9s | %9s %5s\n",
              "policy", "grid", "best G", "mean G", "events", "g-ad", "d-ad",
              "MB moved", "virt(min)", "det");
  std::vector<Row> rows;
  bool deterministic = true;
  for (const auto policy :
       {evolve::ExchangePolicyKind::kCellular, evolve::ExchangePolicyKind::kLtfb,
        evolve::ExchangePolicyKind::kGap}) {
    for (int side = 2; side <= max_side; ++side) {
      const Row r = run_config(*spec, policy, side);
      deterministic = deterministic && r.deterministic;
      rows.push_back(r);
      std::printf("  %-8s %dx%-3d | %10.4f %10.4f | %7zu %6zu %6zu %9.3f |"
                  " %9.2f %5s\n",
                  r.policy.c_str(), r.side, r.side, r.best_g, r.mean_g,
                  r.events, r.g_adoptions, r.d_adoptions, r.exchange_mb,
                  r.virtual_min, r.deterministic ? "yes" : "NO");
    }
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) write_json(json_path, rows, *spec, deterministic);

  if (!deterministic) {
    std::fprintf(stderr, "\nDETERMINISM REGRESSION: repeated runs diverged\n");
    return 1;
  }
  std::printf("\nall configurations reproduced bit-identically on re-run\n");
  return 0;
}
