#include "common/timer.hpp"

#include "common/expect.hpp"

namespace cellgan::common {

VirtualClock& VirtualClock::operator=(const VirtualClock& other) {
  if (this != &other) {
    const double t = other.now();
    std::lock_guard<std::mutex> lock(mutex_);
    now_s_ = t;
  }
  return *this;
}

double VirtualClock::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_s_;
}

void VirtualClock::advance(double seconds) {
  CG_EXPECT(seconds >= 0.0);
  std::lock_guard<std::mutex> lock(mutex_);
  now_s_ += seconds;
}

void VirtualClock::wait_until(double t) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (t > now_s_) now_s_ = t;
}

}  // namespace cellgan::common
