#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/expect.hpp"

namespace cellgan::common {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  CG_EXPECT(!flags_.contains(name));
  flags_[name] = Flag{default_value, default_value, help, /*set=*/false};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      print_usage();
      return false;
    }
    std::string name, value;
    bool have_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
      have_value = true;
    } else {
      name = arg.substr(2);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      print_usage();
      return false;
    }
    if (!have_value) {
      // Boolean flags (registered with a true/false default) may stand
      // alone: `--list-backends` means `--list-backends true`. The next
      // token is consumed as the value only when it is not another flag.
      const bool boolean_flag = it->second.default_value == "true" ||
                                it->second.default_value == "false";
      const bool next_is_flag =
          i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0;
      if (boolean_flag && next_is_flag) {
        value = "true";
      } else if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        print_usage();
        return false;
      } else {
        value = argv[++i];
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

bool CliParser::was_set(const std::string& name) const {
  auto it = flags_.find(name);
  CG_EXPECT(it != flags_.end());
  return it->second.set;
}

std::string CliParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  CG_EXPECT(it != flags_.end());
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

void CliParser::print_usage() const {
  std::fprintf(stderr, "%s\n\nflags:\n", description_.c_str());
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(), f.help.c_str(),
                 f.default_value.empty() ? "\"\"" : f.default_value.c_str());
  }
}

}  // namespace cellgan::common
