#include "common/profiler.hpp"

#include "common/expect.hpp"

namespace cellgan::common {

Profiler::Profiler(const Profiler& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  buckets_ = other.buckets_;
}

Profiler& Profiler::operator=(const Profiler& other) {
  if (this != &other) {
    std::map<std::string, RoutineCost> copy;
    {
      std::lock_guard<std::mutex> lock(other.mutex_);
      copy = other.buckets_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    buckets_ = std::move(copy);
  }
  return *this;
}

void Profiler::add(const std::string& name, double wall_s, double virtual_s) {
  CG_EXPECT(wall_s >= 0.0 && virtual_s >= 0.0);
  std::lock_guard<std::mutex> lock(mutex_);
  RoutineCost& bucket = buckets_[name];
  bucket.wall_s += wall_s;
  bucket.virtual_s += virtual_s;
  bucket.calls += 1;
}

RoutineCost Profiler::cost(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(name);
  return it == buckets_.end() ? RoutineCost{} : it->second;
}

bool Profiler::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.contains(name);
}

double Profiler::total_wall_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& [name, cost] : buckets_) total += cost.wall_s;
  return total;
}

double Profiler::total_virtual_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& [name, cost] : buckets_) total += cost.virtual_s;
  return total;
}

void Profiler::merge(const Profiler& other) {
  std::map<std::string, RoutineCost> copy;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    copy = other.buckets_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, cost] : copy) {
    RoutineCost& bucket = buckets_[name];
    bucket.wall_s += cost.wall_s;
    bucket.virtual_s += cost.virtual_s;
    bucket.calls += cost.calls;
  }
}

Profiler Profiler::merged(std::span<const Profiler> parts) {
  Profiler out;
  for (const Profiler& part : parts) out.merge(part);
  return out;
}

std::vector<std::string> Profiler::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(buckets_.size());
  for (const auto& [name, cost] : buckets_) out.push_back(name);
  return out;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.clear();
}

}  // namespace cellgan::common
