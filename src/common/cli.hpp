// Tiny command-line flag parser for the examples and benchmark harnesses.
//
// Supports `--name value` and `--name=value`; every flag is registered with a
// default and a help string, and `--help` prints the generated usage text.
// Flags registered with a "true"/"false" default are boolean and may stand
// alone (`--list-backends` == `--list-backends true`) when the next token is
// another flag or the end of the line.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cellgan::common {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Register flags before parse(). Returned value is the parsed result
  /// after parse() has run; before that it holds the default.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv. Returns false (after printing usage) on --help or on an
  /// unknown/malformed flag.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True when the flag was given explicitly on the command line (as opposed
  /// to holding its registered default). Lets layered configuration (e.g.
  /// core::RunSpec over a --spec file) apply only the flags the user typed.
  bool was_set(const std::string& name) const;

  void print_usage() const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool set = false;
  };
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;  // registration order for usage text
};

}  // namespace cellgan::common
