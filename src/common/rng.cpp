#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/expect.hpp"

namespace cellgan::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix so sibling
  // streams are decorrelated even for adjacent ids.
  std::uint64_t sm = s_[0] ^ rotl(stream_id, 32) ^ (stream_id * 0xd1342543de82ef95ULL);
  return Rng(splitmix64(sm));
}

double Rng::uniform() {
  // 53 random bits -> [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CG_EXPECT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  CG_EXPECT(n > 0);
  // Bounded rejection sampling (unbiased).
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::bernoulli(double p) { return uniform() < p; }

void Rng::shuffle(std::vector<std::uint32_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = uniform_int(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace cellgan::common
