// Minimal thread-safe leveled logger.
//
// The distributed runtime runs many rank-threads concurrently; lines are
// emitted atomically with a rank/thread label so interleaved output stays
// readable. Verbosity is process-global and defaults to Info.
#pragma once

#include <sstream>
#include <string>

namespace cellgan::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-global verbosity threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Label attached to every line logged from the calling thread (e.g. "rank 3").
void set_thread_log_label(std::string label);

/// Emit one line (appends '\n'); no-op when below the global threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  ~LineLogger() { log_line(level_, stream_.str()); }
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineLogger log_debug() { return detail::LineLogger(LogLevel::Debug); }
inline detail::LineLogger log_info() { return detail::LineLogger(LogLevel::Info); }
inline detail::LineLogger log_warn() { return detail::LineLogger(LogLevel::Warn); }
inline detail::LineLogger log_error() { return detail::LineLogger(LogLevel::Error); }

}  // namespace cellgan::common
