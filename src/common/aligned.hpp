// Cache-line and vector-width aware allocation helpers.
//
// Two problems live at word granularity and get solved here:
//  * false sharing — adjacent per-lane/per-cell accumulators land on one
//    cache line and every write ping-pongs the line between cores. Wrapping
//    each element in CacheAligned<T> gives it a line of its own.
//  * unaligned vector traffic — the SIMD GEMM kernels (tensor/kernels.cpp)
//    pack A/B panels into scratch buffers; AlignedBuffer keeps those panels
//    on vector-register-friendly 64-byte boundaries.
#pragma once

#include <cstddef>
#include <new>

namespace cellgan::common {

/// Destructive-interference distance assumed by the padded structures. 64
/// bytes covers x86-64 and most AArch64 parts; over-alignment on exotic
/// hardware costs only memory.
inline constexpr std::size_t kCacheLineBytes = 64;

/// One value alone on its cache line. Use for elements of arrays that are
/// written concurrently by different threads (per-lane clocks, per-cell
/// virtual-time accumulators): sizeof(CacheAligned<T>) is a multiple of the
/// line size, so vector<CacheAligned<T>> never co-locates two writers.
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};
};

/// Growable 64-byte-aligned float scratch buffer for packed GEMM panels.
/// grow() keeps the high-water mark and never shrinks, so per-call packing
/// costs one branch after warmup. Contents are uninitialized after grow().
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { release(); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Ensure capacity for `floats` entries; returns the (aligned) data.
  float* grow(std::size_t floats) {
    if (floats > capacity_) {
      release();
      data_ = static_cast<float*>(::operator new(
          floats * sizeof(float), std::align_val_t(kCacheLineBytes)));
      capacity_ = floats;
    }
    return data_;
  }

  float* data() { return data_; }
  std::size_t capacity() const { return capacity_; }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(kCacheLineBytes));
      data_ = nullptr;
    }
    capacity_ = 0;
  }

  float* data_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace cellgan::common
