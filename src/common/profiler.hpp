// Per-routine time accounting — the instrument behind Table IV / Fig. 4.
//
// The paper profiles the four hottest routines of cellular GAN training
// (gather, train, update-genomes, mutate) in both the single-core and the
// distributed versions. Profiler accumulates named buckets of wall time
// and/or virtual time; each rank (or each worker lane of the in-process
// parallel trainer) owns one Profiler, so the hot-path mutex is never
// contended, and reports are merged afterwards — merge()/merged() sum
// per-cell or per-lane instances into one run-level report.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace cellgan::common {

/// Accumulated cost of one named routine.
struct RoutineCost {
  double wall_s = 0.0;     ///< real measured seconds
  double virtual_s = 0.0;  ///< simulated seconds (NetModel)
  std::uint64_t calls = 0;
};

/// Names used across the code base so reports line up with the paper's rows.
namespace routine {
inline constexpr const char* kGather = "gather";
inline constexpr const char* kTrain = "train";
inline constexpr const char* kUpdateGenomes = "update_genomes";
inline constexpr const char* kMutate = "mutate";
inline constexpr const char* kSelection = "selection";
inline constexpr const char* kEvaluation = "evaluation";
inline constexpr const char* kManagement = "management";
}  // namespace routine

/// Thread-safe accumulator (a slave's comm thread and training thread share
/// one per-rank profiler).
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler& other);
  Profiler& operator=(const Profiler& other);

  /// Add `wall_s` measured seconds (and optionally simulated seconds) to a bucket.
  void add(const std::string& name, double wall_s, double virtual_s = 0.0);

  RoutineCost cost(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Sum of a field across all buckets.
  double total_wall_s() const;
  double total_virtual_s() const;

  /// Merge another profiler's buckets into this one (summing).
  void merge(const Profiler& other);

  /// Sum a set of per-cell / per-lane profilers into one report,
  /// deterministically (in index order).
  static Profiler merged(std::span<const Profiler> parts);

  /// Bucket names in deterministic (sorted) order.
  std::vector<std::string> names() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RoutineCost> buckets_;
};

/// RAII scope that adds elapsed wall time to a profiler bucket on destruction.
class ProfileScope {
 public:
  ProfileScope(Profiler& profiler, std::string name)
      : profiler_(profiler), name_(std::move(name)) {}
  ~ProfileScope() { profiler_.add(name_, timer_.elapsed_s()); }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler& profiler_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace cellgan::common
