// Binary serialization for inter-rank messages and on-disk genomes.
//
// Fixed little-endian layout (all supported hosts here are little-endian;
// asserted at compile time), length-prefixed containers. ByteWriter grows a
// contiguous buffer; ByteReader is a bounds-checked cursor over a view —
// reading past the end is a contract violation, not UB.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/expect.hpp"

namespace cellgan::common {

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host");

template <typename T>
concept TriviallySerializable = std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>;

class ByteWriter {
 public:
  template <TriviallySerializable T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buffer_.insert(buffer_.end(), p, p + sizeof(T));
  }

  template <TriviallySerializable T>
  void write_span(std::span<const T> values) {
    write<std::uint64_t>(values.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
    buffer_.insert(buffer_.end(), p, p + values.size_bytes());
  }

  template <TriviallySerializable T>
  void write_vector(const std::vector<T>& values) {
    write_span(std::span<const T>(values));
  }

  void write_string(const std::string& s) {
    write<std::uint64_t>(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <TriviallySerializable T>
  T read() {
    CG_EXPECT(pos_ + sizeof(T) <= data_.size());
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <TriviallySerializable T>
  std::vector<T> read_vector() {
    const auto count = read<std::uint64_t>();
    CG_EXPECT(pos_ + count * sizeof(T) <= data_.size());
    std::vector<T> values(count);
    std::memcpy(values.data(), data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return values;
  }

  std::string read_string() {
    const auto count = read<std::uint64_t>();
    CG_EXPECT(pos_ + count <= data_.size());
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), count);
    pos_ += count;
    return s;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cellgan::common
