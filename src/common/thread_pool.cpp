#include "common/thread_pool.hpp"

#include <memory>

#include "common/expect.hpp"

namespace cellgan::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t workers = num_threads <= 1 ? 0 : num_threads - 1;
  tasks_.resize(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t parts = std::min(size(), n);
  if (parts == 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + parts - 1) / parts;
  // Slot 0..parts-2 go to workers; the last chunk runs on the caller.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    pending_ = parts - 1;
    for (std::size_t i = 0; i + 1 < parts; ++i) {
      tasks_[i].fn = &fn;
      tasks_[i].begin = i * chunk;
      tasks_[i].end = std::min(n, (i + 1) * chunk);
    }
    for (std::size_t i = parts - 1; i < tasks_.size(); ++i) tasks_[i].fn = nullptr;
  }
  work_ready_.notify_all();
  fn((parts - 1) * chunk, n);
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
      if (stopping_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
      if (task.fn == nullptr) continue;  // no work for this worker this round
    }
    (*task.fn)(task.begin, task.end);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    work_done_.notify_one();
  }
}

namespace {
std::unique_ptr<ThreadPool> g_pool = std::make_unique<ThreadPool>(1);
}  // namespace

ThreadPool& global_pool() { return *g_pool; }

void set_global_pool_threads(std::size_t num_threads) {
  g_pool = std::make_unique<ThreadPool>(num_threads == 0 ? 1 : num_threads);
}

}  // namespace cellgan::common
