// Shared-memory parallelism: a fixed-size worker pool with a parallel_for
// helper. This is the "multithreading programming" level of the paper's
// two-level parallel model (Section III.A): within one rank, tensor kernels
// fan work out across pool workers; across ranks, minimpi passes messages.
//
// The pool is deliberately simple — static partitioning of index ranges —
// because the GAN workload is uniform (the paper applies uniform domain
// decomposition for the same reason).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cellgan::common {

class ThreadPool {
 public:
  /// `num_threads == 0` or `1` means "run inline on the caller".
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // workers + caller

  /// Run fn(begin, end) over [0, n) split into contiguous chunks, one per
  /// participant (workers + the calling thread). Blocks until all complete.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Task> tasks_;       // one slot per worker
  std::uint64_t generation_ = 0;  // bumped per parallel_for call
  std::size_t pending_ = 0;
  bool stopping_ = false;
};

/// Process-global pool used by tensor kernels. Defaults to a single inline
/// thread; resized once at startup (not thread-safe vs concurrent kernels).
ThreadPool& global_pool();
void set_global_pool_threads(std::size_t num_threads);

}  // namespace cellgan::common
