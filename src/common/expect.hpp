// Lightweight contract checks (C++ Core Guidelines I.6/I.8 style).
//
// CG_EXPECT / CG_ENSURE abort with a readable message on violation. They are
// kept enabled in all build types: the cost is negligible next to GEMM work
// and silent contract violations in a message-passing runtime are far more
// expensive to debug than the check is to run.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cellgan {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[cellgan] %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace cellgan

#define CG_EXPECT(cond)                                                      \
  do {                                                                       \
    if (!(cond)) ::cellgan::contract_failure("precondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define CG_ENSURE(cond)                                                      \
  do {                                                                       \
    if (!(cond)) ::cellgan::contract_failure("postcondition", #cond, __FILE__, __LINE__); \
  } while (0)
