// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit Rng& so that
// entire distributed runs are reproducible from a single seed. Rng is
// xoshiro256** seeded through splitmix64; `fork(stream_id)` derives an
// independent stream per grid cell / per rank so parallel schedules do not
// perturb the random sequence consumed by any one cell.
#pragma once

#include <cstdint>
#include <vector>

namespace cellgan::common {

/// splitmix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Derive an independent stream keyed by `stream_id`. Deterministic:
  /// fork(k) of equal-seeded generators are equal.
  Rng fork(std::uint64_t stream_id) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::uint32_t>& v);

  /// Complete generator state — the xoshiro words plus the Box-Muller cache.
  /// Snapshot/restore gives bit-exact stream resumption across process
  /// boundaries (rank crash recovery serializes these into checkpoints).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  State state() const {
    State snapshot;
    for (int i = 0; i < 4; ++i) snapshot.s[i] = s_[i];
    snapshot.cached_normal = cached_normal_;
    snapshot.has_cached_normal = has_cached_normal_;
    return snapshot;
  }

  void restore_state(const State& snapshot) {
    for (int i = 0; i < 4; ++i) s_[i] = snapshot.s[i];
    cached_normal_ = snapshot.cached_normal;
    has_cached_normal_ = snapshot.has_cached_normal;
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cellgan::common
