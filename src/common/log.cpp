#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cellgan::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::mutex g_emit_mutex;
thread_local std::string t_label;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_thread_log_label(std::string label) { t_label = std::move(label); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (t_label.empty()) {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] [%s] %s\n", level_name(level), t_label.c_str(),
                 message.c_str());
  }
}

}  // namespace cellgan::common
