#include "common/serialize.hpp"

// Header-only; this TU exists so the module has an object file and the
// static_assert in the header is compiled exactly once per configuration.
