// Wall-clock and virtual-clock timing.
//
// WallTimer measures real elapsed time. VirtualClock is the per-rank simulated
// clock used by the minimpi NetModel to reproduce cluster-scale timings on a
// laptop: compute and communication *costs* are added explicitly, and
// synchronization points merge clocks (a receive completes no earlier than the
// matching send). See DESIGN.md §4.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace cellgan::common {

/// Monotonic wall-clock stopwatch (seconds as double).
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Simulated per-rank clock, in seconds. Monotone non-decreasing.
/// Thread-safe: the paper's slave processes run a communication (main)
/// thread and a training (execution) thread against one per-rank timeline.
class VirtualClock {
 public:
  VirtualClock() = default;
  VirtualClock(const VirtualClock& other) : now_s_(other.now()) {}
  VirtualClock& operator=(const VirtualClock& other);

  double now() const;

  /// Advance by a non-negative cost.
  void advance(double seconds);

  /// now = max(now, t): models waiting for an event at absolute time t.
  void wait_until(double t);

 private:
  mutable std::mutex mutex_;
  double now_s_ = 0.0;
};

}  // namespace cellgan::common
