#include "minimpi/transport.hpp"

#include <cstring>

#include "common/expect.hpp"

namespace cellgan::minimpi {

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  CG_EXPECT(frame.payload.size() <= kMaxFramePayload);
  std::vector<std::uint8_t> out(kFrameHeaderBytes + frame.payload.size());
  std::uint8_t* p = out.data();
  store_le32(p, kFrameMagic);
  store_le64(p + 4, frame.context_key);
  store_le32(p + 12, static_cast<std::uint32_t>(frame.src_rank));
  store_le32(p + 16, static_cast<std::uint32_t>(frame.dst_rank));
  store_le32(p + 20, static_cast<std::uint32_t>(frame.tag));
  std::uint64_t vt_bits = 0;
  static_assert(sizeof(vt_bits) == sizeof(frame.arrival_vt));
  std::memcpy(&vt_bits, &frame.arrival_vt, sizeof(vt_bits));
  store_le64(p + 24, vt_bits);
  store_le64(p + 32, frame.payload.size());
  if (!frame.payload.empty()) {
    std::memcpy(p + kFrameHeaderBytes, frame.payload.data(), frame.payload.size());
  }
  return out;
}

const char* to_string(FrameDecodeStatus status) {
  switch (status) {
    case FrameDecodeStatus::kOk: return "ok";
    case FrameDecodeStatus::kNeedMore: return "truncated header";
    case FrameDecodeStatus::kBadMagic: return "bad magic";
    case FrameDecodeStatus::kOversized: return "oversized payload length";
  }
  return "unknown";
}

FrameDecodeStatus decode_frame_header(std::span<const std::uint8_t> bytes,
                                      Frame* out, std::uint64_t* payload_len) {
  if (bytes.size() < kFrameHeaderBytes) return FrameDecodeStatus::kNeedMore;
  const std::uint8_t* p = bytes.data();
  if (load_le32(p) != kFrameMagic) return FrameDecodeStatus::kBadMagic;
  const std::uint64_t length = load_le64(p + 32);
  if (length > kMaxFramePayload) return FrameDecodeStatus::kOversized;
  out->context_key = load_le64(p + 4);
  out->src_rank = static_cast<std::int32_t>(load_le32(p + 12));
  out->dst_rank = static_cast<std::int32_t>(load_le32(p + 16));
  out->tag = static_cast<std::int32_t>(load_le32(p + 20));
  const std::uint64_t vt_bits = load_le64(p + 24);
  std::memcpy(&out->arrival_vt, &vt_bits, sizeof(out->arrival_vt));
  *payload_len = length;
  return FrameDecodeStatus::kOk;
}

void InProcTransport::send(int dst_world_rank, Frame frame) {
  (void)dst_world_rank;  // every rank is local; the sink routes by dst_rank
  CG_EXPECT(sink_ != nullptr);
  sink_(std::move(frame));
}

}  // namespace cellgan::minimpi
