// Named error types for the message-passing runtime.
//
// The thread-per-rank simulator could afford to model every failure as a
// fail-stop abort; a multi-process deployment cannot — a dead peer, a
// malformed wire frame or a bootstrap that never completes must surface as a
// *named* error the caller can report (and a test can assert on) instead of
// an infinite hang. All runtime errors derive from MiniMpiError so callers
// can catch the whole family at the process boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace cellgan::minimpi {

/// Base class of every error raised by the minimpi runtime.
class MiniMpiError : public std::runtime_error {
 public:
  explicit MiniMpiError(const std::string& message) : std::runtime_error(message) {}
};

/// A deadline-aware receive expired before a matching message arrived —
/// the visible symptom of a dead or wedged peer.
class TimeoutError : public MiniMpiError {
 public:
  using MiniMpiError::MiniMpiError;
};

/// The wire carried something that is not a valid frame, a frame was
/// addressed to a (context, rank) this process cannot deliver to, or an I/O
/// primitive (poll, read, write) failed in a way that kills a peer link.
class TransportError : public MiniMpiError {
 public:
  using MiniMpiError::MiniMpiError;
};

/// A specific peer's stream is gone — it crashed, was killed, or closed its
/// connection while the world still expected traffic from it. Raised by
/// deadline- and death-aware receives once the Runtime has recorded the
/// loss; `world_rank()` names the dead rank so a recovery layer can respawn
/// exactly the missing process.
class PeerDeathError : public TransportError {
 public:
  PeerDeathError(int world_rank, const std::string& message)
      : TransportError(message), world_rank_(world_rank) {}

  int world_rank() const { return world_rank_; }

 private:
  int world_rank_;
};

/// The rendezvous/mesh build of a multi-process world failed (peer missing,
/// endpoint unusable, handshake garbled).
class BootstrapError : public MiniMpiError {
 public:
  using MiniMpiError::MiniMpiError;
};

}  // namespace cellgan::minimpi
