#include "minimpi/runtime.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/log.hpp"
#include "minimpi/comm.hpp"

namespace cellgan::minimpi {

Runtime::Runtime(int world_size, NetModelConfig net_config, std::uint64_t seed)
    : world_size_(world_size), net_(net_config) {
  CG_EXPECT(world_size >= 1);
  rank_states_.reserve(world_size_);
  common::Rng seeder(seed);
  for (int r = 0; r < world_size_; ++r) {
    auto state = std::make_unique<RankState>();
    state->jitter_rng = seeder.fork(static_cast<std::uint64_t>(r));
    rank_states_.push_back(std::move(state));
  }
  std::lock_guard<std::mutex> lock(contexts_mutex_);
  std::vector<int> world_members(world_size_);
  for (int r = 0; r < world_size_; ++r) world_members[r] = r;
  create_context_locked(std::move(world_members));
}

Runtime::~Runtime() = default;

RankState& Runtime::rank_state(int world_rank) {
  CG_EXPECT(world_rank >= 0 && world_rank < world_size_);
  return *rank_states_[world_rank];
}

CommContext& Runtime::context(int context_id) {
  std::lock_guard<std::mutex> lock(contexts_mutex_);
  CG_EXPECT(context_id >= 0 && context_id < static_cast<int>(contexts_.size()));
  return *contexts_[context_id];
}

int Runtime::create_context_locked(std::vector<int> members) {
  auto ctx = std::make_unique<CommContext>();
  ctx->members = std::move(members);
  ctx->mailboxes.reserve(ctx->members.size());
  for (std::size_t i = 0; i < ctx->members.size(); ++i) {
    ctx->mailboxes.push_back(std::make_unique<Mailbox>());
  }
  contexts_.push_back(std::move(ctx));
  return static_cast<int>(contexts_.size()) - 1;
}

std::vector<Runtime::RankResult> Runtime::run(
    const std::function<void(Comm&)>& rank_main) {
  std::vector<std::thread> threads;
  threads.reserve(world_size_);
  for (int r = 0; r < world_size_; ++r) {
    threads.emplace_back([this, r, &rank_main] {
      common::set_thread_log_label("rank " + std::to_string(r));
      Comm comm(*this, /*context_id=*/0, /*local_rank=*/r);
      try {
        rank_main(comm);
      } catch (const std::exception& e) {
        // Fail-stop, like an MPI job: one rank's failure kills the world.
        common::log_error() << "rank " << r << " terminated with exception: " << e.what();
        std::abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<RankResult> results;
  results.reserve(world_size_);
  for (int r = 0; r < world_size_; ++r) {
    RankResult result;
    result.virtual_time_s = rank_states_[r]->clock.now();
    result.profiler = rank_states_[r]->profiler;
    results.push_back(std::move(result));
  }
  return results;
}

int Runtime::split_context(int parent_context, int caller_local_rank, int color,
                           int key) {
  std::unique_lock<std::mutex> lock(contexts_mutex_);
  CG_EXPECT(parent_context >= 0 && parent_context < static_cast<int>(contexts_.size()));
  CommContext& parent = *contexts_[parent_context];
  const int n = static_cast<int>(parent.members.size());
  CG_EXPECT(caller_local_rank >= 0 && caller_local_rank < n);

  auto& rounds = split_round_[parent_context];
  if (static_cast<int>(rounds.size()) < n) rounds.resize(n, 0);
  const int round = rounds[caller_local_rank]++;

  const auto group_key = std::make_pair(parent_context, round);
  SplitGroup& group = splits_[group_key];
  if (group.colors.empty()) {
    group.colors.assign(n, -2);
    group.keys.assign(n, 0);
  }
  group.colors[caller_local_rank] = color;
  group.keys[caller_local_rank] = key;
  ++group.arrived;

  if (group.arrived == n) {
    // Last to arrive builds all the new contexts.
    std::map<int, std::vector<std::pair<std::pair<int, int>, int>>> by_color;
    for (int r = 0; r < n; ++r) {
      if (group.colors[r] >= 0) {
        by_color[group.colors[r]].push_back({{group.keys[r], r}, r});
      }
    }
    for (auto& [c, entries] : by_color) {
      std::sort(entries.begin(), entries.end());
      std::vector<int> members;
      members.reserve(entries.size());
      for (const auto& [sort_key, parent_rank] : entries) {
        members.push_back(parent.members[parent_rank]);
      }
      const int ctx_id = create_context_locked(std::move(members));
      for (const auto& [sort_key, parent_rank] : entries) {
        group.context_of_member[parent_rank] = ctx_id;
      }
    }
    group.built = true;
    split_cv_.notify_all();
  } else {
    split_cv_.wait(lock, [&group] { return group.built; });
  }

  if (color < 0) return -1;
  auto it = group.context_of_member.find(caller_local_rank);
  CG_ENSURE(it != group.context_of_member.end());
  return it->second;
}

}  // namespace cellgan::minimpi
