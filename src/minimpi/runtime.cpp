#include "minimpi/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "common/log.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/errors.hpp"

namespace cellgan::minimpi {

namespace {

/// Internal tag of the distributed split rendezvous; far below both the user
/// range (>= 0) and the collectives' internal tags (comm.cpp, -2..-6).
constexpr int kTagSplit = -100;

/// Process-independent child-communicator key: every member of a split
/// derives the same value from the parent's key, the split sequence number
/// and its color (splitmix64 finalizer — collision odds are negligible and
/// create_context_locked checks anyway).
std::uint64_t derive_context_key(std::uint64_t parent_key, int round, int color) {
  std::uint64_t x = parent_key + 0x9e3779b97f4a7c15ULL;
  x ^= static_cast<std::uint64_t>(round + 1) * 0xbf58476d1ce4e5b9ULL;
  x ^= static_cast<std::uint64_t>(color + 2) * 0x94d049bb133111ebULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  // Key 0 is reserved for WORLD.
  return x == 0 ? 1 : x;
}

// Split contributions ride the shared little-endian codec (transport.hpp).
void pack_i32(std::vector<std::uint8_t>& out, std::int32_t value) {
  std::uint8_t raw[4];
  store_le32(raw, static_cast<std::uint32_t>(value));
  out.insert(out.end(), raw, raw + 4);
}

std::int32_t unpack_i32(const std::uint8_t* p) {
  return static_cast<std::int32_t>(load_le32(p));
}

}  // namespace

Runtime::Runtime(int world_size, NetModelConfig net_config, std::uint64_t seed)
    : world_size_(world_size), net_(net_config) {
  CG_EXPECT(world_size >= 1);
  transport_ = std::make_unique<InProcTransport>();
  transport_->set_sink([this](Frame frame) { ingest(std::move(frame)); });
  rank_states_.reserve(world_size_);
  common::Rng seeder(seed);
  for (int r = 0; r < world_size_; ++r) {
    auto state = std::make_unique<RankState>();
    state->jitter_rng = seeder.fork(static_cast<std::uint64_t>(r));
    rank_states_.push_back(std::move(state));
  }
  std::lock_guard<std::mutex> lock(contexts_mutex_);
  std::vector<int> world_members(world_size_);
  for (int r = 0; r < world_size_; ++r) world_members[r] = r;
  create_context_locked(std::move(world_members), /*key=*/0);
}

Runtime::Runtime(int world_size, int local_rank, std::unique_ptr<Transport> transport,
                 NetModelConfig net_config, std::uint64_t seed)
    : world_size_(world_size), local_rank_(local_rank), net_(net_config),
      transport_(std::move(transport)) {
  CG_EXPECT(world_size >= 1);
  CG_EXPECT(local_rank >= 0 && local_rank < world_size);
  CG_EXPECT(transport_ != nullptr);
  // Only the hosted rank owns state; its jitter stream is derived exactly as
  // the in-process simulation derives rank `local_rank`'s, so per-rank
  // behaviour is bit-identical across deployment modes.
  rank_states_.resize(world_size_);
  common::Rng seeder(seed);
  rank_states_[local_rank_] = std::make_unique<RankState>();
  rank_states_[local_rank_]->jitter_rng =
      seeder.fork(static_cast<std::uint64_t>(local_rank_));
  {
    std::lock_guard<std::mutex> lock(contexts_mutex_);
    std::vector<int> world_members(world_size_);
    for (int r = 0; r < world_size_; ++r) world_members[r] = r;
    create_context_locked(std::move(world_members), /*key=*/0);
  }
  transport_->set_sink([this](Frame frame) { ingest(std::move(frame)); });
  transport_->set_peer_loss_handler(
      [this](int world_rank, bool clean_eof, const std::string& reason) {
        note_peer_loss(world_rank, clean_eof, reason);
      });
  transport_->start();  // blocking rendezvous; BootstrapError propagates
}

Runtime::~Runtime() {
  if (transport_ != nullptr) transport_->shutdown();
}

RankState& Runtime::rank_state(int world_rank) {
  CG_EXPECT(world_rank >= 0 && world_rank < world_size_);
  CG_EXPECT(rank_states_[world_rank] != nullptr);  // distributed: local only
  return *rank_states_[world_rank];
}

CommContext& Runtime::context(int context_id) {
  std::lock_guard<std::mutex> lock(contexts_mutex_);
  CG_EXPECT(context_id >= 0 && context_id < static_cast<int>(contexts_.size()));
  return *contexts_[context_id];
}

int Runtime::create_context_locked(std::vector<int> members, std::uint64_t key) {
  CG_EXPECT(!context_of_key_.contains(key));
  auto ctx = std::make_unique<CommContext>();
  ctx->key = key;
  ctx->members = std::move(members);
  ctx->mailboxes.reserve(ctx->members.size());
  for (std::size_t i = 0; i < ctx->members.size(); ++i) {
    ctx->mailboxes.push_back(std::make_unique<Mailbox>());
  }
  contexts_.push_back(std::move(ctx));
  const int id = static_cast<int>(contexts_.size()) - 1;
  context_of_key_[key] = id;
  // Frames that raced ahead of this communicator's creation are delivered
  // now, in arrival order (preserving the per-(source, tag) FIFO guarantee).
  if (const auto early = pending_.find(key); early != pending_.end()) {
    for (Frame& frame : early->second) {
      deliver_locked(*contexts_[id], std::move(frame));
    }
    pending_.erase(early);
  }
  return id;
}

void Runtime::route(int context_id, int dst_local_rank, Message message) {
  std::uint64_t key = 0;
  int dst_world = -1;
  {
    std::lock_guard<std::mutex> lock(contexts_mutex_);
    CG_EXPECT(context_id >= 0 && context_id < static_cast<int>(contexts_.size()));
    const CommContext& ctx = *contexts_[context_id];
    CG_EXPECT(dst_local_rank >= 0 &&
              dst_local_rank < static_cast<int>(ctx.members.size()));
    key = ctx.key;
    dst_world = ctx.members[dst_local_rank];
  }
  dispatch(key, dst_world, dst_local_rank, std::move(message));
}

void Runtime::dispatch(std::uint64_t context_key, int dst_world_rank,
                       int dst_local_rank, Message message) {
  Frame frame;
  frame.context_key = context_key;
  frame.src_rank = message.source;
  frame.dst_rank = dst_local_rank;
  frame.tag = message.tag;
  frame.arrival_vt = message.arrival_vt;
  frame.payload = std::move(message.payload);
  transport_->send(dst_world_rank, std::move(frame));
}

void Runtime::deliver_locked(CommContext& context, Frame frame) {
  const int members = static_cast<int>(context.members.size());
  if (frame.dst_rank < 0 || frame.dst_rank >= members) {
    throw TransportError("frame addressed to rank " + std::to_string(frame.dst_rank) +
                         " of a " + std::to_string(members) +
                         "-member communicator");
  }
  if (distributed() && context.members[frame.dst_rank] != local_rank_) {
    throw TransportError(
        "frame addressed to world rank " +
        std::to_string(context.members[frame.dst_rank]) +
        " delivered to the process hosting rank " + std::to_string(local_rank_));
  }
  Message message;
  message.source = frame.src_rank;
  message.tag = frame.tag;
  message.arrival_vt = frame.arrival_vt;
  message.payload = std::move(frame.payload);
  context.mailboxes[frame.dst_rank]->push(std::move(message));
}

void Runtime::ingest(Frame frame) {
  std::lock_guard<std::mutex> lock(contexts_mutex_);
  const auto it = context_of_key_.find(frame.context_key);
  if (it == context_of_key_.end()) {
    // In-process, every context exists before anyone can address it.
    CG_EXPECT(distributed());
    // Distributed: either an early arrival for a communicator this process
    // is mid-split on (drained by create_context_locked) or a stray with a
    // wrong context id (visible through pending_frames()).
    pending_[frame.context_key].push_back(std::move(frame));
    return;
  }
  deliver_locked(*contexts_[it->second], std::move(frame));
}

void Runtime::note_peer_loss(int world_rank, bool clean_eof, std::string reason) {
  if (!distributed()) return;  // in-process worlds share one fate anyway
  std::lock_guard<std::mutex> lock(losses_mutex_);
  losses_.try_emplace(world_rank, PeerLoss{clean_eof, std::move(reason)});
}

bool Runtime::peer_lost(int world_rank) const {
  std::lock_guard<std::mutex> lock(losses_mutex_);
  return losses_.contains(world_rank);
}

std::vector<int> Runtime::lost_peers() const {
  std::lock_guard<std::mutex> lock(losses_mutex_);
  std::vector<int> ranks;
  ranks.reserve(losses_.size());
  for (const auto& [rank, loss] : losses_) ranks.push_back(rank);
  return ranks;
}

std::string Runtime::peer_loss_reason(int world_rank) const {
  std::lock_guard<std::mutex> lock(losses_mutex_);
  const auto it = losses_.find(world_rank);
  return it == losses_.end() ? std::string() : it->second.reason;
}

std::size_t Runtime::pending_frames() const {
  std::lock_guard<std::mutex> lock(contexts_mutex_);
  std::size_t total = 0;
  for (const auto& [key, frames] : pending_) total += frames.size();
  return total;
}

std::vector<Runtime::RankResult> Runtime::run(
    const std::function<void(Comm&)>& rank_main) {
  if (distributed()) {
    common::set_thread_log_label("rank " + std::to_string(local_rank_));
    Comm comm(*this, /*context_id=*/0, /*local_rank=*/local_rank_);
    // Named errors (TimeoutError, TransportError, BootstrapError) propagate:
    // the caller owns this process' boundary and exit status.
    rank_main(comm);
    std::vector<RankResult> results(static_cast<std::size_t>(world_size_));
    results[static_cast<std::size_t>(local_rank_)].virtual_time_s =
        rank_states_[local_rank_]->clock.now();
    results[static_cast<std::size_t>(local_rank_)].profiler =
        rank_states_[local_rank_]->profiler;
    return results;
  }

  std::vector<std::thread> threads;
  threads.reserve(world_size_);
  for (int r = 0; r < world_size_; ++r) {
    threads.emplace_back([this, r, &rank_main] {
      common::set_thread_log_label("rank " + std::to_string(r));
      Comm comm(*this, /*context_id=*/0, /*local_rank=*/r);
      try {
        rank_main(comm);
      } catch (const std::exception& e) {
        // Fail-stop, like an MPI job: one rank's failure kills the world.
        common::log_error() << "rank " << r << " terminated with exception: " << e.what();
        std::abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<RankResult> results;
  results.reserve(world_size_);
  for (int r = 0; r < world_size_; ++r) {
    RankResult result;
    result.virtual_time_s = rank_states_[r]->clock.now();
    result.profiler = rank_states_[r]->profiler;
    results.push_back(std::move(result));
  }
  return results;
}

int Runtime::split_context(int parent_context, int caller_local_rank, int color,
                           int key) {
  if (distributed()) {
    return split_context_distributed(parent_context, caller_local_rank, color, key);
  }
  std::unique_lock<std::mutex> lock(contexts_mutex_);
  CG_EXPECT(parent_context >= 0 && parent_context < static_cast<int>(contexts_.size()));
  CommContext& parent = *contexts_[parent_context];
  const int n = static_cast<int>(parent.members.size());
  CG_EXPECT(caller_local_rank >= 0 && caller_local_rank < n);

  auto& rounds = split_round_[parent_context];
  if (static_cast<int>(rounds.size()) < n) rounds.resize(n, 0);
  const int round = rounds[caller_local_rank]++;

  const auto group_key = std::make_pair(parent_context, round);
  SplitGroup& group = splits_[group_key];
  if (group.colors.empty()) {
    group.colors.assign(n, -2);
    group.keys.assign(n, 0);
  }
  group.colors[caller_local_rank] = color;
  group.keys[caller_local_rank] = key;
  ++group.arrived;

  if (group.arrived == n) {
    // Last to arrive builds all the new contexts.
    std::map<int, std::vector<std::pair<std::pair<int, int>, int>>> by_color;
    for (int r = 0; r < n; ++r) {
      if (group.colors[r] >= 0) {
        by_color[group.colors[r]].push_back({{group.keys[r], r}, r});
      }
    }
    for (auto& [c, entries] : by_color) {
      std::sort(entries.begin(), entries.end());
      std::vector<int> members;
      members.reserve(entries.size());
      for (const auto& [sort_key, parent_rank] : entries) {
        members.push_back(parent.members[parent_rank]);
      }
      const int ctx_id =
          create_context_locked(std::move(members),
                                derive_context_key(parent.key, round, c));
      for (const auto& [sort_key, parent_rank] : entries) {
        group.context_of_member[parent_rank] = ctx_id;
      }
    }
    group.built = true;
    split_cv_.notify_all();
  } else {
    split_cv_.wait(lock, [&group] { return group.built; });
  }

  if (color < 0) return -1;
  auto it = group.context_of_member.find(caller_local_rank);
  CG_ENSURE(it != group.context_of_member.end());
  return it->second;
}

int Runtime::split_context_distributed(int parent_context, int caller_local_rank,
                                       int color, int key) {
  std::vector<int> members;
  std::uint64_t parent_key = 0;
  Mailbox* my_mailbox = nullptr;
  int round = 0;
  {
    std::lock_guard<std::mutex> lock(contexts_mutex_);
    CG_EXPECT(parent_context >= 0 &&
              parent_context < static_cast<int>(contexts_.size()));
    CommContext& parent = *contexts_[parent_context];
    const int n = static_cast<int>(parent.members.size());
    CG_EXPECT(caller_local_rank >= 0 && caller_local_rank < n);
    CG_EXPECT(parent.members[caller_local_rank] == local_rank_);
    members = parent.members;
    parent_key = parent.key;
    my_mailbox = parent.mailboxes[caller_local_rank].get();
    auto& rounds = split_round_[parent_context];
    if (rounds.empty()) rounds.resize(1, 0);
    round = rounds[0]++;  // one local caller per process
  }
  const int n = static_cast<int>(members.size());

  // Direct exchange of (color, key) with every other member over the parent
  // communicator — the collective part of MPI_Comm_split. Control traffic:
  // no virtual-time cost and no clock movement, matching the in-process
  // split, which is free.
  std::vector<std::uint8_t> contribution;
  pack_i32(contribution, color);
  pack_i32(contribution, key);
  for (int r = 0; r < n; ++r) {
    if (r == caller_local_rank) continue;
    Message message;
    message.source = caller_local_rank;
    message.tag = kTagSplit;
    message.payload = contribution;
    route(parent_context, r, std::move(message));
  }

  std::vector<int> colors(n, -2);
  std::vector<int> keys(n, 0);
  colors[caller_local_rank] = color;
  keys[caller_local_rank] = key;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(split_timeout_s_));
  for (int r = 0; r < n; ++r) {
    if (r == caller_local_rank) continue;
    // Sliced wait so a peer whose stream is gone is named as PeerDeathError
    // right away (the recovery loop catches that) instead of burning the
    // whole split deadline into an unrecoverable TimeoutError.
    std::optional<Message> message;
    for (;;) {
      const auto slice = std::min(
          deadline, std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(100));
      message = my_mailbox->pop_until(r, kTagSplit, slice);
      if (message) break;
      if (peer_lost(members[r])) {
        throw PeerDeathError(members[r],
                             "split rendezvous: world rank " +
                                 std::to_string(members[r]) + " died (" +
                                 peer_loss_reason(members[r]) + ")");
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
    if (!message) {
      throw TimeoutError("split rendezvous: no contribution from world rank " +
                         std::to_string(members[r]) + " within " +
                         std::to_string(split_timeout_s_) + "s");
    }
    CG_EXPECT(message->payload.size() == 8);
    colors[r] = unpack_i32(message->payload.data());
    keys[r] = unpack_i32(message->payload.data() + 4);
  }

  if (color < 0) return -1;

  // Deterministic grouping, identical to the in-process path: members of the
  // caller's color, ordered by (key, parent rank).
  std::vector<std::pair<std::pair<int, int>, int>> entries;
  for (int r = 0; r < n; ++r) {
    if (colors[r] == color) entries.push_back({{keys[r], r}, r});
  }
  std::sort(entries.begin(), entries.end());
  std::vector<int> child_members;
  child_members.reserve(entries.size());
  for (const auto& [sort_key, parent_rank] : entries) {
    child_members.push_back(members[parent_rank]);
  }
  const std::uint64_t child_key = derive_context_key(parent_key, round, color);
  std::lock_guard<std::mutex> lock(contexts_mutex_);
  return create_context_locked(std::move(child_members), child_key);
}

}  // namespace cellgan::minimpi
