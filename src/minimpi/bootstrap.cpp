#include "minimpi/bootstrap.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/expect.hpp"
#include "minimpi/errors.hpp"
#include "minimpi/transport.hpp"  // store_le32/load_le32: shared wire codec

namespace cellgan::minimpi {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_after(double seconds) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds));
}

constexpr std::uint32_t kBootMagic = 0x31424743;  // "CGB1"
enum BootType : std::uint8_t { kBootRegister = 1, kBootTable = 2, kBootHello = 3 };

double seconds_left(Clock::time_point deadline) {
  const double s = std::chrono::duration<double>(deadline - Clock::now()).count();
  return s > 0.0 ? s : 0.0;
}

void set_recv_timeout(int fd, double seconds) {
  if (seconds < 1e-3) seconds = 1e-3;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

[[noreturn]] void boot_fail(const std::string& message) {
  throw BootstrapError("bootstrap: " + message);
}

bool read_exact_until(int fd, void* data, std::size_t n, Clock::time_point deadline) {
  set_recv_timeout(fd, seconds_left(deadline));
  return read_exact(fd, data, n);
}

// Bootstrap control messages: [magic u32][type u8][body...], little-endian
// (integer codec shared with the frame format — transport.hpp).
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t raw[4];
  store_le32(raw, v);
  out.insert(out.end(), raw, raw + 4);
}

void send_boot_message(int fd, BootType type, const std::vector<std::uint8_t>& body,
                       const std::string& what) {
  std::vector<std::uint8_t> wire;
  wire.reserve(5 + body.size());
  put_u32(wire, kBootMagic);
  wire.push_back(static_cast<std::uint8_t>(type));
  wire.insert(wire.end(), body.begin(), body.end());
  if (!write_all(fd, wire.data(), wire.size())) {
    boot_fail("cannot send " + what + ": " + std::strerror(errno));
  }
}

BootType read_boot_header(int fd, Clock::time_point deadline, const std::string& what) {
  std::uint8_t header[5];
  if (!read_exact_until(fd, header, sizeof(header), deadline)) {
    boot_fail("reading " + what + ": peer closed or timed out");
  }
  if (load_le32(header) != kBootMagic) {
    boot_fail("reading " + what + ": not a cellgan bootstrap message");
  }
  return static_cast<BootType>(header[4]);
}

std::uint32_t read_u32_field(int fd, Clock::time_point deadline, const std::string& what) {
  std::uint8_t raw[4];
  if (!read_exact_until(fd, raw, sizeof(raw), deadline)) {
    boot_fail("reading " + what + ": peer closed or timed out");
  }
  return load_le32(raw);
}

std::string read_string_field(int fd, Clock::time_point deadline, const std::string& what) {
  const std::uint32_t length = read_u32_field(fd, deadline, what);
  if (length > 1024) boot_fail("reading " + what + ": implausible string length");
  std::string value(length, '\0');
  if (length > 0 && !read_exact_until(fd, value.data(), length, deadline)) {
    boot_fail("reading " + what + ": peer closed or timed out");
  }
  return value;
}

int accept_until(int listen_fd, Clock::time_point deadline, const std::string& what) {
  for (;;) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const double left = seconds_left(deadline);
    if (left <= 0.0) boot_fail(what + ": timed out waiting for a connection");
    const int ready = ::poll(&pfd, 1, static_cast<int>(left * 1000.0) + 1);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) boot_fail(what + ": timed out waiting for a connection");
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      boot_fail(what + ": accept failed: " + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
}

/// Closes an accepted socket unless it is released into the mesh — the
/// handshake reads between accept and registration can throw.
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  int get() const { return fd_; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

}  // namespace

// ---- Endpoint ---------------------------------------------------------------

std::string Endpoint::to_string() const {
  return host + ":" + std::to_string(port);
}

std::optional<Endpoint> Endpoint::parse(const std::string& text, std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<Endpoint> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return fail("endpoint '" + text + "' is not host:port");
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  if (port_text.find_first_not_of("0123456789") != std::string::npos) {
    return fail("endpoint '" + text + "' has a non-numeric port");
  }
  const unsigned long port = std::strtoul(port_text.c_str(), nullptr, 10);
  if (port > 65535) return fail("endpoint '" + text + "' port out of range");
  endpoint.port = static_cast<std::uint16_t>(port);
  in_addr probe{};
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &probe) != 1) {
    return fail("endpoint '" + text + "' host is not a numeric IPv4 address");
  }
  return endpoint;
}

// ---- environment ------------------------------------------------------------

std::optional<WorldEnv> world_from_env(std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<WorldEnv> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  const auto read_int = [&](const char* name, int& out) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return false;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0') return false;
    out = static_cast<int>(parsed);
    return true;
  };
  WorldEnv env;
  if (!read_int(kEnvRank, env.rank)) {
    return fail(std::string(kEnvRank) + " is not set to a rank number");
  }
  if (!read_int(kEnvWorld, env.world_size)) {
    return fail(std::string(kEnvWorld) + " is not set to a world size");
  }
  const char* endpoint = std::getenv(kEnvEndpoint);
  if (endpoint == nullptr || *endpoint == '\0') {
    return fail(std::string(kEnvEndpoint) + " is not set to rank 0's host:port");
  }
  env.rendezvous = endpoint;
  std::string endpoint_error;
  if (!Endpoint::parse(env.rendezvous, &endpoint_error)) return fail(endpoint_error);
  if (env.world_size < 1) return fail(std::string(kEnvWorld) + " must be >= 1");
  if (env.rank < 0 || env.rank >= env.world_size) {
    return fail(std::string(kEnvRank) + " must be in [0, " +
                std::to_string(env.world_size) + ")");
  }
  return env;
}

// ---- socket helpers ---------------------------------------------------------

int listen_on(const Endpoint& endpoint, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad listen host '" + endpoint.host + "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    if (error != nullptr) {
      *error = "cannot listen on " + endpoint.to_string() + ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

Endpoint local_endpoint_of(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  CG_EXPECT(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  return Endpoint{host, ntohs(addr.sin_port)};
}

int connect_with_retry(const Endpoint& endpoint, double timeout_s, std::string* error) {
  const auto deadline = deadline_after(timeout_s);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad connect host '" + endpoint.host + "'";
    return -1;
  }
  int last_errno = 0;
  do {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_errno = errno;
      break;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    last_errno = errno;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  } while (Clock::now() < deadline);
  if (error != nullptr) {
    *error = "cannot connect to " + endpoint.to_string() + " within " +
             std::to_string(timeout_s) + "s: " + std::strerror(last_errno);
  }
  return -1;
}

bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t wrote = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (wrote == 0) return false;
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t n, std::size_t* got) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t received = 0;
  while (received < n) {
    const ssize_t read = ::recv(fd, p + received, n - received, 0);
    if (read < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (read == 0) break;  // EOF
    received += static_cast<std::size_t>(read);
  }
  if (got != nullptr) *got = received;
  return received == n;
}

std::string pick_local_endpoint() {
  std::string error;
  const int fd = listen_on(Endpoint{"127.0.0.1", 0}, &error);
  CG_EXPECT(fd >= 0);
  const Endpoint endpoint = local_endpoint_of(fd);
  ::close(fd);
  return endpoint.to_string();
}

// ---- mesh bootstrap ---------------------------------------------------------

namespace {

void bootstrap_mesh_impl(int listen_fd, int rank, int world_size,
                         const Endpoint& rendezvous, Clock::time_point deadline,
                         Mesh& mesh) {
  mesh.peer_fds.assign(static_cast<std::size_t>(world_size), -1);
  mesh.endpoints.assign(static_cast<std::size_t>(world_size), "");
  mesh.endpoints[static_cast<std::size_t>(rank)] =
      local_endpoint_of(listen_fd).to_string();
  if (world_size == 1) return;

  if (rank == 0) {
    // Collect one REGISTER per peer; the registration connection becomes the
    // 0 <-> peer mesh link.
    for (int i = 1; i < world_size; ++i) {
      FdGuard fd(accept_until(listen_fd, deadline,
                              "rank 0 rendezvous (" + std::to_string(i - 1) +
                                  "/" + std::to_string(world_size - 1) +
                                  " peers registered)"));
      if (read_boot_header(fd.get(), deadline, "registration") != kBootRegister) {
        boot_fail("rendezvous received a non-registration message");
      }
      const int peer =
          static_cast<int>(read_u32_field(fd.get(), deadline, "registration rank"));
      if (peer < 1 || peer >= world_size) {
        boot_fail("registration from out-of-range rank " + std::to_string(peer));
      }
      if (mesh.peer_fds[static_cast<std::size_t>(peer)] != -1) {
        boot_fail("rank " + std::to_string(peer) + " registered twice");
      }
      mesh.endpoints[static_cast<std::size_t>(peer)] =
          read_string_field(fd.get(), deadline, "registration endpoint");
      mesh.peer_fds[static_cast<std::size_t>(peer)] = fd.release();
    }
    // Publish the rank -> endpoint table to everyone.
    std::vector<std::uint8_t> body;
    put_u32(body, static_cast<std::uint32_t>(world_size));
    for (const std::string& endpoint : mesh.endpoints) {
      put_u32(body, static_cast<std::uint32_t>(endpoint.size()));
      body.insert(body.end(), endpoint.begin(), endpoint.end());
    }
    for (int i = 1; i < world_size; ++i) {
      send_boot_message(mesh.peer_fds[static_cast<std::size_t>(i)], kBootTable, body,
                        "endpoint table to rank " + std::to_string(i));
    }
    return;
  }

  // Peer: register with rank 0 and read the table back.
  std::string error;
  const int fd0 = connect_with_retry(rendezvous, seconds_left(deadline), &error);
  if (fd0 < 0) boot_fail("rank " + std::to_string(rank) + ": " + error);
  mesh.peer_fds[0] = fd0;
  // Advertise the address this host has on its route to rank 0 (the
  // listener itself is bound to the wildcard address, whose name would be
  // undialable) plus the listener's port — what peers on other machines
  // must dial.
  mesh.endpoints[static_cast<std::size_t>(rank)] =
      Endpoint{local_endpoint_of(fd0).host, local_endpoint_of(listen_fd).port}
          .to_string();
  {
    std::vector<std::uint8_t> body;
    put_u32(body, static_cast<std::uint32_t>(rank));
    const std::string& own = mesh.endpoints[static_cast<std::size_t>(rank)];
    put_u32(body, static_cast<std::uint32_t>(own.size()));
    body.insert(body.end(), own.begin(), own.end());
    send_boot_message(fd0, kBootRegister, body, "registration");
  }
  if (read_boot_header(fd0, deadline, "endpoint table") != kBootTable) {
    boot_fail("expected the endpoint table from rank 0");
  }
  const int advertised =
      static_cast<int>(read_u32_field(fd0, deadline, "table world size"));
  if (advertised != world_size) {
    boot_fail("rank 0 advertises world size " + std::to_string(advertised) +
              " but this rank was started with " + std::to_string(world_size));
  }
  for (int r = 0; r < world_size; ++r) {
    mesh.endpoints[static_cast<std::size_t>(r)] =
        read_string_field(fd0, deadline, "table endpoint of rank " + std::to_string(r));
  }

  // Fill in the mesh: dial every lower peer, accept every higher one.
  for (int j = 1; j < rank; ++j) {
    const auto peer_endpoint = Endpoint::parse(mesh.endpoints[static_cast<std::size_t>(j)]);
    if (!peer_endpoint) {
      boot_fail("rank " + std::to_string(j) + " advertised a bad endpoint '" +
                mesh.endpoints[static_cast<std::size_t>(j)] + "'");
    }
    const int fd = connect_with_retry(*peer_endpoint, seconds_left(deadline), &error);
    if (fd < 0) boot_fail("dialing rank " + std::to_string(j) + ": " + error);
    std::vector<std::uint8_t> body;
    put_u32(body, static_cast<std::uint32_t>(rank));
    send_boot_message(fd, kBootHello, body, "hello to rank " + std::to_string(j));
    mesh.peer_fds[static_cast<std::size_t>(j)] = fd;
  }
  for (int expected = rank + 1; expected < world_size; ++expected) {
    FdGuard fd(accept_until(listen_fd, deadline,
                            "rank " + std::to_string(rank) + " mesh accept"));
    if (read_boot_header(fd.get(), deadline, "mesh hello") != kBootHello) {
      boot_fail("mesh accept received a non-hello message");
    }
    const int peer = static_cast<int>(read_u32_field(fd.get(), deadline, "hello rank"));
    if (peer <= rank || peer >= world_size ||
        mesh.peer_fds[static_cast<std::size_t>(peer)] != -1) {
      boot_fail("mesh hello from unexpected rank " + std::to_string(peer));
    }
    mesh.peer_fds[static_cast<std::size_t>(peer)] = fd.release();
  }
  return;
}

}  // namespace

Mesh bootstrap_mesh(int listen_fd, int rank, int world_size,
                    const Endpoint& rendezvous, double timeout_s) {
  CG_EXPECT(listen_fd >= 0);
  CG_EXPECT(world_size >= 1);
  CG_EXPECT(rank >= 0 && rank < world_size);
  Mesh mesh;
  try {
    bootstrap_mesh_impl(listen_fd, rank, world_size, rendezvous,
                        deadline_after(timeout_s), mesh);
    return mesh;
  } catch (...) {
    // A partially-built mesh must not leak its sockets into a process that
    // outlives the failure (tests; a launcher that retries).
    for (const int fd : mesh.peer_fds) {
      if (fd >= 0) ::close(fd);
    }
    throw;
  }
}

}  // namespace cellgan::minimpi
