// Communicator handle: the rank-local view of one communication context.
//
// Mirrors the MPI surface the paper's comm-manager uses: point-to-point
// send/recv with tags, probe, barrier, broadcast, gather, allgather,
// allreduce, and split() to derive the LOCAL (active slaves) and GLOBAL
// (slaves + master) contexts from WORLD. All collectives are implemented on
// top of the p2p layer, so simulated time emerges from the same message
// trace in both modes.
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/expect.hpp"
#include "minimpi/message.hpp"
#include "minimpi/runtime.hpp"

namespace cellgan::minimpi {

class Comm {
 public:
  Comm(Runtime& runtime, int context_id, int local_rank);

  int rank() const { return local_rank_; }
  int size() const;
  Runtime& runtime() { return *runtime_; }

  /// The calling rank's virtual clock / profiler / jitter stream.
  common::VirtualClock& clock();
  common::Profiler& profiler();
  common::Rng& jitter_rng();

  // ---- point-to-point -----------------------------------------------------

  /// Buffered send (never blocks). `dst` is a local rank in this communicator.
  void send(int dst, int tag, std::span<const std::uint8_t> bytes);

  /// Out-of-band send: no virtual-time cost and an arrival stamp of zero, so
  /// the receive never drags the receiver's clock. For control-plane traffic
  /// (heartbeats, status queries) that in the real system rides a background
  /// thread without blocking training.
  void send_oob(int dst, int tag, std::span<const std::uint8_t> bytes);
  /// Convenience: send a trivially-copyable value.
  template <typename T>
  void send_value(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    send(dst, tag, std::span<const std::uint8_t>(p, sizeof(T)));
  }

  /// Blocking receive matching (src, tag); wildcards kAnySource / kAnyTag.
  /// Death-aware in distributed mode: when the awaited source's stream is
  /// recorded lost (Runtime::peer_lost) and no matching message is queued,
  /// raises PeerDeathError naming the dead world rank instead of hanging.
  Message recv(int src, int tag);
  /// Timed receive (real time); nullopt on timeout. Deliberately *not*
  /// death-aware: pollers (heartbeat, the slave's control loop) own their
  /// own miss accounting.
  std::optional<Message> recv_for(int src, int tag, double timeout_s);
  /// Deadline-aware receive: like recv, but a peer that stays silent for
  /// `timeout_s` real seconds raises TimeoutError (errors.hpp) naming the
  /// awaited (source, tag) — a dead peer becomes a named error instead of an
  /// infinite hang, and one whose stream is already gone raises
  /// PeerDeathError without waiting out the deadline. Used by the
  /// multi-process transport's control paths and any caller that must
  /// survive peer loss.
  Message recv_timeout(int src, int tag, double timeout_s);
  /// Timed receive that never touches the virtual clock, pairing with
  /// send_oob: recovery-control traffic must not perturb the simulated
  /// timeline even when the net model charges per-byte receive overhead.
  std::optional<Message> recv_oob_for(int src, int tag, double timeout_s);
  /// Non-blocking receive.
  std::optional<Message> try_recv(int src, int tag);
  /// Non-blocking receive that only yields messages already arrived in
  /// simulated time (all messages, when the net model is off). The basis of
  /// asynchronous neighbor exchange: polling never advances the clock.
  std::optional<Message> try_recv_arrived(int src, int tag);
  /// Non-destructive check.
  bool probe(int src, int tag);

  /// True when `rank`'s underlying transport stream is recorded lost
  /// (Runtime::peer_lost through this communicator's rank mapping). Always
  /// false in-process and for the calling rank itself. The liveness fact
  /// pollers (heartbeat monitor, the master's Finished wait) consult to turn
  /// a silent peer into a named failure without waiting out a timeout.
  bool peer_lost(int rank) const;
  /// The recorded reason for `rank`'s stream loss; "" when not lost.
  std::string peer_loss_reason(int rank) const;

  template <typename T>
  static T value_of(const Message& m) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    CG_EXPECT(m.payload.size() == sizeof(T));
    std::memcpy(&out, m.payload.data(), sizeof(T));
    return out;
  }

  // ---- collectives ----------------------------------------------------------
  // Every member must call in matching order (standard MPI contract).

  void barrier();
  /// Root's buffer is distributed to everyone; non-roots receive into `bytes`.
  void bcast(std::vector<std::uint8_t>& bytes, int root);
  /// Returns, at root, payloads indexed by source rank (empty elsewhere).
  std::vector<std::vector<std::uint8_t>> gather(std::span<const std::uint8_t> bytes,
                                                int root);
  /// Every rank contributes `bytes`; everyone receives all payloads by rank.
  std::vector<std::vector<std::uint8_t>> allgather(std::span<const std::uint8_t> bytes);
  double allreduce_sum(double value);
  double allreduce_max(double value);

  /// MPI_Comm_split: ranks with equal color form a new communicator ordered
  /// by (key, rank). color < 0 opts out (returns nullopt).
  std::optional<Comm> split(int color, int key);

 private:
  int world_rank_of(int local_rank) const;

  /// Blocking mailbox pop that, in distributed mode, wakes periodically to
  /// check the peer-loss registry — the mechanism behind death-aware recv.
  Message pop_death_aware(int src, int tag);
  /// Raise PeerDeathError when waiting on (src, tag) is provably hopeless:
  /// the specific source is lost, or (kAnySource) every other member is.
  void throw_if_peer_dead(int src, int tag) const;

  Runtime* runtime_;
  int context_id_;
  /// Resolved once at construction: CommContext storage is stable (owned by
  /// the Runtime through unique_ptr) and immutable after creation, so the
  /// per-message paths read membership/key/mailboxes without touching the
  /// runtime-wide context lock.
  CommContext* context_;
  int local_rank_;
};

}  // namespace cellgan::minimpi
