#include "minimpi/mailbox.hpp"

#include <chrono>

namespace cellgan::minimpi {

namespace {
bool matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) &&
         (tag == kAnyTag || m.tag == tag);
}
}  // namespace

void Mailbox::push(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(message));
  }
  available_.notify_all();
}

std::optional<Message> Mailbox::extract_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::pop(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = extract_locked(source, tag)) return std::move(*m);
    available_.wait(lock);
  }
}

std::optional<Message> Mailbox::pop_for(int source, int tag, double timeout_s) {
  return pop_until(source, tag,
                   std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(timeout_s)));
}

std::optional<Message> Mailbox::pop_until(
    int source, int tag, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = extract_locked(source, tag)) return m;
    if (available_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return extract_locked(source, tag);
    }
  }
}

std::optional<Message> Mailbox::try_pop(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return extract_locked(source, tag);
}

std::optional<Message> Mailbox::try_pop_arrived(int source, int tag, double now_vt) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag) && it->arrival_vt <= now_vt) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : queue_) {
    if (matches(m, source, tag)) return true;
  }
  return false;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace cellgan::minimpi
