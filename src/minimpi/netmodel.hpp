// Virtual-time network model (the "wire" of the simulated cluster).
//
// When enabled, every send charges the sender's clock with a serialization
// cost (bytes / bandwidth — in mpi4py-style stacks serialization dominates)
// and stamps the message with arrival = send_completion + latency; receivers
// additionally pay a per-byte deserialization overhead. When disabled all
// costs are zero and minimpi behaves as a plain in-process message layer.
//
// Default constants are calibrated against the paper's Cluster-UY runs; see
// EXPERIMENTS.md for the derivation.
#pragma once

#include <cstddef>

namespace cellgan::minimpi {

struct NetModelConfig {
  bool enabled = false;
  double latency_s = 1e-3;             ///< per-message wire latency
  double bandwidth_Bps = 9.8e6;        ///< sender-side serialization+transfer rate
  double recv_overhead_s_per_B = 0.0;  ///< receiver-side deserialization
};

class NetModel {
 public:
  NetModel() = default;
  explicit NetModel(NetModelConfig config) : config_(config) {}

  bool enabled() const { return config_.enabled; }
  const NetModelConfig& config() const { return config_; }

  /// Sender-side busy time for a payload of `bytes`.
  double send_cost_s(std::size_t bytes) const {
    return config_.enabled ? static_cast<double>(bytes) / config_.bandwidth_Bps : 0.0;
  }

  /// Wire delay added on top of the sender's completion time.
  double latency_s() const { return config_.enabled ? config_.latency_s : 0.0; }

  /// Receiver-side busy time for a payload of `bytes`.
  double recv_cost_s(std::size_t bytes) const {
    return config_.enabled ? static_cast<double>(bytes) * config_.recv_overhead_s_per_B
                           : 0.0;
  }

 private:
  NetModelConfig config_;
};

}  // namespace cellgan::minimpi
