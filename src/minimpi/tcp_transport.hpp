// TCP socket transport: one process per world rank, frames over a full mesh.
//
// Construction binds this rank's listener (rank 0 on the rendezvous
// endpoint, peers on an ephemeral port); start() runs the bootstrap
// handshake (bootstrap.hpp) and then spawns, per peer, one *sender* thread
// draining a frame queue (so Comm::send keeps its never-blocks contract and
// two ranks streaming large payloads at each other cannot deadlock on full
// kernel buffers) and one *receiver* thread decoding length-prefixed frames
// into the owning Runtime's sink, where the existing mailbox matching logic
// takes over.
//
// Failure policy: losing a peer's stream — a failed write, a poll error, a
// mid-frame truncation, or a clean EOF (which is also what a SIGKILLed peer
// produces: the kernel closes its sockets) — is *reported*, not fatal. The
// transport marks the peer dead, drops any traffic queued for it, and tells
// the installed PeerLossHandler; the Runtime records the loss and the
// death-aware receive paths in Comm raise a named PeerDeathError from the
// rank's own thread, where a recovery layer can catch it. The historical
// log-and-abort behavior survives only behind the `fail_stop` option, as a
// last-resort policy for deployments that prefer an MPI-style job kill on an
// *unclean* loss.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "minimpi/bootstrap.hpp"
#include "minimpi/transport.hpp"

namespace cellgan::minimpi {

struct TcpTransportOptions {
  int world_size = 0;
  int rank = -1;
  /// Rank 0's endpoint. Rank 0 binds it (port 0 = pick an ephemeral port,
  /// readable back through rendezvous_endpoint()); peers dial it.
  std::string rendezvous = "127.0.0.1:0";
  /// Deadline for the whole bootstrap handshake and for draining the send
  /// queues at shutdown.
  double timeout_s = 30.0;
  /// Last-resort policy switch: abort the process on an *unclean* peer loss
  /// (failed write / garbled stream) instead of reporting it. Clean EOFs are
  /// always reported, never fatal — normal teardown produces them too.
  bool fail_stop = false;
};

class TcpTransport final : public Transport {
 public:
  /// Binds the listener; throws BootstrapError when the endpoint is unusable.
  explicit TcpTransport(TcpTransportOptions options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// The actual rendezvous endpoint (post-bind; resolves a port-0 request).
  /// Only meaningful on rank 0, where it is what peers must dial.
  std::string rendezvous_endpoint() const;

  void start() override;
  void send(int dst_world_rank, Frame frame) override;
  void shutdown() override;
  const char* name() const override { return "tcp"; }

  /// Frames received whose stream ended mid-frame or failed to decode; kept
  /// for tests and postmortems (the connection is torn down on the spot).
  std::uint64_t protocol_errors() const { return protocol_errors_.load(); }

  /// True once the link to `world_rank` was reported lost (clean or not).
  bool peer_lost(int world_rank) const;

 private:
  struct Peer {
    int fd = -1;
    std::thread sender;
    std::thread receiver;
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<Frame> queue;
    bool closing = false;
    std::atomic<bool> lost{false};
  };

  void sender_loop(int peer_rank);
  void receiver_loop(int peer_rank);

  /// Mark `peer_rank` dead (first caller wins), drop its queued frames and
  /// notify the loss handler — or abort, under the fail_stop policy for an
  /// unclean loss. Never escalates during shutdown().
  void report_peer_loss(int peer_rank, bool clean_eof, const std::string& reason);

  TcpTransportOptions options_;
  int listen_fd_ = -1;
  Endpoint listen_endpoint_;
  std::vector<std::unique_ptr<Peer>> peers_;  // indexed by world rank
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
};

}  // namespace cellgan::minimpi
