#include "minimpi/cart.hpp"

#include <algorithm>

namespace cellgan::minimpi {

namespace {
int wrap(int v, int n) {
  const int m = v % n;
  return m < 0 ? m + n : m;
}
}  // namespace

CartTopology::CartTopology(int rows, int cols) : rows_(rows), cols_(cols) {
  CG_EXPECT(rows >= 1 && cols >= 1);
}

GridCoord CartTopology::coords_of(int rank) const {
  CG_EXPECT(rank >= 0 && rank < size());
  return GridCoord{rank / cols_, rank % cols_};
}

int CartTopology::rank_of(GridCoord coord) const {
  return wrap(coord.row, rows_) * cols_ + wrap(coord.col, cols_);
}

int CartTopology::north_of(int rank) const {
  const GridCoord c = coords_of(rank);
  return rank_of({c.row - 1, c.col});
}

int CartTopology::south_of(int rank) const {
  const GridCoord c = coords_of(rank);
  return rank_of({c.row + 1, c.col});
}

int CartTopology::west_of(int rank) const {
  const GridCoord c = coords_of(rank);
  return rank_of({c.row, c.col - 1});
}

int CartTopology::east_of(int rank) const {
  const GridCoord c = coords_of(rank);
  return rank_of({c.row, c.col + 1});
}

std::vector<int> CartTopology::neighborhood_of(int rank) const {
  std::vector<int> out{rank, north_of(rank), south_of(rank), west_of(rank),
                       east_of(rank)};
  // Keep first occurrences only, preserving the C,N,S,W,E order.
  std::vector<int> unique;
  unique.reserve(out.size());
  for (const int r : out) {
    if (std::find(unique.begin(), unique.end(), r) == unique.end()) {
      unique.push_back(r);
    }
  }
  return unique;
}

}  // namespace cellgan::minimpi
