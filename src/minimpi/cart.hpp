// Cartesian (toroidal grid) topology helper — the MPI_CART_CREATE analogue
// the paper suggests for mapping slave ranks onto grid coordinates.
//
// Ranks are laid out row-major on a rows x cols grid; both dimensions wrap
// (the training grid is a torus). Neighbor queries return the five-cell
// neighborhood used by Lipizzaner: center, north, south, west, east.
#pragma once

#include <array>
#include <vector>

#include "common/expect.hpp"

namespace cellgan::minimpi {

struct GridCoord {
  int row = 0;
  int col = 0;
  friend bool operator==(const GridCoord&, const GridCoord&) = default;
};

class CartTopology {
 public:
  CartTopology(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }

  GridCoord coords_of(int rank) const;
  int rank_of(GridCoord coord) const;  // wraps out-of-range coordinates

  int north_of(int rank) const;
  int south_of(int rank) const;
  int west_of(int rank) const;
  int east_of(int rank) const;

  /// {center, north, south, west, east} — distinct ranks only (on degenerate
  /// grids such as 1xN some directions alias and duplicates are dropped).
  std::vector<int> neighborhood_of(int rank) const;

 private:
  int rows_;
  int cols_;
};

}  // namespace cellgan::minimpi
