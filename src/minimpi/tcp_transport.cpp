#include "minimpi/tcp_transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/expect.hpp"
#include "common/log.hpp"
#include "minimpi/errors.hpp"

namespace cellgan::minimpi {

namespace {

/// Mesh sockets leave bootstrap with its SO_RCVTIMEO still armed; receivers
/// poll() for readiness, so reads go back to blocking, while writes get a
/// deadline — a peer that stops reading (kernel buffer full, wedged process)
/// fails the sender within `send_timeout_s` instead of blocking shutdown's
/// drain-and-join forever.
void arm_socket_timeouts(int fd, double send_timeout_s) {
  timeval off{};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &off, sizeof(off));
  timeval snd{};
  snd.tv_sec = static_cast<time_t>(send_timeout_s);
  snd.tv_usec = static_cast<suseconds_t>(
      (send_timeout_s - static_cast<double>(snd.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd));
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportOptions options) : options_(options) {
  CG_EXPECT(options_.world_size >= 1);
  CG_EXPECT(options_.rank >= 0 && options_.rank < options_.world_size);
  std::string error;
  const auto rendezvous = Endpoint::parse(options_.rendezvous, &error);
  if (!rendezvous) throw BootstrapError("bootstrap: " + error);
  // Rank 0 listens on the rendezvous endpoint itself; peers bind an
  // ephemeral wildcard listener (they may live on a different machine than
  // rank 0) whose dialable address the registration step advertises.
  const Endpoint bind_to =
      options_.rank == 0 ? *rendezvous : Endpoint{"0.0.0.0", 0};
  listen_fd_ = listen_on(bind_to, &error);
  if (listen_fd_ < 0) throw BootstrapError("bootstrap: " + error);
  listen_endpoint_ = local_endpoint_of(listen_fd_);
  peers_.resize(static_cast<std::size_t>(options_.world_size));
  for (auto& peer : peers_) peer = std::make_unique<Peer>();
}

TcpTransport::~TcpTransport() {
  shutdown();
}

std::string TcpTransport::rendezvous_endpoint() const {
  return listen_endpoint_.to_string();
}

void TcpTransport::start() {
  CG_EXPECT(sink_ != nullptr);
  CG_EXPECT(!started_.load());
  const auto rendezvous = Endpoint::parse(options_.rendezvous);
  CG_EXPECT(rendezvous.has_value());
  Mesh mesh = bootstrap_mesh(listen_fd_, options_.rank, options_.world_size,
                             *rendezvous, options_.timeout_s);
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (int r = 0; r < options_.world_size; ++r) {
    if (r == options_.rank) continue;
    Peer& peer = *peers_[static_cast<std::size_t>(r)];
    peer.fd = mesh.peer_fds[static_cast<std::size_t>(r)];
    CG_EXPECT(peer.fd >= 0);
    arm_socket_timeouts(peer.fd, options_.timeout_s);
  }
  started_.store(true);
  for (int r = 0; r < options_.world_size; ++r) {
    if (r == options_.rank) continue;
    Peer& peer = *peers_[static_cast<std::size_t>(r)];
    peer.sender = std::thread([this, r] { sender_loop(r); });
    peer.receiver = std::thread([this, r] { receiver_loop(r); });
  }
}

void TcpTransport::send(int dst_world_rank, Frame frame) {
  CG_EXPECT(dst_world_rank >= 0 && dst_world_rank < options_.world_size);
  if (dst_world_rank == options_.rank) {
    // Self-sends skip the wire, exactly like the in-process path.
    sink_(std::move(frame));
    return;
  }
  CG_EXPECT(started_.load());
  Peer& peer = *peers_[static_cast<std::size_t>(dst_world_rank)];
  // A lost peer's sender is gone; queueing for it would only grow an inbox
  // nobody drains. Dropping keeps send()'s never-blocks contract — whoever
  // expected a reply will hit the recorded loss in a death-aware receive.
  if (peer.lost.load()) return;
  {
    std::lock_guard<std::mutex> lock(peer.mutex);
    peer.queue.push_back(std::move(frame));
  }
  peer.ready.notify_one();
}

bool TcpTransport::peer_lost(int world_rank) const {
  if (world_rank < 0 || world_rank >= options_.world_size) return false;
  if (world_rank == options_.rank) return false;
  return peers_[static_cast<std::size_t>(world_rank)]->lost.load();
}

void TcpTransport::report_peer_loss(int peer_rank, bool clean_eof,
                                    const std::string& reason) {
  Peer& peer = *peers_[static_cast<std::size_t>(peer_rank)];
  if (peer.lost.exchange(true)) return;  // first report wins
  {
    // Unblock a sender waiting on the queue and drop frames it will never
    // deliver.
    std::lock_guard<std::mutex> lock(peer.mutex);
    peer.queue.clear();
    peer.closing = true;
  }
  peer.ready.notify_all();
  if (stopping_.load()) return;  // teardown noise, not a death
  if (!clean_eof && options_.fail_stop) {
    common::log_error() << "tcp transport: lost rank " << peer_rank << " ("
                        << reason << "); fail-stop policy is set";
    std::abort();
  }
  // A clean EOF is how normal teardown looks from the slower side too, so
  // it stays below warning level; the handler still hears about it.
  (clean_eof ? common::log_debug() : common::log_warn())
      << "tcp transport: lost rank " << peer_rank << " ("
      << (clean_eof ? "clean EOF: " : "") << reason << ")";
  if (peer_loss_handler_) peer_loss_handler_(peer_rank, clean_eof, reason);
}

void TcpTransport::sender_loop(int peer_rank) {
  common::set_thread_log_label("tcp send -> " + std::to_string(peer_rank));
  Peer& peer = *peers_[static_cast<std::size_t>(peer_rank)];
  for (;;) {
    Frame frame;
    {
      std::unique_lock<std::mutex> lock(peer.mutex);
      peer.ready.wait(lock, [&] { return peer.closing || !peer.queue.empty(); });
      if (peer.queue.empty()) break;  // closing and drained
      frame = std::move(peer.queue.front());
      peer.queue.pop_front();
    }
    const std::vector<std::uint8_t> wire = encode_frame(frame);
    if (!write_all(peer.fd, wire.data(), wire.size())) {
      if (stopping_.load()) break;  // peer already gone during teardown
      // Mid-run write failure means the peer's stream is dead. Record the
      // loss so the rank's own thread can raise PeerDeathError at its next
      // receive; aborting here would skip destructors and flushes.
      report_peer_loss(peer_rank, /*clean_eof=*/false,
                       std::string("write failed: ") + std::strerror(errno));
      break;
    }
  }
  // All queued frames are on the wire; tell the peer no more are coming.
  ::shutdown(peer.fd, SHUT_WR);
}

void TcpTransport::receiver_loop(int peer_rank) {
  common::set_thread_log_label("tcp recv <- " + std::to_string(peer_rank));
  Peer& peer = *peers_[static_cast<std::size_t>(peer_rank)];
  std::vector<std::uint8_t> header(kFrameHeaderBytes);
  for (;;) {
    // Poll so the loop can notice shutdown() even when the peer lingers.
    pollfd pfd{peer.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stopping_.load()) break;
    if (ready < 0 && errno != EINTR) {
      // Raising a named TransportError is the receive paths' job; here we
      // can only record why this link died instead of wedging silently.
      report_peer_loss(peer_rank, /*clean_eof=*/false,
                       std::string("poll failed: ") + std::strerror(errno));
      break;
    }
    if (ready <= 0) continue;

    std::size_t got = 0;
    if (!read_exact(peer.fd, header.data(), header.size(), &got)) {
      if (got == 0) {
        // Clean EOF between frames: orderly teardown *or* a SIGKILLed peer
        // (the kernel closes its sockets either way). The receive call
        // sites decide which one it was.
        report_peer_loss(peer_rank, /*clean_eof=*/true, "closed its stream");
        break;
      }
      protocol_errors_.fetch_add(1);
      report_peer_loss(peer_rank, /*clean_eof=*/false,
                       "closed mid-frame (" + std::to_string(got) + "/" +
                           std::to_string(header.size()) + " header bytes)");
      break;
    }
    Frame frame;
    std::uint64_t payload_len = 0;
    const FrameDecodeStatus status =
        decode_frame_header(header, &frame, &payload_len);
    if (status != FrameDecodeStatus::kOk) {
      protocol_errors_.fetch_add(1);
      report_peer_loss(peer_rank, /*clean_eof=*/false,
                       std::string("invalid frame: ") + to_string(status));
      break;
    }
    frame.payload.resize(payload_len);
    if (payload_len > 0 &&
        !read_exact(peer.fd, frame.payload.data(), frame.payload.size())) {
      protocol_errors_.fetch_add(1);
      report_peer_loss(peer_rank, /*clean_eof=*/false, "closed mid-payload");
      break;
    }
    try {
      sink_(std::move(frame));
    } catch (const std::exception& e) {
      // A frame this process cannot deliver (TransportError from
      // Runtime::ingest) is a peer protocol violation: keep the diagnostic
      // and drop the connection instead of std::terminate-ing the process.
      protocol_errors_.fetch_add(1);
      report_peer_loss(peer_rank, /*clean_eof=*/false,
                       std::string("undeliverable frame: ") + e.what());
      break;
    }
  }
}

void TcpTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  if (started_.load()) {
    // From here on, I/O failures are expected teardown noise, not a dead
    // peer (senders check this flag before escalating a write error).
    stopping_.store(true);
    // Phase 1: drain and close the write sides so peers see clean EOFs.
    for (auto& peer : peers_) {
      if (peer->fd < 0) continue;
      {
        std::lock_guard<std::mutex> lock(peer->mutex);
        peer->closing = true;
      }
      peer->ready.notify_all();
    }
    for (auto& peer : peers_) {
      if (peer->sender.joinable()) peer->sender.join();
    }
    // Phase 2: stop the receivers. SHUT_RD unblocks one wedged mid-frame in
    // recv() (a poll tick only catches those waiting between frames) without
    // the fd-reuse hazard of closing under a concurrent reader.
    for (auto& peer : peers_) {
      if (peer->fd >= 0) ::shutdown(peer->fd, SHUT_RD);
    }
    for (auto& peer : peers_) {
      if (peer->receiver.joinable()) peer->receiver.join();
      if (peer->fd >= 0) {
        ::close(peer->fd);
        peer->fd = -1;
      }
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace cellgan::minimpi
