#include "minimpi/comm.hpp"

#include <algorithm>
#include <chrono>

#include "minimpi/errors.hpp"

namespace cellgan::minimpi {

namespace {
// Internal tags live below the user range (user tags must be >= 0).
constexpr int kTagBarrierUp = -2;
constexpr int kTagBarrierDown = -3;
constexpr int kTagBcast = -4;
constexpr int kTagGather = -5;
constexpr int kTagAllgather = -6;
}  // namespace

Comm::Comm(Runtime& runtime, int context_id, int local_rank)
    : runtime_(&runtime), context_id_(context_id),
      context_(&runtime.context(context_id)), local_rank_(local_rank) {}

int Comm::size() const {
  return static_cast<int>(context_->members.size());
}

int Comm::world_rank_of(int local_rank) const {
  const auto& members = context_->members;
  CG_EXPECT(local_rank >= 0 && local_rank < static_cast<int>(members.size()));
  return members[local_rank];
}

common::VirtualClock& Comm::clock() {
  return runtime_->rank_state(world_rank_of(local_rank_)).clock;
}

common::Profiler& Comm::profiler() {
  return runtime_->rank_state(world_rank_of(local_rank_)).profiler;
}

common::Rng& Comm::jitter_rng() {
  return runtime_->rank_state(world_rank_of(local_rank_)).jitter_rng;
}

void Comm::send(int dst, int tag, std::span<const std::uint8_t> bytes) {
  CG_EXPECT(dst >= 0 && dst < size());
  const NetModel& net = runtime_->net();
  common::VirtualClock& my_clock = clock();
  // Sender is busy for the serialization/transfer cost, then the message
  // travels one latency. Self-sends skip the wire.
  double arrival = 0.0;
  if (net.enabled()) {
    if (dst != local_rank_) {
      my_clock.advance(net.send_cost_s(bytes.size()));
      arrival = my_clock.now() + net.latency_s();
    } else {
      arrival = my_clock.now();
    }
  }
  Message m;
  m.source = local_rank_;
  m.tag = tag;
  m.arrival_vt = arrival;
  m.payload.assign(bytes.begin(), bytes.end());
  runtime_->dispatch(context_->key, context_->members[dst], dst, std::move(m));
}

void Comm::send_oob(int dst, int tag, std::span<const std::uint8_t> bytes) {
  CG_EXPECT(dst >= 0 && dst < size());
  Message m;
  m.source = local_rank_;
  m.tag = tag;
  m.arrival_vt = 0.0;
  m.payload.assign(bytes.begin(), bytes.end());
  runtime_->dispatch(context_->key, context_->members[dst], dst, std::move(m));
}

Message Comm::pop_death_aware(int src, int tag) {
  Mailbox& mailbox = *context_->mailboxes[local_rank_];
  if (!runtime_->distributed()) return mailbox.pop(src, tag);
  // Slice the wait so a loss recorded *after* this receive started blocking
  // still surfaces within a slice. Messages that beat the loss report into
  // the mailbox always win: the transport delivers every frame it read
  // before it saw the stream die.
  for (;;) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
    if (auto m = mailbox.pop_until(src, tag, deadline)) return std::move(*m);
    throw_if_peer_dead(src, tag);
  }
}

void Comm::throw_if_peer_dead(int src, int tag) const {
  if (!runtime_->distributed()) return;
  const auto name = [](int value, const char* any) {
    return value < 0 ? std::string(any) : std::to_string(value);
  };
  const auto death = [&](int world) -> PeerDeathError {
    return PeerDeathError(
        world, "world rank " + std::to_string(world) + " died (" +
                   runtime_->peer_loss_reason(world) + ") while rank " +
                   std::to_string(local_rank_) + " of a " +
                   std::to_string(size()) + "-member communicator awaited (source=" +
                   name(src, "any") + ", tag=" + name(tag, "any") + ")");
  };
  if (src >= 0) {
    const int world = world_rank_of(src);
    if (world != runtime_->local_rank() && runtime_->peer_lost(world)) {
      throw death(world);
    }
    return;
  }
  // kAnySource: hopeless only once every other member's stream is gone.
  int first_lost = -1;
  for (int r = 0; r < size(); ++r) {
    const int world = context_->members[static_cast<std::size_t>(r)];
    if (world == runtime_->local_rank()) continue;
    if (!runtime_->peer_lost(world)) return;
    if (first_lost < 0) first_lost = world;
  }
  if (first_lost >= 0) throw death(first_lost);
}

Message Comm::recv(int src, int tag) {
  Message m = pop_death_aware(src, tag);
  const NetModel& net = runtime_->net();
  if (net.enabled()) {
    common::VirtualClock& my_clock = clock();
    my_clock.wait_until(m.arrival_vt);
    my_clock.advance(net.recv_cost_s(m.payload.size()));
  }
  return m;
}

std::optional<Message> Comm::recv_for(int src, int tag, double timeout_s) {
  auto m = context_->mailboxes[local_rank_]->pop_for(src, tag, timeout_s);
  if (m && runtime_->net().enabled()) {
    clock().wait_until(m->arrival_vt);
    clock().advance(runtime_->net().recv_cost_s(m->payload.size()));
  }
  return m;
}

Message Comm::recv_timeout(int src, int tag, double timeout_s) {
  // Sliced so a peer whose stream is already gone raises PeerDeathError
  // immediately rather than burning the whole deadline first.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  Mailbox& mailbox = *context_->mailboxes[local_rank_];
  for (;;) {
    const auto slice = std::min(
        deadline, std::chrono::steady_clock::now() + std::chrono::milliseconds(100));
    if (auto m = mailbox.pop_until(src, tag, slice)) {
      if (runtime_->net().enabled()) {
        clock().wait_until(m->arrival_vt);
        clock().advance(runtime_->net().recv_cost_s(m->payload.size()));
      }
      return std::move(*m);
    }
    throw_if_peer_dead(src, tag);
    if (std::chrono::steady_clock::now() >= deadline) break;
  }
  const auto name = [](int value, const char* any) {
    return value < 0 ? std::string(any) : std::to_string(value);
  };
  throw TimeoutError("recv timed out after " + std::to_string(timeout_s) +
                     "s waiting for (source=" + name(src, "any") +
                     ", tag=" + name(tag, "any") + ") on rank " +
                     std::to_string(local_rank_) + " of a " +
                     std::to_string(size()) + "-member communicator");
}

std::optional<Message> Comm::recv_oob_for(int src, int tag, double timeout_s) {
  // No clock movement on purpose: paired with send_oob for control traffic
  // (recovery negotiation) that must leave the simulated timeline untouched.
  return context_->mailboxes[local_rank_]->pop_for(src, tag, timeout_s);
}

std::optional<Message> Comm::try_recv(int src, int tag) {
  auto m = context_->mailboxes[local_rank_]->try_pop(src, tag);
  if (m && runtime_->net().enabled()) {
    clock().wait_until(m->arrival_vt);
    clock().advance(runtime_->net().recv_cost_s(m->payload.size()));
  }
  return m;
}

std::optional<Message> Comm::try_recv_arrived(int src, int tag) {
  const NetModel& net = runtime_->net();
  if (!net.enabled()) {
    return context_->mailboxes[local_rank_]->try_pop(src, tag);
  }
  auto m = context_->mailboxes[local_rank_]->try_pop_arrived(
      src, tag, clock().now());
  if (m) clock().advance(net.recv_cost_s(m->payload.size()));
  return m;
}

bool Comm::probe(int src, int tag) {
  return context_->mailboxes[local_rank_]->probe(src, tag);
}

bool Comm::peer_lost(int rank) const {
  if (!runtime_->distributed()) return false;
  if (rank < 0 || rank >= size()) return false;
  const int world = world_rank_of(rank);
  if (world == runtime_->local_rank()) return false;
  return runtime_->peer_lost(world);
}

std::string Comm::peer_loss_reason(int rank) const {
  if (!peer_lost(rank)) return "";
  return runtime_->peer_loss_reason(world_rank_of(rank));
}

void Comm::barrier() {
  // Flat fan-in to rank 0, fan-out back. Linear is fine at these sizes and
  // keeps the virtual-time trace easy to reason about.
  const int n = size();
  if (n == 1) return;
  if (local_rank_ == 0) {
    double latest = clock().now();
    for (int r = 1; r < n; ++r) {
      const Message m = recv(kAnySource, kTagBarrierUp);
      latest = std::max(latest, m.arrival_vt);
    }
    clock().wait_until(latest);
    for (int r = 1; r < n; ++r) send(r, kTagBarrierDown, {});
  } else {
    send(0, kTagBarrierUp, {});
    recv(0, kTagBarrierDown);
  }
}

void Comm::bcast(std::vector<std::uint8_t>& bytes, int root) {
  if (size() == 1) return;
  if (local_rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kTagBcast, bytes);
    }
  } else {
    bytes = recv(root, kTagBcast).payload;
  }
}

std::vector<std::vector<std::uint8_t>> Comm::gather(std::span<const std::uint8_t> bytes,
                                                    int root) {
  std::vector<std::vector<std::uint8_t>> out;
  if (local_rank_ == root) {
    out.resize(size());
    out[root].assign(bytes.begin(), bytes.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = recv(r, kTagGather);
      out[r] = std::move(m.payload);
    }
  } else {
    send(root, kTagGather, bytes);
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Comm::allgather(
    std::span<const std::uint8_t> bytes) {
  // Every rank contributes its block and receives everyone else's. The
  // simulated cost follows a ring-style overlapped exchange: each rank is
  // busy for (n-1) block transfers — linear in communicator size, the
  // gather-scaling behaviour observed on the paper's cluster — and send /
  // receive phases overlap, so a rank's exchange completes one latency after
  // its (or the slowest peer's) transfer work ends. Payload movement itself
  // is direct exchange for simplicity; only the clock model is ring-like.
  const int n = size();
  std::vector<std::vector<std::uint8_t>> out(n);
  out[local_rank_].assign(bytes.begin(), bytes.end());
  if (n == 1) return out;

  const NetModel& net = runtime_->net();
  double completes_at = 0.0;
  if (net.enabled()) {
    common::VirtualClock& my_clock = clock();
    my_clock.advance(static_cast<double>(n - 1) * net.send_cost_s(bytes.size()));
    completes_at = my_clock.now() + net.latency_s();
  }
  for (int r = 0; r < n; ++r) {
    if (r == local_rank_) continue;
    Message m;
    m.source = local_rank_;
    m.tag = kTagAllgather;
    m.arrival_vt = completes_at;
    m.payload.assign(bytes.begin(), bytes.end());
    runtime_->dispatch(context_->key, context_->members[r], r, std::move(m));
  }
  for (int r = 0; r < n; ++r) {
    if (r == local_rank_) continue;
    Message m = recv(r, kTagAllgather);
    out[r] = std::move(m.payload);
  }
  return out;
}

double Comm::allreduce_sum(double value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  auto all = allgather(std::span<const std::uint8_t>(p, sizeof(double)));
  double total = 0.0;
  for (const auto& payload : all) {
    double v;
    CG_EXPECT(payload.size() == sizeof(double));
    std::memcpy(&v, payload.data(), sizeof(double));
    total += v;
  }
  return total;
}

double Comm::allreduce_max(double value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  auto all = allgather(std::span<const std::uint8_t>(p, sizeof(double)));
  double best = value;
  for (const auto& payload : all) {
    double v;
    CG_EXPECT(payload.size() == sizeof(double));
    std::memcpy(&v, payload.data(), sizeof(double));
    best = std::max(best, v);
  }
  return best;
}

std::optional<Comm> Comm::split(int color, int key) {
  const int new_context =
      runtime_->split_context(context_id_, local_rank_, color, key);
  if (new_context < 0) return std::nullopt;
  // Find our local rank in the new context.
  const auto& members = runtime_->context(new_context).members;
  const int my_world = world_rank_of(local_rank_);
  for (int r = 0; r < static_cast<int>(members.size()); ++r) {
    if (members[r] == my_world) return Comm(*runtime_, new_context, r);
  }
  CG_EXPECT(false && "split produced a context not containing the caller");
  return std::nullopt;
}

}  // namespace cellgan::minimpi
