// Message envelope passed between ranks.
//
// `arrival_vt` is the simulated arrival time stamped by the sender from its
// own virtual clock plus the NetModel transfer cost; a receiver's clock jumps
// to at least this value when it consumes the message (LogP-style
// store-and-forward accounting). In purely real-time runs it is 0 and
// harmless.
#pragma once

#include <cstdint>
#include <vector>

namespace cellgan::minimpi {

/// Matches any source / any tag in recv filters.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = kAnySource;  ///< local rank within the communicator
  int tag = 0;
  double arrival_vt = 0.0;  ///< simulated arrival time (seconds)
  std::vector<std::uint8_t> payload;
};

}  // namespace cellgan::minimpi
