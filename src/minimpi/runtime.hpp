// Execution harness of the minimpi world — the substitute for `mpirun`.
//
// A Runtime hosts one or more world ranks and routes every message through a
// Transport (transport.hpp). Two modes:
//
//   * In-process (historical): Runtime(world_size, ...) spawns
//     `world_size` threads, hands each a Comm bound to the WORLD
//     communicator, and joins them. All ranks are local; the InProcTransport
//     hands frames straight back to this Runtime's mailboxes.
//   * Distributed: Runtime(world_size, local_rank, transport, ...) hosts a
//     single rank of a multi-process world. Sends to remote ranks leave
//     through the transport (e.g. TcpTransport); a background receiver
//     feeds inbound frames into the same mailbox matching logic. run()
//     executes rank_main once, on the calling thread.
//
// Per-rank state (virtual clock, profiler, jitter RNG) lives in the Runtime
// and is returned to the caller when the program ends, which is how the
// scaling benchmarks read off per-rank simulated times. Communicator splits
// follow MPI_Comm_split semantics; in-process they rendezvous through shared
// memory, distributed they exchange (color, key) contributions over the
// transport and every member derives the same process-independent *context
// key* for the child communicator — the key is what frames carry on the
// wire, so equal split sequences on different processes name the same
// communicator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "minimpi/mailbox.hpp"
#include "minimpi/netmodel.hpp"
#include "minimpi/transport.hpp"

namespace cellgan::minimpi {

class Comm;

/// Everything a rank owns besides its mailboxes.
struct RankState {
  common::VirtualClock clock;
  common::Profiler profiler;
  common::Rng jitter_rng{0};
};

/// One communicator's shared plumbing: membership, per-member mailboxes and
/// the process-independent key frames carry on the wire. In distributed mode
/// only the local member's mailbox sees traffic; the others stay empty.
struct CommContext {
  std::uint64_t key = 0;
  std::vector<int> members;  ///< world rank of each local rank
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
};

class Runtime {
 public:
  /// In-process world: all `world_size` ranks live in this Runtime. `seed`
  /// keys the per-rank jitter streams (straggler noise); repeated runs with
  /// different seeds give the +-std columns of the benchmarks.
  explicit Runtime(int world_size, NetModelConfig net_config = {},
                   std::uint64_t seed = 0x5eedULL);

  /// Distributed world: this Runtime hosts `local_rank` only; every other
  /// rank is reached through `transport` (whose start() is invoked here and
  /// may block on the rendezvous — BootstrapError propagates). `seed` must
  /// be identical across the processes of one world for the per-rank jitter
  /// streams to match the in-process simulation.
  Runtime(int world_size, int local_rank, std::unique_ptr<Transport> transport,
          NetModelConfig net_config = {}, std::uint64_t seed = 0x5eedULL);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int world_size() const { return world_size_; }
  const NetModel& net() const { return net_; }

  /// True when this Runtime hosts a single rank of a multi-process world.
  bool distributed() const { return local_rank_ >= 0; }
  /// The hosted rank in distributed mode; -1 in-process.
  int local_rank() const { return local_rank_; }

  Transport& transport() { return *transport_; }

  struct RankResult {
    double virtual_time_s = 0.0;
    common::Profiler profiler;
  };

  /// Run `rank_main` on every hosted rank and block until it returns.
  /// In-process: world_size threads; an exception escaping any rank aborts
  /// the program (the fail-stop behaviour of an MPI job). Distributed: runs
  /// rank_main once on the calling thread; named errors (TimeoutError,
  /// TransportError, ...) propagate to the caller, which owns the process
  /// boundary. Returns per-rank results (distributed: only the local entry
  /// is populated).
  std::vector<RankResult> run(const std::function<void(Comm&)>& rank_main);

  /// Frames received for communicators this process has not (yet) created —
  /// early arrivals during a split, or strays with a corrupted context key.
  std::size_t pending_frames() const;

  /// Deadline for the distributed split rendezvous (a dead peer then
  /// surfaces as TimeoutError instead of hanging the split forever).
  void set_split_timeout(double seconds) { split_timeout_s_ = seconds; }

  // -- peer liveness --------------------------------------------------------
  //
  // In distributed mode the transport reports every lost peer stream here
  // (installed as its PeerLossHandler). The registry is what makes rank
  // death *observable from the rank's own thread*: death-aware receives in
  // Comm consult it and raise PeerDeathError instead of hanging, and a
  // recovery layer reads lost_peers() to decide who to respawn. In-process
  // worlds never record losses.

  /// Record that `world_rank`'s stream is gone. Thread-safe; first report
  /// of a rank wins (later ones keep the original reason).
  void note_peer_loss(int world_rank, bool clean_eof, std::string reason);
  /// True once `world_rank` was reported lost (cleanly or not).
  bool peer_lost(int world_rank) const;
  /// World ranks reported lost so far, ascending.
  std::vector<int> lost_peers() const;
  /// The recorded reason for a lost rank ("" when not lost).
  std::string peer_loss_reason(int world_rank) const;

  // -- internal API used by Comm ------------------------------------------

  RankState& rank_state(int world_rank);
  CommContext& context(int context_id);

  /// Hand `message` to (context, dst local rank), through the transport.
  /// The one way any payload moves between ranks, local or remote. route()
  /// resolves the addressing under the context lock; dispatch() is the
  /// lock-free fast path for callers (Comm) that already hold the immutable
  /// context key/membership.
  void route(int context_id, int dst_local_rank, Message message);
  void dispatch(std::uint64_t context_key, int dst_world_rank, int dst_local_rank,
                Message message);

  /// Transport delivery sink: file an inbound frame into the addressed
  /// mailbox (or park it until its communicator exists). Throws
  /// TransportError for frames this process cannot be the destination of.
  void ingest(Frame frame);

  /// Collective split: blocks until every member of `parent_context` has
  /// called, then returns the id of the new context for this caller, or -1
  /// if color < 0 (caller excluded). Thread-safe.
  int split_context(int parent_context, int caller_local_rank, int color, int key);

 private:
  int create_context_locked(std::vector<int> members, std::uint64_t key);
  void deliver_locked(CommContext& context, Frame frame);
  int split_context_distributed(int parent_context, int caller_local_rank,
                                int color, int key);

  int world_size_;
  int local_rank_ = -1;  ///< hosted rank in distributed mode; -1 in-process
  NetModel net_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<RankState>> rank_states_;
  double split_timeout_s_ = 120.0;

  struct PeerLoss {
    bool clean = false;
    std::string reason;
  };
  mutable std::mutex losses_mutex_;
  std::map<int, PeerLoss> losses_;  ///< world rank -> first recorded loss

  mutable std::mutex contexts_mutex_;
  std::vector<std::unique_ptr<CommContext>> contexts_;
  std::map<std::uint64_t, int> context_of_key_;
  std::map<std::uint64_t, std::vector<Frame>> pending_;  ///< early/stray frames

  // In-process split rendezvous state, keyed by (parent context, sequence#).
  struct SplitGroup {
    std::vector<int> colors;  // indexed by parent-local rank; -2 = not arrived
    std::vector<int> keys;
    int arrived = 0;
    bool built = false;
    std::map<int, int> context_of_member;  // parent-local rank -> new context id
  };
  std::map<std::pair<int, int>, SplitGroup> splits_;
  std::map<int, std::vector<int>> split_round_;  // per parent ctx, per local rank
  std::condition_variable split_cv_;
};

/// Bound (context, rank) pair — the object user code sends/receives through.
/// See comm.hpp.

}  // namespace cellgan::minimpi
