// Thread-per-rank execution harness — the substitute for `mpirun`.
//
// Runtime spawns `world_size` threads, hands each a Comm bound to the WORLD
// communicator, and joins them. Per-rank state (virtual clock, profiler,
// jitter RNG) lives in the Runtime and is returned to the caller when the
// program ends, which is how the scaling benchmarks read off per-rank
// simulated times. Communicator splits are coordinated through the Runtime
// (all members rendezvous, groups are formed by color, ordered by key) —
// the semantics of MPI_Comm_split.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "minimpi/mailbox.hpp"
#include "minimpi/netmodel.hpp"

namespace cellgan::minimpi {

class Comm;

/// Everything a rank owns besides its mailboxes.
struct RankState {
  common::VirtualClock clock;
  common::Profiler profiler;
  common::Rng jitter_rng{0};
};

/// One communicator's shared plumbing: membership and per-member mailboxes.
struct CommContext {
  std::vector<int> members;  ///< world rank of each local rank
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
};

class Runtime {
 public:
  /// `seed` keys the per-rank jitter streams (straggler noise); repeated
  /// runs with different seeds give the +-std columns of the benchmarks.
  explicit Runtime(int world_size, NetModelConfig net_config = {},
                   std::uint64_t seed = 0x5eedULL);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int world_size() const { return world_size_; }
  const NetModel& net() const { return net_; }

  struct RankResult {
    double virtual_time_s = 0.0;
    common::Profiler profiler;
  };

  /// Run `rank_main` on world_size threads. Blocks until all ranks return.
  /// An exception escaping any rank aborts the program (matching the
  /// fail-stop behaviour of an MPI job). Returns per-rank results.
  std::vector<RankResult> run(const std::function<void(Comm&)>& rank_main);

  // -- internal API used by Comm ------------------------------------------

  RankState& rank_state(int world_rank);
  CommContext& context(int context_id);

  /// Collective split: blocks until every member of `parent_context` has
  /// called, then returns the id of the new context for this caller, or -1
  /// if color < 0 (caller excluded). Thread-safe.
  int split_context(int parent_context, int caller_local_rank, int color, int key);

 private:
  int create_context_locked(std::vector<int> members);

  int world_size_;
  NetModel net_;
  std::vector<std::unique_ptr<RankState>> rank_states_;

  std::mutex contexts_mutex_;
  std::vector<std::unique_ptr<CommContext>> contexts_;

  // Split rendezvous state, keyed by (parent context, per-context sequence#).
  struct SplitGroup {
    std::vector<int> colors;  // indexed by parent-local rank; -2 = not arrived
    std::vector<int> keys;
    int arrived = 0;
    bool built = false;
    std::map<int, int> context_of_member;  // parent-local rank -> new context id
  };
  std::map<std::pair<int, int>, SplitGroup> splits_;
  std::map<int, std::vector<int>> split_round_;  // per parent ctx, per local rank
  std::condition_variable split_cv_;
};

/// Bound (context, rank) pair — the object user code sends/receives through.
/// See comm.hpp.

}  // namespace cellgan::minimpi
