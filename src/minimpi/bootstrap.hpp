// Rendezvous/bootstrap of a multi-process minimpi world.
//
// Deployment contract (mirrors an mpirun rank file): every process knows its
// rank, the world size, and the *rendezvous endpoint* — the host:port where
// rank 0 listens. Each peer binds its own ephemeral listener, registers
// (rank, endpoint) with rank 0, receives the full rank -> endpoint table
// back, and the processes then dial a full mesh (rank i connects to every
// j < i; the registration connection doubles as the 0<->i link). The three
// values arrive through the CELLGAN_RANK / CELLGAN_WORLD / CELLGAN_ENDPOINT
// environment variables, which is what `cellgan_launch` exports into the
// processes it forks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cellgan::minimpi {

inline constexpr const char* kEnvRank = "CELLGAN_RANK";
inline constexpr const char* kEnvWorld = "CELLGAN_WORLD";
inline constexpr const char* kEnvEndpoint = "CELLGAN_ENDPOINT";

/// host:port pair. Host must be a numeric IPv4 address (the launcher and the
/// two-terminal workflow both use explicit addresses; name resolution is a
/// deployment concern this layer stays out of).
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string to_string() const;
  static std::optional<Endpoint> parse(const std::string& text,
                                       std::string* error = nullptr);
};

/// The identity a process needs to join a world, as read from the
/// CELLGAN_* environment. nullopt (with a diagnostic naming the missing or
/// malformed variable) when the environment does not describe a world.
struct WorldEnv {
  int world_size = 0;
  int rank = -1;
  std::string rendezvous;  ///< rank 0's endpoint, unparsed
};

std::optional<WorldEnv> world_from_env(std::string* error);

// ---- socket helpers (shared by the TCP transport and the launcher) ---------

/// Bind + listen on `endpoint` (port 0 = ephemeral). Returns the fd, or -1
/// with `error` set.
int listen_on(const Endpoint& endpoint, std::string* error);

/// The actual bound address of a listening socket (resolves port 0).
Endpoint local_endpoint_of(int listen_fd);

/// Dial `endpoint`, retrying until `timeout_s` elapses (peers may start
/// before the listener is up). Returns the fd, or -1 with `error` set.
int connect_with_retry(const Endpoint& endpoint, double timeout_s,
                       std::string* error);

/// Write exactly `n` bytes (EINTR-safe, SIGPIPE suppressed). False on error.
bool write_all(int fd, const void* data, std::size_t n);

/// Read exactly `n` bytes. False on EOF or error (check errno / bytes read
/// via `got` when provided).
bool read_exact(int fd, void* data, std::size_t n, std::size_t* got = nullptr);

/// Reserve-and-release an ephemeral loopback port for a process that must
/// announce an endpoint before binding it (the launcher). The tiny window
/// between release and the child's bind is unavoidable without fd passing;
/// acceptable for a local launcher.
std::string pick_local_endpoint();

// ---- mesh bootstrap ---------------------------------------------------------

/// Fully-connected world as seen by one rank.
struct Mesh {
  /// One connected socket per peer world rank; entry [own rank] is -1.
  std::vector<int> peer_fds;
  /// rank -> listener endpoint table (informational once the mesh is up).
  std::vector<std::string> endpoints;
};

/// Run the rendezvous protocol over `listen_fd` (this rank's bound listener;
/// for rank 0 it must be bound to the rendezvous endpoint). Blocking; throws
/// BootstrapError naming the first rank/step that failed once `timeout_s`
/// elapses. On return every peer_fds entry is a connected stream socket.
Mesh bootstrap_mesh(int listen_fd, int rank, int world_size,
                    const Endpoint& rendezvous, double timeout_s);

}  // namespace cellgan::minimpi
