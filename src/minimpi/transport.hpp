// Transport seam of the minimpi runtime.
//
// A Transport moves *frames* — a Message plus the (context, destination)
// addressing the mailbox layer needs — between world ranks. The Runtime
// routes every send through its Transport and receives every delivery
// through a frame sink, so the execution substrate is pluggable:
//
//   InProcTransport  all ranks live in one process (thread-per-rank); a
//                    frame is handed straight back to the owning Runtime's
//                    sink — bit-identical to the historical direct mailbox
//                    push.
//   TcpTransport     one process per rank; frames are length-prefix encoded
//                    and carried over POSIX sockets (tcp_transport.hpp).
//
// The wire format lives here (encode_frame / decode_frame_header) so that
// framing is testable without sockets and shared by every remote transport.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace cellgan::minimpi {

/// One routed message: Message fields plus addressing. `context_key` is the
/// process-independent communicator id (Runtime derives equal keys for equal
/// split sequences on every member), `src_rank` / `dst_rank` are local ranks
/// within that communicator.
struct Frame {
  std::uint64_t context_key = 0;
  std::int32_t src_rank = 0;
  std::int32_t dst_rank = 0;
  std::int32_t tag = 0;
  double arrival_vt = 0.0;  ///< simulated arrival stamp (see message.hpp)
  std::vector<std::uint8_t> payload;
};

// ---- wire format -----------------------------------------------------------
//
// [magic u32][context_key u64][src i32][dst i32][tag i32][arrival_vt f64]
// [payload_len u64][payload bytes], all fields little-endian.

/// Little-endian integer codec shared by every wire format in minimpi (frame
/// headers here, bootstrap handshake messages, split contributions).
inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void store_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline constexpr std::uint32_t kFrameMagic = 0x31464743;  // "CGF1"
inline constexpr std::size_t kFrameHeaderBytes = 4 + 8 + 4 + 4 + 4 + 8 + 8;
/// Upper bound on a frame payload: far above any genome/result message but
/// small enough that a corrupted length field cannot trigger a huge
/// allocation before being rejected.
inline constexpr std::uint64_t kMaxFramePayload = 1ULL << 30;

/// Serialize header + payload into one contiguous buffer.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

enum class FrameDecodeStatus {
  kOk,           ///< header valid; *payload_len more bytes complete the frame
  kNeedMore,     ///< fewer than kFrameHeaderBytes available
  kBadMagic,     ///< bytes do not start a frame
  kOversized,    ///< payload length exceeds kMaxFramePayload
};

const char* to_string(FrameDecodeStatus status);

/// Validate and decode a frame header from the front of `bytes`. On kOk the
/// header fields of `out` are filled (payload untouched) and `payload_len`
/// receives the advertised payload size.
FrameDecodeStatus decode_frame_header(std::span<const std::uint8_t> bytes,
                                      Frame* out, std::uint64_t* payload_len);

// ---- transport interface ---------------------------------------------------

/// Delivery callback: invoked (possibly from a background receiver thread)
/// with every frame addressed to this process. The Runtime installs its
/// ingest function here.
using FrameSink = std::function<void(Frame)>;

/// Peer-loss callback: invoked (from an I/O thread) when the link to
/// `world_rank` is gone for good. `clean_eof` distinguishes an orderly FIN
/// between frames from a mid-frame/mid-write failure — but note that a
/// SIGKILLed process also produces a *clean* EOF (the kernel closes its
/// sockets), so the interpretation of a loss (expected teardown vs. rank
/// death) belongs to the receive call sites, not the transport.
using PeerLossHandler =
    std::function<void(int world_rank, bool clean_eof, const std::string& reason)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Install the delivery callback. Must be called before start()/send().
  void set_sink(FrameSink sink) { sink_ = std::move(sink); }

  /// Install the peer-loss callback. Must be called before start(). Optional:
  /// without one, losses are only logged by the transport.
  void set_peer_loss_handler(PeerLossHandler handler) {
    peer_loss_handler_ = std::move(handler);
  }

  /// Establish connectivity (blocking). InProc: no-op. Tcp: rendezvous with
  /// every peer and spawn the per-peer I/O threads; throws BootstrapError.
  virtual void start() {}

  /// Deliver `frame` to `dst_world_rank`. Never blocks on the destination
  /// consuming it (buffered-send semantics, like Comm::send).
  virtual void send(int dst_world_rank, Frame frame) = 0;

  /// Flush queued outbound frames and release I/O resources. Idempotent.
  virtual void shutdown() {}

  virtual const char* name() const = 0;

 protected:
  FrameSink sink_;
  PeerLossHandler peer_loss_handler_;
};

/// The historical single-process path behind the Transport interface: every
/// world rank shares one Runtime, so delivery is the owning Runtime's sink.
class InProcTransport final : public Transport {
 public:
  void send(int dst_world_rank, Frame frame) override;
  const char* name() const override { return "inproc"; }
};

}  // namespace cellgan::minimpi
