// Per-rank, per-communicator message queue.
//
// FIFO per (source, tag) — the MPI non-overtaking guarantee — implemented by
// scanning the arrival-ordered queue for the first envelope matching the
// receive filter. Blocking, timed and non-blocking receives are provided;
// the timed variant backs the heartbeat protocol's "wait X seconds" poll.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "minimpi/message.hpp"

namespace cellgan::minimpi {

class Mailbox {
 public:
  /// Enqueue (thread-safe); wakes blocked receivers.
  void push(Message message);

  /// Block until a message matching (source, tag) is available and remove it.
  /// kAnySource / kAnyTag act as wildcards.
  Message pop(int source, int tag);

  /// Like pop() but gives up after `timeout_s` real seconds.
  std::optional<Message> pop_for(int source, int tag, double timeout_s);

  /// Deadline-aware pop: like pop_for but against an absolute deadline, so a
  /// caller waiting on several sources can share one overall budget. The
  /// building block of Comm::recv_timeout (a dead peer surfaces as a named
  /// error instead of an infinite hang).
  std::optional<Message> pop_until(int source, int tag,
                                   std::chrono::steady_clock::time_point deadline);

  /// Non-blocking: remove and return a matching message if one is queued.
  std::optional<Message> try_pop(int source, int tag);

  /// Non-blocking, causality-respecting: like try_pop but only yields a
  /// message whose simulated arrival time is <= `now_vt` — a rank polling
  /// its mailbox must not see messages "from the future". Pass +inf (or use
  /// try_pop) when virtual time is off.
  std::optional<Message> try_pop_arrived(int source, int tag, double now_vt);

  /// Non-destructive check for a matching message.
  bool probe(int source, int tag);

  std::size_t size() const;

 private:
  std::optional<Message> extract_locked(int source, int tag);

  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<Message> queue_;
};

}  // namespace cellgan::minimpi
