#include "nn/init.hpp"

#include <cmath>

#include "nn/linear.hpp"

namespace cellgan::nn {

void xavier_uniform_init(Sequential& net, common::Rng& rng) {
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    auto* linear = dynamic_cast<Linear*>(&net.layer(i));
    if (linear == nullptr) continue;
    const double fan_in = static_cast<double>(linear->in_features());
    const double fan_out = static_cast<double>(linear->out_features());
    const double a = std::sqrt(6.0 / (fan_in + fan_out));
    for (auto& w : linear->weight().data()) {
      w = static_cast<float>(rng.uniform(-a, a));
    }
    linear->bias().fill(0.0f);
  }
}

void normal_init(Sequential& net, common::Rng& rng, float stddev) {
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    auto* linear = dynamic_cast<Linear*>(&net.layer(i));
    if (linear == nullptr) continue;
    for (auto& w : linear->weight().data()) {
      w = static_cast<float>(rng.normal(0.0, stddev));
    }
    linear->bias().fill(0.0f);
  }
}

}  // namespace cellgan::nn
