#include "nn/activations.hpp"

#include "tensor/ops.hpp"

namespace cellgan::nn {

tensor::Tensor Tanh::forward(const tensor::Tensor& input) {
  cached_output_ = tensor::tanh_forward(input);
  return cached_output_;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& grad_output) {
  return tensor::tanh_backward(grad_output, cached_output_);
}

tensor::Tensor Sigmoid::forward(const tensor::Tensor& input) {
  cached_output_ = tensor::sigmoid_forward(input);
  return cached_output_;
}

tensor::Tensor Sigmoid::backward(const tensor::Tensor& grad_output) {
  return tensor::sigmoid_backward(grad_output, cached_output_);
}

tensor::Tensor LeakyReLU::forward(const tensor::Tensor& input) {
  cached_input_ = input;
  return tensor::leaky_relu_forward(input, negative_slope_);
}

tensor::Tensor LeakyReLU::backward(const tensor::Tensor& grad_output) {
  return tensor::leaky_relu_backward(grad_output, cached_input_, negative_slope_);
}

}  // namespace cellgan::nn
