// Layer abstraction: explicit forward / backward with cached activations.
//
// No tape autograd — the paper's networks are straight-line MLPs, so each
// layer caches what its backward pass needs (input or output) and backward()
// must be called after the matching forward(). Parameters and their gradients
// are exposed as tensor pointers so optimizers and the genome codec
// (flatten/unflatten) can walk them uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace cellgan::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute outputs for a batch (rows = samples). May cache for backward.
  virtual tensor::Tensor forward(const tensor::Tensor& input) = 0;

  /// Given dL/d(output), accumulate parameter gradients and return dL/d(input).
  /// Requires a preceding forward() on the same batch.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<tensor::Tensor*> parameters() { return {}; }
  /// Gradients, 1:1 with parameters().
  virtual std::vector<tensor::Tensor*> gradients() { return {}; }

  /// Set all gradients to zero.
  virtual void zero_grad() {}

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace cellgan::nn
