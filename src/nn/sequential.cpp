#include "nn/sequential.hpp"

#include <algorithm>

namespace cellgan::nn {

Sequential& Sequential::add(LayerPtr layer) {
  CG_EXPECT(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

tensor::Tensor Sequential::forward(const tensor::Tensor& input) {
  tensor::Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<tensor::Tensor*> Sequential::parameters() {
  std::vector<tensor::Tensor*> out;
  for (auto& layer : layers_) {
    for (auto* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<tensor::Tensor*> Sequential::gradients() {
  std::vector<tensor::Tensor*> out;
  for (auto& layer : layers_) {
    for (auto* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::size_t Sequential::parameter_count() {
  std::size_t total = 0;
  for (auto* p : parameters()) total += p->size();
  return total;
}

std::vector<float> Sequential::flatten_parameters() {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (auto* p : parameters()) {
    auto d = p->data();
    flat.insert(flat.end(), d.begin(), d.end());
  }
  return flat;
}

void Sequential::load_parameters(std::span<const float> flat) {
  std::size_t offset = 0;
  for (auto* p : parameters()) {
    CG_EXPECT(offset + p->size() <= flat.size());
    std::copy(flat.begin() + offset, flat.begin() + offset + p->size(),
              p->data().begin());
    offset += p->size();
  }
  CG_EXPECT(offset == flat.size());
}

}  // namespace cellgan::nn
