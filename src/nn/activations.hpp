// Parameter-free activation layers.
#pragma once

#include "nn/module.hpp"

namespace cellgan::nn {

class Tanh final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  tensor::Tensor cached_output_;
};

class Sigmoid final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  tensor::Tensor cached_output_;
};

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.2f) : negative_slope_(negative_slope) {}
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  float negative_slope_;
  tensor::Tensor cached_input_;
};

}  // namespace cellgan::nn
