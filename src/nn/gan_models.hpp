// Factories for the paper's exact network topologies (Table I) plus
// scaled-down variants used by tests and wall-clock benchmarks.
//
// Table I:  MLP, 64 input neurons, 2 hidden layers of 256, 784 outputs,
// tanh activations. The generator maps latent (64) -> image (784, tanh in
// [-1,1]); the discriminator mirrors it, 784 -> 256 -> 256 -> 1, emitting a
// raw logit (the loss is BCE-with-logits for numerical stability).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "nn/sequential.hpp"

namespace cellgan::nn {

/// Network shape descriptor shared by generator/discriminator factories.
struct GanArch {
  std::size_t latent_dim = 64;
  std::size_t hidden_dim = 256;
  std::size_t hidden_layers = 2;
  std::size_t image_dim = 784;  // 28*28

  /// The paper's configuration (Table I).
  static GanArch paper();
  /// Tiny nets for fast unit/integration tests (latent 8, hidden 16, image 64).
  static GanArch tiny();

  std::size_t generator_parameter_count() const;
  std::size_t discriminator_parameter_count() const;

  friend bool operator==(const GanArch&, const GanArch&) = default;
};

/// latent (+ label_dims one-hot columns when conditional) -> hidden^k (tanh)
/// -> image (tanh).
Sequential make_generator(const GanArch& arch, common::Rng& rng,
                          std::size_t label_dims = 0);

/// image (+ label_dims one-hot columns when conditional) -> hidden^k (tanh)
/// -> 1 logit.
Sequential make_discriminator(const GanArch& arch, common::Rng& rng,
                              std::size_t label_dims = 0);

}  // namespace cellgan::nn
