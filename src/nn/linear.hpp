// Fully-connected layer: y = x W + b, W is (in x out), b is (1 x out).
#pragma once

#include "nn/module.hpp"

namespace cellgan::nn {

class Linear final : public Layer {
 public:
  /// Weights start zero; call an initializer (nn/init.hpp) before training.
  Linear(std::size_t in_features, std::size_t out_features);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;

  std::vector<tensor::Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<tensor::Tensor*> gradients() override { return {&grad_weight_, &grad_bias_}; }
  void zero_grad() override;

  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return weight_.rows(); }
  std::size_t out_features() const { return weight_.cols(); }

  tensor::Tensor& weight() { return weight_; }
  tensor::Tensor& bias() { return bias_; }

 private:
  tensor::Tensor weight_;       // in x out
  tensor::Tensor bias_;         // 1 x out
  tensor::Tensor grad_weight_;  // in x out
  tensor::Tensor grad_bias_;    // 1 x out
  tensor::Tensor cached_input_; // batch x in
};

}  // namespace cellgan::nn
