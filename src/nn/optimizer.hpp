// Gradient-descent optimizers.
//
// The learning rate is mutable at any time: Lipizzaner's hyperparameter
// mutation perturbs the Adam learning rate between epochs (Table I:
// mutation rate 1e-4, probability 0.5), so set_learning_rate() is part of
// the optimizer contract, and Adam moment state survives rate changes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "nn/module.hpp"

namespace cellgan::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update step from the layer's accumulated gradients.
  virtual void step(Layer& layer) = 0;

  virtual void set_learning_rate(double lr) = 0;
  virtual double learning_rate() const = 0;

  /// Reset internal state (moments, step counter).
  virtual void reset() = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr) : lr_(lr) {}

  void step(Layer& layer) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  double learning_rate() const override { return lr_; }
  void reset() override {}

 private:
  double lr_;
};

/// Adam (Kingma & Ba, 2015) with bias correction — the paper's optimizer
/// (initial learning rate 2e-4).
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  void step(Layer& layer) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  double learning_rate() const override { return lr_; }
  void reset() override;

  std::uint64_t steps_taken() const { return t_; }

  /// Moment-state access for checkpointing: resuming a run mid-training must
  /// restore m/v/t exactly or the next update's bias correction (and thus
  /// every parameter after it) diverges from the uninterrupted run.
  const std::vector<std::vector<float>>& first_moments() const { return m_; }
  const std::vector<std::vector<float>>& second_moments() const { return v_; }
  void restore_moments(std::uint64_t steps, std::vector<std::vector<float>> m,
                       std::vector<std::vector<float>> v) {
    t_ = steps;
    m_ = std::move(m);
    v_ = std::move(v);
  }

 private:
  double lr_, beta1_, beta2_, epsilon_;
  std::uint64_t t_ = 0;
  // Flat moment buffers, 1:1 with the layer's parameter tensors.
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace cellgan::nn
