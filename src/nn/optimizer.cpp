#include "nn/optimizer.hpp"

#include <cmath>

#include "tensor/flops.hpp"

namespace cellgan::nn {

void Sgd::step(Layer& layer) {
  auto params = layer.parameters();
  auto grads = layer.gradients();
  CG_EXPECT(params.size() == grads.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->data();
    auto g = grads[i]->data();
    CG_EXPECT(p.size() == g.size());
    tensor::count_flops(2ULL * p.size());
    const float lr = static_cast<float>(lr_);
    for (std::size_t j = 0; j < p.size(); ++j) p[j] -= lr * g[j];
  }
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void Adam::step(Layer& layer) {
  auto params = layer.parameters();
  auto grads = layer.gradients();
  CG_EXPECT(params.size() == grads.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), {});
    v_.assign(params.size(), {});
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float step_size = static_cast<float>(lr_ / bc1);
  const float b1 = static_cast<float>(beta1_), b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(epsilon_);
  const float inv_sqrt_bc2 = static_cast<float>(1.0 / std::sqrt(bc2));

  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->data();
    auto g = grads[i]->data();
    CG_EXPECT(p.size() == g.size());
    if (m_[i].size() != p.size()) {
      m_[i].assign(p.size(), 0.0f);
      v_[i].assign(p.size(), 0.0f);
    }
    tensor::count_flops(10ULL * p.size());
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      p[j] -= step_size * m[j] / (std::sqrt(v[j]) * inv_sqrt_bc2 + eps);
    }
  }
}

void Adam::reset() {
  t_ = 0;
  m_.clear();
  v_.clear();
}

}  // namespace cellgan::nn
