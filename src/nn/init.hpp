// Weight initialization schemes.
#pragma once

#include "common/rng.hpp"
#include "nn/sequential.hpp"

namespace cellgan::nn {

/// Xavier/Glorot uniform on every Linear layer: W ~ U(-a, a) with
/// a = sqrt(6 / (fan_in + fan_out)); biases zero.
void xavier_uniform_init(Sequential& net, common::Rng& rng);

/// N(0, stddev) on weights, zero biases (DCGAN-style).
void normal_init(Sequential& net, common::Rng& rng, float stddev = 0.02f);

}  // namespace cellgan::nn
