#include "nn/gan_models.hpp"

#include <memory>

#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"

namespace cellgan::nn {

GanArch GanArch::paper() { return GanArch{64, 256, 2, 784}; }

GanArch GanArch::tiny() { return GanArch{8, 16, 2, 64}; }

namespace {
std::size_t mlp_parameter_count(std::size_t in, std::size_t hidden,
                                std::size_t hidden_layers, std::size_t out) {
  std::size_t total = (in + 1) * hidden;
  for (std::size_t i = 1; i < hidden_layers; ++i) total += (hidden + 1) * hidden;
  total += (hidden + 1) * out;
  return total;
}
}  // namespace

std::size_t GanArch::generator_parameter_count() const {
  return mlp_parameter_count(latent_dim, hidden_dim, hidden_layers, image_dim);
}

std::size_t GanArch::discriminator_parameter_count() const {
  return mlp_parameter_count(image_dim, hidden_dim, hidden_layers, 1);
}

Sequential make_generator(const GanArch& arch, common::Rng& rng,
                          std::size_t label_dims) {
  Sequential net;
  net.add(std::make_unique<Linear>(arch.latent_dim + label_dims, arch.hidden_dim));
  net.add(std::make_unique<Tanh>());
  for (std::size_t i = 1; i < arch.hidden_layers; ++i) {
    net.add(std::make_unique<Linear>(arch.hidden_dim, arch.hidden_dim));
    net.add(std::make_unique<Tanh>());
  }
  net.add(std::make_unique<Linear>(arch.hidden_dim, arch.image_dim));
  net.add(std::make_unique<Tanh>());
  xavier_uniform_init(net, rng);
  return net;
}

Sequential make_discriminator(const GanArch& arch, common::Rng& rng,
                              std::size_t label_dims) {
  Sequential net;
  net.add(std::make_unique<Linear>(arch.image_dim + label_dims, arch.hidden_dim));
  net.add(std::make_unique<Tanh>());
  for (std::size_t i = 1; i < arch.hidden_layers; ++i) {
    net.add(std::make_unique<Linear>(arch.hidden_dim, arch.hidden_dim));
    net.add(std::make_unique<Tanh>());
  }
  net.add(std::make_unique<Linear>(arch.hidden_dim, 1));
  xavier_uniform_init(net, rng);
  return net;
}

}  // namespace cellgan::nn
