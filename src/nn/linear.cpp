#include "nn/linear.hpp"

#include "tensor/ops.hpp"

namespace cellgan::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : weight_(in_features, out_features),
      bias_(1, out_features),
      grad_weight_(in_features, out_features),
      grad_bias_(1, out_features) {}

tensor::Tensor Linear::forward(const tensor::Tensor& input) {
  CG_EXPECT(input.cols() == weight_.rows());
  cached_input_ = input;
  tensor::Tensor out = tensor::matmul(input, weight_);
  tensor::add_row_bias(out, bias_);
  return out;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_output) {
  CG_EXPECT(grad_output.rows() == cached_input_.rows());
  CG_EXPECT(grad_output.cols() == weight_.cols());
  // dW += x^T dy ; db += colsum(dy) ; dx = dy W^T
  tensor::axpy(1.0f, tensor::matmul_tn(cached_input_, grad_output), grad_weight_);
  tensor::axpy(1.0f, tensor::col_sum(grad_output), grad_bias_);
  return tensor::matmul_nt(grad_output, weight_);
}

void Linear::zero_grad() {
  grad_weight_.fill(0.0f);
  grad_bias_.fill(0.0f);
}

}  // namespace cellgan::nn
