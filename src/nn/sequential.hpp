// Sequential container + parameter flattening (the genome codec).
//
// Cellular training ships whole networks between grid cells; a network's
// "genome" is the flat float vector of all parameters in layer order.
// flatten_parameters / load_parameters are the exact codec the comm-manager
// uses to serialize a center individual into a neighbor-exchange message.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace cellgan::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Takes ownership. Returns *this for chaining.
  Sequential& add(LayerPtr layer);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;

  std::vector<tensor::Tensor*> parameters() override;
  std::vector<tensor::Tensor*> gradients() override;
  void zero_grad() override;

  std::string name() const override { return "Sequential"; }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Total number of scalar parameters.
  std::size_t parameter_count();

  /// Copy all parameters into one flat vector (layer order, row-major).
  std::vector<float> flatten_parameters();

  /// Inverse of flatten_parameters; size must match parameter_count().
  void load_parameters(std::span<const float> flat);

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace cellgan::nn
