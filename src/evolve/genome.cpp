#include "evolve/genome.hpp"

#include "common/serialize.hpp"

namespace cellgan::evolve {

std::size_t CellGenome::byte_size() const {
  return sizeof(float) * (generator_params.size() + discriminator_params.size()) +
         4 * sizeof(double) + 2 * sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
}

std::vector<std::uint8_t> CellGenome::serialize() const {
  common::ByteWriter w;
  w.write_vector(generator_params);
  w.write_vector(discriminator_params);
  w.write(g_learning_rate);
  w.write(d_learning_rate);
  w.write(g_fitness);
  w.write(d_fitness);
  w.write(origin_cell);
  w.write(iteration);
  return w.take();
}

CellGenome CellGenome::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  CellGenome g;
  g.generator_params = r.read_vector<float>();
  g.discriminator_params = r.read_vector<float>();
  g.g_learning_rate = r.read<double>();
  g.d_learning_rate = r.read<double>();
  g.g_fitness = r.read<double>();
  g.d_fitness = r.read<double>();
  g.origin_cell = r.read<std::uint32_t>();
  g.iteration = r.read<std::uint32_t>();
  CG_ENSURE(r.exhausted());
  return g;
}

CellGenome CellGenome::capture(nn::Sequential& generator,
                               nn::Sequential& discriminator) {
  CellGenome g;
  g.generator_params = generator.flatten_parameters();
  g.discriminator_params = discriminator.flatten_parameters();
  return g;
}

void CellGenome::install(nn::Sequential& generator,
                         nn::Sequential& discriminator) const {
  generator.load_parameters(generator_params);
  discriminator.load_parameters(discriminator_params);
}

}  // namespace cellgan::evolve
