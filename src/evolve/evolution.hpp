// Evolutionary operators of the cellular coevolutionary algorithm:
// tournament selection (Table I: tournament size 2) and Gaussian
// hyperparameter mutation of the Adam learning rate (Table I: mutation rate
// 1e-4, probability 0.5).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace cellgan::evolve {

/// Pick the best (lowest-fitness) of `tournament_size` uniformly drawn
/// entrants. Fitnesses are losses: lower is better.
std::size_t tournament_select(const std::vector<double>& fitnesses,
                              std::size_t tournament_size, common::Rng& rng);

/// With probability `probability`, perturb `learning_rate` by N(0, sigma),
/// clamped to a small positive floor so optimizers stay sane. Returns the
/// (possibly unchanged) new rate.
double mutate_learning_rate(double learning_rate, double sigma, double probability,
                            common::Rng& rng);

}  // namespace cellgan::evolve
