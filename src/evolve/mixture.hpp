// Neighborhood generator mixtures.
//
// Lipizzaner's final product is not a single generator but the sub-population
// of a neighborhood combined with mixture weights: samples are drawn from
// generator i with probability w_i. Weights evolve by Gaussian mutation
// (Table I: mixture mutation scale 0.01) under (1+1)-ES selection on the
// mixture's quality.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::evolve {

class MixtureWeights {
 public:
  /// Uniform weights over `size` generators.
  explicit MixtureWeights(std::size_t size);

  std::size_t size() const { return weights_.size(); }
  double weight(std::size_t i) const { return weights_[i]; }
  const std::vector<double>& weights() const { return weights_; }

  /// Replace weights (renormalized; non-negative required).
  void set_weights(std::vector<double> w);

  /// Install already-normalized weights verbatim (checkpoint restore):
  /// renormalizing an (approximately) unit-sum vector would perturb its
  /// low-order bits and break bit-exact resume. Requires non-negative
  /// weights summing to ~1.
  void restore_weights(std::vector<double> w);

  /// Gaussian-perturb every weight with stddev `scale`, clamp at zero,
  /// renormalize. Returns the mutated copy (callers keep the original for
  /// (1+1)-ES selection).
  MixtureWeights mutated(double scale, common::Rng& rng) const;

  /// Sample a generator index from the weight distribution.
  std::size_t sample_index(common::Rng& rng) const;

  std::vector<std::uint8_t> serialize() const;
  static MixtureWeights deserialize(std::span<const std::uint8_t> bytes);

 private:
  void normalize();
  std::vector<double> weights_;
};

/// The stochastic half of a mixture draw: which generator produces each of
/// the `count` output rows, and the latent inputs already grouped per
/// generator. Splitting this from the forward passes lets a serving batcher
/// plan many requests independently (each on its own rng stream) and then
/// run ONE forward per generator over the concatenated latents — the
/// per-request outputs stay bit-identical to a solo draw because every GEMM
/// kernel accumulates each output row in a partition-independent order.
struct MixtureDraw {
  std::size_t count = 0;
  std::vector<std::vector<std::size_t>> rows_of;  ///< per generator: output rows
  std::vector<tensor::Tensor> latents;            ///< per generator (empty if unused)
};

/// Consume `rng` exactly as sample_mixture does (count generator-index draws,
/// then, per non-empty generator in index order, the conditional label draws
/// — when label_classes > 0 — followed by that generator's randn block) and
/// return the plan. Conditional plans carry latent_dim + label_classes wide
/// latents with the one-hot label appended, ready for a conditional
/// generator's forward.
MixtureDraw plan_mixture_draw(const MixtureWeights& weights,
                              std::size_t generators, std::size_t latent_dim,
                              std::size_t count, common::Rng& rng,
                              std::size_t label_classes = 0);

/// Scatter one generator's forward output back into the draw's output rows.
/// `out` must be count x image_dim.
void scatter_mixture_rows(const MixtureDraw& draw, std::size_t generator,
                          const tensor::Tensor& images, tensor::Tensor& out);

/// Draw `count` samples from the weighted ensemble: each row comes from the
/// generator selected by the mixture distribution, fed with a fresh latent
/// vector z ~ N(0,1)^latent_dim (plus a uniform one-hot class label when
/// label_classes > 0 — class-conditional generators).
tensor::Tensor sample_mixture(const MixtureWeights& weights,
                              std::vector<nn::Sequential*> generators,
                              std::size_t latent_dim, std::size_t count,
                              common::Rng& rng, std::size_t label_classes = 0);

}  // namespace cellgan::evolve
