#include "evolve/exchange.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace cellgan::evolve {

const char* to_string(ExchangePolicyKind kind) {
  switch (kind) {
    case ExchangePolicyKind::kAuto: return "auto";
    case ExchangePolicyKind::kCellular: return "cellular";
    case ExchangePolicyKind::kLtfb: return "ltfb";
    case ExchangePolicyKind::kGap: return "gap";
  }
  return "unknown";
}

std::optional<ExchangePolicyKind> exchange_policy_from_string(std::string_view name) {
  if (name == "auto") return ExchangePolicyKind::kAuto;
  if (name == "cellular") return ExchangePolicyKind::kCellular;
  if (name == "ltfb") return ExchangePolicyKind::kLtfb;
  if (name == "gap") return ExchangePolicyKind::kGap;
  return std::nullopt;
}

std::vector<std::string> exchange_policy_names() {
  return {"cellular", "ltfb", "gap"};
}

ExchangePolicyKind resolve_exchange_policy(ExchangePolicyKind requested) {
  if (requested != ExchangePolicyKind::kAuto) return requested;
  static const ExchangePolicyKind env_default = [] {
    const char* env = std::getenv("CELLGAN_EXCHANGE");
    if (env == nullptr || *env == '\0') return ExchangePolicyKind::kCellular;
    const auto parsed = exchange_policy_from_string(env);
    if (parsed.has_value() && *parsed != ExchangePolicyKind::kAuto) return *parsed;
    std::fprintf(stderr,
                 "warning: CELLGAN_EXCHANGE='%s' is not cellular|ltfb|gap; "
                 "using cellular\n",
                 env);
    return ExchangePolicyKind::kCellular;
  }();
  return env_default;
}

std::vector<int> ltfb_pairing(std::uint64_t seed, int cells, std::uint64_t round) {
  CG_EXPECT(cells > 0);
  // A pure function of (seed, round): fork a throwaway stream instead of
  // advancing any live generator, so every rank — and every replay — computes
  // the identical table at any point in the run.
  common::Rng rng = common::Rng(seed).fork(kLtfbPairingStream).fork(round);
  std::vector<std::uint32_t> order(static_cast<std::size_t>(cells));
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  std::vector<int> partner(static_cast<std::size_t>(cells), -1);
  for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
    partner[order[i]] = static_cast<int>(order[i + 1]);
    partner[order[i + 1]] = static_cast<int>(order[i]);
  }
  return partner;
}

void ExchangePolicy::serialize_state(common::ByteWriter&) const {}
void ExchangePolicy::restore_state(common::ByteReader&) {}

namespace {

/// Install freshly gathered neighbor genomes into the subpopulation — the
/// first half of the pre-seam CellTrainer::update_genomes, shared by every
/// policy so tournament selection and the neighborhood mixture keep working
/// under ltfb/gap. Returns the installed byte count (the gather payload the
/// cost model charges for).
double install_neighbor_genomes(ExchangeHost& host,
                                std::span<const std::vector<std::uint8_t>> gathered) {
  double bytes_in = 0.0;
  const auto& neighbors = host.grid().neighbors_of(host.cell());
  CG_EXPECT(neighbors.size() == host.subpop_slots());
  for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
    const int neighbor = neighbors[slot];
    if (neighbor >= static_cast<int>(gathered.size())) continue;
    const auto& bytes = gathered[neighbor];
    if (bytes.empty()) continue;
    host.install_subpop(slot, CellGenome::deserialize(bytes));
    bytes_in += static_cast<double>(bytes.size());
  }
  return bytes_in;
}

/// Deserialize cell `source`'s gathered genome, nullopt when absent.
std::optional<CellGenome> gathered_genome(
    std::span<const std::vector<std::uint8_t>> gathered, int source) {
  if (source < 0 || source >= static_cast<int>(gathered.size())) return std::nullopt;
  if (gathered[source].empty()) return std::nullopt;
  return CellGenome::deserialize(gathered[source]);
}

bool is_neighbor_of(const Grid& grid, int cell, int other) {
  const auto& neighbors = grid.neighbors_of(cell);
  return std::find(neighbors.begin(), neighbors.end(), other) != neighbors.end();
}

// --- cellular ---------------------------------------------------------------

/// The paper's Section II.B migration: install gathered neighbors, then a
/// strictly fitter neighbor center replaces the local center, per side. The
/// body replicates the pre-seam CellTrainer::update_genomes exactly (same
/// scan order, same strict comparisons), so existing runs are bit-identical.
class CellularPolicy final : public ExchangePolicy {
 public:
  ExchangePolicyKind kind() const override { return ExchangePolicyKind::kCellular; }

  std::vector<int> sources(const Grid& grid, int cell, std::uint32_t) const override {
    return grid.neighbors_of(cell);
  }

  ExchangeOutcome apply(ExchangeHost& host,
                        std::span<const std::vector<std::uint8_t>> gathered,
                        std::uint32_t) override {
    ExchangeOutcome outcome;
    outcome.g_fitness_before = host.g_fitness();
    outcome.d_fitness_before = host.d_fitness();
    outcome.bytes_in = install_neighbor_genomes(host, gathered);

    // Selection: a strictly fitter neighbor center replaces the local center
    // (parameters, learning rate and bookkeeping fitness), per side.
    const CellGenome* best_g = nullptr;
    const CellGenome* best_d = nullptr;
    for (std::size_t slot = 0; slot < host.subpop_slots(); ++slot) {
      const CellGenome* genome = host.subpop_genome(slot);
      if (genome == nullptr) continue;
      if (genome->g_fitness < host.g_fitness() &&
          (best_g == nullptr || genome->g_fitness < best_g->g_fitness)) {
        best_g = genome;
      }
      if (genome->d_fitness < host.d_fitness() &&
          (best_d == nullptr || genome->d_fitness < best_d->d_fitness)) {
        best_d = genome;
      }
    }
    if (best_g != nullptr) {
      host.adopt_generator(*best_g);
      outcome.g_adopted = true;
      outcome.partner = static_cast<std::int32_t>(best_g->origin_cell);
    }
    if (best_d != nullptr) {
      host.adopt_discriminator(*best_d);
      outcome.d_adopted = true;
      if (best_g == nullptr) {
        outcome.partner = static_cast<std::int32_t>(best_d->origin_cell);
      }
    }
    outcome.g_fitness_after = host.g_fitness();
    outcome.d_fitness_after = host.d_fitness();
    return outcome;
  }
};

// --- ltfb -------------------------------------------------------------------

/// LBANN-style tournament: on each cadence epoch a deterministic seeded
/// pairing matches the grid's cells in pairs; both partners compare their
/// exported generator fitnesses (losses, lower is better; ties break toward
/// the lower cell id) and the loser adopts the winner's whole genome. Between
/// tournaments the neighbor subpopulation keeps flowing, so in-epoch
/// tournament selection and the mixture stay functional.
class LtfbPolicy final : public ExchangePolicy {
 public:
  LtfbPolicy(std::uint64_t seed, std::uint32_t every) : seed_(seed), every_(every) {
    CG_EXPECT(every_ >= 1);
  }

  ExchangePolicyKind kind() const override { return ExchangePolicyKind::kLtfb; }

  std::vector<int> sources(const Grid& grid, int cell,
                           std::uint32_t epoch) const override {
    std::vector<int> out = grid.neighbors_of(cell);
    if (tournament_epoch(epoch)) {
      const int partner = ltfb_pairing(seed_, grid.size(), round_of(epoch))[cell];
      if (partner >= 0 && std::find(out.begin(), out.end(), partner) == out.end()) {
        out.push_back(partner);
      }
    }
    return out;
  }

  ExchangeOutcome apply(ExchangeHost& host,
                        std::span<const std::vector<std::uint8_t>> gathered,
                        std::uint32_t epoch) override {
    ExchangeOutcome outcome;
    outcome.g_fitness_before = host.g_fitness();
    outcome.d_fitness_before = host.d_fitness();
    outcome.bytes_in = install_neighbor_genomes(host, gathered);
    outcome.wins = wins_;
    if (!tournament_epoch(epoch)) {
      outcome.g_fitness_after = host.g_fitness();
      outcome.d_fitness_after = host.d_fitness();
      return outcome;
    }
    const Grid& grid = host.grid();
    const int cell = host.cell();
    const int partner = ltfb_pairing(seed_, grid.size(), round_of(epoch))[cell];
    outcome.partner = partner;
    const auto rival = gathered_genome(gathered, partner);
    if (rival.has_value()) {
      if (!is_neighbor_of(grid, cell, partner)) {
        outcome.bytes_in += static_cast<double>(gathered[partner].size());
      }
      // Both partners evaluate the same symmetric predicate, so exactly one
      // side adopts: strictly lower generator loss wins, ties go to the
      // lower cell id.
      const bool rival_wins = rival->g_fitness < host.g_fitness() ||
                              (rival->g_fitness == host.g_fitness() && partner < cell);
      if (rival_wins) {
        host.adopt_generator(*rival);
        host.adopt_discriminator(*rival);
        outcome.g_adopted = true;
        outcome.d_adopted = true;
      } else {
        outcome.wins = ++wins_;
      }
    }
    outcome.g_fitness_after = host.g_fitness();
    outcome.d_fitness_after = host.d_fitness();
    return outcome;
  }

  void serialize_state(common::ByteWriter& writer) const override {
    writer.write<std::uint64_t>(wins_);
  }
  void restore_state(common::ByteReader& reader) override {
    wins_ = reader.read<std::uint64_t>();
  }

 private:
  bool tournament_epoch(std::uint32_t epoch) const {
    return epoch > 0 && epoch % every_ == 0;
  }
  std::uint64_t round_of(std::uint32_t epoch) const { return epoch / every_; }

  std::uint64_t seed_;
  std::uint32_t every_;
  std::uint64_t wins_ = 0;  ///< cumulative tournaments won by this cell
};

// --- gap --------------------------------------------------------------------

/// Generative Adversarial Parallelization: generators stay put while
/// discriminators rotate among the cells on a fixed cadence. Round r uses
/// shift s = ((r - 1) mod (cells - 1)) + 1, so every cell adopts the
/// discriminator of cell (cell + s) and the rotation visits every other cell
/// before repeating.
class GapPolicy final : public ExchangePolicy {
 public:
  explicit GapPolicy(std::uint32_t every) : every_(every) { CG_EXPECT(every_ >= 1); }

  ExchangePolicyKind kind() const override { return ExchangePolicyKind::kGap; }

  std::vector<int> sources(const Grid& grid, int cell,
                           std::uint32_t epoch) const override {
    std::vector<int> out = grid.neighbors_of(cell);
    const int donor = donor_of(grid, cell, epoch);
    if (donor >= 0 && std::find(out.begin(), out.end(), donor) == out.end()) {
      out.push_back(donor);
    }
    return out;
  }

  ExchangeOutcome apply(ExchangeHost& host,
                        std::span<const std::vector<std::uint8_t>> gathered,
                        std::uint32_t epoch) override {
    ExchangeOutcome outcome;
    outcome.g_fitness_before = host.g_fitness();
    outcome.d_fitness_before = host.d_fitness();
    outcome.bytes_in = install_neighbor_genomes(host, gathered);
    const Grid& grid = host.grid();
    const int cell = host.cell();
    const int donor = donor_of(grid, cell, epoch);
    if (donor >= 0) {
      outcome.partner = donor;
      const auto genome = gathered_genome(gathered, donor);
      if (genome.has_value()) {
        if (!is_neighbor_of(grid, cell, donor)) {
          outcome.bytes_in += static_cast<double>(gathered[donor].size());
        }
        host.adopt_discriminator(*genome);
        outcome.d_adopted = true;
      }
    }
    outcome.g_fitness_after = host.g_fitness();
    outcome.d_fitness_after = host.d_fitness();
    return outcome;
  }

 private:
  int donor_of(const Grid& grid, int cell, std::uint32_t epoch) const {
    if (epoch == 0 || epoch % every_ != 0) return -1;
    const int cells = grid.size();
    if (cells < 2) return -1;
    const std::uint64_t round = epoch / every_;
    const int shift = static_cast<int>((round - 1) % static_cast<std::uint64_t>(cells - 1)) + 1;
    return (cell + shift) % cells;
  }

  std::uint32_t every_;
};

}  // namespace

std::unique_ptr<ExchangePolicy> make_exchange_policy(ExchangePolicyKind kind,
                                                     std::uint64_t seed,
                                                     std::uint32_t exchange_every) {
  const std::uint32_t every = std::max<std::uint32_t>(1, exchange_every);
  switch (kind) {
    case ExchangePolicyKind::kCellular: return std::make_unique<CellularPolicy>();
    case ExchangePolicyKind::kLtfb:
      return std::make_unique<LtfbPolicy>(seed, every);
    case ExchangePolicyKind::kGap: return std::make_unique<GapPolicy>(every);
    case ExchangePolicyKind::kAuto: break;
  }
  CG_EXPECT(!"make_exchange_policy: resolve kAuto before construction");
  return nullptr;
}

}  // namespace cellgan::evolve
