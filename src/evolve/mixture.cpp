#include "evolve/mixture.hpp"

#include <algorithm>

#include "common/serialize.hpp"

namespace cellgan::evolve {

MixtureWeights::MixtureWeights(std::size_t size)
    : weights_(size, size > 0 ? 1.0 / static_cast<double>(size) : 0.0) {
  CG_EXPECT(size > 0);
}

void MixtureWeights::set_weights(std::vector<double> w) {
  CG_EXPECT(w.size() == weights_.size());
  for (const double v : w) CG_EXPECT(v >= 0.0);
  weights_ = std::move(w);
  normalize();
}

void MixtureWeights::restore_weights(std::vector<double> w) {
  CG_EXPECT(w.size() == weights_.size());
  double total = 0.0;
  for (const double v : w) {
    CG_EXPECT(v >= 0.0);
    total += v;
  }
  CG_EXPECT(total > 0.9 && total < 1.1);  // sanity: already normalized
  weights_ = std::move(w);
}

void MixtureWeights::normalize() {
  double total = 0.0;
  for (const double w : weights_) total += w;
  if (total <= 0.0) {
    // Degenerate after clamping: fall back to uniform.
    std::fill(weights_.begin(), weights_.end(), 1.0 / static_cast<double>(size()));
    return;
  }
  for (auto& w : weights_) w /= total;
}

MixtureWeights MixtureWeights::mutated(double scale, common::Rng& rng) const {
  MixtureWeights copy = *this;
  for (auto& w : copy.weights_) w = std::max(0.0, w + rng.normal(0.0, scale));
  copy.normalize();
  return copy;
}

std::size_t MixtureWeights::sample_index(common::Rng& rng) const {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i];
    if (u < acc) return i;
  }
  return weights_.size() - 1;  // guard against rounding at u ~ 1
}

std::vector<std::uint8_t> MixtureWeights::serialize() const {
  common::ByteWriter w;
  w.write_vector(weights_);
  return w.take();
}

MixtureWeights MixtureWeights::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  auto values = r.read_vector<double>();
  MixtureWeights out(values.size());
  out.set_weights(std::move(values));
  return out;
}

MixtureDraw plan_mixture_draw(const MixtureWeights& weights,
                              std::size_t generators, std::size_t latent_dim,
                              std::size_t count, common::Rng& rng,
                              std::size_t label_classes) {
  CG_EXPECT(weights.size() == generators);
  CG_EXPECT(generators > 0 && count > 0);

  // Assign each sample to a generator, then batch per generator so each
  // network runs one forward pass.
  MixtureDraw draw;
  draw.count = count;
  draw.rows_of.resize(generators);
  draw.latents.resize(generators);
  for (std::size_t i = 0; i < count; ++i) {
    draw.rows_of[weights.sample_index(rng)].push_back(i);
  }
  for (std::size_t g = 0; g < generators; ++g) {
    if (draw.rows_of[g].empty()) continue;
    const std::size_t rows = draw.rows_of[g].size();
    // Conditional draws: uniform class labels BEFORE the latent block (the
    // fixed rng order every conditional sampler shares), appended one-hot.
    std::vector<std::size_t> labels;
    if (label_classes > 0) {
      labels.resize(rows);
      for (auto& label : labels) label = rng.uniform_int(label_classes);
    }
    tensor::Tensor z = tensor::Tensor::randn(rows, latent_dim, rng, 1.0f);
    if (label_classes > 0) {
      tensor::Tensor conditioned(rows, latent_dim + label_classes);
      for (std::size_t k = 0; k < rows; ++k) {
        const auto src = z.row_span(k);
        auto dst = conditioned.row_span(k);
        std::copy(src.begin(), src.end(), dst.begin());
        std::fill(dst.begin() + static_cast<std::ptrdiff_t>(latent_dim),
                  dst.end(), 0.0f);
        dst[latent_dim + labels[k]] = 1.0f;
      }
      z = std::move(conditioned);
    }
    draw.latents[g] = std::move(z);
  }
  return draw;
}

void scatter_mixture_rows(const MixtureDraw& draw, std::size_t generator,
                          const tensor::Tensor& images, tensor::Tensor& out) {
  CG_EXPECT(generator < draw.rows_of.size());
  const auto& rows = draw.rows_of[generator];
  CG_EXPECT(images.rows() == rows.size());
  CG_EXPECT(out.rows() == draw.count && out.cols() == images.cols());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    auto src = images.row_span(k);
    auto dst = out.row_span(rows[k]);
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

tensor::Tensor sample_mixture(const MixtureWeights& weights,
                              std::vector<nn::Sequential*> generators,
                              std::size_t latent_dim, std::size_t count,
                              common::Rng& rng, std::size_t label_classes) {
  CG_EXPECT(weights.size() == generators.size());
  CG_EXPECT(!generators.empty() && count > 0);

  const MixtureDraw draw = plan_mixture_draw(weights, generators.size(),
                                             latent_dim, count, rng, label_classes);
  tensor::Tensor out;
  bool out_ready = false;
  for (std::size_t g = 0; g < generators.size(); ++g) {
    if (draw.rows_of[g].empty()) continue;
    const tensor::Tensor images = generators[g]->forward(draw.latents[g]);
    if (!out_ready) {
      out = tensor::Tensor(count, images.cols());
      out_ready = true;
    }
    scatter_mixture_rows(draw, g, images, out);
  }
  return out;
}

}  // namespace cellgan::evolve
