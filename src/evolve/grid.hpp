// The grid class — one of the paper's two new classes (Section III.C).
//
// Replaces Lipizzaner's `neighbourhood`: a toroidal rows x cols grid whose
// cells each own a five-cell neighborhood {center, N, S, W, E} (Fig. 1).
// Unlike the original, neighborhoods can be modified dynamically at runtime
// ("allows modifying the grid and also the structure of neighboring
// processes dynamically ... exploring different patterns for training"),
// and the class is fully decoupled from the communication layer — it only
// deals in cell indices.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "minimpi/cart.hpp"

namespace cellgan::evolve {

using minimpi::GridCoord;

/// Named, catchable error for invalid dynamic rewiring (an out-of-range
/// neighbor index in set_neighbors). Topology mistakes come from user input
/// (dynamic reconfiguration examples, future config files), so they must be
/// recoverable — unlike indexing a bad cell on a read path, which stays a
/// programming-contract CG_EXPECT.
class GridTopologyError : public std::runtime_error {
 public:
  explicit GridTopologyError(const std::string& what) : std::runtime_error(what) {}
};

class Grid {
 public:
  Grid(int rows, int cols);

  int rows() const { return topology_.rows(); }
  int cols() const { return topology_.cols(); }
  int size() const { return topology_.size(); }

  GridCoord coords_of(int cell) const { return topology_.coords_of(cell); }
  int cell_of(GridCoord coord) const { return topology_.rank_of(coord); }

  /// Neighbors of `cell`, center excluded, in N,S,W,E order (default) or the
  /// order given to set_neighbors.
  const std::vector<int>& neighbors_of(int cell) const;

  /// Full sub-population membership: center first, then neighbors.
  std::vector<int> neighborhood_of(int cell) const;

  /// Size of cell's sub-population (s in the paper; 5 on grids >= 3x3).
  std::size_t subpopulation_size(int cell) const;

  // ---- dynamic reconfiguration ---------------------------------------------

  /// Replace a cell's neighbor list (deduplicated, center removed). Throws
  /// GridTopologyError when any neighbor index is outside the grid.
  void set_neighbors(int cell, std::vector<int> neighbors);

  /// Restore the default five-cell toroidal neighborhoods everywhere.
  void reset_default_neighborhoods();

  /// True if `other` is in `cell`'s neighbor list.
  bool is_neighbor(int cell, int other) const;

  /// Cells whose neighborhoods contain `cell` — the overlapping
  /// neighborhoods through which updates propagate (Fig. 1's N1,1 / N1,3
  /// example). With default neighborhoods this is symmetric with
  /// neighbors_of, but dynamic rewiring can make influence asymmetric.
  std::vector<int> influenced_by(int cell) const;

 private:
  void check_cell(int cell) const;

  minimpi::CartTopology topology_;
  std::vector<std::vector<int>> neighbors_;  // per cell, center excluded
};

}  // namespace cellgan::evolve
