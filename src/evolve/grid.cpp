#include "evolve/grid.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace cellgan::evolve {

Grid::Grid(int rows, int cols) : topology_(rows, cols) {
  reset_default_neighborhoods();
}

void Grid::check_cell(int cell) const {
  CG_EXPECT(cell >= 0 && cell < size());
}

const std::vector<int>& Grid::neighbors_of(int cell) const {
  check_cell(cell);
  return neighbors_[cell];
}

std::vector<int> Grid::neighborhood_of(int cell) const {
  check_cell(cell);
  std::vector<int> out;
  out.reserve(neighbors_[cell].size() + 1);
  out.push_back(cell);
  out.insert(out.end(), neighbors_[cell].begin(), neighbors_[cell].end());
  return out;
}

std::size_t Grid::subpopulation_size(int cell) const {
  check_cell(cell);
  return neighbors_[cell].size() + 1;
}

void Grid::set_neighbors(int cell, std::vector<int> neighbors) {
  check_cell(cell);
  std::vector<int> cleaned;
  cleaned.reserve(neighbors.size());
  for (const int n : neighbors) {
    if (n < 0 || n >= size()) {
      throw GridTopologyError("neighbor index " + std::to_string(n) +
                              " out of range for cell " + std::to_string(cell) +
                              " on a " + std::to_string(rows()) + "x" +
                              std::to_string(cols()) + " grid");
    }
    if (n == cell) continue;
    if (std::find(cleaned.begin(), cleaned.end(), n) == cleaned.end()) {
      cleaned.push_back(n);
    }
  }
  neighbors_[cell] = std::move(cleaned);
}

void Grid::reset_default_neighborhoods() {
  neighbors_.assign(size(), {});
  for (int cell = 0; cell < size(); ++cell) {
    // C,N,S,W,E with duplicates dropped on degenerate grids; strip center.
    for (const int r : topology_.neighborhood_of(cell)) {
      if (r != cell) neighbors_[cell].push_back(r);
    }
  }
}

bool Grid::is_neighbor(int cell, int other) const {
  check_cell(cell);
  check_cell(other);
  const auto& ns = neighbors_[cell];
  return std::find(ns.begin(), ns.end(), other) != ns.end();
}

std::vector<int> Grid::influenced_by(int cell) const {
  check_cell(cell);
  std::vector<int> out;
  for (int other = 0; other < size(); ++other) {
    if (other != cell && is_neighbor(other, cell)) out.push_back(other);
  }
  return out;
}

}  // namespace cellgan::evolve
