// ExchangePolicy — the seam that owns HOW genomes and discriminators move
// between grid cells each epoch.
//
// The paper's cellular algorithm is one member of a family of population-
// based GAN trainers. This seam extracts its per-epoch migration step
// (install gathered neighbor genomes, adopt a strictly fitter center) into a
// pluggable policy so the alternatives from the related work drop in without
// forking the trainer:
//
//   cellular — the five-cell toroidal neighborhood exchange (Section II.B),
//              bit-identical to the pre-seam CellTrainer::update_genomes;
//   ltfb     — LBANN-style Livermore Tournament Fast Batch: on a fixed
//              cadence, a deterministic seeded pairing matches cells in
//              pairs, fitnesses are compared, and the winner's genome
//              replaces the loser's (ties break toward the lower cell id);
//   gap      — Generative Adversarial Parallelization: discriminators rotate
//              among cells on a fixed cadence while generators stay put.
//
// Every policy is a pure function of (run seed, cell, epoch) and consumes
// NOTHING from the per-cell RNG streams, so any policy replays bit-
// identically on all four backends — the transport (allgather / local
// store) only has to deliver a superset of ExchangePolicy::sources().
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/serialize.hpp"
#include "evolve/genome.hpp"
#include "evolve/grid.hpp"

namespace cellgan::evolve {

enum class ExchangePolicyKind : std::uint32_t {
  kAuto = 0,      ///< defer to CELLGAN_EXCHANGE (cellular when unset)
  kCellular = 1,
  kLtfb = 2,
  kGap = 3,
};

const char* to_string(ExchangePolicyKind kind);

/// Parse a registered policy name ("cellular" | "ltfb" | "gap", plus "auto");
/// nullopt for anything else.
std::optional<ExchangePolicyKind> exchange_policy_from_string(std::string_view name);

/// The registered policy names, for CLI validation messages and
/// `cellgan_run --list-exchanges`.
std::vector<std::string> exchange_policy_names();

/// Resolve kAuto against the process environment (CELLGAN_EXCHANGE=cellular|
/// ltfb|gap; unset or unparsable -> cellular, with a one-time warning on
/// garbage). Explicit choices pass through untouched — mirrors
/// datastore::resolve_data_plane.
ExchangePolicyKind resolve_exchange_policy(ExchangePolicyKind requested);

/// Sub-stream id the LTFB pairing RNG forks off the run seed. Cells fork
/// their private streams at ids 0..cells-1, so this keeps the pairing stream
/// disjoint from every training stream.
inline constexpr std::uint64_t kLtfbPairingStream = 0x17FB;

/// LTFB pairing for tournament round `round`: a pure function of
/// (seed, cells, round) — every rank computes the identical table with zero
/// communication. Returns partner[cell] (-1 for the unpaired odd cell).
std::vector<int> ltfb_pairing(std::uint64_t seed, int cells, std::uint64_t round);

/// What one policy application did to its hosting cell — the payload of the
/// `"event":"exchange"` telemetry.
struct ExchangeOutcome {
  std::int32_t partner = -1;       ///< counterpart cell id (-1: none)
  bool g_adopted = false;          ///< center generator was replaced
  bool d_adopted = false;          ///< center discriminator was replaced
  double g_fitness_before = 0.0;
  double g_fitness_after = 0.0;
  double d_fitness_before = 0.0;
  double d_fitness_after = 0.0;
  std::uint64_t wins = 0;          ///< cumulative tournament wins (ltfb)
  double bytes_in = 0.0;           ///< serialized genome bytes installed
  bool exchanged() const { return g_adopted || d_adopted; }
};

/// The surface a policy sees (and mutates) on its hosting cell trainer.
/// Keeps the policy free of the trainer's data/optimizer machinery: it can
/// read fitnesses, maintain the neighbor subpopulation, and adopt a genome
/// per side (parameters + learning rate + bookkeeping fitness, exactly the
/// cellular selection semantics).
class ExchangeHost {
 public:
  virtual ~ExchangeHost() = default;

  virtual int cell() const = 0;
  virtual const Grid& grid() const = 0;
  virtual double g_fitness() const = 0;
  virtual double d_fitness() const = 0;

  /// Neighbor subpopulation slots (slot i holds grid.neighbors_of(cell)[i]).
  virtual std::size_t subpop_slots() const = 0;
  virtual const CellGenome* subpop_genome(std::size_t slot) const = 0;
  virtual void install_subpop(std::size_t slot, CellGenome genome) = 0;

  /// Adopt one side of `genome` into the center: parameters, learning rate
  /// and fitness bookkeeping.
  virtual void adopt_generator(const CellGenome& genome) = 0;
  virtual void adopt_discriminator(const CellGenome& genome) = 0;
};

class ExchangePolicy {
 public:
  virtual ~ExchangePolicy() = default;

  virtual ExchangePolicyKind kind() const = 0;

  /// Cells whose genomes this policy needs delivered to `cell` for `epoch`,
  /// in installation order. Transports may deliver a superset (allgather
  /// does); the local store copies exactly this list, so for the cellular
  /// policy the gather bytes — and the charged gather cost — are identical
  /// to the pre-seam neighbor loop.
  virtual std::vector<int> sources(const Grid& grid, int cell,
                                   std::uint32_t epoch) const = 0;

  /// Apply the policy for `epoch`. `gathered[cell]` holds that cell's
  /// serialized genome (missing/empty entries are skipped; epoch 0 passes
  /// all-empty). Returns what happened, for telemetry and cost charging.
  virtual ExchangeOutcome apply(ExchangeHost& host,
                                std::span<const std::vector<std::uint8_t>> gathered,
                                std::uint32_t epoch) = 0;

  /// Policy-private state (LTFB win counters) for rank checkpoints; the
  /// default is stateless.
  virtual void serialize_state(common::ByteWriter& writer) const;
  virtual void restore_state(common::ByteReader& reader);
};

/// Construct a policy. `kind` must be concrete (resolve kAuto first);
/// `exchange_every` is the tournament/rotation cadence in epochs (>= 1,
/// ignored by cellular).
std::unique_ptr<ExchangePolicy> make_exchange_policy(ExchangePolicyKind kind,
                                                     std::uint64_t seed,
                                                     std::uint32_t exchange_every);

}  // namespace cellgan::evolve
