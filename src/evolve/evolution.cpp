#include "evolve/evolution.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace cellgan::evolve {

std::size_t tournament_select(const std::vector<double>& fitnesses,
                              std::size_t tournament_size, common::Rng& rng) {
  CG_EXPECT(!fitnesses.empty());
  CG_EXPECT(tournament_size >= 1);
  std::size_t best = rng.uniform_int(fitnesses.size());
  for (std::size_t i = 1; i < tournament_size; ++i) {
    const std::size_t challenger = rng.uniform_int(fitnesses.size());
    if (fitnesses[challenger] < fitnesses[best]) best = challenger;
  }
  return best;
}

double mutate_learning_rate(double learning_rate, double sigma, double probability,
                            common::Rng& rng) {
  CG_EXPECT(learning_rate > 0.0);
  if (!rng.bernoulli(probability)) return learning_rate;
  constexpr double kFloor = 1e-8;
  return std::max(kFloor, learning_rate + rng.normal(0.0, sigma));
}

}  // namespace cellgan::evolve
