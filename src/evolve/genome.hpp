// Cell genome: the unit of exchange between grid cells.
//
// A cell's "center" is one generator + one discriminator; neighbors exchange
// serialized copies of their centers after every training epoch (Section
// II.B). The genome carries the flattened parameters of both networks, the
// mutated hyperparameters (learning rates) and the locally-evaluated fitness
// values that the receiving cell's selection step uses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/sequential.hpp"

namespace cellgan::evolve {

struct CellGenome {
  std::vector<float> generator_params;
  std::vector<float> discriminator_params;
  double g_learning_rate = 0.0;
  double d_learning_rate = 0.0;
  /// Losses, lower is better; evaluated by the owning cell before exchange.
  double g_fitness = 0.0;
  double d_fitness = 0.0;
  std::uint32_t origin_cell = 0;  ///< grid cell that produced this genome
  std::uint32_t iteration = 0;    ///< epoch at which it was exported

  std::size_t byte_size() const;
  std::vector<std::uint8_t> serialize() const;
  static CellGenome deserialize(std::span<const std::uint8_t> bytes);

  /// Copy network parameters out of / into live networks.
  static CellGenome capture(nn::Sequential& generator, nn::Sequential& discriminator);
  void install(nn::Sequential& generator, nn::Sequential& discriminator) const;
};

}  // namespace cellgan::evolve
