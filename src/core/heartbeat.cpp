#include "core/heartbeat.hpp"

#include "common/log.hpp"

namespace cellgan::core {

HeartbeatMonitor::HeartbeatMonitor(minimpi::Comm& world, Options options)
    : world_(world), options_(options) {
  const int slaves = world_.size() - 1;
  latest_.resize(slaves);
  consecutive_misses_.assign(slaves, 0);
}

HeartbeatMonitor::~HeartbeatMonitor() { stop(); }

void HeartbeatMonitor::start() {
  CG_EXPECT(!running_.load());
  running_.store(true);
  thread_ = std::thread([this] { poll_loop(); });
}

void HeartbeatMonitor::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

std::vector<protocol::StatusReply> HeartbeatMonitor::snapshot() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return latest_;
}

std::vector<int> HeartbeatMonitor::unresponsive() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<int> ranks;
  for (std::size_t s = 0; s < consecutive_misses_.size(); ++s) {
    if (consecutive_misses_[s] >= options_.miss_threshold) {
      ranks.push_back(static_cast<int>(s) + 1);
    }
  }
  return ranks;
}

void HeartbeatMonitor::set_on_unresponsive(std::function<void(int)> callback) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  on_unresponsive_ = std::move(callback);
}

void HeartbeatMonitor::poll_loop() {
  common::set_thread_log_label("heartbeat");
  const int slaves = world_.size() - 1;
  while (running_.load()) {
    for (int s = 0; s < slaves; ++s) {
      if (!running_.load()) break;
      const int rank = s + 1;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (latest_[s].state == protocol::SlaveState::kFinished) continue;
      }
      // Transport liveness short-circuit: a slave whose stream is recorded
      // lost is unresponsive *now* — no point burning miss_threshold polls
      // on a peer that can never reply.
      if (world_.peer_lost(rank)) {
        std::function<void(int)> alarm;
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          if (consecutive_misses_[s] < options_.miss_threshold) {
            common::log_warn() << "slave rank " << rank << " stream lost ("
                               << world_.peer_loss_reason(rank)
                               << "); marking unresponsive";
            consecutive_misses_[s] = options_.miss_threshold;
            alarm = on_unresponsive_;
          }
        }
        if (alarm) alarm(rank);
        continue;
      }
      world_.send_oob(rank, protocol::kStatusRequest, {});
      auto reply =
          world_.recv_for(rank, protocol::kStatusReply, options_.reply_timeout_s);
      std::function<void(int)> alarm;
      if (reply) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        latest_[s] = protocol::StatusReply::deserialize(reply->payload);
        consecutive_misses_[s] = 0;
      } else {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (++consecutive_misses_[s] == options_.miss_threshold) {
          common::log_warn() << "slave rank " << rank << " unresponsive after "
                             << options_.miss_threshold << " heartbeats";
          alarm = on_unresponsive_;
        }
      }
      if (alarm) alarm(rank);
    }
    cycles_.fetch_add(1);
    // "Wait X seconds" between polling cycles (Fig. 3).
    const auto interval =
        std::chrono::duration<double>(options_.interval_s);
    std::this_thread::sleep_for(interval);
  }
}

}  // namespace cellgan::core
