// Per-rank rolling training-state checkpoints for crash recovery.
//
// The grid Checkpoint (checkpoint.hpp) persists what the exchange protocol
// moves — center genomes and mixture weights — which is enough to *restart*
// training but not to *replay* it: Adam moments, rng stream positions, the
// loader's shuffle order and the neighbor inbox all shape the trajectory.
// A RankCheckpoint carries that complete state for one slave rank, so a
// world that loses a rank can roll every survivor back to a common epoch E
// and re-run epochs E..N-1 bit-identically to an undisturbed run (the
// survivor-parity guarantee of the recovery protocol).
//
// Each rank keeps *two* rolling files in alternating slots
// (`rank<R>.a.rck` / `rank<R>.b.rck`), written atomically after every
// exchange. The lockstep allgather bounds inter-rank checkpoint skew to one
// epoch, so the rollback epoch E = min over the ranks' latest checkpoints is
// guaranteed to live in every rank's {latest-1, latest} pair.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace cellgan::core {

/// Complete resume state of one slave rank at the start of iteration
/// `epoch` (i.e. after step/exchange `epoch - 1`).
struct RankCheckpoint {
  std::uint32_t epoch = 0;  ///< completed training iterations (absolute)
  std::vector<std::uint8_t> trainer_state;  ///< CellTrainer full state
  std::vector<std::vector<std::uint8_t>> gathered;  ///< last exchange's inbox
  double clock_s = 0.0;              ///< rank virtual clock at the snapshot
  common::Rng::State jitter_rng;     ///< rank jitter-stream position

  std::vector<std::uint8_t> serialize() const;
  static RankCheckpoint deserialize(std::span<const std::uint8_t> bytes);
};

/// File of `rank`'s rolling slot (0 = ".a.rck", 1 = ".b.rck") under `dir`.
std::string rank_checkpoint_path(const std::string& dir, int rank, int slot);

/// Atomically write `checkpoint` into `rank`'s slot `epoch % 2`. Throws
/// CheckpointWriteError on any I/O failure — rejoin depends on this file.
void save_rank_checkpoint(const std::string& dir, int rank,
                          const RankCheckpoint& checkpoint);

/// The newest readable checkpoint for `rank` across both slots; nullopt when
/// none exists (fresh world) or both files are unreadable.
std::optional<RankCheckpoint> load_latest_rank_checkpoint(const std::string& dir,
                                                          int rank);

/// The checkpoint for `rank` at exactly `epoch`, from whichever slot holds
/// it; nullopt when neither does.
std::optional<RankCheckpoint> load_rank_checkpoint_at(const std::string& dir,
                                                      int rank,
                                                      std::uint32_t epoch);

}  // namespace cellgan::core
