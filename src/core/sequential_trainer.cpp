#include "core/sequential_trainer.hpp"

#include <algorithm>

#include "tensor/flops.hpp"

namespace cellgan::core {

SequentialTrainer::SequentialTrainer(const TrainingConfig& config,
                                     const data::Dataset& dataset,
                                     const CostModel& cost_model)
    : config_(config),
      dataset_(dataset),
      cost_model_(cost_model),
      grid_(static_cast<int>(config.grid_rows), static_cast<int>(config.grid_cols)),
      jitter_rng_(config.seed ^ 0x5eedbeefULL),
      store_(static_cast<std::size_t>(grid_.size())) {
  context_.mode = ExecMode::SingleCore;
  context_.grid_cells = grid_.size();
  context_.cost = &cost_model_;
  context_.clock = &clock_;
  context_.profiler = &profiler_;
  context_.jitter_rng = &jitter_rng_;

  common::Rng master_rng(config_.seed);
  cells_.reserve(grid_.size());
  comms_.reserve(grid_.size());
  for (int cell = 0; cell < grid_.size(); ++cell) {
    cells_.push_back(std::make_unique<CellTrainer>(
        config_, grid_, cell, dataset_,
        master_rng.fork(static_cast<std::uint64_t>(cell)), context_));
    comms_.push_back(
        std::make_unique<LocalCommManager>(store_, grid_, cell, context_));
  }
}

TrainOutcome SequentialTrainer::run() {
  common::WallTimer wall;
  // Latest exchange result seen by each cell; starts all-empty (iteration 0
  // trains before any neighbor genome exists, per Fig. 3's flow).
  std::vector<std::vector<std::vector<std::uint8_t>>> inboxes(
      grid_.size(), std::vector<std::vector<std::uint8_t>>(grid_.size()));

  for (std::uint32_t iter = 0; iter < config_.iterations; ++iter) {
    for (int cell = 0; cell < grid_.size(); ++cell) {
      cells_[cell]->step(inboxes[cell]);
      common::WallTimer gather_wall;
      inboxes[cell] = comms_[cell]->exchange(cells_[cell]->export_genome());
      // Virtual gather cost was charged inside LocalCommManager; here only
      // the measured wall time is recorded.
      profiler_.add(common::routine::kGather, gather_wall.elapsed_s());
    }
  }

  TrainOutcome outcome;
  outcome.wall_s = wall.elapsed_s();
  outcome.virtual_s = clock_.now();
  outcome.profiler = profiler_;
  outcome.g_fitnesses.reserve(grid_.size());
  outcome.d_fitnesses.reserve(grid_.size());
  for (int cell = 0; cell < grid_.size(); ++cell) {
    outcome.g_fitnesses.push_back(cells_[cell]->g_fitness());
    outcome.d_fitnesses.push_back(cells_[cell]->d_fitness());
  }
  outcome.best_cell = static_cast<int>(
      std::min_element(outcome.g_fitnesses.begin(), outcome.g_fitnesses.end()) -
      outcome.g_fitnesses.begin());
  return outcome;
}

Checkpoint SequentialTrainer::checkpoint() {
  Checkpoint snapshot;
  snapshot.config = config_;
  snapshot.centers.reserve(cells_.size());
  snapshot.mixtures.reserve(cells_.size());
  std::uint32_t iteration = 0;
  for (auto& cell : cells_) {
    snapshot.centers.push_back(cell->center_genome());
    snapshot.mixtures.push_back(cell->mixture().weights());
    iteration = std::max(iteration, cell->iteration());
  }
  snapshot.iteration = iteration;
  return snapshot;
}

void SequentialTrainer::restore(const Checkpoint& snapshot) {
  CG_EXPECT(snapshot.centers.size() == cells_.size());
  CG_EXPECT(snapshot.config.arch == config_.arch);
  for (std::size_t cell = 0; cell < cells_.size(); ++cell) {
    const auto& mixture = cell < snapshot.mixtures.size()
                              ? snapshot.mixtures[cell]
                              : std::vector<double>{};
    cells_[cell]->restore(snapshot.centers[cell], mixture);
  }
}

WorkloadProbe SequentialTrainer::measure_workload(const TrainingConfig& config,
                                                  const data::Dataset& dataset) {
  // Run two iterations of a throwaway cell wired to itself: the second
  // iteration installs a full set of neighbor genomes, giving representative
  // update bytes and train flops.
  Grid grid(static_cast<int>(config.grid_rows), static_cast<int>(config.grid_cols));
  ExecContext context;  // RealTime: no cost model, no clocks
  common::Rng rng(config.seed ^ 0x9e0be5ULL);
  CellTrainer probe_cell(config, grid, 0, dataset, rng, context);

  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  probe_cell.step(inbox);
  const std::vector<std::uint8_t> genome = probe_cell.export_genome();
  // Pretend every neighbor sent a genome of the same shape.
  for (const int neighbor : grid.neighbors_of(0)) inbox[neighbor] = genome;
  probe_cell.step(inbox);

  WorkloadProbe probe;
  probe.train_flops = probe_cell.last_train_flops();
  probe.update_bytes = std::max(1.0, probe_cell.last_update_bytes());
  probe.mutate_calls = 1.0;
  probe.genome_bytes = static_cast<double>(genome.size());
  return probe;
}

}  // namespace cellgan::core
