#include "core/sequential_trainer.hpp"

namespace cellgan::core {

SequentialTrainer::SequentialTrainer(const TrainingConfig& config,
                                     const data::Dataset& dataset,
                                     const CostModel& cost_model)
    : InProcessTrainer(config, dataset, cost_model),
      jitter_rng_(config.seed ^ 0x5eedbeefULL) {
  core_.build_cells([this](int /*cell*/) {
    ExecContext context;
    context.mode = ExecMode::SingleCore;
    context.grid_cells = core_.grid().size();
    context.cost = &core_.cost_model();
    context.clock = &clock_;
    context.profiler = &profiler_;
    context.jitter_rng = &jitter_rng_;
    return context;
  });
}

TrainOutcome SequentialTrainer::run() {
  common::WallTimer wall;
  for (std::uint32_t iter = 0; iter < core_.config().iterations; ++iter) {
    core_.begin_epoch(iter);
    for (int cell = 0; cell < core_.cells(); ++cell) {
      core_.run_cell_epoch(cell);
    }
    core_.finish_epoch();
    core_.publish_epoch();
  }
  return core_.make_outcome(wall.elapsed_s(), clock_.now(), profiler_);
}

}  // namespace cellgan::core
