// Per-rank execution context threaded through the trainers.
//
// Bundles the virtual clock, per-routine profiler, straggler jitter stream
// and calibrated cost model of the rank (or worker lane, or process) running
// a trainer, so the same CellTrainer code serves the single-core baseline,
// the thread-parallel trainer (one context per worker lane, MultiThread
// mode), the distributed slaves and pure real-time runs. charge() is the
// single point where a routine's wall time and simulated time enter the
// books.
#pragma once

#include <string>

#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/cost_model.hpp"

namespace cellgan::core {

struct ExecContext {
  ExecMode mode = ExecMode::RealTime;
  int grid_cells = 1;
  const CostModel* cost = nullptr;       ///< may be null (no virtual time)
  common::VirtualClock* clock = nullptr; ///< may be null
  common::Profiler* profiler = nullptr;  ///< may be null
  common::Rng* jitter_rng = nullptr;     ///< may be null
  /// When set, every simulated charge is also summed here — the owning
  /// cell's cumulative virtual seconds for the observer records. Summing at
  /// the charging point (same charge sequence whatever the schedule) keeps
  /// the total bit-identical across trainers, which clock deltas are not.
  double* virtual_accumulator = nullptr;
  /// Run-level speed multiplier of the node this rank landed on.
  double node_factor = 1.0;

  bool virtual_time() const { return cost != nullptr && cost->enabled(); }

  /// Record `wall_s` measured and `virtual_s` simulated seconds against a
  /// routine bucket, advancing the rank clock by the simulated cost.
  void charge(const std::string& routine, double wall_s, double virtual_s) const {
    if (clock != nullptr && virtual_s > 0.0) clock->advance(virtual_s);
    if (virtual_accumulator != nullptr) *virtual_accumulator += virtual_s;
    if (profiler != nullptr) profiler->add(routine, wall_s, virtual_s);
  }

  /// Straggler multiplier for compute charges (1.0 outside Distributed mode):
  /// the run-level node factor times per-charge lognormal noise.
  double compute_jitter() const {
    if (mode != ExecMode::Distributed || cost == nullptr || jitter_rng == nullptr) {
      return 1.0;
    }
    return node_factor * cost->jitter(*jitter_rng);
  }
};

}  // namespace cellgan::core
