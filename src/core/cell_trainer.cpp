#include "core/cell_trainer.hpp"

#include <algorithm>
#include <utility>

#include "common/serialize.hpp"
#include "core/evolution.hpp"
#include "core/gan_trainer.hpp"
#include "tensor/flops.hpp"
#include "tensor/ops.hpp"

namespace cellgan::core {

namespace {

/// Data dieting: draw this cell's private training subsample, or nullopt to
/// train on the shared full dataset.
std::optional<data::Dataset> make_diet(const TrainingConfig& config,
                                       const data::Dataset& dataset,
                                       common::Rng& rng) {
  if (config.data_dieting_fraction >= 1.0) return std::nullopt;
  CG_EXPECT(config.data_dieting_fraction > 0.0);
  const auto count = std::max<std::size_t>(
      config.batch_size,
      static_cast<std::size_t>(config.data_dieting_fraction *
                               static_cast<double>(dataset.size())));
  return dataset.subsample(std::min(count, dataset.size()), rng);
}

}  // namespace

CellTrainer::CellTrainer(const TrainingConfig& config, const Grid& grid, int cell_id,
                         const data::Dataset& dataset, common::Rng rng,
                         const ExecContext& context)
    : config_(config),
      grid_(grid),
      cell_(cell_id),
      context_(context),
      rng_(rng),
      diet_(make_diet(config_, dataset, rng_)),
      feed_(datastore::make_feed(config.data_plane, diet_ ? *diet_ : dataset,
                                 config.batch_size)),
      generator_(nn::make_generator(config.arch, rng_, config.conditional_classes())),
      discriminator_(
          nn::make_discriminator(config.arch, rng_, config.conditional_classes())),
      g_optimizer_(config.initial_learning_rate),
      d_optimizer_(config.initial_learning_rate),
      scratch_generator_(
          nn::make_generator(config.arch, rng_, config.conditional_classes())),
      scratch_discriminator_(
          nn::make_discriminator(config.arch, rng_, config.conditional_classes())),
      subpop_(grid.neighbors_of(cell_id).size()),
      subpop_ids_(grid.neighbors_of(cell_id)),
      mixture_(grid.subpopulation_size(cell_id)),
      policy_(evolve::make_exchange_policy(
          evolve::resolve_exchange_policy(config.exchange_policy), config.seed,
          config.exchange_every)) {
  CG_EXPECT(dataset.images.cols() == config_.arch.image_dim);
  feed_->reshuffle(rng_);
  evaluate_center_fitness();
}

void CellTrainer::sync_topology() {
  const auto& neighbors = grid_.neighbors_of(cell_);
  if (neighbors == subpop_ids_) return;
  std::vector<SubpopSlot> remapped(neighbors.size());
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    for (std::size_t old = 0; old < subpop_ids_.size(); ++old) {
      if (subpop_ids_[old] == neighbors[i]) {
        remapped[i] = std::move(subpop_[old]);
        break;
      }
    }
  }
  subpop_ = std::move(remapped);
  subpop_ids_ = neighbors;
  mixture_ = MixtureWeights(neighbors.size() + 1);
}

void CellTrainer::step(const std::vector<std::vector<std::uint8_t>>& gathered) {
  // Each routine harvests its flops in a scoped section on whichever thread
  // runs this step — a scheduler may execute cells on arbitrary pool workers,
  // and the scope keeps per-cell counts exact while restoring (and
  // propagating) the executing thread's outer counter.
  {
    common::WallTimer timer;
    tensor::ScopedFlopsCounter section;  // install cost is byte-based
    update_genomes(gathered);
    double virtual_s = 0.0;
    if (context_.virtual_time()) {
      virtual_s = context_.cost->update_seconds(context_.mode, context_.grid_cells,
                                                last_update_bytes_) *
                  context_.compute_jitter();
    }
    context_.charge(common::routine::kUpdateGenomes, timer.elapsed_s(), virtual_s);
  }
  {
    common::WallTimer timer;
    tensor::ScopedFlopsCounter section;
    train();
    last_train_flops_ = static_cast<double>(section.taken());
    total_train_flops_ += last_train_flops_;
    double virtual_s = 0.0;
    if (context_.virtual_time()) {
      virtual_s = context_.cost->train_seconds(context_.mode, context_.grid_cells,
                                               last_train_flops_) *
                  context_.compute_jitter();
    }
    context_.charge(common::routine::kTrain, timer.elapsed_s(), virtual_s);
  }
  {
    common::WallTimer timer;
    tensor::ScopedFlopsCounter section;  // mixture-ES forwards fold into call cost
    mutate();
    double virtual_s = 0.0;
    if (context_.virtual_time()) {
      virtual_s =
          context_.cost->mutate_seconds(context_.mode, context_.grid_cells, 1.0);
    }
    context_.charge(common::routine::kMutate, timer.elapsed_s(), virtual_s);
  }
  ++iteration_;
}

void CellTrainer::update_genomes(
    const std::vector<std::vector<std::uint8_t>>& gathered) {
  sync_topology();
  last_exchange_ = policy_->apply(*this, gathered, iteration_);
  last_update_bytes_ = last_exchange_.bytes_in;
}

std::vector<int> CellTrainer::exchange_sources(std::uint32_t epoch) const {
  return policy_->sources(grid_, cell_, epoch);
}

const CellGenome* CellTrainer::subpop_genome(std::size_t slot) const {
  return subpop_[slot].genome ? &*subpop_[slot].genome : nullptr;
}

void CellTrainer::install_subpop(std::size_t slot, CellGenome genome) {
  subpop_[slot].genome = std::move(genome);
}

void CellTrainer::adopt_generator(const CellGenome& genome) {
  generator_.load_parameters(genome.generator_params);
  g_optimizer_.set_learning_rate(genome.g_learning_rate);
  g_fitness_ = genome.g_fitness;
}

void CellTrainer::adopt_discriminator(const CellGenome& genome) {
  discriminator_.load_parameters(genome.discriminator_params);
  d_optimizer_.set_learning_rate(genome.d_learning_rate);
  d_fitness_ = genome.d_fitness;
}

void CellTrainer::train() {
  // Pick this epoch's objective: fixed by configuration, or a fresh Mustangs
  // draw from the three E-GAN objectives.
  switch (config_.loss_mode) {
    case LossMode::kHeuristic: current_loss_ = GanLossKind::kHeuristic; break;
    case LossMode::kMinimax: current_loss_ = GanLossKind::kMinimax; break;
    case LossMode::kLeastSquares: current_loss_ = GanLossKind::kLeastSquares; break;
    case LossMode::kMustangs:
      current_loss_ = static_cast<GanLossKind>(rng_.uniform_int(3));
      break;
    case LossMode::kWasserstein: current_loss_ = GanLossKind::kWasserstein; break;
  }

  GanStepOptions options;
  options.label_classes = config_.conditional_classes();
  options.weight_clip =
      current_loss_ == GanLossKind::kWasserstein ? config_.weight_clip : 0.0;

  // Sub-population fitness tables for tournament selection: entry 0 is the
  // center, entries 1.. are the installed neighbor genomes.
  std::vector<double> d_table{d_fitness_};
  std::vector<double> g_table{g_fitness_};
  std::vector<const CellGenome*> members{nullptr};  // nullptr = center
  for (const auto& slot : subpop_) {
    if (!slot.genome) continue;
    d_table.push_back(slot.genome->d_fitness);
    g_table.push_back(slot.genome->g_fitness);
    members.push_back(&*slot.genome);
  }

  for (std::uint32_t b = 0; b < config_.batches_per_iteration; ++b) {
    if (next_batch_ >= feed_->batches_per_epoch()) {
      feed_->reshuffle(rng_);
      next_batch_ = 0;
    }
    const std::size_t batch_index = next_batch_++;
    const tensor::Tensor real = feed_->batch(batch_index);
    std::vector<std::uint32_t> real_labels;
    if (options.label_classes > 0) {
      real_labels = feed_->batch_labels(batch_index);
      options.real_labels = real_labels;
    }

    // Train the center generator against a tournament-selected discriminator.
    const std::size_t d_pick =
        tournament_select(d_table, config_.tournament_size, rng_);
    nn::Sequential* opponent_d = &discriminator_;
    if (members[d_pick] != nullptr) {
      scratch_discriminator_.load_parameters(members[d_pick]->discriminator_params);
      opponent_d = &scratch_discriminator_;
    }
    train_generator_step(generator_, g_optimizer_, *opponent_d, config_.batch_size,
                         config_.arch.latent_dim, rng_, current_loss_, options);

    // Train the center discriminator against a tournament-selected generator,
    // honoring the "skip N discriminator steps" setting.
    if (config_.discriminator_skip_steps == 0 ||
        b % config_.discriminator_skip_steps == 0) {
      const std::size_t g_pick =
          tournament_select(g_table, config_.tournament_size, rng_);
      nn::Sequential* opponent_g = &generator_;
      if (members[g_pick] != nullptr) {
        scratch_generator_.load_parameters(members[g_pick]->generator_params);
        opponent_g = &scratch_generator_;
      }
      train_discriminator_step(discriminator_, d_optimizer_, *opponent_g, real,
                               config_.arch.latent_dim, rng_, current_loss_,
                               options);
    }
  }

  evaluate_center_fitness();
}

void CellTrainer::evaluate_center_fitness() {
  if (next_batch_ >= feed_->batches_per_epoch()) {
    feed_->reshuffle(rng_);
    next_batch_ = 0;
  }
  const tensor::Tensor real = feed_->batch(next_batch_);
  const std::size_t eval_n =
      std::min<std::size_t>(config_.fitness_eval_samples, real.rows());
  const tensor::Tensor eval_real = real.slice_rows(0, eval_n);
  GanStepOptions options;
  options.label_classes = config_.conditional_classes();
  std::vector<std::uint32_t> real_labels;
  if (options.label_classes > 0) {
    real_labels = feed_->batch_labels(next_batch_);
    real_labels.resize(eval_n);
    options.real_labels = real_labels;
  }
  g_fitness_ = evaluate_generator_loss(generator_, discriminator_, eval_n,
                                       config_.arch.latent_dim, rng_, options);
  d_fitness_ = evaluate_discriminator_loss(discriminator_, generator_, eval_real,
                                           config_.arch.latent_dim, rng_, options);
}

void CellTrainer::mutate() {
  // Hyperparameter mutation (Table I): Gaussian on both Adam learning rates.
  g_optimizer_.set_learning_rate(
      mutate_learning_rate(g_optimizer_.learning_rate(), config_.lr_mutation_sigma,
                           config_.lr_mutation_probability, rng_));
  d_optimizer_.set_learning_rate(
      mutate_learning_rate(d_optimizer_.learning_rate(), config_.lr_mutation_sigma,
                           config_.lr_mutation_probability, rng_));

  // Mixture evolution: (1+1)-ES with Gaussian weight mutation. The candidate
  // replaces the incumbent when the mixture fools the center discriminator
  // at least as well.
  const MixtureWeights candidate =
      mixture_.mutated(config_.mixture_mutation_scale, rng_);
  if (mixture_quality(candidate) <= mixture_quality(mixture_)) {
    mixture_ = candidate;
  }
}

double CellTrainer::mixture_quality(const MixtureWeights& weights) {
  // Lower is better: generator-side BCE of mixture samples against the
  // center discriminator on a small probe batch.
  const std::size_t probe = std::max<std::size_t>(8, config_.fitness_eval_samples / 4);
  const std::size_t classes = config_.conditional_classes();
  std::vector<std::uint32_t> sample_labels;  // row-aligned, conditional only
  const tensor::Tensor samples = [&] {
    // Temporarily sample with the candidate weights via the shared machinery.
    std::vector<std::size_t> counts(weights.size(), 0);
    for (std::size_t i = 0; i < probe; ++i) ++counts[weights.sample_index(rng_)];
    tensor::Tensor out(probe, config_.arch.image_dim);
    std::size_t row = 0;
    for (std::size_t member = 0; member < counts.size(); ++member) {
      if (counts[member] == 0) continue;
      nn::Sequential* gen = &generator_;
      if (member > 0) {
        const std::size_t slot = member - 1;
        if (slot >= subpop_.size() || !subpop_[slot].genome) {
          gen = &generator_;  // neighbor not yet received: fall back to center
        } else {
          scratch_generator_.load_parameters(subpop_[slot].genome->generator_params);
          gen = &scratch_generator_;
        }
      }
      // Conditional: labels first, then latents — the fixed rng order the
      // training steps use.
      std::vector<std::uint32_t> labels(counts[member]);
      if (classes > 0) {
        for (auto& label : labels) {
          label = static_cast<std::uint32_t>(rng_.uniform_int(classes));
        }
        sample_labels.insert(sample_labels.end(), labels.begin(), labels.end());
      }
      tensor::Tensor z = tensor::Tensor::randn(
          counts[member], config_.arch.latent_dim, rng_, 1.0f);
      if (classes > 0) z = append_one_hot(z, labels, classes);
      const tensor::Tensor images = gen->forward(z);
      for (std::size_t k = 0; k < counts[member]; ++k, ++row) {
        auto src = images.row_span(k);
        auto dst = out.row_span(row);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
    return out;
  }();
  const tensor::Tensor logits = discriminator_.forward(
      classes == 0 ? samples : append_one_hot(samples, sample_labels, classes));
  auto [loss, grad] = tensor::bce_with_logits(
      logits, tensor::Tensor::full(samples.rows(), 1, 1.0f));
  (void)grad;
  return loss;
}

std::vector<std::uint8_t> CellTrainer::export_genome() {
  return center_genome().serialize();
}

void CellTrainer::restore(const CellGenome& genome,
                          std::span<const double> mixture_weights) {
  genome.install(generator_, discriminator_);
  g_optimizer_.set_learning_rate(genome.g_learning_rate);
  d_optimizer_.set_learning_rate(genome.d_learning_rate);
  g_optimizer_.reset();
  d_optimizer_.reset();
  g_fitness_ = genome.g_fitness;
  d_fitness_ = genome.d_fitness;
  iteration_ = genome.iteration;
  if (mixture_weights.size() == mixture_.size()) {
    mixture_.restore_weights({mixture_weights.begin(), mixture_weights.end()});
  }
}

std::vector<std::uint8_t> CellTrainer::serialize_training_state() {
  common::ByteWriter w;
  w.write_vector(center_genome().serialize());
  const auto write_adam = [&w](const nn::Adam& optimizer) {
    w.write<std::uint64_t>(optimizer.steps_taken());
    const auto write_moments = [&w](const std::vector<std::vector<float>>& moments) {
      w.write<std::uint64_t>(moments.size());
      for (const auto& buffer : moments) w.write_vector(buffer);
    };
    write_moments(optimizer.first_moments());
    write_moments(optimizer.second_moments());
  };
  write_adam(g_optimizer_);
  write_adam(d_optimizer_);
  const common::Rng::State rng = rng_.state();
  for (const std::uint64_t word : rng.s) w.write(word);
  w.write(rng.cached_normal);
  w.write<std::uint8_t>(rng.has_cached_normal ? 1 : 0);
  w.write_vector(feed_->order());
  w.write<std::uint64_t>(next_batch_);
  w.write<std::uint64_t>(subpop_.size());
  for (const auto& slot : subpop_) {
    w.write<std::uint8_t>(slot.genome ? 1 : 0);
    if (slot.genome) w.write_vector(slot.genome->serialize());
  }
  w.write_vector(mixture_.weights());
  w.write<std::uint32_t>(static_cast<std::uint32_t>(current_loss_));
  w.write(last_train_flops_);
  w.write(total_train_flops_);
  w.write(last_update_bytes_);
  policy_->serialize_state(w);  // policy-private state (LTFB win counters)
  return w.take();
}

void CellTrainer::restore_training_state(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  const CellGenome genome = CellGenome::deserialize(r.read_vector<std::uint8_t>());
  genome.install(generator_, discriminator_);
  g_optimizer_.set_learning_rate(genome.g_learning_rate);
  d_optimizer_.set_learning_rate(genome.d_learning_rate);
  g_fitness_ = genome.g_fitness;
  d_fitness_ = genome.d_fitness;
  iteration_ = genome.iteration;
  const auto read_adam = [&r](nn::Adam& optimizer) {
    const auto steps = r.read<std::uint64_t>();
    const auto read_moments = [&r] {
      std::vector<std::vector<float>> moments(r.read<std::uint64_t>());
      for (auto& buffer : moments) buffer = r.read_vector<float>();
      return moments;
    };
    auto m = read_moments();
    auto v = read_moments();
    optimizer.restore_moments(steps, std::move(m), std::move(v));
  };
  read_adam(g_optimizer_);
  read_adam(d_optimizer_);
  common::Rng::State rng;
  for (auto& word : rng.s) word = r.read<std::uint64_t>();
  rng.cached_normal = r.read<double>();
  rng.has_cached_normal = r.read<std::uint8_t>() != 0;
  rng_.restore_state(rng);
  feed_->restore_order(r.read_vector<std::uint32_t>());
  next_batch_ = static_cast<std::size_t>(r.read<std::uint64_t>());
  const auto slots = r.read<std::uint64_t>();
  CG_EXPECT(slots == subpop_.size());  // same config + grid topology
  for (auto& slot : subpop_) {
    if (r.read<std::uint8_t>() != 0) {
      slot.genome = CellGenome::deserialize(r.read_vector<std::uint8_t>());
    } else {
      slot.genome.reset();
    }
  }
  const auto weights = r.read_vector<double>();
  CG_EXPECT(weights.size() == mixture_.size());
  mixture_.restore_weights(weights);
  current_loss_ = static_cast<GanLossKind>(r.read<std::uint32_t>());
  last_train_flops_ = r.read<double>();
  total_train_flops_ = r.read<double>();
  last_update_bytes_ = r.read<double>();
  policy_->restore_state(r);
  CG_ENSURE(r.exhausted());
}

CellGenome CellTrainer::center_genome() {
  CellGenome g = CellGenome::capture(generator_, discriminator_);
  g.g_learning_rate = g_optimizer_.learning_rate();
  g.d_learning_rate = d_optimizer_.learning_rate();
  g.g_fitness = g_fitness_;
  g.d_fitness = d_fitness_;
  g.origin_cell = static_cast<std::uint32_t>(cell_);
  g.iteration = iteration_;
  return g;
}

CellEpochRecord CellTrainer::epoch_record(std::uint32_t epoch, double virtual_s) {
  CellEpochRecord record;
  record.cell = static_cast<std::uint32_t>(cell_);
  record.epoch = epoch;
  record.g_fitness = g_fitness_;
  record.d_fitness = d_fitness_;
  record.g_learning_rate = g_optimizer_.learning_rate();
  record.d_learning_rate = d_optimizer_.learning_rate();
  record.loss_kind = static_cast<std::uint32_t>(current_loss_);
  record.virtual_s = virtual_s;
  record.train_flops = total_train_flops_;
  record.exchange_policy = static_cast<std::uint32_t>(policy_->kind());
  record.exchange_partner = last_exchange_.partner;
  record.exchange_g_adopted = last_exchange_.g_adopted ? 1 : 0;
  record.exchange_d_adopted = last_exchange_.d_adopted ? 1 : 0;
  record.exchange_g_before = last_exchange_.g_fitness_before;
  record.exchange_g_after = last_exchange_.g_fitness_after;
  record.exchange_d_before = last_exchange_.d_fitness_before;
  record.exchange_d_after = last_exchange_.d_fitness_after;
  record.exchange_wins = last_exchange_.wins;
  record.exchange_bytes = last_exchange_.bytes_in;
  if (config_.genome_record_epoch(epoch)) {
    record.genome = center_genome().serialize();
    record.mixture_weights = mixture_.weights();
  }
  return record;
}

tensor::Tensor CellTrainer::sample_from_mixture(std::size_t count) {
  CG_EXPECT(count > 0);
  std::vector<std::size_t> counts(mixture_.size(), 0);
  for (std::size_t i = 0; i < count; ++i) ++counts[mixture_.sample_index(rng_)];
  tensor::Tensor out(count, config_.arch.image_dim);
  std::size_t row = 0;
  for (std::size_t member = 0; member < counts.size(); ++member) {
    if (counts[member] == 0) continue;
    nn::Sequential* gen = &generator_;
    if (member > 0) {
      const std::size_t slot = member - 1;
      if (slot < subpop_.size() && subpop_[slot].genome) {
        scratch_generator_.load_parameters(subpop_[slot].genome->generator_params);
        gen = &scratch_generator_;
      }
    }
    const std::size_t classes = config_.conditional_classes();
    std::vector<std::uint32_t> labels(counts[member]);
    if (classes > 0) {
      for (auto& label : labels) {
        label = static_cast<std::uint32_t>(rng_.uniform_int(classes));
      }
    }
    tensor::Tensor z =
        tensor::Tensor::randn(counts[member], config_.arch.latent_dim, rng_, 1.0f);
    if (classes > 0) z = append_one_hot(z, labels, classes);
    const tensor::Tensor images = gen->forward(z);
    for (std::size_t k = 0; k < counts[member]; ++k, ++row) {
      auto src = images.row_span(k);
      auto dst = out.row_span(row);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return out;
}

}  // namespace cellgan::core
