#include "core/comm_manager.hpp"

#include "common/expect.hpp"

namespace cellgan::core {

std::uint64_t GenomeStore::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

void GenomeStore::publish(int cell, std::vector<std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  CG_EXPECT(cell >= 0 && cell < static_cast<int>(slots_.size()));
  Slot& slot = slots_[cell];
  // Re-stamp this epoch's staged entry if there is one; otherwise overwrite
  // the invalid or older entry, never the newest still-readable version.
  Entry* target = &slot[0];
  if (slot[0].valid && slot[0].epoch == epoch_) {
    target = &slot[0];
  } else if (slot[1].valid && slot[1].epoch == epoch_) {
    target = &slot[1];
  } else if (!slot[0].valid) {
    target = &slot[0];
  } else if (!slot[1].valid) {
    target = &slot[1];
  } else {
    target = slot[0].epoch <= slot[1].epoch ? &slot[0] : &slot[1];
  }
  target->bytes = std::move(bytes);
  target->epoch = epoch_;
  target->valid = true;
}

std::vector<std::uint8_t> GenomeStore::latest(int cell) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CG_EXPECT(cell >= 0 && cell < static_cast<int>(slots_.size()));
  const Slot& slot = slots_[cell];
  const Entry* best = nullptr;
  for (const Entry& entry : slot) {
    if (!entry.valid || entry.epoch >= epoch_) continue;
    if (best == nullptr || entry.epoch > best->epoch) best = &entry;
  }
  return best == nullptr ? std::vector<std::uint8_t>{} : best->bytes;
}

void GenomeStore::flip() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
}

LocalCommManager::LocalCommManager(GenomeStore& store, const Grid& grid, int cell,
                                   const ExecContext& context)
    : store_(store), grid_(grid), cell_(cell), context_(context) {
  CG_EXPECT(static_cast<int>(store.size()) == grid.size());
}

std::vector<std::vector<std::uint8_t>> LocalCommManager::exchange(
    std::span<const std::uint8_t> genome_bytes) {
  publish(genome_bytes);
  return collect();
}

std::vector<std::vector<std::uint8_t>> LocalCommManager::collect() {
  return collect(grid_.neighbors_of(cell_));
}

std::vector<std::vector<std::uint8_t>> LocalCommManager::collect(
    std::span<const int> sources) {
  std::vector<std::vector<std::uint8_t>> out(store_.size());
  double copied_bytes = 0.0;
  for (const int neighbor : sources) {
    out[neighbor] = store_.latest(neighbor);  // copy, like a real transport
    copied_bytes += static_cast<double>(out[neighbor].size());
  }
  if (context_.virtual_time()) {
    const double cost =
        context_.cost->seq_gather_seconds(context_.grid_cells, copied_bytes);
    context_.charge(common::routine::kGather, 0.0, cost);
  }
  return out;
}

void LocalCommManager::publish(std::span<const std::uint8_t> genome_bytes) {
  store_.publish(cell_, {genome_bytes.begin(), genome_bytes.end()});
}

MpiCommManager::MpiCommManager(minimpi::Comm& local_comm) : local_comm_(local_comm) {}

std::vector<std::vector<std::uint8_t>> MpiCommManager::exchange(
    std::span<const std::uint8_t> genome_bytes) {
  return local_comm_.allgather(genome_bytes);
}

namespace {
// User tag for asynchronous genome publications on the LOCAL communicator.
constexpr int kTagAsyncGenome = 100;
}  // namespace

AsyncMpiCommManager::AsyncMpiCommManager(minimpi::Comm& local_comm, const Grid& grid)
    : local_comm_(local_comm),
      grid_(grid),
      latest_(static_cast<std::size_t>(grid.size())) {
  CG_EXPECT(grid_.size() == local_comm_.size());
}

std::vector<std::vector<std::uint8_t>> AsyncMpiCommManager::exchange(
    std::span<const std::uint8_t> genome_bytes) {
  const int me = cell_id();
  // Publish to the cells whose sub-populations include this one (with the
  // default symmetric neighborhoods these are exactly our own neighbors).
  for (const int target : grid_.influenced_by(me)) {
    local_comm_.send(target, kTagAsyncGenome, genome_bytes);
  }
  // Drain everything that has (causally) arrived, newest-per-source wins.
  while (auto m = local_comm_.try_recv_arrived(minimpi::kAnySource, kTagAsyncGenome)) {
    latest_[m->source] = std::move(m->payload);
  }
  // Hand back copies so the caller's install step owns its bytes.
  std::vector<std::vector<std::uint8_t>> out(latest_.size());
  for (const int neighbor : grid_.neighbors_of(me)) {
    out[neighbor] = latest_[neighbor];
  }
  return out;
}

}  // namespace cellgan::core
