#include "core/config.hpp"

#include "common/serialize.hpp"

namespace cellgan::core {

const char* to_string(ExchangeMode mode) {
  switch (mode) {
    case ExchangeMode::kAllgather: return "allgather";
    case ExchangeMode::kAsyncNeighbors: return "async-neighbors";
  }
  return "unknown";
}

const char* to_string(LossMode mode) {
  switch (mode) {
    case LossMode::kHeuristic: return "heuristic";
    case LossMode::kMinimax: return "minimax";
    case LossMode::kLeastSquares: return "least-squares";
    case LossMode::kMustangs: return "mustangs";
    case LossMode::kWasserstein: return "wasserstein";
  }
  return "unknown";
}

TrainingConfig TrainingConfig::tiny() {
  TrainingConfig config;
  config.arch = nn::GanArch::tiny();
  config.iterations = 3;
  config.batch_size = 16;
  config.fitness_eval_samples = 16;
  config.batches_per_iteration = 1;
  return config;
}

std::vector<std::uint8_t> TrainingConfig::serialize() const {
  common::ByteWriter w;
  w.write<std::uint64_t>(arch.latent_dim);
  w.write<std::uint64_t>(arch.hidden_dim);
  w.write<std::uint64_t>(arch.hidden_layers);
  w.write<std::uint64_t>(arch.image_dim);
  w.write(iterations);
  w.write(population_per_cell);
  w.write(tournament_size);
  w.write(grid_rows);
  w.write(grid_cols);
  w.write(mixture_mutation_scale);
  w.write(initial_learning_rate);
  w.write(lr_mutation_sigma);
  w.write(lr_mutation_probability);
  w.write(batch_size);
  w.write(discriminator_skip_steps);
  w.write(batches_per_iteration);
  w.write(fitness_eval_samples);
  w.write(static_cast<std::uint32_t>(loss_mode));
  w.write(static_cast<std::uint32_t>(exchange_mode));
  w.write(data_dieting_fraction);
  w.write(genome_record_every);
  w.write(genome_record_every_b);
  w.write(forward_records);
  w.write(static_cast<std::uint32_t>(data_plane));
  w.write(seed);
  w.write(static_cast<std::uint32_t>(exchange_policy));
  w.write(exchange_every);
  w.write(conditional);
  w.write(weight_clip);
  return w.take();
}

TrainingConfig TrainingConfig::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  TrainingConfig c;
  c.arch.latent_dim = r.read<std::uint64_t>();
  c.arch.hidden_dim = r.read<std::uint64_t>();
  c.arch.hidden_layers = r.read<std::uint64_t>();
  c.arch.image_dim = r.read<std::uint64_t>();
  c.iterations = r.read<std::uint32_t>();
  c.population_per_cell = r.read<std::uint32_t>();
  c.tournament_size = r.read<std::uint32_t>();
  c.grid_rows = r.read<std::uint32_t>();
  c.grid_cols = r.read<std::uint32_t>();
  c.mixture_mutation_scale = r.read<double>();
  c.initial_learning_rate = r.read<double>();
  c.lr_mutation_sigma = r.read<double>();
  c.lr_mutation_probability = r.read<double>();
  c.batch_size = r.read<std::uint32_t>();
  c.discriminator_skip_steps = r.read<std::uint32_t>();
  c.batches_per_iteration = r.read<std::uint32_t>();
  c.fitness_eval_samples = r.read<std::uint32_t>();
  c.loss_mode = static_cast<LossMode>(r.read<std::uint32_t>());
  c.exchange_mode = static_cast<ExchangeMode>(r.read<std::uint32_t>());
  c.data_dieting_fraction = r.read<double>();
  c.genome_record_every = r.read<std::uint32_t>();
  c.genome_record_every_b = r.read<std::uint32_t>();
  c.forward_records = r.read<std::uint32_t>();
  c.data_plane = static_cast<datastore::DataPlane>(r.read<std::uint32_t>());
  c.seed = r.read<std::uint64_t>();
  c.exchange_policy = static_cast<evolve::ExchangePolicyKind>(r.read<std::uint32_t>());
  c.exchange_every = r.read<std::uint32_t>();
  c.conditional = r.read<std::uint32_t>();
  c.weight_clip = r.read<double>();
  CG_ENSURE(r.exhausted());
  return c;
}

}  // namespace cellgan::core
