// Single-core baseline: the whole grid trained in one process, one cell at a
// time — the "single core" column of Table III. All cells share one virtual
// clock (their costs accumulate serially, as they would on one core) and the
// cost model's SingleCore mode applies the working-set memory penalty.
//
// The exchange between cells goes through LocalCommManager over the shared
// epoch-staged GenomeStore: each epoch a cell sees the genomes its neighbors
// published at the end of the previous epoch, the same schedule-independent
// semantics the thread-parallel trainer (core/parallel_trainer.hpp) and the
// distributed allgather use — so all three trainers are comparable run for
// run. The run loop, outcome assembly and checkpointing live in
// core/trainer_core.hpp.
#pragma once

#include "core/trainer_core.hpp"

namespace cellgan::core {

class SequentialTrainer final : public InProcessTrainer {
 public:
  /// `dataset` must outlive the trainer.
  SequentialTrainer(const TrainingConfig& config, const data::Dataset& dataset,
                    const CostModel& cost_model = {});

  TrainOutcome run() override;

  /// Calibration probe: per-cell-per-iteration work of this configuration
  /// (runs one throwaway iteration on a scratch cell).
  static WorkloadProbe measure_workload(const TrainingConfig& config,
                                        const data::Dataset& dataset) {
    return TrainerCore::measure_workload(config, dataset);
  }

 private:
  common::VirtualClock clock_;
  common::Profiler profiler_;
  common::Rng jitter_rng_;
};

}  // namespace cellgan::core
