// Single-core baseline: the whole grid trained in one process — the
// "single core" column of Table III. All cells share one virtual clock
// (their costs accumulate serially, as they would on one core) and the
// cost model's SingleCore mode applies the working-set memory penalty.
//
// The exchange between cells goes through LocalCommManager over an
// in-process GenomeStore, preserving the cellular algorithm's semantics:
// each epoch a cell sees the latest genome its neighbors have published.
#pragma once

#include <memory>
#include <vector>

#include "core/cell_trainer.hpp"
#include "core/checkpoint.hpp"
#include "core/comm_manager.hpp"
#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/grid.hpp"
#include "data/dataset.hpp"

namespace cellgan::core {

/// Result of a full training run (either mode).
struct TrainOutcome {
  double wall_s = 0.0;
  double virtual_s = 0.0;              ///< simulated makespan (0 if disabled)
  common::Profiler profiler;           ///< per-routine totals (see Table IV)
  std::vector<double> g_fitnesses;     ///< final per-cell generator losses
  std::vector<double> d_fitnesses;
  int best_cell = 0;                   ///< argmin generator fitness
};

class SequentialTrainer {
 public:
  /// `dataset` must outlive the trainer.
  SequentialTrainer(const TrainingConfig& config, const data::Dataset& dataset,
                    const CostModel& cost_model = {});

  /// Run the configured number of iterations over every cell.
  TrainOutcome run();

  /// Access to trained cells (valid after run()) for sampling / inspection.
  Grid& grid() { return grid_; }
  CellTrainer& cell(int cell_id) { return *cells_[cell_id]; }
  int cells() const { return static_cast<int>(cells_.size()); }

  /// Snapshot the whole grid for persistence (see core/checkpoint.hpp).
  Checkpoint checkpoint();

  /// Restore every cell from a checkpoint taken with a compatible
  /// configuration (same grid and architecture). A subsequent run() trains
  /// `config.iterations` further epochs.
  void restore(const Checkpoint& snapshot);

  /// Calibration probe: per-cell-per-iteration work of this configuration
  /// (runs one throwaway iteration on a scratch cell).
  static WorkloadProbe measure_workload(const TrainingConfig& config,
                                        const data::Dataset& dataset);

 private:
  TrainingConfig config_;
  const data::Dataset& dataset_;
  CostModel cost_model_;
  Grid grid_;
  common::VirtualClock clock_;
  common::Profiler profiler_;
  common::Rng jitter_rng_;
  ExecContext context_;
  GenomeStore store_;
  std::vector<std::unique_ptr<CellTrainer>> cells_;
  std::vector<std::unique_ptr<LocalCommManager>> comms_;
};

}  // namespace cellgan::core
