#include "core/distributed_trainer.hpp"

#include <mutex>
#include <utility>

#include "common/timer.hpp"
#include "core/slave.hpp"
#include "minimpi/bootstrap.hpp"
#include "minimpi/errors.hpp"
#include "minimpi/tcp_transport.hpp"

namespace cellgan::core {

namespace {

/// One rank's life in the master/slave deployment — identical whether the
/// world is thread-per-rank or one process per rank, which is what makes the
/// TCP deployment bit-compatible with the in-process simulation.
void distributed_rank_main(minimpi::Comm& world, const TrainingConfig& config,
                           const data::Dataset& dataset,
                           const CostModel& cost_model,
                           const Master::Options& master_options,
                           MasterOutcome* master_outcome,
                           std::mutex* outcome_mutex) {
  // Communicator contexts (Section III.D): LOCAL excludes the master,
  // GLOBAL includes everyone. Splits are collective over WORLD.
  auto local = world.split(world.rank() == 0 ? -1 : 0, world.rank());
  auto global = world.split(0, world.rank());
  CG_EXPECT(global.has_value());

  if (world.rank() == 0) {
    Master master(world, *global, config, cost_model, master_options);
    MasterOutcome outcome = master.run();
    std::lock_guard<std::mutex> lock(*outcome_mutex);
    *master_outcome = std::move(outcome);
  } else {
    CG_EXPECT(local.has_value());
    Slave slave(world, *local, *global, dataset, cost_model);
    slave.run();
  }
}

}  // namespace

double average_slave_routine_virtual_min(
    std::span<const minimpi::Runtime::RankResult> ranks,
    const std::string& routine) {
  if (ranks.size() <= 1) return 0.0;
  double total = 0.0;
  for (std::size_t r = 1; r < ranks.size(); ++r) {
    total += ranks[r].profiler.cost(routine).virtual_s;
  }
  return total / static_cast<double>(ranks.size() - 1) / 60.0;
}

double DistributedOutcome::slave_routine_virtual_min(const std::string& routine) const {
  return average_slave_routine_virtual_min(ranks, routine);
}

double DistributedOutcome::slave_routine_wall_s(const std::string& routine) const {
  if (ranks.size() <= 1) return 0.0;
  double total = 0.0;
  for (std::size_t r = 1; r < ranks.size(); ++r) {
    total += ranks[r].profiler.cost(routine).wall_s;
  }
  return total / static_cast<double>(ranks.size() - 1);
}

DistributedOutcome run_distributed(const TrainingConfig& config,
                                   const data::Dataset& dataset,
                                   const CostModel& cost_model) {
  return run_distributed(config, dataset, cost_model, Master::Options{});
}

DistributedOutcome run_distributed(const TrainingConfig& config,
                                   const data::Dataset& dataset,
                                   const CostModel& cost_model,
                                   Master::Options master_options) {
  const int world_size = static_cast<int>(config.grid_cells()) + 1;
  minimpi::Runtime runtime(world_size, cost_model.net_config(), config.seed);

  DistributedOutcome outcome;
  std::mutex outcome_mutex;
  common::WallTimer wall;

  auto rank_results = runtime.run([&](minimpi::Comm& world) {
    distributed_rank_main(world, config, dataset, cost_model, master_options,
                          &outcome.master, &outcome_mutex);
  });

  outcome.wall_s = wall.elapsed_s();
  outcome.ranks = std::move(rank_results);
  outcome.virtual_makespan_s = outcome.master.virtual_makespan_s;
  return outcome;
}

std::optional<TcpWorld> tcp_world_from_env(std::string* error) {
  const auto env = minimpi::world_from_env(error);
  if (!env) return std::nullopt;
  TcpWorld world;
  world.world_size = env->world_size;
  world.rank = env->rank;
  world.rendezvous = env->rendezvous;
  return world;
}

DistributedOutcome run_distributed_tcp(const TcpWorld& world_config,
                                       const TrainingConfig& config,
                                       const data::Dataset& dataset,
                                       const CostModel& cost_model,
                                       Master::Options master_options) {
  const int expected_world = static_cast<int>(config.grid_cells()) + 1;
  if (world_config.world_size != expected_world) {
    throw minimpi::BootstrapError(
        "bootstrap: world size " + std::to_string(world_config.world_size) +
        " does not match the configured grid (" + std::to_string(expected_world) +
        " = " + std::to_string(config.grid_cells()) + " cells + 1 master)");
  }

  minimpi::TcpTransportOptions transport_options;
  transport_options.world_size = world_config.world_size;
  transport_options.rank = world_config.rank;
  transport_options.rendezvous = world_config.rendezvous;
  transport_options.timeout_s = world_config.timeout_s;
  auto transport = std::make_unique<minimpi::TcpTransport>(transport_options);
  if (world_config.rank == 0 && world_config.on_listening) {
    world_config.on_listening(transport->rendezvous_endpoint());
  }

  // Same world size, net model and seed as the in-process Runtime in
  // run_distributed — the per-rank virtual clocks and jitter streams line up
  // exactly, so this rank's outcome is bit-identical to its simulated twin.
  minimpi::Runtime runtime(world_config.world_size, world_config.rank,
                           std::move(transport), cost_model.net_config(),
                           config.seed);

  DistributedOutcome outcome;
  std::mutex outcome_mutex;
  common::WallTimer wall;
  auto rank_results = runtime.run([&](minimpi::Comm& world) {
    distributed_rank_main(world, config, dataset, cost_model, master_options,
                          &outcome.master, &outcome_mutex);
  });

  outcome.wall_s = wall.elapsed_s();
  outcome.ranks = std::move(rank_results);
  outcome.virtual_makespan_s =
      world_config.rank == 0
          ? outcome.master.virtual_makespan_s
          : outcome.ranks[static_cast<std::size_t>(world_config.rank)].virtual_time_s;
  return outcome;
}

}  // namespace cellgan::core
