#include "core/distributed_trainer.hpp"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/rank_state.hpp"
#include "core/slave.hpp"
#include "minimpi/bootstrap.hpp"
#include "minimpi/errors.hpp"
#include "minimpi/tcp_transport.hpp"

namespace cellgan::core {

namespace {

/// Out-of-band control receive for the recovery negotiation: sliced so a
/// peer dying mid-negotiation raises PeerDeathError immediately; silence
/// past the deadline becomes TimeoutError. Never touches the virtual clock.
minimpi::Message recv_oob_or_die(minimpi::Comm& world, int src, int tag,
                                 double timeout_s) {
  common::WallTimer quiet;
  for (;;) {
    if (auto m = world.recv_oob_for(src, tag, std::min(timeout_s, 0.1))) {
      return std::move(*m);
    }
    if (world.peer_lost(src)) {
      throw minimpi::PeerDeathError(
          src, "recovery negotiation: rank " + std::to_string(src) + " died (" +
                   world.peer_loss_reason(src) + ")");
    }
    if (quiet.elapsed_s() >= timeout_s) {
      throw minimpi::TimeoutError(
          "recovery negotiation: no reply from rank " + std::to_string(src) +
          " within " + std::to_string(timeout_s) + "s");
    }
  }
}

void send_oob_epoch(minimpi::Comm& world, int dst, int tag, std::uint32_t epoch) {
  world.send_oob(dst, tag,
                 std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(&epoch), sizeof(epoch)));
}

/// Agree on the rollback epoch E for this generation (Fig: offer/plan over
/// WORLD, out-of-band). Every slave offers the epoch of its newest readable
/// RankCheckpoint (kNoCheckpointEpoch when it has none, e.g. a respawned
/// rank that died before its first exchange); rank 0 replies with the
/// minimum, 0 meaning a fresh start. The allgather lockstep bounds
/// inter-rank checkpoint skew to one epoch, so E is guaranteed to live in
/// every rank's two-slot rolling pair; slaves load it into `restored`.
std::uint32_t negotiate_rollback(minimpi::Comm& world,
                                 const RecoveryOptions& recovery,
                                 std::optional<RankCheckpoint>* restored) {
  const int slaves = world.size() - 1;
  if (world.rank() == 0) {
    std::uint32_t plan = protocol::kNoCheckpointEpoch;
    for (int rank = 1; rank <= slaves; ++rank) {
      const auto m = recv_oob_or_die(world, rank, protocol::kRecoverOffer,
                                     recovery.negotiation_timeout_s);
      plan = std::min(plan, minimpi::Comm::value_of<std::uint32_t>(m));
    }
    if (plan == protocol::kNoCheckpointEpoch) plan = 0;
    for (int rank = 1; rank <= slaves; ++rank) {
      send_oob_epoch(world, rank, protocol::kRecoverPlan, plan);
    }
    if (plan > 0) {
      common::log_info() << "recovery: rolling the world back to epoch " << plan;
    }
    return plan;
  }

  auto latest = load_latest_rank_checkpoint(recovery.state_dir, world.rank());
  const std::uint32_t offer =
      latest ? latest->epoch : protocol::kNoCheckpointEpoch;
  send_oob_epoch(world, 0, protocol::kRecoverOffer, offer);
  const auto m = recv_oob_or_die(world, 0, protocol::kRecoverPlan,
                                 recovery.negotiation_timeout_s);
  const auto plan = minimpi::Comm::value_of<std::uint32_t>(m);
  if (plan > 0) {
    if (latest && latest->epoch == plan) {
      *restored = std::move(latest);
    } else {
      *restored = load_rank_checkpoint_at(recovery.state_dir, world.rank(), plan);
    }
    if (!restored->has_value()) {
      // Skew-bound violation or on-disk corruption: unrecoverable by
      // retrying from the same state, so propagate past the recovery loop.
      throw std::runtime_error(
          "recovery: rank " + std::to_string(world.rank()) +
          " has no readable checkpoint for the agreed epoch " +
          std::to_string(plan) + " under " + recovery.state_dir);
    }
  }
  return plan;
}

/// One rank's life in the master/slave deployment — identical whether the
/// world is thread-per-rank or one process per rank, which is what makes the
/// TCP deployment bit-compatible with the in-process simulation.
void distributed_rank_main(minimpi::Comm& world, const TrainingConfig& config,
                           const data::Dataset& dataset,
                           const CostModel& cost_model,
                           const Master::Options& master_options,
                           const RecoveryOptions& recovery,
                           MasterOutcome* master_outcome,
                           std::mutex* outcome_mutex) {
  // Rollback negotiation first (out-of-band, clock-neutral): a fresh world
  // agrees on E = 0 and proceeds exactly as before recovery existed.
  std::uint32_t resume_epoch = 0;
  std::optional<RankCheckpoint> restored;
  if (recovery.enabled) {
    resume_epoch = negotiate_rollback(world, recovery, &restored);
  }

  // Communicator contexts (Section III.D): LOCAL excludes the master,
  // GLOBAL includes everyone. Splits are collective over WORLD.
  auto local = world.split(world.rank() == 0 ? -1 : 0, world.rank());
  auto global = world.split(0, world.rank());
  CG_EXPECT(global.has_value());

  if (world.rank() == 0) {
    Master::Options options = master_options;
    options.resume_epoch = resume_epoch;
    Master master(world, *global, config, cost_model, options);
    MasterOutcome outcome = master.run();
    std::lock_guard<std::mutex> lock(*outcome_mutex);
    *master_outcome = std::move(outcome);
  } else {
    CG_EXPECT(local.has_value());
    Slave::Options slave_options;
    slave_options.resume_epoch = resume_epoch;
    slave_options.restore = restored.has_value() ? &*restored : nullptr;
    if (recovery.enabled) slave_options.state_dir = recovery.state_dir;
    if (recovery.kill_at_epoch >= 0) {
      const int rank = world.rank();
      slave_options.on_iteration = [rank,
                                    kill = recovery.kill_at_epoch](std::uint32_t iter) {
        if (static_cast<std::int64_t>(iter) == kill) {
          common::log_warn() << "chaos: rank " << rank
                             << " raising SIGKILL after epoch " << iter;
          ::raise(SIGKILL);
        }
      };
    }
    Slave slave(world, *local, *global, dataset, cost_model, slave_options);
    slave.run();
  }
}

}  // namespace

double average_slave_routine_virtual_min(
    std::span<const minimpi::Runtime::RankResult> ranks,
    const std::string& routine) {
  if (ranks.size() <= 1) return 0.0;
  double total = 0.0;
  for (std::size_t r = 1; r < ranks.size(); ++r) {
    total += ranks[r].profiler.cost(routine).virtual_s;
  }
  return total / static_cast<double>(ranks.size() - 1) / 60.0;
}

double DistributedOutcome::slave_routine_virtual_min(const std::string& routine) const {
  return average_slave_routine_virtual_min(ranks, routine);
}

double DistributedOutcome::slave_routine_wall_s(const std::string& routine) const {
  if (ranks.size() <= 1) return 0.0;
  double total = 0.0;
  for (std::size_t r = 1; r < ranks.size(); ++r) {
    total += ranks[r].profiler.cost(routine).wall_s;
  }
  return total / static_cast<double>(ranks.size() - 1);
}

DistributedOutcome run_distributed(const TrainingConfig& config,
                                   const data::Dataset& dataset,
                                   const CostModel& cost_model) {
  return run_distributed(config, dataset, cost_model, Master::Options{});
}

DistributedOutcome run_distributed(const TrainingConfig& config,
                                   const data::Dataset& dataset,
                                   const CostModel& cost_model,
                                   Master::Options master_options) {
  const int world_size = static_cast<int>(config.grid_cells()) + 1;
  minimpi::Runtime runtime(world_size, cost_model.net_config(), config.seed);

  DistributedOutcome outcome;
  std::mutex outcome_mutex;
  common::WallTimer wall;

  auto rank_results = runtime.run([&](minimpi::Comm& world) {
    distributed_rank_main(world, config, dataset, cost_model, master_options,
                          RecoveryOptions{}, &outcome.master, &outcome_mutex);
  });

  outcome.wall_s = wall.elapsed_s();
  outcome.ranks = std::move(rank_results);
  outcome.virtual_makespan_s = outcome.master.virtual_makespan_s;
  return outcome;
}

RecoveryOptions recovery_options_from_env() {
  RecoveryOptions recovery;
  if (const char* dir = std::getenv(kEnvRecoverDir);
      dir != nullptr && dir[0] != '\0') {
    recovery.enabled = true;
    recovery.state_dir = dir;
  }
  if (const char* max = std::getenv(kEnvMaxRestarts);
      max != nullptr && max[0] != '\0') {
    recovery.max_restarts = std::atoi(max);
  }
  if (const char* kill = std::getenv(kEnvKillAtEpoch);
      kill != nullptr && kill[0] != '\0') {
    recovery.kill_at_epoch = std::atoll(kill);
  }
  return recovery;
}

std::optional<TcpWorld> tcp_world_from_env(std::string* error) {
  const auto env = minimpi::world_from_env(error);
  if (!env) return std::nullopt;
  TcpWorld world;
  world.world_size = env->world_size;
  world.rank = env->rank;
  world.rendezvous = env->rendezvous;
  return world;
}

namespace {

/// One generation of the TCP deployment: bootstrap at `rendezvous`, run this
/// rank to completion (or to a thrown error), tear everything down. On rank 0
/// `rendezvous` is updated to the concrete bound endpoint so a follow-up
/// generation rebinds the very address the other ranks will redial — even
/// when the caller asked for port 0.
DistributedOutcome run_distributed_tcp_generation(
    const TcpWorld& world_config, std::string* rendezvous, bool announce,
    const TrainingConfig& config, const data::Dataset& dataset,
    const CostModel& cost_model, const Master::Options& master_options,
    const RecoveryOptions& recovery) {
  minimpi::TcpTransportOptions transport_options;
  transport_options.world_size = world_config.world_size;
  transport_options.rank = world_config.rank;
  transport_options.rendezvous = *rendezvous;
  transport_options.timeout_s = world_config.timeout_s;
  auto transport = std::make_unique<minimpi::TcpTransport>(transport_options);
  if (world_config.rank == 0) {
    *rendezvous = transport->rendezvous_endpoint();
    if (announce && world_config.on_listening) {
      world_config.on_listening(*rendezvous);
    }
  }

  // Same world size, net model and seed as the in-process Runtime in
  // run_distributed — the per-rank virtual clocks and jitter streams line up
  // exactly, so this rank's outcome is bit-identical to its simulated twin.
  minimpi::Runtime runtime(world_config.world_size, world_config.rank,
                           std::move(transport), cost_model.net_config(),
                           config.seed);

  DistributedOutcome outcome;
  std::mutex outcome_mutex;
  common::WallTimer wall;
  auto rank_results = runtime.run([&](minimpi::Comm& world) {
    distributed_rank_main(world, config, dataset, cost_model, master_options,
                          recovery, &outcome.master, &outcome_mutex);
  });

  outcome.wall_s = wall.elapsed_s();
  outcome.ranks = std::move(rank_results);
  outcome.virtual_makespan_s =
      world_config.rank == 0
          ? outcome.master.virtual_makespan_s
          : outcome.ranks[static_cast<std::size_t>(world_config.rank)].virtual_time_s;
  return outcome;
}

}  // namespace

DistributedOutcome run_distributed_tcp(const TcpWorld& world_config,
                                       const TrainingConfig& config,
                                       const data::Dataset& dataset,
                                       const CostModel& cost_model,
                                       Master::Options master_options,
                                       RecoveryOptions recovery) {
  const int expected_world = static_cast<int>(config.grid_cells()) + 1;
  if (world_config.world_size != expected_world) {
    throw minimpi::BootstrapError(
        "bootstrap: world size " + std::to_string(world_config.world_size) +
        " does not match the configured grid (" + std::to_string(expected_world) +
        " = " + std::to_string(config.grid_cells()) + " cells + 1 master)");
  }
  if (recovery.enabled &&
      config.exchange_mode == ExchangeMode::kAsyncNeighbors) {
    // The skew-≤1 bound the rollback negotiation rests on comes from the
    // allgather lockstep; the asynchronous exchange offers no such fence.
    common::log_warn() << "recovery: only the allgather exchange is supported; "
                          "disabling rank-death recovery for this run";
    recovery.enabled = false;
  }

  // Generation loop: a detected rank death tears this generation down and
  // the next one re-bootstraps at the same rendezvous — the surviving
  // processes and the respawned rank (relaunched by cellgan_launch with the
  // same environment) meet there and roll back together. Teardown cascades:
  // one rank restarting closes its sockets, which surfaces as PeerDeathError
  // in every peer's death-aware receive, so no rank is left behind in a
  // dead generation.
  std::string rendezvous = world_config.rendezvous;
  for (int attempt = 0;; ++attempt) {
    try {
      return run_distributed_tcp_generation(world_config, &rendezvous,
                                            /*announce=*/attempt == 0, config,
                                            dataset, cost_model, master_options,
                                            recovery);
    } catch (const minimpi::PeerDeathError& e) {
      if (!recovery.enabled || attempt >= recovery.max_restarts) throw;
      common::log_warn() << "rank " << world_config.rank << ": " << e.what()
                         << "; restarting generation (" << attempt + 1 << "/"
                         << recovery.max_restarts << ")";
    }
  }
}

}  // namespace cellgan::core
