#include "core/distributed_trainer.hpp"

#include <mutex>

#include "common/timer.hpp"
#include "core/slave.hpp"

namespace cellgan::core {

double average_slave_routine_virtual_min(
    std::span<const minimpi::Runtime::RankResult> ranks,
    const std::string& routine) {
  if (ranks.size() <= 1) return 0.0;
  double total = 0.0;
  for (std::size_t r = 1; r < ranks.size(); ++r) {
    total += ranks[r].profiler.cost(routine).virtual_s;
  }
  return total / static_cast<double>(ranks.size() - 1) / 60.0;
}

double DistributedOutcome::slave_routine_virtual_min(const std::string& routine) const {
  return average_slave_routine_virtual_min(ranks, routine);
}

double DistributedOutcome::slave_routine_wall_s(const std::string& routine) const {
  if (ranks.size() <= 1) return 0.0;
  double total = 0.0;
  for (std::size_t r = 1; r < ranks.size(); ++r) {
    total += ranks[r].profiler.cost(routine).wall_s;
  }
  return total / static_cast<double>(ranks.size() - 1);
}

DistributedOutcome run_distributed(const TrainingConfig& config,
                                   const data::Dataset& dataset,
                                   const CostModel& cost_model) {
  return run_distributed(config, dataset, cost_model, Master::Options{});
}

DistributedOutcome run_distributed(const TrainingConfig& config,
                                   const data::Dataset& dataset,
                                   const CostModel& cost_model,
                                   Master::Options master_options) {
  const int world_size = static_cast<int>(config.grid_cells()) + 1;
  minimpi::Runtime runtime(world_size, cost_model.net_config(), config.seed);

  DistributedOutcome outcome;
  std::mutex outcome_mutex;
  common::WallTimer wall;

  auto rank_results = runtime.run([&](minimpi::Comm& world) {
    // Communicator contexts (Section III.D): LOCAL excludes the master,
    // GLOBAL includes everyone. Splits are collective over WORLD.
    auto local = world.split(world.rank() == 0 ? -1 : 0, world.rank());
    auto global = world.split(0, world.rank());
    CG_EXPECT(global.has_value());

    if (world.rank() == 0) {
      Master master(world, *global, config, cost_model, master_options);
      MasterOutcome master_outcome = master.run();
      std::lock_guard<std::mutex> lock(outcome_mutex);
      outcome.master = std::move(master_outcome);
    } else {
      CG_EXPECT(local.has_value());
      Slave slave(world, *local, *global, dataset, cost_model);
      slave.run();
    }
  });

  outcome.wall_s = wall.elapsed_s();
  outcome.ranks = std::move(rank_results);
  outcome.virtual_makespan_s = outcome.master.virtual_makespan_s;
  return outcome;
}

}  // namespace cellgan::core
