// RunSpec — the one description of a training run, whatever executes it.
//
// The paper presents a single cellular-training algorithm with three
// execution vehicles (single core, p cores, distributed master/slave —
// Tables III/IV). RunSpec captures everything a run needs — the
// TrainingConfig, which Backend executes it, the dataset to resolve
// (synthetic stand-in or real MNIST IDX files on disk), the virtual-time
// cost-model calibration, and output options — so examples, benchmarks and
// CI all describe runs the same way and core::Session (core/session.hpp)
// can execute them behind one API.
//
// A RunSpec is buildable from command-line flags (add_flags/from_cli over
// common::CliParser) and round-trips through a JSON text form
// (to_text/from_text), so any run can be saved next to its results and
// replayed exactly (`cellgan_run --spec run.json`).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/cli.hpp"
#include "core/config.hpp"

namespace cellgan::core {

/// Which execution vehicle runs the grid (Table III's three columns, plus
/// the multi-process deployment of the same master/slave system).
enum class Backend : std::uint32_t {
  kSequential = 0,   ///< one process, cells stepped one at a time
  kThreads = 1,      ///< one process, cells stepped on ThreadPool lanes
  kDistributed = 2,  ///< minimpi master + one slave rank per cell (threads)
  /// One OS process per rank, frames over TCP sockets; this process runs the
  /// single rank named by the CELLGAN_RANK/CELLGAN_WORLD/CELLGAN_ENDPOINT
  /// environment (exported by `cellgan_launch`). Per-rank outcomes are
  /// bit-identical to kDistributed on the same seed.
  kDistributedTcp = 3,
};

/// The vehicles a single process can run self-contained (kDistributedTcp is
/// excluded: it needs a multi-process world around it).
inline constexpr Backend kAllBackends[] = {Backend::kSequential, Backend::kThreads,
                                           Backend::kDistributed};

const char* to_string(Backend backend);
std::optional<Backend> backend_from_string(std::string_view name);

/// ", "-joined names currently registered in the BackendRegistry — the
/// vocabulary `--backend` / RunSpec parsing validates against (and prints in
/// its errors), so an unregistered name fails at parse time, not mid-run.
std::string registered_backend_names();

/// Which CostProfile calibrates the virtual clocks (empty model = pure
/// wall-clock runs; table3/table4 reproduce the paper's two — mutually
/// inconsistent — calibration targets, see core/cost_model.hpp).
enum class CostProfileKind : std::uint32_t { kNone = 0, kTable3 = 1, kTable4 = 2 };

const char* to_string(CostProfileKind kind);
std::optional<CostProfileKind> cost_profile_from_string(std::string_view name);

std::optional<LossMode> loss_mode_from_string(std::string_view name);
std::optional<ExchangeMode> exchange_mode_from_string(std::string_view name);

/// ", "-joined names of the registered exchange policies (evolve/exchange.hpp)
/// — printed by `--exchange` diagnostics and `cellgan_run --list-exchanges`.
std::string registered_exchange_policy_names();

/// Check the exchange policy/transport combination: ltfb and gap need
/// non-neighbor genomes, which the async-neighbors transport never carries.
/// On failure fills `error` with a named diagnostic. Called by from_cli and
/// Session::prepare (specs can arrive via from_text without a CLI in front).
bool validate_exchange(const TrainingConfig& config, std::string* error);

/// Which tensor microkernel implementation the run executes on (the seam in
/// tensor/kernels.hpp). kAuto keeps the process default — the
/// CELLGAN_TENSOR_KERNEL environment variable, or simd when unset; the two
/// explicit choices pin the kind process-wide when the Session prepares.
enum class TensorKernel : std::uint32_t { kAuto = 0, kScalar = 1, kSimd = 2 };

const char* to_string(TensorKernel kernel);
std::optional<TensorKernel> tensor_kernel_from_string(std::string_view name);

/// Where the training data comes from. Text grammar (the `--dataset` flag):
///   synthetic              procedural stand-in, keeping the program's
///                          default sample count/seed
///   synthetic:N            N training samples
///   synthetic:N@SEED       N samples drawn with SEED
///   idx:DIR                real MNIST IDX files under DIR (hard error when
///                          missing — no silent fallback)
struct DatasetSpec {
  enum class Kind : std::uint32_t { kSynthetic = 0, kIdx = 1 };

  Kind kind = Kind::kSynthetic;
  std::string idx_dir;         ///< kIdx only
  std::size_t samples = 600;   ///< kSynthetic: training samples (test = /6)
  std::uint64_t seed = 7;      ///< kSynthetic: generator seed

  static std::optional<DatasetSpec> parse(const std::string& text,
                                          std::string* error = nullptr);
  /// Parse on top of `base`: a bare `synthetic` keeps the base's sample
  /// count/seed (the program's defaults) instead of resetting them.
  static std::optional<DatasetSpec> parse(const std::string& text,
                                          const DatasetSpec& base,
                                          std::string* error);
  std::string to_text() const;

  friend bool operator==(const DatasetSpec&, const DatasetSpec&) = default;
};

/// Observer configuration of a run (core/observer.hpp): which built-in
/// observers the Session attaches and the cadence knobs shared with external
/// evaluators (metrics::EvaluatorObserver). Any non-zero cadence makes the
/// trainers embed genome payloads in the matching epoch records
/// (TrainingConfig::genome_record_every, derived by Session::prepare).
struct ObserverSpec {
  /// Metric-evaluation cadence in epochs (the `--eval-every` flag); 0 = off.
  /// The Session only derives the record cadence from it — programs attach
  /// the evaluator itself (cellgan_run, table2_metrics).
  std::uint32_t eval_every = 0;
  std::size_t eval_samples = 256;  ///< samples per generator / mixture eval
  /// JSONL telemetry event-stream path (`--telemetry`); empty = off.
  std::string telemetry;
  /// Rolling-checkpoint cadence + file (`--checkpoint-every/-path`); a
  /// CheckpointPolicyObserver is attached when both are set.
  std::uint32_t checkpoint_every = 0;
  std::string checkpoint_path;

  friend bool operator==(const ObserverSpec&, const ObserverSpec&) = default;
};

struct RunSpec {
  TrainingConfig config;
  Backend backend = Backend::kSequential;
  std::size_t threads = 2;  ///< worker lanes for Backend::kThreads
  DatasetSpec dataset;
  CostProfileKind cost_profile = CostProfileKind::kNone;
  /// Tensor microkernel selection (`--tensor-kernel`): auto | scalar | simd.
  /// scalar is the bit-exact seed-identical reference; simd is the packed
  /// vectorized path (deterministic per kind, may differ from scalar in
  /// low-order GEMM bits).
  TensorKernel tensor_kernel = TensorKernel::kAuto;
  ObserverSpec observers;
  /// When non-empty, Session::run() writes the unified RunResult as JSON here.
  std::string result_json;

  /// Register the shared flags on `cli`, with defaults taken from
  /// `defaults` so each program's --help shows its own baseline. Programs
  /// may register extra flags of their own before parse().
  static void add_flags(common::CliParser& cli, const RunSpec& defaults);

  /// Build a spec from parsed flags: start from `defaults` (or from the file
  /// named by an explicit --spec), then apply exactly the flags the user
  /// passed. Returns nullopt (after printing a diagnostic) on a malformed
  /// value. Must be given the same `defaults` as add_flags.
  static std::optional<RunSpec> from_cli(const common::CliParser& cli,
                                         const RunSpec& defaults);

  /// Convenience for programs with no extra flags: parser + add_flags +
  /// parse + from_cli in one call. Returns nullopt on --help or bad flags.
  static std::optional<RunSpec> from_args(int argc, const char* const* argv,
                                          const std::string& description,
                                          const RunSpec& defaults);

  /// JSON text form; round-trips exactly (doubles printed with %.17g).
  std::string to_text() const;
  static std::optional<RunSpec> from_text(const std::string& text,
                                          std::string* error = nullptr);

  /// Load/save the JSON text form from/to a file.
  static std::optional<RunSpec> load(const std::string& path,
                                     std::string* error = nullptr);
  bool save(const std::string& path) const;

  friend bool operator==(const RunSpec&, const RunSpec&) = default;
};

}  // namespace cellgan::core
