// Training configuration — the C++ mirror of the paper's Table I.
//
// Defaults reproduce the paper's settings exactly; tests and wall-clock
// benchmarks override toward smaller nets / fewer iterations. The config is
// serializable because the master broadcasts it to every slave at startup
// ("sharing the parameter configuration to be used in the execution with all
// slave processes", Section III.B).
#pragma once

#include <cstdint>
#include <vector>

#include "datastore/data_plane.hpp"
#include "evolve/exchange.hpp"
#include "nn/gan_models.hpp"

namespace cellgan::core {

/// Which adversarial objective the cells train with. The first three pin one
/// objective for the whole run (kHeuristic = Lipizzaner's default); kMustangs
/// applies Mustangs-style loss-function mutation — each cell draws a fresh
/// objective from {heuristic, minimax, least-squares} every epoch;
/// kWasserstein trains a WGAN critic (linear losses + weight clipping).
enum class LossMode : std::uint32_t {
  kHeuristic = 0,
  kMinimax = 1,
  kLeastSquares = 2,
  kMustangs = 3,
  kWasserstein = 4,
};

const char* to_string(LossMode mode);

/// How slaves exchange center genomes after each epoch.
enum class ExchangeMode : std::uint32_t {
  /// Collective allgather over the LOCAL communicator — the paper's
  /// implementation. Synchronizes the whole grid every epoch.
  kAllgather = 0,
  /// Point-to-point publication to neighbors + non-blocking newest-available
  /// reads: no epoch barrier, stragglers never stall the grid.
  kAsyncNeighbors = 1,
};

const char* to_string(ExchangeMode mode);

struct TrainingConfig {
  // -- Network topology (Table I) -------------------------------------------
  nn::GanArch arch = nn::GanArch::paper();

  // -- Coevolutionary settings (Table I) -------------------------------------
  std::uint32_t iterations = 200;
  std::uint32_t population_per_cell = 1;
  std::uint32_t tournament_size = 2;
  std::uint32_t grid_rows = 2;
  std::uint32_t grid_cols = 2;
  double mixture_mutation_scale = 0.01;

  // -- Hyperparameter mutation (Table I) --------------------------------------
  double initial_learning_rate = 0.0002;  // Adam
  double lr_mutation_sigma = 0.0001;      // "mutation rate"
  double lr_mutation_probability = 0.5;

  // -- Training settings (Table I) --------------------------------------------
  std::uint32_t batch_size = 100;
  std::uint32_t discriminator_skip_steps = 1;  // "Skip N disc. steps"

  // -- Implementation knobs (not in Table I) ----------------------------------
  std::uint32_t batches_per_iteration = 1;  ///< gradient batches per epoch/cell
  std::uint32_t fitness_eval_samples = 100; ///< batch used for fitness evals
  LossMode loss_mode = LossMode::kHeuristic;
  ExchangeMode exchange_mode = ExchangeMode::kAllgather;
  /// Data dieting [Toutouh et al., 2020, ref. 20 of the paper]: each cell
  /// trains on an independent random subsample of this fraction of the
  /// training set (1.0 = full data, Lipizzaner's default). Cuts per-cell
  /// memory and adds data-level diversity across the grid.
  double data_dieting_fraction = 1.0;
  /// Genome-payload cadences of the observer records: on epochs matching
  /// either cadence (see genome_record_epoch), each cell's per-epoch record
  /// additionally carries its serialized center genome + mixture weights —
  /// the payload the metric evaluator (cadence a) and checkpoint policy
  /// (cadence b) consume; two independent divisors instead of one gcd, so
  /// coprime cadences don't degrade to every-epoch serialization. 0 = off.
  /// Broadcast with the rest of the config so distributed slaves know them.
  /// Purely observational: does not change the training trajectory.
  std::uint32_t genome_record_every = 0;
  std::uint32_t genome_record_every_b = 0;
  /// Runtime-derived by the distributed master (never set in a spec): 1 when
  /// a TrainObserver is subscribed at rank 0, telling slaves to forward
  /// per-epoch records at all. Keeps unobserved runs free of record traffic.
  std::uint32_t forward_records = 0;
  /// Which data plane serves training batches: the legacy per-trainer
  /// DataLoader or the shared prefetching SampleStore. kAuto defers to the
  /// CELLGAN_DATA_PLANE environment variable (default legacy). Bit-identical
  /// trajectories either way; broadcast so distributed slaves agree.
  datastore::DataPlane data_plane = datastore::DataPlane::kAuto;
  std::uint64_t seed = 42;
  /// How genomes/discriminators migrate between cells each epoch (cellular
  /// neighborhoods, LTFB tournaments, GAP discriminator rotation). kAuto
  /// defers to the CELLGAN_EXCHANGE environment variable (default cellular).
  /// Broadcast so all ranks run the identical policy; a checkpoint refuses to
  /// resume under a different resolved policy (CheckpointPolicyMismatchError).
  evolve::ExchangePolicyKind exchange_policy = evolve::ExchangePolicyKind::kAuto;
  /// Tournament/rotation cadence in epochs for ltfb/gap (cellular migrates
  /// every epoch regardless).
  std::uint32_t exchange_every = 1;
  /// Class-conditional training: latents and discriminator inputs carry a
  /// one-hot label plane of `conditional_classes()` classes.
  std::uint32_t conditional = 0;
  /// WGAN critic weight clip (|w| <= weight_clip after each critic step);
  /// only applied under LossMode::kWasserstein.
  double weight_clip = 0.01;

  std::uint32_t grid_cells() const { return grid_rows * grid_cols; }

  /// One-hot label width of the conditional pathway (0 when unconditional).
  /// MNIST-shaped datasets label 10 classes (data::kNumClasses).
  std::size_t conditional_classes() const { return conditional != 0 ? 10 : 0; }

  /// True when this (0-based, run-relative) epoch's observer records carry
  /// genome payloads: the epoch matches either configured cadence.
  bool genome_record_epoch(std::uint32_t epoch) const {
    const auto matches = [epoch](std::uint32_t every) {
      return every > 0 && (epoch + 1) % every == 0;
    };
    return matches(genome_record_every) || matches(genome_record_every_b);
  }

  /// Tiny configuration for unit/integration tests and wall-clock benches.
  static TrainingConfig tiny();

  std::vector<std::uint8_t> serialize() const;
  static TrainingConfig deserialize(std::span<const std::uint8_t> bytes);

  friend bool operator==(const TrainingConfig&, const TrainingConfig&) = default;
};

}  // namespace cellgan::core
