// Heartbeat monitor — the master's background control thread (Section III.B,
// Fig. 3 left): periodically queries every slave's state "to determine if all
// slaves are working properly, are on time, or are delayed", without
// interfering with the main processing.
//
// The monitor runs on its own std::thread, polls each unfinished slave with
// kStatusRequest and collects kStatusReply with a timeout. A slave that
// misses `miss_threshold` consecutive polls is reported through the
// on_unresponsive callback (used by the fault-injection example and tests);
// one whose transport stream is recorded lost (Comm::peer_lost) is reported
// immediately, without waiting out the miss budget.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/protocol.hpp"
#include "minimpi/comm.hpp"

namespace cellgan::core {

class HeartbeatMonitor {
 public:
  struct Options {
    double interval_s = 0.05;       ///< the paper's "wait X seconds"
    double reply_timeout_s = 0.05;  ///< per-slave reply wait
    int miss_threshold = 3;         ///< consecutive misses before alarm
  };

  /// `world` must outlive the monitor; slaves are world ranks 1..world.size()-1.
  HeartbeatMonitor(minimpi::Comm& world, Options options);
  ~HeartbeatMonitor();

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  /// Start the background thread.
  void start();
  /// Stop polling and join the thread (idempotent).
  void stop();

  /// Latest observed state of each slave (index 0 <-> world rank 1).
  std::vector<protocol::StatusReply> snapshot() const;

  /// Number of completed polling cycles so far.
  std::uint64_t cycles() const { return cycles_.load(); }

  /// World ranks currently at or past the miss threshold — the liveness
  /// verdict the master consults before declaring a silent slave dead.
  std::vector<int> unresponsive() const;

  /// Invoked (from the heartbeat thread) when a slave crosses the miss
  /// threshold. Argument is the slave's world rank.
  void set_on_unresponsive(std::function<void(int)> callback);

 private:
  void poll_loop();

  minimpi::Comm& world_;
  Options options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> cycles_{0};
  mutable std::mutex state_mutex_;
  std::vector<protocol::StatusReply> latest_;
  std::vector<int> consecutive_misses_;
  std::function<void(int)> on_unresponsive_;
};

}  // namespace cellgan::core
