// Compatibility re-export: CellGenome moved to the evolve library (the unit
// every exchange policy moves between cells). Include "evolve/genome.hpp"
// directly in new code.
#pragma once

#include "evolve/genome.hpp"

namespace cellgan::core {
using evolve::CellGenome;
}  // namespace cellgan::core
