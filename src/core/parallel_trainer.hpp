// Thread-parallel in-process trainer — the "p cores" view of Table III.
//
// Cells are independent within an epoch (Section III.A's two-level model:
// threads within a rank, messages across ranks), so each epoch's cell steps
// run concurrently on a common::ThreadPool. Determinism is preserved by
// construction, not by luck:
//
//   * the epoch-staged GenomeStore guarantees every cell reads exactly its
//     neighbors' previous-epoch genomes, whatever the interleaving;
//   * each cell keeps its private forked rng stream, so the schedule never
//     perturbs any cell's random sequence;
//   * cells are statically partitioned into balanced contiguous lanes, so
//     the lane a cell bills its virtual time to depends only on the
//     requested thread count, never on scheduling.
//
// Results (fitness trajectories, flops, per-routine virtual totals) are
// therefore bit-identical across thread counts and identical to
// SequentialTrainer on the same seed. Each lane owns a VirtualClock and a
// Profiler: a lane's clock advances by the serial sum of its own cells'
// charges, the epoch barrier synchronizes all lanes to the slowest
// (wait_until the max), and the run's virtual makespan is that max rather
// than the whole-grid serial sum. Profilers merge at the end, keeping the
// per-charge hot path on uncontended per-lane instances.
//
// Note: cell-level parallelism composes with the tensor kernels' inline
// (single-thread) global pool. Enabling both would make concurrent
// parallel_for calls race on the shared global pool — pick one level.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/thread_pool.hpp"
#include "core/trainer_core.hpp"

namespace cellgan::core {

class ParallelTrainer final : public InProcessTrainer {
 public:
  /// `dataset` must outlive the trainer. `threads` is the number of worker
  /// lanes (clamped to [1, cells]); 1 degenerates to the sequential schedule
  /// while keeping MultiThread cost accounting.
  ParallelTrainer(const TrainingConfig& config, const data::Dataset& dataset,
                  std::size_t threads, const CostModel& cost_model = {});

  TrainOutcome run() override;

  /// Worker lanes actually used (== min(threads, cells)).
  std::size_t lanes() const { return lanes_.size(); }

  static WorkloadProbe measure_workload(const TrainingConfig& config,
                                        const data::Dataset& dataset) {
    return TrainerCore::measure_workload(config, dataset);
  }

 private:
  /// Per-worker accounting lane: cells [lane_begin_[l], lane_begin_[l+1])
  /// bill their virtual time and routine costs here. Cache-line aligned so
  /// one lane's clock/profiler words never share a line with a neighbor's
  /// (each charge is a read-modify-write on the owning worker thread; see
  /// common/aligned.hpp).
  struct alignas(common::kCacheLineBytes) Lane {
    common::VirtualClock clock;
    common::Profiler profiler;
    common::Rng jitter_rng;
    explicit Lane(std::uint64_t seed) : jitter_rng(seed) {}
  };

  std::size_t lane_of(std::size_t cell) const;

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::size_t> lane_begin_;  ///< lanes()+1 partition offsets
  common::ThreadPool pool_;
};

}  // namespace cellgan::core
