// The comm-manager class — the second of the paper's two new classes
// (Section III.C): an abstract wrapper over every inter-process communication
// the trainer needs, "defined in an abstract way without defining explicitly
// how the communications are implemented". The grid class does not depend on
// it, and trainers only see this interface, so the message transport is
// swappable (the paper's motivation for decoupling).
//
// Two implementations:
//  * MpiCommManager  — allgather over the LOCAL communicator (active slaves),
//    exactly the paper's distributed exchange path.
//  * LocalCommManager — in-process store for the single-core baseline; hands
//    each cell only its neighbors' genomes and charges the calibrated
//    in-process copy cost.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "core/exec_context.hpp"
#include "core/grid.hpp"
#include "minimpi/comm.hpp"

namespace cellgan::core {

class CommManager {
 public:
  virtual ~CommManager() = default;

  /// Grid cell this manager serves.
  virtual int cell_id() const = 0;

  /// Publish this cell's serialized center genome and collect the latest
  /// genomes of other cells. Returns payloads indexed by cell id; entries
  /// this transport does not deliver (e.g. non-neighbors in the local
  /// implementation) are empty. Blocking in the MPI implementation
  /// (collective over LOCAL).
  virtual std::vector<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> genome_bytes) = 0;
};

/// Shared in-process genome store for LocalCommManager instances.
///
/// Double-buffered and epoch-staged so the in-process trainers can step all
/// cells of an epoch concurrently and still stay deterministic: publish()
/// stages a genome for the NEXT epoch, latest() reads the newest genome
/// published in any EARLIER epoch, and flip() is the epoch barrier that makes
/// the staged genomes visible. Every cell therefore sees exactly its
/// neighbors' previous-epoch genomes regardless of thread count or cell
/// order — the cellular "newest-available" rule with a well-defined "now".
/// All three operations are mutex-guarded (the store is hammered from every
/// worker thread of the parallel trainer).
class GenomeStore {
 public:
  explicit GenomeStore(std::size_t cells) : slots_(cells) {}
  std::size_t size() const { return slots_.size(); }

  /// Epoch counter, advanced by flip(). Publishes stage into this epoch;
  /// reads see strictly older epochs.
  std::uint64_t epoch() const;

  /// Stage `bytes` as `cell`'s genome for the next epoch. Re-publishing
  /// within one epoch overwrites the staged value.
  void publish(int cell, std::vector<std::uint8_t> bytes);

  /// Newest genome of `cell` published before the current epoch (empty if
  /// none yet). Returns a copy so the caller owns its bytes outside the lock.
  std::vector<std::uint8_t> latest(int cell) const;

  /// Epoch barrier: everything published during the finished epoch becomes
  /// visible to subsequent latest() calls.
  void flip();

 private:
  /// The two most recent published versions of one cell's genome: writers
  /// overwrite the older entry (or re-stamp the current epoch's), readers
  /// take the newest entry from a previous epoch — so a publish never
  /// clobbers the version the current epoch is still reading.
  struct Entry {
    std::vector<std::uint8_t> bytes;
    std::uint64_t epoch = 0;
    bool valid = false;
  };
  /// Cache-line aligned so adjacent cells' slots never share a line: every
  /// worker thread of the parallel trainer re-stamps its own cell's entry
  /// headers (epoch/valid words) each epoch, and without the padding those
  /// word-granularity writes would ping-pong lines between lanes even though
  /// the cells are logically independent.
  struct alignas(common::kCacheLineBytes) Slot : std::array<Entry, 2> {};

  mutable std::mutex mutex_;
  std::uint64_t epoch_ = 0;
  std::vector<Slot> slots_;
};

/// Single-process transport: reads neighbor genomes straight from the store.
/// collect()/publish() split the exchange so the trainer loop can gather the
/// epoch's inbox before stepping and stage the result afterwards; exchange()
/// keeps the one-call CommManager interface (publish, then collect).
class LocalCommManager final : public CommManager {
 public:
  LocalCommManager(GenomeStore& store, const Grid& grid, int cell,
                   const ExecContext& context);

  int cell_id() const override { return cell_; }
  std::vector<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> genome_bytes) override;

  /// Read the neighbors' visible (previous-epoch) genomes, charging the
  /// calibrated in-process copy cost to the cell's context.
  std::vector<std::vector<std::uint8_t>> collect();

  /// Same, but copy exactly `sources` (the exchange policy's per-epoch list,
  /// e.g. neighbors plus an LTFB tournament partner). With the cellular
  /// policy the list equals the grid neighbors, so bytes and charged cost are
  /// identical to collect().
  std::vector<std::vector<std::uint8_t>> collect(std::span<const int> sources);

  /// Stage this cell's serialized genome for the next epoch.
  void publish(std::span<const std::uint8_t> genome_bytes);

 private:
  GenomeStore& store_;
  const Grid& grid_;
  int cell_;
  const ExecContext& context_;
};

/// MPI transport: local rank within the slaves-only communicator == cell id.
/// Lockstep semantics — the per-epoch allgather synchronizes all slaves
/// (the paper's implementation).
class MpiCommManager final : public CommManager {
 public:
  explicit MpiCommManager(minimpi::Comm& local_comm);

  int cell_id() const override { return local_comm_.rank(); }
  std::vector<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> genome_bytes) override;

 private:
  minimpi::Comm& local_comm_;
};

/// Asynchronous MPI transport: publishes the genome to grid neighbors with
/// point-to-point sends and polls (never blocks on) incoming genomes,
/// keeping the newest per source — "newest available" cellular semantics.
/// A slave is never delayed by a straggling neighbor; it simply trains
/// against the freshest genome it has. Also moves (s-1) instead of (n-1)
/// genomes per epoch.
class AsyncMpiCommManager final : public CommManager {
 public:
  /// `grid` defines whom to publish to; must outlive the manager.
  AsyncMpiCommManager(minimpi::Comm& local_comm, const Grid& grid);

  int cell_id() const override { return local_comm_.rank(); }
  std::vector<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> genome_bytes) override;

 private:
  minimpi::Comm& local_comm_;
  const Grid& grid_;
  /// Latest genome seen from each cell (empty until first arrival).
  std::vector<std::vector<std::uint8_t>> latest_;
};

}  // namespace cellgan::core
