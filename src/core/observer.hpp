// Unified training observability — the one subscription surface every
// execution vehicle reports progress through.
//
// The paper's headline evidence is per-epoch measurement (Table II compares
// generator quality across grid sizes, Table III / Fig. 4 track time per
// epoch), so observation is a first-class seam rather than per-backend ad-hoc
// printing: trainers publish epoch-started / cell-stepped / epoch-completed
// events into a core::EventBus, and any number of core::TrainObservers
// subscribe — a metrics evaluator, a JSONL telemetry sink, a checkpoint
// policy, a test recorder. All four backends (sequential, threads,
// distributed, distributed-tcp) publish the same stream; distributed ranks
// forward their rank-local records to rank 0 over minimpi (protocol tag
// kEpochRecord), so the observer API is location-transparent: subscribing at
// the Session that hosts rank 0 sees the whole grid, whichever vehicle runs
// it.
//
// Determinism contract (pinned by the observer-parity suite): every field of
// an EpochRecord is schedule-independent. Within the in-process family the
// stream is bit-identical across SequentialTrainer and ParallelTrainer at any
// lane count (a cell's virtual_s is the cell's OWN cumulative simulated
// seconds, not the shared clock); within the distributed family it is
// bit-identical between the thread-per-rank simulation and the TCP
// deployment (a cell's virtual_s is its rank's clock). Events are published
// at epoch barriers in (epoch, cell) order, never live from worker threads,
// so the stream order is deterministic too.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"

namespace cellgan::core {

/// Version of the machine-readable output schema shared by the telemetry
/// JSONL stream and the RunResult JSON artifact (session.hpp's
/// write_result_json). Bump on any breaking field change so downstream
/// tooling can detect the format instead of guessing.
inline constexpr std::uint32_t kRunJsonSchemaVersion = 1;

/// One cell's outcome of one training epoch.
struct CellEpochRecord {
  std::uint32_t cell = 0;
  std::uint32_t epoch = 0;  ///< 0-based, run-relative
  /// Losses after this epoch's train step (lower is better) — the per-cell
  /// fitness trajectory behind Table II.
  double g_fitness = 0.0;
  double d_fitness = 0.0;
  /// Mutated Adam learning rates after this epoch.
  double g_learning_rate = 0.0;
  double d_learning_rate = 0.0;
  /// Objective used by this epoch's train step (core::GanLossKind; fixed by
  /// config, or the epoch's Mustangs draw).
  std::uint32_t loss_kind = 0;
  /// Cumulative simulated seconds: in-process trainers bill the cell's own
  /// charges (schedule-independent); distributed ranks report their rank
  /// clock. 0 when virtual time is disabled.
  double virtual_s = 0.0;
  /// Cumulative train-routine flops of this cell.
  double train_flops = 0.0;
  /// Serialized center CellGenome, present only on genome-record epochs
  /// (TrainingConfig::genome_record_every — the cadence the metric evaluator
  /// and checkpoint policy need); empty otherwise.
  std::vector<std::uint8_t> genome;
  /// Neighborhood mixture weights, recorded alongside the genome.
  std::vector<double> mixture_weights;

  /// What this epoch's exchange-policy application did (a flattened
  /// evolve::ExchangeOutcome, so the record stays wire-forwardable from
  /// distributed ranks). `exchange_partner` is -1 when the policy involved no
  /// counterpart this epoch.
  std::uint32_t exchange_policy = 0;  ///< evolve::ExchangePolicyKind
  std::int32_t exchange_partner = -1;
  std::uint8_t exchange_g_adopted = 0;
  std::uint8_t exchange_d_adopted = 0;
  double exchange_g_before = 0.0;  ///< generator fitness entering the exchange
  double exchange_g_after = 0.0;
  double exchange_d_before = 0.0;
  double exchange_d_after = 0.0;
  std::uint64_t exchange_wins = 0;  ///< cumulative LTFB tournaments won
  double exchange_bytes = 0.0;      ///< serialized genome bytes installed

  /// True when this epoch's exchange should surface as an `"event":"exchange"`
  /// telemetry record: something was adopted, or a tournament/rotation
  /// counterpart existed even if the local center won.
  bool exchange_noteworthy() const {
    return exchange_g_adopted != 0 || exchange_d_adopted != 0 ||
           exchange_partner >= 0;
  }

  std::vector<std::uint8_t> serialize() const;
  static CellEpochRecord deserialize(std::span<const std::uint8_t> bytes);

  friend bool operator==(const CellEpochRecord&, const CellEpochRecord&) = default;
};

/// One epoch of the whole grid, cells in cell-id order.
struct EpochRecord {
  std::uint32_t epoch = 0;
  std::vector<CellEpochRecord> cells;

  /// Max over cells' cumulative virtual seconds (derived, deterministic).
  double max_virtual_s() const;
  /// Sum of cells' cumulative train flops.
  double total_train_flops() const;
  /// argmin generator fitness.
  int best_cell() const;
  /// True when every cell carries its serialized genome.
  bool has_genomes() const;

  std::vector<std::uint8_t> serialize() const;
  static EpochRecord deserialize(std::span<const std::uint8_t> bytes);

  friend bool operator==(const EpochRecord&, const EpochRecord&) = default;
};

/// Generator-quality measurements of one evaluation epoch (produced by a
/// metric evaluator observer, e.g. metrics::EvaluatorObserver). Plain data so
/// the core layer can carry it without depending on the metrics layer.
struct MetricSnapshot {
  std::uint32_t epoch = 0;
  int best_cell = 0;
  std::vector<double> cell_is;      ///< per-cell generator inception scores
  double mixture_is = 0.0;          ///< best neighborhood mixture IS
  double fid = 0.0;                 ///< mixture FID vs the real set
  std::size_t modes_covered = 0;    ///< classes the mixture still generates
  double tvd_from_uniform = 0.0;    ///< mixture class-distribution TVD
};

/// One serving request, as completed by the serve batcher (src/serve). The
/// serving plane reuses the training telemetry seam: a ServeObserver
/// publishes these through the same EventBus/JSONL sink that records epochs,
/// so one artifact stream carries a model's whole life — training epochs,
/// checkpoints, then the latencies of the requests it served.
struct ServeRequestRecord {
  std::uint64_t request_id = 0;
  std::uint32_t count = 0;           ///< samples requested
  std::uint32_t batch_requests = 0;  ///< co-batched request count (occupancy)
  std::uint32_t batch_samples = 0;   ///< total rows of the shared forward
  double queue_us = 0.0;             ///< enqueue -> batch close
  double forward_us = 0.0;           ///< the shared forward+scatter pass
  double total_us = 0.0;             ///< enqueue -> response ready
  bool cache_hit = true;             ///< model served from the warm cache
};

/// One micro-batch the serve worker executed.
struct ServeBatchRecord {
  std::uint64_t batch_id = 0;
  std::uint32_t requests = 0;
  std::uint32_t samples = 0;
  double delay_us = 0.0;    ///< first enqueue -> batch close
  double forward_us = 0.0;
};

/// Data-plane activity of one run — the delta of datastore::stats() across
/// the run, published by the Session after the backend finishes (only when
/// the store plane did any work). Shows how batches were served: bytes kept
/// mmapped, how often training found its batch pre-staged (hits) vs. waited
/// on an in-flight stage vs. staged synchronously (stalls).
struct DataStoreRecord {
  std::uint64_t bytes_mapped = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_waits = 0;
  std::uint64_t prefetch_stalls = 0;
  std::uint64_t staged_batches = 0;
  std::uint64_t staging_depth = 0;  ///< max outstanding ring slots seen
};

/// What a run is, announced once before the first epoch.
struct RunInfo {
  std::string backend;  ///< registered backend name
  TrainingConfig config;
};

/// Final aggregate, announced once after the last epoch (a light view of
/// session.hpp's RunResult, which core cannot include without a cycle).
struct RunSummary {
  std::string backend;
  double wall_s = 0.0;
  double virtual_s = 0.0;
  double train_flops = 0.0;
  std::vector<double> g_fitnesses;
  std::vector<double> d_fitnesses;
  int best_cell = 0;
};

/// Subscriber interface. All hooks default to no-ops so observers override
/// only what they consume. Hooks are invoked from whichever thread drives the
/// run (trainer loop or the distributed master), but never concurrently —
/// the bus publishes at epoch barriers only.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;

  virtual void on_run_started(const RunInfo& /*info*/) {}
  virtual void on_epoch_started(std::uint32_t /*epoch*/) {}
  virtual void on_cell_stepped(const CellEpochRecord& /*record*/) {}
  /// A cell's exchange-policy application that moved (or tournament-compared)
  /// genomes this epoch. Published after on_cell_stepped for the same record,
  /// only when record.exchange_noteworthy().
  virtual void on_exchange(const CellEpochRecord& /*record*/) {}
  virtual void on_epoch_completed(const EpochRecord& /*record*/) {}
  virtual void on_metrics(const MetricSnapshot& /*snapshot*/) {}
  virtual void on_run_completed(const RunSummary& /*summary*/) {}
  virtual void on_serve_request(const ServeRequestRecord& /*record*/) {}
  virtual void on_serve_batch(const ServeBatchRecord& /*record*/) {}
  virtual void on_data_store(const DataStoreRecord& /*record*/) {}

  /// Evaluators return the snapshot they computed for the epoch just
  /// completed; the bus then publishes it to every observer (so e.g. the
  /// telemetry sink logs metric records without explicit wiring).
  virtual std::optional<MetricSnapshot> take_metrics() { return std::nullopt; }
  /// The run's final metric snapshot, harvested into RunResult::metrics.
  virtual std::optional<MetricSnapshot> final_metrics() const {
    return std::nullopt;
  }
};

/// Fan-out hub. Observers are not owned and must outlive the run; publishers
/// call the publish methods in event order. With no subscribers every publish
/// is a cheap no-op, and producers may skip record assembly entirely
/// (empty() is the fast-path check).
class EventBus {
 public:
  void subscribe(TrainObserver* observer);

  bool empty() const { return observers_.empty(); }
  const std::vector<TrainObserver*>& observers() const { return observers_; }

  void run_started(const RunInfo& info);
  void epoch_started(std::uint32_t epoch);
  void cell_stepped(const CellEpochRecord& record);
  /// Publish the record's exchange outcome; no-op unless
  /// record.exchange_noteworthy().
  void exchange(const CellEpochRecord& record);
  /// Delivers the epoch record, then collects take_metrics() from every
  /// observer and re-publishes each snapshot through metrics().
  void epoch_completed(const EpochRecord& record);
  void metrics(const MetricSnapshot& snapshot);
  void run_completed(const RunSummary& summary);
  /// Serving-plane events. Same single-publisher contract as the epoch
  /// stream: the serve batcher publishes from its one worker thread only.
  void serve_request(const ServeRequestRecord& record);
  void serve_batch(const ServeBatchRecord& record);
  void data_store(const DataStoreRecord& record);

 private:
  std::vector<TrainObserver*> observers_;
};

/// Append-only JSONL event stream: one self-describing JSON object per line
/// (`"event"` names the type; the run_started line carries
/// `"schema_version"`). Lines are flushed as written so a crashed run keeps
/// its telemetry up to the last completed epoch.
class JsonlTelemetrySink final : public TrainObserver {
 public:
  explicit JsonlTelemetrySink(const std::string& path);
  ~JsonlTelemetrySink() override;

  JsonlTelemetrySink(const JsonlTelemetrySink&) = delete;
  JsonlTelemetrySink& operator=(const JsonlTelemetrySink&) = delete;

  /// False when the path could not be opened (no lines will be written).
  bool ok() const { return file_ != nullptr; }

  void on_run_started(const RunInfo& info) override;
  void on_exchange(const CellEpochRecord& record) override;
  void on_epoch_completed(const EpochRecord& record) override;
  void on_metrics(const MetricSnapshot& snapshot) override;
  void on_run_completed(const RunSummary& summary) override;
  void on_serve_request(const ServeRequestRecord& record) override;
  void on_serve_batch(const ServeBatchRecord& record) override;
  void on_data_store(const DataStoreRecord& record) override;

 private:
  void write_line(const std::string& line);

  std::FILE* file_ = nullptr;
};

/// Periodic checkpointing as an observer — subsumes inline save-at-the-end
/// cadences: every `every` epochs whose records carry genomes, the grid
/// snapshot is written (atomically) to `path`, newest wins, so an
/// interrupted run resumes from the last completed cadence epoch on any
/// backend — including the distributed ones, where no in-process trainer
/// exists to snapshot.
class CheckpointPolicyObserver final : public TrainObserver {
 public:
  CheckpointPolicyObserver(std::string path, std::uint32_t every,
                           TrainingConfig config);

  void on_epoch_completed(const EpochRecord& record) override;

  std::uint32_t checkpoints_written() const { return written_; }

 private:
  std::string path_;
  std::uint32_t every_;
  TrainingConfig config_;
  std::uint32_t written_ = 0;
};

}  // namespace cellgan::core
