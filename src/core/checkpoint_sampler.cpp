#include "core/checkpoint_sampler.hpp"

#include "common/expect.hpp"
#include "nn/gan_models.hpp"

namespace cellgan::core {

int CheckpointMixture::best_cell_of(const Checkpoint& snapshot) {
  CG_EXPECT(!snapshot.centers.empty());
  int best = 0;
  for (std::size_t i = 1; i < snapshot.centers.size(); ++i) {
    if (snapshot.centers[i].g_fitness <
        snapshot.centers[static_cast<std::size_t>(best)].g_fitness) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

CheckpointMixture::CheckpointMixture(const Checkpoint& snapshot, int cell)
    : config_(snapshot.config),
      cell_(cell < 0 ? best_cell_of(snapshot) : cell),
      weights_(1) {
  CG_EXPECT(snapshot.centers.size() == config_.grid_cells());
  CG_EXPECT(cell_ >= 0 && static_cast<std::uint32_t>(cell_) < config_.grid_cells());

  const Grid grid(static_cast<int>(config_.grid_rows),
                  static_cast<int>(config_.grid_cols));
  members_ = grid.neighborhood_of(cell_);

  // Construction draws are throwaway (load_parameters overwrites them); the
  // sampling streams are the per-call Rng(seed) in plan()/sample().
  common::Rng init_rng(config_.seed ^ 0x5e7f11dULL);
  generators_.reserve(members_.size());
  for (const int member : members_) {
    generators_.push_back(
        nn::make_generator(config_.arch, init_rng, config_.conditional_classes()));
    generators_.back().load_parameters(
        snapshot.centers[static_cast<std::size_t>(member)].generator_params);
  }

  weights_ = MixtureWeights(members_.size());
  const auto& evolved = snapshot.mixtures[static_cast<std::size_t>(cell_)];
  if (evolved.size() == members_.size()) weights_.set_weights(evolved);
}

MixtureDraw CheckpointMixture::plan(std::size_t count, std::uint64_t seed) const {
  common::Rng rng(seed);
  return plan_mixture_draw(weights_, generators_.size(), config_.arch.latent_dim,
                           count, rng, config_.conditional_classes());
}

tensor::Tensor CheckpointMixture::forward(std::size_t g,
                                          const tensor::Tensor& latents) {
  CG_EXPECT(g < generators_.size());
  return generators_[g].forward(latents);
}

tensor::Tensor CheckpointMixture::sample(std::size_t count, std::uint64_t seed) {
  const MixtureDraw draw = plan(count, seed);
  tensor::Tensor out(count, config_.arch.image_dim);
  for (std::size_t g = 0; g < generators_.size(); ++g) {
    if (draw.rows_of[g].empty()) continue;
    scatter_mixture_rows(draw, g, forward(g, draw.latents[g]), out);
  }
  return out;
}

}  // namespace cellgan::core
