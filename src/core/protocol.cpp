#include "core/protocol.hpp"

namespace cellgan::core::protocol {

const char* to_string(SlaveState state) {
  switch (state) {
    case SlaveState::kInactive: return "inactive";
    case SlaveState::kProcessing: return "processing";
    case SlaveState::kFinished: return "finished";
  }
  return "unknown";
}

std::vector<std::uint8_t> RunTask::serialize() const {
  common::ByteWriter w;
  w.write(cell_id);
  w.write(seed);
  return w.take();
}

RunTask RunTask::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  RunTask t;
  t.cell_id = r.read<std::uint32_t>();
  t.seed = r.read<std::uint64_t>();
  CG_ENSURE(r.exhausted());
  return t;
}

std::vector<std::uint8_t> StatusReply::serialize() const {
  common::ByteWriter w;
  w.write(static_cast<std::uint32_t>(state));
  w.write(iteration);
  w.write(cell_id);
  return w.take();
}

StatusReply StatusReply::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  StatusReply s;
  s.state = static_cast<SlaveState>(r.read<std::uint32_t>());
  s.iteration = r.read<std::uint32_t>();
  s.cell_id = r.read<std::uint32_t>();
  CG_ENSURE(r.exhausted());
  return s;
}

std::vector<std::uint8_t> SlaveResult::serialize() const {
  common::ByteWriter w;
  w.write(cell_id);
  w.write(virtual_time_s);
  w.write_vector(mixture_weights);
  const auto genome_bytes = center.serialize();
  w.write_vector(genome_bytes);
  return w.take();
}

SlaveResult SlaveResult::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  SlaveResult s;
  s.cell_id = r.read<std::uint32_t>();
  s.virtual_time_s = r.read<double>();
  s.mixture_weights = r.read_vector<double>();
  const auto genome_bytes = r.read_vector<std::uint8_t>();
  s.center = CellGenome::deserialize(genome_bytes);
  CG_ENSURE(r.exhausted());
  return s;
}

}  // namespace cellgan::core::protocol
