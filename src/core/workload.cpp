#include "core/workload.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "data/synthetic_mnist.hpp"

namespace cellgan::core {

data::Dataset make_matched_dataset(const TrainingConfig& config, std::size_t samples,
                                   std::uint64_t seed) {
  const auto side = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(config.arch.image_dim))));
  CG_EXPECT(side * side == config.arch.image_dim);
  // The glyphs are vector shapes, so any resolution (including larger than
  // MNIST's 28x28) is rendered natively rather than rescaled.
  return data::make_synthetic_digits(samples, side, seed);
}

}  // namespace cellgan::core
