// On-disk checkpoints of a training run.
//
// The paper's executions reserve 40 GB of temporary storage per job
// (Table I, execution settings) for intermediate state on the shared
// cluster; this module provides the corresponding capability: a versioned
// binary snapshot of the whole grid (per-cell center genomes + mixture
// weights + iteration counter + the configuration that produced them), so
// interrupted runs can resume and final models can be shipped.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/genome.hpp"
#include "core/mixture.hpp"
#include "core/protocol.hpp"

namespace cellgan::core {

/// A checkpoint file could not be written (open, write or atomic-rename
/// failure). Recovery correctness depends on checkpoints actually existing,
/// so writers on that path use save_checkpoint_strict and let this propagate
/// instead of downgrading the failure to a log line.
class CheckpointWriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A checkpoint written under one exchange policy was asked to resume under
/// another. Policies shape the whole population trajectory (which genomes
/// moved where), so silently continuing under a different policy would
/// produce a run that no policy could have generated — resuming refuses
/// instead. Compared after env resolution, so `--exchange auto` resumes
/// whatever CELLGAN_EXCHANGE names only if it matches the snapshot.
class CheckpointPolicyMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Checkpoint {
  TrainingConfig config;
  std::uint32_t iteration = 0;
  std::vector<CellGenome> centers;              ///< indexed by cell id
  std::vector<std::vector<double>> mixtures;    ///< per-cell mixture weights

  std::vector<std::uint8_t> serialize() const;
  static Checkpoint deserialize(std::span<const std::uint8_t> bytes);
};

/// Write a checkpoint file (atomic: temp file + rename). False on I/O
/// error; the temp file is removed on every failure path, never leaked.
bool save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Like save_checkpoint, but a failure throws CheckpointWriteError naming
/// the path and cause. For writers whose durability other ranks depend on.
void save_checkpoint_strict(const std::string& path, const Checkpoint& checkpoint);

/// The atomic temp-file + rename + cleanup step shared by every checkpoint
/// writer (grid checkpoints here, per-rank training state in trainer_state).
/// Returns false with `error` set on failure.
bool write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes, std::string* error);

/// Read a checkpoint file; nullopt on missing/corrupt file (corruption is
/// detected by the length-prefixed format and a trailing magic).
std::optional<Checkpoint> load_checkpoint(const std::string& path);

/// Build a checkpoint from the results the master collected in a
/// distributed run (the reduction's output), so distributed runs can be
/// persisted and resumed by either trainer.
Checkpoint checkpoint_from_results(const TrainingConfig& config,
                                   const std::vector<protocol::SlaveResult>& results);

}  // namespace cellgan::core
