// On-disk checkpoints of a training run.
//
// The paper's executions reserve 40 GB of temporary storage per job
// (Table I, execution settings) for intermediate state on the shared
// cluster; this module provides the corresponding capability: a versioned
// binary snapshot of the whole grid (per-cell center genomes + mixture
// weights + iteration counter + the configuration that produced them), so
// interrupted runs can resume and final models can be shipped.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/genome.hpp"
#include "core/mixture.hpp"
#include "core/protocol.hpp"

namespace cellgan::core {

struct Checkpoint {
  TrainingConfig config;
  std::uint32_t iteration = 0;
  std::vector<CellGenome> centers;              ///< indexed by cell id
  std::vector<std::vector<double>> mixtures;    ///< per-cell mixture weights

  std::vector<std::uint8_t> serialize() const;
  static Checkpoint deserialize(std::span<const std::uint8_t> bytes);
};

/// Write a checkpoint file (atomic: temp file + rename). False on I/O error.
bool save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Read a checkpoint file; nullopt on missing/corrupt file (corruption is
/// detected by the length-prefixed format and a trailing magic).
std::optional<Checkpoint> load_checkpoint(const std::string& path);

/// Build a checkpoint from the results the master collected in a
/// distributed run (the reduction's output), so distributed runs can be
/// persisted and resumed by either trainer.
Checkpoint checkpoint_from_results(const TrainingConfig& config,
                                   const std::vector<protocol::SlaveResult>& results);

}  // namespace cellgan::core
