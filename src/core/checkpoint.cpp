#include "core/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>

#include "common/log.hpp"
#include "common/serialize.hpp"

namespace cellgan::core {

namespace {
constexpr std::uint32_t kMagic = 0xCE11'6A17;  // "cell gan"
// v2: TrainingConfig gained genome_record_every (observer record cadence).
// v3: TrainingConfig gained data_plane (legacy loader vs shared SampleStore).
// v4: TrainingConfig gained exchange_policy/exchange_every (population
//     exchange seam), conditional and weight_clip (wasserstein + class-
//     conditional training).
constexpr std::uint32_t kVersion = 4;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

std::vector<std::uint8_t> Checkpoint::serialize() const {
  common::ByteWriter w;
  w.write(kMagic);
  w.write(kVersion);
  w.write_vector(config.serialize());
  w.write(iteration);
  w.write<std::uint64_t>(centers.size());
  for (const auto& genome : centers) w.write_vector(genome.serialize());
  w.write<std::uint64_t>(mixtures.size());
  for (const auto& weights : mixtures) w.write_vector(weights);
  w.write(kMagic);  // trailing magic doubles as a truncation check
  return w.take();
}

Checkpoint Checkpoint::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  CG_EXPECT(r.read<std::uint32_t>() == kMagic);
  CG_EXPECT(r.read<std::uint32_t>() == kVersion);
  Checkpoint out;
  out.config = TrainingConfig::deserialize(r.read_vector<std::uint8_t>());
  out.iteration = r.read<std::uint32_t>();
  const auto cells = r.read<std::uint64_t>();
  out.centers.reserve(cells);
  for (std::uint64_t i = 0; i < cells; ++i) {
    out.centers.push_back(CellGenome::deserialize(r.read_vector<std::uint8_t>()));
  }
  const auto mixtures = r.read<std::uint64_t>();
  out.mixtures.reserve(mixtures);
  for (std::uint64_t i = 0; i < mixtures; ++i) {
    out.mixtures.push_back(r.read_vector<double>());
  }
  CG_EXPECT(r.read<std::uint32_t>() == kMagic);
  CG_ENSURE(r.exhausted());
  return out;
}

bool write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes, std::string* error) {
  const std::string tmp = path + ".tmp";
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    // Never leak the temp file: a stale .tmp would shadow the next attempt
    // and waste the disk budget checkpoints exist to honor.
    std::error_code ignore;
    std::filesystem::remove(tmp, ignore);
    return false;
  };
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return fail("cannot open '" + tmp + "': " + std::strerror(errno));
    if (std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
      return fail("short write to '" + tmp + "': " + std::strerror(errno));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return fail("cannot rename '" + tmp + "' to '" + path + "': " + ec.message());
  return true;
}

bool save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  std::string error;
  if (!write_file_atomic(path, checkpoint.serialize(), &error)) {
    common::log_error() << "checkpoint write failed: " << error;
    return false;
  }
  return true;
}

void save_checkpoint_strict(const std::string& path, const Checkpoint& checkpoint) {
  std::string error;
  if (!write_file_atomic(path, checkpoint.serialize(), &error)) {
    throw CheckpointWriteError("checkpoint write failed: " + error);
  }
}

Checkpoint checkpoint_from_results(
    const TrainingConfig& config,
    const std::vector<protocol::SlaveResult>& results) {
  Checkpoint out;
  out.config = config;
  out.centers.reserve(results.size());
  out.mixtures.reserve(results.size());
  for (const auto& result : results) {
    out.iteration = std::max(out.iteration, result.center.iteration);
    out.centers.push_back(result.center);
    out.mixtures.push_back(result.mixture_weights);
  }
  return out;
}

std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return std::nullopt;
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size <= 0) return std::nullopt;
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    return std::nullopt;
  }
  // Cheap integrity checks before handing to the aborting deserializer.
  if (bytes.size() < 8) return std::nullopt;
  std::uint32_t head, version, tail;
  std::memcpy(&head, bytes.data(), 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&tail, bytes.data() + bytes.size() - 4, 4);
  if (head != kMagic || tail != kMagic) {
    common::log_warn() << "checkpoint " << path << " is corrupt or foreign";
    return std::nullopt;
  }
  if (version != kVersion) {
    common::log_warn() << "checkpoint " << path << " has format version "
                       << version << " (this build reads " << kVersion
                       << "); re-train or re-save it";
    return std::nullopt;
  }
  return Checkpoint::deserialize(bytes);
}

}  // namespace cellgan::core
