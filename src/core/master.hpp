// The master process (Section III.B, Fig. 3 left column).
//
// Responsibilities, in order: gather infrastructure info (node names),
// decide slave placement, broadcast the parameter configuration, send run
// task messages (Inactive -> Processing), monitor execution through the
// background heartbeat thread, collect per-slave results, run the reduction
// that returns the best generative model, and shut the slaves down.
//
// Result collection uses the GLOBAL communicator's gather (the paper's
// stated use for GLOBAL); the serialized per-slave reduction work is charged
// to the `management` routine — the overhead that makes the 4x4 speedup
// sublinear in Table III.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/heartbeat.hpp"
#include "core/observer.hpp"
#include "core/protocol.hpp"
#include "minimpi/comm.hpp"

namespace cellgan::core {

struct MasterOutcome {
  std::vector<std::string> node_names;           ///< per slave, rank order
  std::vector<protocol::SlaveResult> results;    ///< indexed by cell id
  int best_cell = 0;                             ///< argmin generator fitness
  double virtual_makespan_s = 0.0;               ///< master clock at the end
  std::uint64_t heartbeat_cycles = 0;
};

class Master {
 public:
  struct Options {
    bool enable_heartbeat = true;
    HeartbeatMonitor::Options heartbeat;
    /// When > 0, the master's waits on slave control messages (node names at
    /// startup, Finished reports at the end) use deadline-aware receives: a
    /// slave that dies surfaces as minimpi::TimeoutError naming the awaited
    /// message instead of hanging the run forever. The Finished wait is
    /// liveness-gated: while the heartbeat monitor still gets replies from
    /// every slave the master keeps waiting, so the timeout does not bound
    /// honest training time. 0 keeps the historical blocking waits. (The
    /// final GLOBAL result gather is not yet deadline-aware — a slave dying
    /// *after* its Finished report still blocks it; rank-failure recovery is
    /// a ROADMAP item.)
    double slave_timeout_s = 0.0;
    /// When set, the per-epoch records every slave forwards (tag
    /// kEpochRecord) are republished here in deterministic (epoch, cell)
    /// order once training finishes — the distributed half of the unified
    /// TrainObserver stream. Null keeps observation off; the records are
    /// drained either way.
    EventBus* observers = nullptr;
  };

  Master(minimpi::Comm& world, minimpi::Comm& global, TrainingConfig config,
         const CostModel& cost_model);
  Master(minimpi::Comm& world, minimpi::Comm& global, TrainingConfig config,
         const CostModel& cost_model, Options options);

  MasterOutcome run();

 private:
  minimpi::Comm& world_;
  minimpi::Comm& global_;
  TrainingConfig config_;
  CostModel cost_model_;  // by value: callers may pass temporaries
  Options options_;
};

}  // namespace cellgan::core
