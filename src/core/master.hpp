// The master process (Section III.B, Fig. 3 left column).
//
// Responsibilities, in order: gather infrastructure info (node names),
// decide slave placement, broadcast the parameter configuration, send run
// task messages (Inactive -> Processing), monitor execution through the
// background heartbeat thread, collect per-slave results, run the reduction
// that returns the best generative model, and shut the slaves down.
//
// Result collection uses the GLOBAL communicator's gather (the paper's
// stated use for GLOBAL); the serialized per-slave reduction work is charged
// to the `management` routine — the overhead that makes the 4x4 speedup
// sublinear in Table III.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/heartbeat.hpp"
#include "core/observer.hpp"
#include "core/protocol.hpp"
#include "minimpi/comm.hpp"

namespace cellgan::core {

struct MasterOutcome {
  std::vector<std::string> node_names;           ///< per slave, rank order
  std::vector<protocol::SlaveResult> results;    ///< indexed by cell id
  int best_cell = 0;                             ///< argmin generator fitness
  double virtual_makespan_s = 0.0;               ///< master clock at the end
  std::uint64_t heartbeat_cycles = 0;
};

class Master {
 public:
  struct Options {
    bool enable_heartbeat = true;
    HeartbeatMonitor::Options heartbeat;
    /// When > 0, the master's waits on slave control messages (node names at
    /// startup, Finished reports at the end) are sliced and liveness-aware:
    /// a slave whose transport stream is recorded lost surfaces immediately
    /// as minimpi::PeerDeathError, and one that merely goes silent becomes a
    /// minimpi::TimeoutError after this many real seconds. The Finished wait
    /// is additionally heartbeat-gated: while the monitor still gets replies
    /// from every slave the master keeps waiting, so the timeout does not
    /// bound honest training time. 0 keeps the historical blocking waits
    /// (in-process worlds, where ranks cannot die independently). The final
    /// GLOBAL result gather rides the death-aware recv, so a slave dying
    /// after its Finished report also raises PeerDeathError; the recovery
    /// loop in run_distributed_tcp catches it and restarts the generation.
    double slave_timeout_s = 0.0;
    /// First epoch the slaves will actually train this generation (the
    /// rollback epoch E agreed by the recovery negotiation). Only record
    /// republication depends on it at the master — no training state lives
    /// here — but it must match the slaves' resume or the observer stream
    /// never completes. 0 for a fresh world.
    std::uint32_t resume_epoch = 0;
    /// When set, the per-epoch records every slave forwards (tag
    /// kEpochRecord) are republished here in deterministic (epoch, cell)
    /// order once training finishes — the distributed half of the unified
    /// TrainObserver stream. Null keeps observation off; the records are
    /// drained either way.
    EventBus* observers = nullptr;
  };

  Master(minimpi::Comm& world, minimpi::Comm& global, TrainingConfig config,
         const CostModel& cost_model);
  Master(minimpi::Comm& world, minimpi::Comm& global, TrainingConfig config,
         const CostModel& cost_model, Options options);

  MasterOutcome run();

 private:
  minimpi::Comm& world_;
  minimpi::Comm& global_;
  TrainingConfig config_;
  CostModel cost_model_;  // by value: callers may pass temporaries
  Options options_;
};

}  // namespace cellgan::core
