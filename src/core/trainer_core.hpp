// Shared core of the in-process trainers (sequential and thread-parallel).
//
// Both trainers run the same cellular epoch — collect the neighbors'
// previous-epoch genomes, step the cell's coevolutionary algorithm, publish
// the new center genome — over the same double-buffered GenomeStore; they
// differ only in who executes the per-cell tasks (the caller, or a
// common::ThreadPool) and in how per-rank virtual clocks aggregate (serial
// sum vs max-over-lanes). TrainerCore owns everything schedule-independent:
// grid, cells, comm managers, outcome assembly, checkpoint/restore and the
// workload calibration probe. InProcessTrainer is the common API surface so
// callers can pick a trainer at runtime.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "core/cell_trainer.hpp"
#include "core/checkpoint.hpp"
#include "core/comm_manager.hpp"
#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/grid.hpp"
#include "core/observer.hpp"
#include "data/dataset.hpp"

namespace cellgan::core {

/// Result of a full training run (any mode).
struct TrainOutcome {
  double wall_s = 0.0;
  double virtual_s = 0.0;              ///< simulated makespan (0 if disabled)
  double train_flops = 0.0;            ///< total flops spent in train, all cells
  common::Profiler profiler;           ///< per-routine totals (see Table IV)
  std::vector<double> g_fitnesses;     ///< final per-cell generator losses
  std::vector<double> d_fitnesses;
  int best_cell = 0;                   ///< argmin generator fitness
};

/// Schedule-independent machinery shared by the in-process trainers.
class TrainerCore {
 public:
  /// `dataset` must outlive the core.
  TrainerCore(const TrainingConfig& config, const data::Dataset& dataset,
              const CostModel& cost_model);

  /// Construct one CellTrainer + LocalCommManager per grid cell, seeding each
  /// cell's private rng stream exactly as the paper's reproducibility rule
  /// requires (fork of the master seed keyed by cell id). `context_of(cell)`
  /// supplies each cell's execution context — one shared context in the
  /// sequential trainer, one per worker lane in the parallel trainer. The
  /// returned contexts are stored by value, so the clock/profiler/cost
  /// pointers inside must outlive this core. Call exactly once.
  void build_cells(const std::function<ExecContext(int)>& context_of);

  /// Subscribe the run to an event bus (may be null / empty: observation is
  /// strictly pay-for-use). Call before run; the bus must outlive the core.
  void set_observers(EventBus* bus) { bus_ = bus; }
  /// True when at least one observer is subscribed (records get assembled).
  bool observing() const { return bus_ != nullptr && !bus_->empty(); }

  /// Open epoch `epoch` (run-relative, 0-based): publishes epoch-started and
  /// arms per-cell record collection. Call before the epoch's cell steps.
  void begin_epoch(std::uint32_t epoch);

  /// One cell's epoch: collect the visible neighbor genomes, run the cell's
  /// coevolutionary step, stage the new center genome for the next epoch.
  /// Safe to call concurrently for distinct cells. When observing, the
  /// cell's record is assembled here on the stepping thread (distinct cells
  /// write distinct slots, so this stays race-free) but published only at
  /// the epoch barrier, in cell order — the stream stays deterministic at
  /// any lane count.
  void run_cell_epoch(int cell);

  /// Epoch barrier: genomes staged during the finished epoch become visible.
  void finish_epoch() { store_.flip(); }

  /// Publish the completed epoch's cell-stepped events (cell order) and the
  /// assembled EpochRecord. Call after finish_epoch, from one thread.
  void publish_epoch();

  /// Assemble the run outcome: fitness collection, best-cell argmin and the
  /// per-cell train-flops total, plus the caller-measured times and the
  /// (already merged) profiler.
  TrainOutcome make_outcome(double wall_s, double virtual_s,
                            common::Profiler profiler) const;

  /// Snapshot the whole grid for persistence (see core/checkpoint.hpp).
  Checkpoint checkpoint() const;

  /// Restore every cell from a checkpoint taken with a compatible
  /// configuration (same grid and architecture).
  void restore(const Checkpoint& snapshot);

  /// Calibration probe: per-cell-per-iteration work of this configuration
  /// (runs one throwaway iteration on a scratch cell).
  static WorkloadProbe measure_workload(const TrainingConfig& config,
                                        const data::Dataset& dataset);

  const TrainingConfig& config() const { return config_; }
  const CostModel& cost_model() const { return cost_model_; }
  Grid& grid() { return grid_; }
  GenomeStore& store() { return store_; }
  CellTrainer& cell(int cell_id) { return *cells_[cell_id]; }
  const CellTrainer& cell(int cell_id) const { return *cells_[cell_id]; }
  int cells() const { return static_cast<int>(cells_.size()); }

 private:
  TrainingConfig config_;
  const data::Dataset& dataset_;
  CostModel cost_model_;
  Grid grid_;
  GenomeStore store_;
  std::vector<ExecContext> contexts_;  ///< one per cell; addresses stable
  std::vector<std::unique_ptr<CellTrainer>> cells_;
  std::vector<std::unique_ptr<LocalCommManager>> comms_;

  // Observation state (inert while no observer is subscribed).
  EventBus* bus_ = nullptr;
  std::uint32_t epoch_ = 0;
  bool recording_ = false;             ///< records armed for this epoch
  /// Per-cell cumulative own charges, written concurrently by whichever lane
  /// steps the cell. One cache line per counter: packed doubles would put
  /// eight lanes' hot accumulators on one line and turn every charge into
  /// coherence traffic.
  std::vector<common::CacheAligned<double>> cell_virtual_s_;
  std::vector<CellEpochRecord> epoch_records_;  ///< one slot per cell
};

/// Common API of the in-process trainers, so examples and benchmarks can
/// select sequential vs parallel at runtime behind one pointer.
class InProcessTrainer {
 public:
  /// `dataset` must outlive the trainer.
  InProcessTrainer(const TrainingConfig& config, const data::Dataset& dataset,
                   const CostModel& cost_model)
      : core_(config, dataset, cost_model) {}
  virtual ~InProcessTrainer() = default;

  InProcessTrainer(const InProcessTrainer&) = delete;
  InProcessTrainer& operator=(const InProcessTrainer&) = delete;

  /// Run the configured number of iterations over every cell.
  virtual TrainOutcome run() = 0;

  /// Subscribe the run to an event bus (epoch-started / cell-stepped /
  /// epoch-completed). Call before run(); the bus must outlive the trainer.
  void set_observers(EventBus* bus) { core_.set_observers(bus); }

  /// Access to trained cells (valid after run()) for sampling / inspection.
  Grid& grid() { return core_.grid(); }
  CellTrainer& cell(int cell_id) { return core_.cell(cell_id); }
  int cells() const { return core_.cells(); }

  Checkpoint checkpoint() { return core_.checkpoint(); }

  /// Restore every cell from a compatible checkpoint; a subsequent run()
  /// trains `config.iterations` further epochs.
  void restore(const Checkpoint& snapshot) { core_.restore(snapshot); }

 protected:
  TrainerCore core_;
};

}  // namespace cellgan::core
