#include "core/gan_trainer.hpp"

#include "tensor/ops.hpp"

namespace cellgan::core {

namespace {
tensor::Tensor latent_batch(std::size_t batch_size, std::size_t latent_dim,
                            common::Rng& rng) {
  return tensor::Tensor::randn(batch_size, latent_dim, rng, 1.0f);
}
}  // namespace

double train_discriminator_step(nn::Sequential& discriminator,
                                nn::Optimizer& d_optimizer,
                                nn::Sequential& generator,
                                const tensor::Tensor& real_batch,
                                std::size_t latent_dim, common::Rng& rng,
                                GanLossKind loss_kind) {
  const std::size_t batch = real_batch.rows();
  const tensor::Tensor fake = generator.forward(latent_batch(batch, latent_dim, rng));

  discriminator.zero_grad();
  // Gradients accumulate across the real and fake backward passes.
  const tensor::Tensor real_logits = discriminator.forward(real_batch);
  auto [real_loss, d_real] = discriminator_real_loss_grad(loss_kind, real_logits);
  discriminator.backward(d_real);
  const tensor::Tensor fake_logits = discriminator.forward(fake);
  auto [fake_loss, d_fake] = discriminator_fake_loss_grad(loss_kind, fake_logits);
  discriminator.backward(d_fake);

  d_optimizer.step(discriminator);
  return static_cast<double>(real_loss) + fake_loss;
}

double train_generator_step(nn::Sequential& generator, nn::Optimizer& g_optimizer,
                            nn::Sequential& discriminator, std::size_t batch_size,
                            std::size_t latent_dim, common::Rng& rng,
                            GanLossKind loss_kind) {
  generator.zero_grad();
  discriminator.zero_grad();  // D gradients are scratch here; never stepped

  const tensor::Tensor fake =
      generator.forward(latent_batch(batch_size, latent_dim, rng));
  const tensor::Tensor logits = discriminator.forward(fake);
  auto [loss, dlogits] = generator_loss_grad(loss_kind, logits);
  const tensor::Tensor dfake = discriminator.backward(dlogits);
  generator.backward(dfake);

  g_optimizer.step(generator);
  discriminator.zero_grad();  // drop the scratch gradients
  return loss;
}

double evaluate_generator_loss(nn::Sequential& generator,
                               nn::Sequential& discriminator, std::size_t batch_size,
                               std::size_t latent_dim, common::Rng& rng) {
  const tensor::Tensor fake =
      generator.forward(latent_batch(batch_size, latent_dim, rng));
  const tensor::Tensor logits = discriminator.forward(fake);
  auto [loss, dlogits] =
      tensor::bce_with_logits(logits, tensor::Tensor::full(batch_size, 1, 1.0f));
  (void)dlogits;
  return loss;
}

double evaluate_discriminator_loss(nn::Sequential& discriminator,
                                   nn::Sequential& generator,
                                   const tensor::Tensor& real_batch,
                                   std::size_t latent_dim, common::Rng& rng) {
  const std::size_t batch = real_batch.rows();
  const tensor::Tensor fake = generator.forward(latent_batch(batch, latent_dim, rng));
  const tensor::Tensor real_logits = discriminator.forward(real_batch);
  auto [real_loss, d_real] =
      tensor::bce_with_logits(real_logits, tensor::Tensor::full(batch, 1, 1.0f));
  (void)d_real;
  const tensor::Tensor fake_logits = discriminator.forward(fake);
  auto [fake_loss, d_fake] =
      tensor::bce_with_logits(fake_logits, tensor::Tensor::full(batch, 1, 0.0f));
  (void)d_fake;
  return static_cast<double>(real_loss) + fake_loss;
}

}  // namespace cellgan::core
