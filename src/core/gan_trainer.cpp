#include "core/gan_trainer.hpp"

#include <algorithm>
#include <vector>

#include "common/expect.hpp"
#include "tensor/ops.hpp"

namespace cellgan::core {

namespace {

tensor::Tensor latent_batch(std::size_t batch_size, std::size_t latent_dim,
                            common::Rng& rng) {
  return tensor::Tensor::randn(batch_size, latent_dim, rng, 1.0f);
}

/// Uniform fake-class labels, one per row. Drawn BEFORE the latent block so
/// the conditional rng consumption order is fixed and replayable.
std::vector<std::uint32_t> draw_labels(std::size_t count, std::size_t classes,
                                       common::Rng& rng) {
  std::vector<std::uint32_t> labels(count);
  for (auto& label : labels) {
    label = static_cast<std::uint32_t>(rng.uniform_int(classes));
  }
  return labels;
}

/// Gradient w.r.t. the unconditioned columns: drop the one-hot tail the
/// discriminator backward produced for the label plane.
tensor::Tensor drop_label_columns(const tensor::Tensor& grad, std::size_t cols) {
  CG_EXPECT(grad.cols() >= cols);
  tensor::Tensor out(grad.rows(), cols);
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    const auto src = grad.row_span(r);
    auto dst = out.row_span(r);
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(cols),
              dst.begin());
  }
  return out;
}

/// The generator input for a conditional (or plain) fake batch.
tensor::Tensor generator_input(const tensor::Tensor& latents,
                               std::span<const std::uint32_t> labels,
                               std::size_t classes) {
  if (classes == 0) return latents;
  return append_one_hot(latents, labels, classes);
}

/// The discriminator input for a conditional (or plain) image batch.
tensor::Tensor discriminator_input(const tensor::Tensor& images,
                                   std::span<const std::uint32_t> labels,
                                   std::size_t classes) {
  if (classes == 0) return images;
  return append_one_hot(images, labels, classes);
}

}  // namespace

tensor::Tensor append_one_hot(const tensor::Tensor& x,
                              std::span<const std::uint32_t> labels,
                              std::size_t classes) {
  CG_EXPECT(labels.size() == x.rows());
  tensor::Tensor out(x.rows(), x.cols() + classes);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row_span(r);
    auto dst = out.row_span(r);
    std::copy(src.begin(), src.end(), dst.begin());
    std::fill(dst.begin() + static_cast<std::ptrdiff_t>(x.cols()), dst.end(), 0.0f);
    CG_EXPECT(labels[r] < classes);
    dst[x.cols() + labels[r]] = 1.0f;
  }
  return out;
}

void clip_parameters(nn::Sequential& net, double clip) {
  CG_EXPECT(clip > 0.0);
  const float c = static_cast<float>(clip);
  for (tensor::Tensor* parameter : net.parameters()) {
    for (float& value : parameter->data()) value = std::clamp(value, -c, c);
  }
}

double train_discriminator_step(nn::Sequential& discriminator,
                                nn::Optimizer& d_optimizer,
                                nn::Sequential& generator,
                                const tensor::Tensor& real_batch,
                                std::size_t latent_dim, common::Rng& rng,
                                GanLossKind loss_kind,
                                const GanStepOptions& options) {
  const std::size_t batch = real_batch.rows();
  const std::size_t classes = options.label_classes;
  std::vector<std::uint32_t> fake_labels;
  if (classes > 0) {
    CG_EXPECT(options.real_labels.size() == batch);
    fake_labels = draw_labels(batch, classes, rng);
  }
  const tensor::Tensor fake = generator.forward(
      generator_input(latent_batch(batch, latent_dim, rng), fake_labels, classes));

  discriminator.zero_grad();
  // Gradients accumulate across the real and fake backward passes.
  const tensor::Tensor real_logits = discriminator.forward(
      discriminator_input(real_batch, options.real_labels, classes));
  auto [real_loss, d_real] = discriminator_real_loss_grad(loss_kind, real_logits);
  discriminator.backward(d_real);
  const tensor::Tensor fake_logits =
      discriminator.forward(discriminator_input(fake, fake_labels, classes));
  auto [fake_loss, d_fake] = discriminator_fake_loss_grad(loss_kind, fake_logits);
  discriminator.backward(d_fake);

  d_optimizer.step(discriminator);
  if (options.weight_clip > 0.0) clip_parameters(discriminator, options.weight_clip);
  return static_cast<double>(real_loss) + fake_loss;
}

double train_generator_step(nn::Sequential& generator, nn::Optimizer& g_optimizer,
                            nn::Sequential& discriminator, std::size_t batch_size,
                            std::size_t latent_dim, common::Rng& rng,
                            GanLossKind loss_kind, const GanStepOptions& options) {
  generator.zero_grad();
  discriminator.zero_grad();  // D gradients are scratch here; never stepped

  const std::size_t classes = options.label_classes;
  std::vector<std::uint32_t> fake_labels;
  if (classes > 0) fake_labels = draw_labels(batch_size, classes, rng);
  const tensor::Tensor fake = generator.forward(generator_input(
      latent_batch(batch_size, latent_dim, rng), fake_labels, classes));
  const tensor::Tensor logits =
      discriminator.forward(discriminator_input(fake, fake_labels, classes));
  auto [loss, dlogits] = generator_loss_grad(loss_kind, logits);
  const tensor::Tensor dinput = discriminator.backward(dlogits);
  generator.backward(classes == 0 ? dinput
                                  : drop_label_columns(dinput, fake.cols()));

  g_optimizer.step(generator);
  discriminator.zero_grad();  // drop the scratch gradients
  return loss;
}

double evaluate_generator_loss(nn::Sequential& generator,
                               nn::Sequential& discriminator, std::size_t batch_size,
                               std::size_t latent_dim, common::Rng& rng,
                               const GanStepOptions& options) {
  const std::size_t classes = options.label_classes;
  std::vector<std::uint32_t> fake_labels;
  if (classes > 0) fake_labels = draw_labels(batch_size, classes, rng);
  const tensor::Tensor fake = generator.forward(generator_input(
      latent_batch(batch_size, latent_dim, rng), fake_labels, classes));
  const tensor::Tensor logits =
      discriminator.forward(discriminator_input(fake, fake_labels, classes));
  auto [loss, dlogits] =
      tensor::bce_with_logits(logits, tensor::Tensor::full(batch_size, 1, 1.0f));
  (void)dlogits;
  return loss;
}

double evaluate_discriminator_loss(nn::Sequential& discriminator,
                                   nn::Sequential& generator,
                                   const tensor::Tensor& real_batch,
                                   std::size_t latent_dim, common::Rng& rng,
                                   const GanStepOptions& options) {
  const std::size_t batch = real_batch.rows();
  const std::size_t classes = options.label_classes;
  std::vector<std::uint32_t> fake_labels;
  if (classes > 0) {
    CG_EXPECT(options.real_labels.size() == batch);
    fake_labels = draw_labels(batch, classes, rng);
  }
  const tensor::Tensor fake = generator.forward(
      generator_input(latent_batch(batch, latent_dim, rng), fake_labels, classes));
  const tensor::Tensor real_logits = discriminator.forward(
      discriminator_input(real_batch, options.real_labels, classes));
  auto [real_loss, d_real] =
      tensor::bce_with_logits(real_logits, tensor::Tensor::full(batch, 1, 1.0f));
  (void)d_real;
  const tensor::Tensor fake_logits =
      discriminator.forward(discriminator_input(fake, fake_labels, classes));
  auto [fake_loss, d_fake] =
      tensor::bce_with_logits(fake_logits, tensor::Tensor::full(batch, 1, 0.0f));
  (void)d_fake;
  return static_cast<double>(real_loss) + fake_loss;
}

}  // namespace cellgan::core
