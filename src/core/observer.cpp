#include "core/observer.hpp"

#include <algorithm>
#include <utility>

#include "common/serialize.hpp"
#include "evolve/exchange.hpp"

namespace cellgan::core {

// --- records ----------------------------------------------------------------

std::vector<std::uint8_t> CellEpochRecord::serialize() const {
  common::ByteWriter w;
  w.write(cell);
  w.write(epoch);
  w.write(g_fitness);
  w.write(d_fitness);
  w.write(g_learning_rate);
  w.write(d_learning_rate);
  w.write(loss_kind);
  w.write(virtual_s);
  w.write(train_flops);
  w.write_vector(genome);
  w.write_vector(mixture_weights);
  w.write(exchange_policy);
  w.write(exchange_partner);
  w.write(exchange_g_adopted);
  w.write(exchange_d_adopted);
  w.write(exchange_g_before);
  w.write(exchange_g_after);
  w.write(exchange_d_before);
  w.write(exchange_d_after);
  w.write(exchange_wins);
  w.write(exchange_bytes);
  return w.take();
}

CellEpochRecord CellEpochRecord::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  CellEpochRecord rec;
  rec.cell = r.read<std::uint32_t>();
  rec.epoch = r.read<std::uint32_t>();
  rec.g_fitness = r.read<double>();
  rec.d_fitness = r.read<double>();
  rec.g_learning_rate = r.read<double>();
  rec.d_learning_rate = r.read<double>();
  rec.loss_kind = r.read<std::uint32_t>();
  rec.virtual_s = r.read<double>();
  rec.train_flops = r.read<double>();
  rec.genome = r.read_vector<std::uint8_t>();
  rec.mixture_weights = r.read_vector<double>();
  rec.exchange_policy = r.read<std::uint32_t>();
  rec.exchange_partner = r.read<std::int32_t>();
  rec.exchange_g_adopted = r.read<std::uint8_t>();
  rec.exchange_d_adopted = r.read<std::uint8_t>();
  rec.exchange_g_before = r.read<double>();
  rec.exchange_g_after = r.read<double>();
  rec.exchange_d_before = r.read<double>();
  rec.exchange_d_after = r.read<double>();
  rec.exchange_wins = r.read<std::uint64_t>();
  rec.exchange_bytes = r.read<double>();
  CG_ENSURE(r.exhausted());
  return rec;
}

double EpochRecord::max_virtual_s() const {
  double max = 0.0;
  for (const auto& cell : cells) max = std::max(max, cell.virtual_s);
  return max;
}

double EpochRecord::total_train_flops() const {
  double total = 0.0;
  for (const auto& cell : cells) total += cell.train_flops;
  return total;
}

int EpochRecord::best_cell() const {
  int best = 0;
  for (std::size_t i = 1; i < cells.size(); ++i) {
    if (cells[i].g_fitness < cells[static_cast<std::size_t>(best)].g_fitness) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

bool EpochRecord::has_genomes() const {
  if (cells.empty()) return false;
  for (const auto& cell : cells) {
    if (cell.genome.empty()) return false;
  }
  return true;
}

std::vector<std::uint8_t> EpochRecord::serialize() const {
  common::ByteWriter w;
  w.write(epoch);
  w.write<std::uint64_t>(cells.size());
  for (const auto& cell : cells) w.write_vector(cell.serialize());
  return w.take();
}

EpochRecord EpochRecord::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  EpochRecord record;
  record.epoch = r.read<std::uint32_t>();
  const auto count = r.read<std::uint64_t>();
  record.cells.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto cell_bytes = r.read_vector<std::uint8_t>();
    record.cells.push_back(CellEpochRecord::deserialize(cell_bytes));
  }
  CG_ENSURE(r.exhausted());
  return record;
}

// --- EventBus ---------------------------------------------------------------

void EventBus::subscribe(TrainObserver* observer) {
  CG_EXPECT(observer != nullptr);
  observers_.push_back(observer);
}

void EventBus::run_started(const RunInfo& info) {
  for (auto* observer : observers_) observer->on_run_started(info);
}

void EventBus::epoch_started(std::uint32_t epoch) {
  for (auto* observer : observers_) observer->on_epoch_started(epoch);
}

void EventBus::cell_stepped(const CellEpochRecord& record) {
  for (auto* observer : observers_) observer->on_cell_stepped(record);
}

void EventBus::exchange(const CellEpochRecord& record) {
  if (!record.exchange_noteworthy()) return;
  for (auto* observer : observers_) observer->on_exchange(record);
}

void EventBus::epoch_completed(const EpochRecord& record) {
  for (auto* observer : observers_) observer->on_epoch_completed(record);
  for (auto* observer : observers_) {
    if (auto snapshot = observer->take_metrics()) metrics(*snapshot);
  }
}

void EventBus::metrics(const MetricSnapshot& snapshot) {
  for (auto* observer : observers_) observer->on_metrics(snapshot);
}

void EventBus::run_completed(const RunSummary& summary) {
  for (auto* observer : observers_) observer->on_run_completed(summary);
}

void EventBus::serve_request(const ServeRequestRecord& record) {
  for (auto* observer : observers_) observer->on_serve_request(record);
}

void EventBus::serve_batch(const ServeBatchRecord& record) {
  for (auto* observer : observers_) observer->on_serve_batch(record);
}

void EventBus::data_store(const DataStoreRecord& record) {
  for (auto* observer : observers_) observer->on_data_store(record);
}

// --- JsonlTelemetrySink -----------------------------------------------------

namespace {

void append_json_number(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out += buffer;
}

void append_json_array(std::string& out, const char* name,
                       const std::vector<double>& values) {
  out += "\"";
  out += name;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    append_json_number(out, values[i]);
  }
  out += ']';
}

}  // namespace

JsonlTelemetrySink::JsonlTelemetrySink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {
  if (file_ == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open '%s'\n", path.c_str());
  }
}

JsonlTelemetrySink::~JsonlTelemetrySink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlTelemetrySink::write_line(const std::string& line) {
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void JsonlTelemetrySink::on_run_started(const RunInfo& info) {
  std::string line = "{\"event\":\"run_started\",\"schema_version\":";
  line += std::to_string(kRunJsonSchemaVersion);
  line += ",\"backend\":\"" + info.backend + "\"";
  line += ",\"grid_rows\":" + std::to_string(info.config.grid_rows);
  line += ",\"grid_cols\":" + std::to_string(info.config.grid_cols);
  line += ",\"iterations\":" + std::to_string(info.config.iterations);
  line += ",\"seed\":" + std::to_string(info.config.seed);
  line += "}";
  write_line(line);
}

void JsonlTelemetrySink::on_exchange(const CellEpochRecord& record) {
  std::string line = "{\"event\":\"exchange\",\"epoch\":";
  line += std::to_string(record.epoch);
  line += ",\"cell\":" + std::to_string(record.cell);
  line += ",\"policy\":\"";
  line += evolve::to_string(
      static_cast<evolve::ExchangePolicyKind>(record.exchange_policy));
  line += "\",\"partner\":" + std::to_string(record.exchange_partner);
  line += ",\"g_adopted\":";
  line += record.exchange_g_adopted != 0 ? "true" : "false";
  line += ",\"d_adopted\":";
  line += record.exchange_d_adopted != 0 ? "true" : "false";
  line += ",\"g_fitness_before\":";
  append_json_number(line, record.exchange_g_before);
  line += ",\"g_fitness_after\":";
  append_json_number(line, record.exchange_g_after);
  line += ",\"d_fitness_before\":";
  append_json_number(line, record.exchange_d_before);
  line += ",\"d_fitness_after\":";
  append_json_number(line, record.exchange_d_after);
  line += ",\"wins\":" + std::to_string(record.exchange_wins);
  line += ",\"bytes_in\":";
  append_json_number(line, record.exchange_bytes);
  line += "}";
  write_line(line);
}

void JsonlTelemetrySink::on_epoch_completed(const EpochRecord& record) {
  std::string line = "{\"event\":\"epoch\",\"epoch\":";
  line += std::to_string(record.epoch);
  line += ",";
  std::vector<double> g, d, vt, flops;
  g.reserve(record.cells.size());
  d.reserve(record.cells.size());
  vt.reserve(record.cells.size());
  flops.reserve(record.cells.size());
  for (const auto& cell : record.cells) {
    g.push_back(cell.g_fitness);
    d.push_back(cell.d_fitness);
    vt.push_back(cell.virtual_s);
    flops.push_back(cell.train_flops);
  }
  append_json_array(line, "g_fitnesses", g);
  line += ",";
  append_json_array(line, "d_fitnesses", d);
  line += ",";
  append_json_array(line, "virtual_s", vt);
  line += ",\"max_virtual_s\":";
  append_json_number(line, record.max_virtual_s());
  line += ",\"train_flops\":";
  append_json_number(line, record.total_train_flops());
  line += ",\"best_cell\":" + std::to_string(record.best_cell());
  line += "}";
  write_line(line);
}

void JsonlTelemetrySink::on_metrics(const MetricSnapshot& snapshot) {
  std::string line = "{\"event\":\"metrics\",\"epoch\":";
  line += std::to_string(snapshot.epoch);
  line += ",\"best_cell\":" + std::to_string(snapshot.best_cell);
  line += ",";
  append_json_array(line, "cell_is", snapshot.cell_is);
  line += ",\"mixture_is\":";
  append_json_number(line, snapshot.mixture_is);
  line += ",\"fid\":";
  append_json_number(line, snapshot.fid);
  line += ",\"modes_covered\":" + std::to_string(snapshot.modes_covered);
  line += ",\"tvd_from_uniform\":";
  append_json_number(line, snapshot.tvd_from_uniform);
  line += "}";
  write_line(line);
}

void JsonlTelemetrySink::on_run_completed(const RunSummary& summary) {
  std::string line = "{\"event\":\"run_completed\",\"backend\":\"";
  line += summary.backend;
  line += "\",\"wall_s\":";
  append_json_number(line, summary.wall_s);
  line += ",\"virtual_s\":";
  append_json_number(line, summary.virtual_s);
  line += ",\"train_flops\":";
  append_json_number(line, summary.train_flops);
  line += ",";
  append_json_array(line, "g_fitnesses", summary.g_fitnesses);
  line += ",\"best_cell\":" + std::to_string(summary.best_cell);
  line += "}";
  write_line(line);
}

void JsonlTelemetrySink::on_serve_request(const ServeRequestRecord& record) {
  std::string line = "{\"event\":\"serve_request\",\"request_id\":";
  line += std::to_string(record.request_id);
  line += ",\"count\":" + std::to_string(record.count);
  line += ",\"batch_requests\":" + std::to_string(record.batch_requests);
  line += ",\"batch_samples\":" + std::to_string(record.batch_samples);
  line += ",\"queue_us\":";
  append_json_number(line, record.queue_us);
  line += ",\"forward_us\":";
  append_json_number(line, record.forward_us);
  line += ",\"total_us\":";
  append_json_number(line, record.total_us);
  line += ",\"cache_hit\":";
  line += record.cache_hit ? "true" : "false";
  line += "}";
  write_line(line);
}

void JsonlTelemetrySink::on_serve_batch(const ServeBatchRecord& record) {
  std::string line = "{\"event\":\"serve_batch\",\"batch_id\":";
  line += std::to_string(record.batch_id);
  line += ",\"requests\":" + std::to_string(record.requests);
  line += ",\"samples\":" + std::to_string(record.samples);
  line += ",\"delay_us\":";
  append_json_number(line, record.delay_us);
  line += ",\"forward_us\":";
  append_json_number(line, record.forward_us);
  line += "}";
  write_line(line);
}

void JsonlTelemetrySink::on_data_store(const DataStoreRecord& record) {
  std::string line = "{\"event\":\"data_store\",\"bytes_mapped\":";
  line += std::to_string(record.bytes_mapped);
  line += ",\"prefetch_hits\":" + std::to_string(record.prefetch_hits);
  line += ",\"prefetch_waits\":" + std::to_string(record.prefetch_waits);
  line += ",\"prefetch_stalls\":" + std::to_string(record.prefetch_stalls);
  line += ",\"staged_batches\":" + std::to_string(record.staged_batches);
  line += ",\"staging_depth\":" + std::to_string(record.staging_depth);
  line += "}";
  write_line(line);
}

// --- CheckpointPolicyObserver -----------------------------------------------

CheckpointPolicyObserver::CheckpointPolicyObserver(std::string path,
                                                   std::uint32_t every,
                                                   TrainingConfig config)
    : path_(std::move(path)), every_(every), config_(std::move(config)) {
  CG_EXPECT(!path_.empty());
}

void CheckpointPolicyObserver::on_epoch_completed(const EpochRecord& record) {
  if (every_ == 0 || (record.epoch + 1) % every_ != 0) return;
  // Genomes travel in records only on genome-record epochs; a cadence epoch
  // without them cannot be snapshotted (the trainers align the cadences
  // through TrainingConfig::genome_record_every).
  if (!record.has_genomes()) return;
  Checkpoint snapshot;
  snapshot.config = config_;
  snapshot.centers.reserve(record.cells.size());
  snapshot.mixtures.reserve(record.cells.size());
  for (const auto& cell : record.cells) {
    snapshot.centers.push_back(CellGenome::deserialize(cell.genome));
    snapshot.mixtures.push_back(cell.mixture_weights);
    // The genomes carry the cells' absolute iteration counters (which
    // survive restore), unlike the run-relative record.epoch — same
    // semantics as TrainerCore::checkpoint, so resumed runs report honest
    // progress.
    snapshot.iteration = std::max(snapshot.iteration, snapshot.centers.back().iteration);
  }
  // Strict: the rejoin protocol restores from this file, so a write failure
  // must surface (CheckpointWriteError) rather than silently skip a snapshot.
  save_checkpoint_strict(path_, snapshot);
  ++written_;
}

}  // namespace cellgan::core
