#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"

#include "common/expect.hpp"
#include "core/checkpoint_sampler.hpp"
#include "core/grid.hpp"
#include "minimpi/bootstrap.hpp"
#include "core/mixture.hpp"
#include "core/parallel_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"
#include "datastore/errors.hpp"
#include "datastore/stats.hpp"
#include "nn/gan_models.hpp"
#include "tensor/kernels.hpp"

namespace cellgan::core {

// --- RunResult --------------------------------------------------------------

double RunResult::slave_routine_virtual_min(const std::string& routine) const {
  return average_slave_routine_virtual_min(ranks, routine);
}

std::string to_json(const RunSpec& spec, const RunResult& result) {
  std::string out = "{\n  \"schema_version\": " +
                    std::to_string(kRunJsonSchemaVersion) + ",\n  \"spec\": ";
  // RunSpec::to_text() is already JSON; trim its trailing newline to nest it.
  std::string spec_text = spec.to_text();
  while (!spec_text.empty() && spec_text.back() == '\n') spec_text.pop_back();
  out += spec_text;
  out += ",\n  \"result\": {\n";
  char line[256];
  std::snprintf(line, sizeof(line), "    \"backend\": \"%s\",\n",
                to_string(result.backend));
  out += line;
  std::snprintf(line, sizeof(line),
                "    \"wall_s\": %.6f,\n    \"virtual_s\": %.6f,\n"
                "    \"virtual_min\": %.6f,\n    \"train_flops\": %.0f,\n"
                "    \"best_cell\": %d,\n",
                result.wall_s, result.virtual_s, result.virtual_s / 60.0,
                result.train_flops, result.best_cell);
  out += line;
  const auto fitness_array = [&](const char* name,
                                 const std::vector<double>& values) {
    out += "    \"";
    out += name;
    out += "\": [";
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::snprintf(line, sizeof(line), "%s%.9g", i == 0 ? "" : ", ", values[i]);
      out += line;
    }
    out += "],\n";
  };
  fitness_array("g_fitnesses", result.g_fitnesses);
  fitness_array("d_fitnesses", result.d_fitnesses);
  out += "    \"routines\": {";
  const auto names = result.profiler.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto cost = result.profiler.cost(names[i]);
    std::snprintf(line, sizeof(line),
                  "%s\n      \"%s\": {\"wall_s\": %.6f, \"virtual_s\": %.6f,"
                  " \"calls\": %llu}",
                  i == 0 ? "" : ",", names[i].c_str(), cost.wall_s, cost.virtual_s,
                  static_cast<unsigned long long>(cost.calls));
    out += line;
  }
  out += names.empty() ? "},\n" : "\n    },\n";
  if (result.metrics.has_value()) {
    const MetricSnapshot& m = *result.metrics;
    std::snprintf(line, sizeof(line),
                  "    \"metrics\": {\"epoch\": %u, \"best_cell\": %d, "
                  "\"mixture_is\": %.9g, \"fid\": %.9g, \"modes_covered\": %zu, "
                  "\"tvd_from_uniform\": %.9g, \"cell_is\": [",
                  m.epoch, m.best_cell, m.mixture_is, m.fid, m.modes_covered,
                  m.tvd_from_uniform);
    out += line;
    for (std::size_t i = 0; i < m.cell_is.size(); ++i) {
      std::snprintf(line, sizeof(line), "%s%.9g", i == 0 ? "" : ", ",
                    m.cell_is[i]);
      out += line;
    }
    out += "]},\n";
  }
  std::snprintf(line, sizeof(line),
                "    \"ranks\": %zu,\n    \"heartbeat_cycles\": %llu\n  }\n}\n",
                result.ranks.size(),
                static_cast<unsigned long long>(result.heartbeat_cycles));
  out += line;
  return out;
}

bool write_result_json(const std::string& path, const RunSpec& spec,
                       const RunResult& result) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = to_json(spec, result);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

// --- built-in backends ------------------------------------------------------

namespace {

/// SequentialTrainer / ParallelTrainer behind the facade. The referenced
/// dataset and cost model live in the owning Session and outlive the backend.
class InProcessBackend final : public SessionBackend {
 public:
  InProcessBackend(Backend kind, std::unique_ptr<InProcessTrainer> trainer,
                   EventBus* observers)
      : kind_(kind), trainer_(std::move(trainer)) {
    trainer_->set_observers(observers);
  }

  RunResult run() override {
    TrainOutcome outcome = trainer_->run();
    RunResult result;
    result.backend = kind_;
    result.wall_s = outcome.wall_s;
    result.virtual_s = outcome.virtual_s;
    result.train_flops = outcome.train_flops;
    result.profiler = std::move(outcome.profiler);
    result.g_fitnesses = std::move(outcome.g_fitnesses);
    result.d_fitnesses = std::move(outcome.d_fitnesses);
    result.best_cell = outcome.best_cell;
    return result;
  }

  InProcessTrainer* trainer() override { return trainer_.get(); }

 private:
  Backend kind_;
  std::unique_ptr<InProcessTrainer> trainer_;
};

/// One DistributedOutcome -> RunResult mapping for both distributed
/// backends, keeping their JSON artifacts field-for-field comparable (the
/// cellgan_launch --verify-parity contract).
RunResult distributed_run_result(Backend kind, DistributedOutcome outcome) {
  RunResult result;
  result.backend = kind;
  result.wall_s = outcome.wall_s;
  result.virtual_s = outcome.virtual_makespan_s;
  result.best_cell = outcome.master.best_cell;
  result.g_fitnesses.reserve(outcome.master.results.size());
  result.d_fitnesses.reserve(outcome.master.results.size());
  for (const auto& cell : outcome.master.results) {
    result.g_fitnesses.push_back(cell.center.g_fitness);
    result.d_fitnesses.push_back(cell.center.d_fitness);
  }
  for (const auto& rank : outcome.ranks) result.profiler.merge(rank.profiler);
  result.cell_results = std::move(outcome.master.results);
  result.ranks = std::move(outcome.ranks);
  result.node_names = std::move(outcome.master.node_names);
  result.heartbeat_cycles = outcome.master.heartbeat_cycles;
  return result;
}

/// run_distributed behind the facade.
class DistributedBackend final : public SessionBackend {
 public:
  explicit DistributedBackend(const BackendContext& context)
      : spec_(context.spec), train_set_(context.train_set),
        cost_model_(context.cost_model), master_options_(context.master_options) {
    master_options_.observers = context.observers;
  }

  RunResult run() override {
    return distributed_run_result(
        Backend::kDistributed,
        run_distributed(spec_.config, train_set_, cost_model_, master_options_));
  }

 private:
  const RunSpec& spec_;
  const data::Dataset& train_set_;
  CostModel cost_model_;  // by value: the Session may be reconfigured
  Master::Options master_options_;
};

/// run_distributed_tcp behind the facade: this process hosts one rank of a
/// multi-process world described by the CELLGAN_* environment (exported by
/// cellgan_launch).
class TcpDistributedBackend final : public SessionBackend {
 public:
  TcpDistributedBackend(const BackendContext& context, TcpWorld world)
      : spec_(context.spec), train_set_(context.train_set),
        cost_model_(context.cost_model), master_options_(context.master_options),
        world_(std::move(world)) {
    // Only rank 0 hosts a Master (and thus publishes); harmless elsewhere.
    master_options_.observers = context.observers;
    // Over real processes a dead slave otherwise hangs the master forever
    // (its clean socket close is indistinguishable from early completion):
    // arm the liveness-gated timeout by default so the worst case is a named
    // TimeoutError. Heartbeat replies keep an honest long run alive past the
    // deadline; callers can still pin their own via Session::set_master_options.
    if (master_options_.slave_timeout_s <= 0.0) {
      master_options_.slave_timeout_s = 600.0;
    }
  }

  RunResult run() override {
    // Recovery and chaos knobs ride the same environment channel as the
    // world description: cellgan_launch exports CELLGAN_RECOVER_DIR (and the
    // kill hook into the doomed rank only); hand-started ranks can export
    // them too. Disabled when the variables are absent.
    return distributed_run_result(
        Backend::kDistributedTcp,
        run_distributed_tcp(world_, spec_.config, train_set_, cost_model_,
                            master_options_, recovery_options_from_env()));
  }

 private:
  const RunSpec& spec_;
  const data::Dataset& train_set_;
  CostModel cost_model_;  // by value: the Session may be reconfigured
  Master::Options master_options_;
  TcpWorld world_;
};

}  // namespace

// --- BackendRegistry --------------------------------------------------------

BackendRegistry::BackendRegistry() {
  // Built-ins are registered here (not via static initializers, which a
  // static-library link may drop) so the registry is always complete.
  register_backend(to_string(Backend::kSequential),
                   [](const BackendContext& context) -> std::unique_ptr<SessionBackend> {
                     return std::make_unique<InProcessBackend>(
                         Backend::kSequential,
                         std::make_unique<SequentialTrainer>(
                             context.spec.config, context.train_set,
                             context.cost_model),
                         context.observers);
                   });
  register_backend(to_string(Backend::kThreads),
                   [](const BackendContext& context) -> std::unique_ptr<SessionBackend> {
                     return std::make_unique<InProcessBackend>(
                         Backend::kThreads,
                         std::make_unique<ParallelTrainer>(
                             context.spec.config, context.train_set,
                             context.spec.threads, context.cost_model),
                         context.observers);
                   });
  register_backend(to_string(Backend::kDistributed),
                   [](const BackendContext& context) -> std::unique_ptr<SessionBackend> {
                     return std::make_unique<DistributedBackend>(context);
                   });
  register_backend(to_string(Backend::kDistributedTcp),
                   [](const BackendContext& context) -> std::unique_ptr<SessionBackend> {
                     std::string env_error;
                     auto world = tcp_world_from_env(&env_error);
                     if (!world) {
                       if (context.error != nullptr) {
                         *context.error =
                             "distributed-tcp: " + env_error +
                             " (start this rank through cellgan_launch, or export " +
                             std::string(minimpi::kEnvRank) + "/" +
                             minimpi::kEnvWorld + "/" + minimpi::kEnvEndpoint + ")";
                       }
                       return nullptr;
                     }
                     return std::make_unique<TcpDistributedBackend>(context,
                                                                    std::move(*world));
                   });
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(const std::string& name,
                                       BackendFactory factory) {
  CG_EXPECT(factory != nullptr);
  factories_[name] = std::move(factory);
}

bool BackendRegistry::has(const std::string& name) const {
  return factories_.contains(name);
}

std::unique_ptr<SessionBackend> BackendRegistry::create(
    const std::string& name, const BackendContext& context) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(context);
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

// --- Session ----------------------------------------------------------------

Session::Session(RunSpec spec) : spec_(std::move(spec)) {}

Session::~Session() = default;

void Session::set_cost_model(CostModel model) {
  CG_EXPECT(!prepared_);
  cost_override_ = std::move(model);
}

void Session::set_master_options(Master::Options options) {
  CG_EXPECT(!prepared_);
  master_options_ = options;
}

void Session::set_datasets(const data::Dataset& train, const data::Dataset& test) {
  CG_EXPECT(!prepared_);
  external_train_ = &train;
  external_test_ = &test;
}

bool Session::prepare() {
  if (prepared_) return true;
  if (!error_.empty()) return false;

  // Specs can arrive via from_text/load with no CLI validation in front, so
  // the exchange policy/transport combination is re-checked here.
  if (!validate_exchange(spec_.config, &error_)) return false;

  // Pin the tensor microkernel kind before anything computes (the cost-model
  // calibration probe below runs real kernels). The selection is
  // process-wide — the kernels are a global seam — so an explicit spec choice
  // wins over the CELLGAN_TENSOR_KERNEL environment default; kAuto touches
  // nothing.
  if (spec_.tensor_kernel != TensorKernel::kAuto) {
    tensor::set_kernel_kind(spec_.tensor_kernel == TensorKernel::kScalar
                                ? tensor::KernelKind::kScalar
                                : tensor::KernelKind::kSimd);
  }

  // 0. Derive the genome-record cadences the spec's observers need: records
  // carry genomes on epochs matching either config divisor, so each
  // requested cadence gets its own slot when one is free — no gcd
  // degradation for coprime cadences. Only when a third distinct cadence is
  // requested (user-pinned genome_record_every plus two observer cadences)
  // does gcd merge into slot a. Broadcast with the config for the slaves.
  {
    const auto claim_slot = [this](std::uint32_t every) {
      if (every == 0) return;
      std::uint32_t& a = spec_.config.genome_record_every;
      std::uint32_t& b = spec_.config.genome_record_every_b;
      if (a == every || b == every) return;
      if (a == 0) a = every;
      else if (b == 0) b = every;
      else a = std::gcd(a, every);
    };
    if (!spec_.observers.checkpoint_path.empty()) {
      claim_slot(spec_.observers.checkpoint_every);
    }
    claim_slot(spec_.observers.eval_every);
  }

  // 1. Resolve the dataset (unless the caller supplied resolved ones).
  const auto& config = spec_.config;
  if (external_train_ != nullptr) {
    // nothing to do
  } else if (spec_.dataset.kind == DatasetSpec::Kind::kSynthetic) {
    train_set_ = make_matched_dataset(config, spec_.dataset.samples,
                                      spec_.dataset.seed);
    test_set_ = make_matched_dataset(
        config, std::max<std::size_t>(1, spec_.dataset.samples / 6),
        spec_.dataset.seed + 1);
  } else {
    if (config.arch.image_dim > data::kImageDim) {
      error_ = "IDX MNIST provides " + std::to_string(data::kImageDim) +
               "-pixel images but the architecture wants " +
               std::to_string(config.arch.image_dim) +
               "; use a synthetic dataset for larger resolutions";
      return false;
    }
    auto loaded = data::load_mnist_idx(spec_.dataset.idx_dir, &error_);
    if (!loaded) return false;
    train_set_ = std::move(loaded->first);
    test_set_ = std::move(loaded->second);
    if (config.arch.image_dim != data::kImageDim) {
      const auto side = static_cast<std::size_t>(std::lround(
          std::sqrt(static_cast<double>(config.arch.image_dim))));
      if (side * side != config.arch.image_dim) {
        error_ = "architecture image_dim " + std::to_string(config.arch.image_dim) +
                 " is not square; cannot downsample IDX images to it";
        return false;
      }
      train_set_ = data::downsampled(train_set_, side);
      test_set_ = data::downsampled(test_set_, side);
    } else {
      // Full-resolution IDX training data: bind the mmap-backed store so
      // store-plane feeds stage from the mapped bytes instead of a second
      // float copy. Best-effort — on failure feeds fall back to the
      // float-backed store over train_set_.
      try {
        idx_store_ = datastore::SampleStore::bind_idx(
            train_set_, spec_.dataset.idx_dir + "/train-images-idx3-ubyte");
      } catch (const datastore::DataStoreError& e) {
        common::log_warn() << "could not mmap-bind IDX training images: "
                           << e.what();
      }
    }
  }

  // 2. Resolve the cost model: explicit override, else the spec's profile
  // calibrated against this exact configuration (targets normalized to the
  // run's iteration count, as the scaling benchmarks do).
  if (cost_override_.has_value()) {
    cost_model_ = *cost_override_;
  } else if (spec_.cost_profile == CostProfileKind::kNone) {
    cost_model_ = CostModel{};
  } else {
    const data::Dataset& train =
        external_train_ != nullptr ? *external_train_ : train_set_;
    const WorkloadProbe probe = TrainerCore::measure_workload(config, train);
    CostProfile profile = spec_.cost_profile == CostProfileKind::kTable3
                              ? CostProfile::table3()
                              : CostProfile::table4();
    profile.reference_iterations = static_cast<double>(config.iterations);
    cost_model_ = CostModel::calibrated(profile, probe);
  }

  // 3. Check the backend is resolvable; it is constructed lazily on run(),
  // so dataset-only callers never pay for an unused trainer grid.
  if (!BackendRegistry::instance().has(to_string(spec_.backend))) {
    error_ = "no backend registered under '" + std::string(to_string(spec_.backend)) +
             "' (have:";
    for (const auto& name : BackendRegistry::instance().names()) {
      error_ += " " + name;
    }
    error_ += ")";
    return false;
  }
  prepared_ = true;
  return true;
}

SessionBackend* Session::ensure_backend() {
  if (!prepare()) return nullptr;
  if (backend_ == nullptr) {
    const BackendContext context{spec_, train_set(), cost_model_, master_options_,
                                 &error_, &observers_};
    backend_ = BackendRegistry::instance().create(to_string(spec_.backend), context);
    if (backend_ == nullptr && error_.empty()) {
      error_ = "backend '" + std::string(to_string(spec_.backend)) +
               "' failed to initialize";
    }
  }
  return backend_.get();
}

bool Session::hosts_observer_stream(const RunSpec& spec) {
  // In a multi-process world the whole stream is republished at rank 0;
  // other ranks publish nothing, so observers (and their setup cost) belong
  // at rank 0 only — every rank attaching a sink to the same paths would
  // interleave duplicate run_started/run_completed lines.
  if (spec.backend != Backend::kDistributedTcp) return true;
  std::string env_error;
  const auto world = tcp_world_from_env(&env_error);
  return !world.has_value() || world->rank == 0;
}

void Session::attach_builtin_observers() {
  if (builtins_attached_) return;
  if (!hosts_observer_stream(spec_)) {
    builtins_attached_ = true;
    return;
  }
  if (!spec_.observers.telemetry.empty() && telemetry_sink_ == nullptr) {
    telemetry_sink_ =
        std::make_unique<JsonlTelemetrySink>(spec_.observers.telemetry);
    if (!telemetry_sink_->ok()) {
      telemetry_sink_.reset();
      // Not latched: a retry after the caller fixes the path attaches both
      // built-ins instead of silently running unobserved.
      throw std::runtime_error("telemetry: cannot open '" +
                               spec_.observers.telemetry + "'");
    }
    observers_.subscribe(telemetry_sink_.get());
  }
  if (spec_.observers.checkpoint_every > 0 &&
      !spec_.observers.checkpoint_path.empty()) {
    checkpoint_observer_ = std::make_unique<CheckpointPolicyObserver>(
        spec_.observers.checkpoint_path, spec_.observers.checkpoint_every,
        spec_.config);
    observers_.subscribe(checkpoint_observer_.get());
  }
  builtins_attached_ = true;
}

RunResult Session::run() {
  if (!prepare()) {
    std::fprintf(stderr, "[session] %s\n", error_.c_str());
    CG_EXPECT(prepared_);  // contract: call prepare() first to handle failures
  }
  attach_builtin_observers();
  SessionBackend* backend = ensure_backend();
  if (backend == nullptr) {
    // prepare() succeeded but the factory could not build its vehicle (e.g.
    // distributed-tcp without a CELLGAN_* world): a named, catchable error.
    throw std::runtime_error(error_);
  }
  observers_.run_started(RunInfo{to_string(spec_.backend), spec_.config});
  const datastore::StatsSnapshot store_before = datastore::stats().snapshot();
  RunResult result = backend->run();
  // Publish the run's data-plane activity (counter deltas) when the store
  // plane did any work; legacy-plane runs skip the event entirely.
  const datastore::StatsSnapshot store_after = datastore::stats().snapshot();
  if (store_after != store_before) {
    DataStoreRecord record;
    record.bytes_mapped = store_after.bytes_mapped;
    record.prefetch_hits = store_after.prefetch_hits - store_before.prefetch_hits;
    record.prefetch_waits = store_after.prefetch_waits - store_before.prefetch_waits;
    record.prefetch_stalls =
        store_after.prefetch_stalls - store_before.prefetch_stalls;
    record.staged_batches = store_after.staged_batches - store_before.staged_batches;
    record.staging_depth = store_after.staging_depth;
    observers_.data_store(record);
  }
  // Harvest the final metric snapshot from whichever evaluator subscribed.
  for (TrainObserver* observer : observers_.observers()) {
    if (auto snapshot = observer->final_metrics()) {
      result.metrics = std::move(snapshot);
      break;
    }
  }
  if (spec_.observers.eval_every > 0 && !result.metrics.has_value() &&
      !result.g_fitnesses.empty()) {
    common::log_warn()
        << "--eval-every " << spec_.observers.eval_every
        << " produced no metric snapshot: either no evaluator observer was "
           "subscribed (cellgan_run, mnist_cellular and table2_metrics attach "
           "metrics::EvaluatorObserver) or no epoch matched the cadence ("
        << spec_.config.iterations << " iterations)";
  }
  RunSummary summary;
  summary.backend = to_string(spec_.backend);
  summary.wall_s = result.wall_s;
  summary.virtual_s = result.virtual_s;
  summary.train_flops = result.train_flops;
  summary.g_fitnesses = result.g_fitnesses;
  summary.d_fitnesses = result.d_fitnesses;
  summary.best_cell = result.best_cell;
  observers_.run_completed(summary);
  if (!spec_.result_json.empty()) {
    write_result_json(spec_.result_json, spec_, result);
  }
  return result;
}

const data::Dataset& Session::train_set() const {
  CG_EXPECT(prepared_);
  return external_train_ != nullptr ? *external_train_ : train_set_;
}

const data::Dataset& Session::test_set() const {
  CG_EXPECT(prepared_);
  return external_test_ != nullptr ? *external_test_ : test_set_;
}

const CostModel& Session::cost_model() const {
  CG_EXPECT(prepared_);
  return cost_model_;
}

InProcessTrainer* Session::trainer() {
  SessionBackend* backend = ensure_backend();
  return backend == nullptr ? nullptr : backend->trainer();
}

Checkpoint Session::checkpoint() {
  InProcessTrainer* live = trainer();
  CG_EXPECT(live != nullptr);
  return live->checkpoint();
}

bool Session::restore(const Checkpoint& snapshot) {
  InProcessTrainer* live = trainer();
  if (live == nullptr) return false;
  live->restore(snapshot);
  return true;
}

tensor::Tensor Session::sample_best(const RunResult& result, std::size_t count) {
  CG_EXPECT(prepared_);
  if (!result.distributed()) {
    InProcessTrainer* live = trainer();
    CG_EXPECT(live != nullptr);
    return live->cell(result.best_cell).sample_from_mixture(count);
  }
  // Reassemble the best cell's neighborhood mixture from the master's
  // collected center genomes (Section II.B: the returned generative model).
  const auto& config = spec_.config;
  Grid grid(static_cast<int>(config.grid_rows), static_cast<int>(config.grid_cols));
  const auto members = grid.neighborhood_of(result.best_cell);
  common::Rng rng(config.seed ^ 0xabcdULL);
  std::vector<nn::Sequential> generators;
  generators.reserve(members.size());
  for (const int member : members) {
    generators.push_back(
        nn::make_generator(config.arch, rng, config.conditional_classes()));
    generators.back().load_parameters(
        result.cell_results[static_cast<std::size_t>(member)].center.generator_params);
  }
  std::vector<nn::Sequential*> generator_ptrs;
  generator_ptrs.reserve(generators.size());
  for (auto& generator : generators) generator_ptrs.push_back(&generator);
  MixtureWeights weights(members.size());
  const auto& evolved =
      result.cell_results[static_cast<std::size_t>(result.best_cell)].mixture_weights;
  if (evolved.size() == members.size()) weights.set_weights(evolved);
  return sample_mixture(weights, generator_ptrs, config.arch.latent_dim, count,
                        rng, config.conditional_classes());
}

Checkpoint Session::result_checkpoint(const RunResult& result) {
  CG_EXPECT(prepared_);
  if (!result.distributed()) return checkpoint();
  return checkpoint_from_results(spec_.config, result.cell_results);
}

tensor::Tensor Session::sample_best(const RunResult& result, std::size_t count,
                                    std::uint64_t seed) {
  CheckpointMixture model(result_checkpoint(result), result.best_cell);
  return model.sample(count, seed);
}

}  // namespace cellgan::core
