// core::Session — one runtime facade over the three execution backends.
//
// A Session takes a RunSpec, resolves its dataset (synthetic stand-in or
// real MNIST IDX files, downsampled to the configured architecture),
// calibrates the virtual-time cost model when the spec asks for one,
// constructs the right backend through the BackendRegistry, runs it, and
// returns one unified RunResult that subsumes both TrainOutcome (the
// in-process trainers) and DistributedOutcome (the master/slave system).
// Examples, benchmarks and CI all go through this seam, so a new execution
// vehicle (e.g. a sockets-backed minimpi) plugs in by registering a backend
// instead of migrating every call site.
//
// The facade is a pure wrapper: Backend::kSequential is bit-identical to
// calling SequentialTrainer directly, kThreads to ParallelTrainer, and
// kDistributed to run_distributed (the backend-parity suite pins this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/distributed_trainer.hpp"
#include "core/master.hpp"
#include "core/observer.hpp"
#include "core/run_spec.hpp"
#include "core/trainer_core.hpp"
#include "data/dataset.hpp"
#include "datastore/sample_store.hpp"

namespace cellgan::core {

/// Unified result of a Session run, whichever backend executed it.
struct RunResult {
  Backend backend = Backend::kSequential;
  double wall_s = 0.0;
  double virtual_s = 0.0;  ///< serial sum / max-over-lanes / master makespan
  double train_flops = 0.0;            ///< in-process backends only (0 otherwise)
  common::Profiler profiler;           ///< per-routine totals (all ranks/lanes)
  std::vector<double> g_fitnesses;     ///< final per-cell generator losses
  std::vector<double> d_fitnesses;
  int best_cell = 0;                   ///< argmin generator fitness

  /// Final metric snapshot (IS / FID / mode coverage), harvested from the
  /// subscribed metric evaluator when one ran; nullopt otherwise.
  std::optional<MetricSnapshot> metrics;

  // Distributed detail (empty for the in-process backends).
  std::vector<protocol::SlaveResult> cell_results;  ///< indexed by cell id
  std::vector<minimpi::Runtime::RankResult> ranks;  ///< 0 = master, 1.. = slaves
  std::vector<std::string> node_names;
  std::uint64_t heartbeat_cycles = 0;

  bool distributed() const { return !ranks.empty(); }

  /// Average of a routine's simulated minutes across slaves (the per-slave
  /// view the paper's Table IV distributed column reports). 0 in-process.
  double slave_routine_virtual_min(const std::string& routine) const;
};

/// Serialize spec + result as JSON (the CI bench artifact format). Carries
/// `"schema_version"` (core::kRunJsonSchemaVersion, shared with the JSONL
/// telemetry stream) so downstream tooling can detect format changes.
std::string to_json(const RunSpec& spec, const RunResult& result);
bool write_result_json(const std::string& path, const RunSpec& spec,
                       const RunResult& result);

/// One execution vehicle behind the Session facade.
class SessionBackend {
 public:
  virtual ~SessionBackend() = default;

  virtual RunResult run() = 0;

  /// The live in-process trainer (sampling, checkpoint/restore); nullptr for
  /// backends that run outside this process' address space.
  virtual InProcessTrainer* trainer() { return nullptr; }
};

/// Everything a backend factory may need to build its vehicle.
struct BackendContext {
  const RunSpec& spec;
  const data::Dataset& train_set;
  const CostModel& cost_model;
  const Master::Options& master_options;
  /// When set, a factory that cannot build its vehicle (e.g. distributed-tcp
  /// without the CELLGAN_* environment) writes the reason here and returns
  /// nullptr; the Session surfaces it through error().
  std::string* error = nullptr;
  /// The Session's event bus; backends publish the TrainObserver stream here
  /// (may be null / empty — observation is pay-for-use).
  EventBus* observers = nullptr;
};

using BackendFactory = std::function<std::unique_ptr<SessionBackend>(const BackendContext&)>;

/// Name -> factory map the Session resolves backends through. The four
/// built-ins ("sequential", "threads", "distributed", "distributed-tcp")
/// self-register; an alternative implementation (a shared-memory transport,
/// a GPU vehicle) registers under its own name — or re-registers a built-in
/// name to swap the implementation behind every existing call site.
class BackendRegistry {
 public:
  static BackendRegistry& instance();

  /// Register (or replace) the factory for `name`.
  void register_backend(const std::string& name, BackendFactory factory);

  bool has(const std::string& name) const;

  /// nullptr when no factory is registered under `name`.
  std::unique_ptr<SessionBackend> create(const std::string& name,
                                         const BackendContext& context) const;

  std::vector<std::string> names() const;

 private:
  BackendRegistry();
  std::map<std::string, BackendFactory> factories_;
};

class Session {
 public:
  explicit Session(RunSpec spec);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const RunSpec& spec() const { return spec_; }

  /// Resolve the dataset and cost model and check the spec's backend is
  /// registered. Returns false — with a descriptive error() — when the
  /// dataset cannot be loaded (e.g. missing IDX files) or no backend is
  /// registered for the spec. Idempotent; run() calls it implicitly. The
  /// backend itself is constructed lazily on run(), so callers that only
  /// need the resolved dataset pay nothing for the trainer grid.
  bool prepare();
  const std::string& error() const { return error_; }

  /// Override the calibrated cost model (benchmarks with custom profiles).
  /// Call before prepare().
  void set_cost_model(CostModel model);
  /// Use already-resolved datasets instead of resolving spec.dataset — sweep
  /// benchmarks share one resolved dataset across many sessions instead of
  /// reloading/regenerating it per point. Both must outlive the session.
  /// Call before prepare().
  void set_datasets(const data::Dataset& train, const data::Dataset& test);
  /// Master options for the distributed backend (heartbeat tuning).
  void set_master_options(Master::Options options);

  /// The run's event bus. Subscribe external TrainObservers (e.g.
  /// metrics::EvaluatorObserver) before run(); they must outlive it. The
  /// built-in sinks the spec's ObserverSpec asks for (JSONL telemetry,
  /// checkpoint policy) are attached by run() itself.
  EventBus& observers() { return observers_; }

  /// False only for a non-rank-0 process of a distributed-tcp world (read
  /// from the CELLGAN_* environment): the stream is republished at rank 0,
  /// so that's where observers — and their setup cost — belong. Programs
  /// attaching their own observers (metric evaluators) should gate on this.
  static bool hosts_observer_stream(const RunSpec& spec);

  /// Execute the run. CG_EXPECTs that prepare() succeeded (call it first to
  /// handle failures gracefully); throws std::runtime_error carrying error()
  /// when the prepared backend cannot be constructed (e.g. distributed-tcp
  /// without a CELLGAN_* world in the environment). Writes spec.result_json
  /// when set.
  RunResult run();

  /// Resolved datasets; valid after a successful prepare().
  const data::Dataset& train_set() const;
  const data::Dataset& test_set() const;

  /// The resolved cost model; valid after a successful prepare(). Lets a
  /// benchmark calibrate once and share the model across sessions via
  /// set_cost_model.
  const CostModel& cost_model() const;

  /// The live in-process trainer; nullptr for the distributed backend.
  InProcessTrainer* trainer();

  /// Checkpoint/restore, forwarded to the in-process trainer (returns
  /// false / CG_EXPECTs on the distributed backend).
  Checkpoint checkpoint();
  bool restore(const Checkpoint& snapshot);

  /// Sample `count` images from the best cell's neighborhood mixture — the
  /// generative model the paper's system returns. Works on every backend:
  /// in-process it samples the live best cell, distributed it reconstructs
  /// the mixture from the master's collected genomes.
  tensor::Tensor sample_best(const RunResult& result, std::size_t count);

  /// Seed-addressed variant: snapshot the trained grid into a Checkpoint and
  /// sample through core::CheckpointMixture on a fresh Rng(seed) stream —
  /// the exact function a serving process (`cellgan_serve`) evaluates when
  /// it restores the same checkpoint, so serve responses are verifiable
  /// bit-for-bit against this call (per tensor-kernel kind). Works on every
  /// backend that yields cell results or a live trainer.
  tensor::Tensor sample_best(const RunResult& result, std::size_t count,
                             std::uint64_t seed);

  /// The grid snapshot sample_best(result, count, seed) samples from: the
  /// live trainer's checkpoint in-process, the master's collected results
  /// reassembled via checkpoint_from_results when distributed.
  Checkpoint result_checkpoint(const RunResult& result);

 private:
  /// Construct the backend if prepare() succeeds; nullptr on failure.
  SessionBackend* ensure_backend();
  /// Attach the spec-requested built-in observers (idempotent). Throws when
  /// the telemetry path cannot be opened.
  void attach_builtin_observers();

  RunSpec spec_;
  Master::Options master_options_;
  std::optional<CostModel> cost_override_;
  EventBus observers_;
  std::unique_ptr<JsonlTelemetrySink> telemetry_sink_;
  std::unique_ptr<CheckpointPolicyObserver> checkpoint_observer_;
  bool builtins_attached_ = false;

  bool prepared_ = false;
  std::string error_;
  data::Dataset train_set_;
  data::Dataset test_set_;
  /// mmap-backed SampleStore bound to train_set_ when the spec resolved full-
  /// resolution IDX files: keeps the binding (and the mapping) alive so store-
  /// plane feeds stage straight from the kernel page cache.
  std::shared_ptr<datastore::SampleStore> idx_store_;
  const data::Dataset* external_train_ = nullptr;
  const data::Dataset* external_test_ = nullptr;
  CostModel cost_model_;
  std::unique_ptr<SessionBackend> backend_;
};

}  // namespace cellgan::core
