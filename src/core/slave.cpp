#include "core/slave.hpp"

#include <exception>
#include <thread>

#include "common/log.hpp"
#include "core/comm_manager.hpp"
#include "core/grid.hpp"
#include "core/observer.hpp"
#include "minimpi/errors.hpp"

namespace cellgan::core {

Slave::Slave(minimpi::Comm& world, minimpi::Comm& local, minimpi::Comm& global,
             const data::Dataset& dataset, const CostModel& cost_model)
    : Slave(world, local, global, dataset, cost_model, Options{}) {}

Slave::Slave(minimpi::Comm& world, minimpi::Comm& local, minimpi::Comm& global,
             const data::Dataset& dataset, const CostModel& cost_model,
             Options options)
    : world_(world),
      local_(local),
      global_(global),
      dataset_(dataset),
      cost_model_(cost_model),
      options_(std::move(options)) {
  CG_EXPECT(world_.rank() >= 1);
}

protocol::SlaveResult Slave::run() {
  CG_EXPECT(options_.resume_epoch == 0 || options_.restore != nullptr);
  // Fig. 3: announce which node this slave landed on.
  const std::string node_name = "node-" + std::to_string(world_.rank());
  world_.send(0, protocol::kNodeName,
              std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(node_name.data()),
                  node_name.size()));

  // Receive the shared parameter configuration (WORLD broadcast) and this
  // slave's workload assignment.
  std::vector<std::uint8_t> config_bytes;
  world_.bcast(config_bytes, /*root=*/0);
  const TrainingConfig config = TrainingConfig::deserialize(config_bytes);

  const auto task_msg = world_.recv(0, protocol::kRunTask);
  const protocol::RunTask task = protocol::RunTask::deserialize(task_msg.payload);
  cell_id_ = task.cell_id;
  CG_EXPECT(static_cast<int>(cell_id_) == local_.rank());
  state_.store(protocol::SlaveState::kProcessing);

  // Assemble the execution grid from the configuration (Fig. 3 "assemble
  // execution grid") and launch the execution thread for the training.
  Grid grid(static_cast<int>(config.grid_rows), static_cast<int>(config.grid_cols));
  ExecContext context;
  context.mode = ExecMode::Distributed;
  context.grid_cells = grid.size();
  context.cost = &cost_model_;
  context.clock = &world_.clock();
  context.profiler = &world_.profiler();
  context.jitter_rng = &world_.jitter_rng();
  // Which node did this slave land on? Drawn once per run (best-effort
  // cluster model); scales every compute charge below.
  context.node_factor = cost_model_.node_factor(world_.jitter_rng());

  if (options_.restore != nullptr) {
    // Rejoin: the protocol preamble above replayed exactly as in the
    // original generation (same message sizes, same fresh-stream node_factor
    // draw), so snapping the clock and jitter stream to the checkpoint puts
    // the replayed epochs on the same virtual timeline as the undisturbed
    // run. wait_until is monotonic: the checkpoint was taken at or after
    // this point of the protocol.
    CG_EXPECT(options_.restore->epoch == options_.resume_epoch);
    world_.clock().wait_until(options_.restore->clock_s);
    world_.jitter_rng().restore_state(options_.restore->jitter_rng);
    iteration_.store(options_.restore->epoch);
  }

  common::Rng master_rng(task.seed);
  protocol::SlaveResult result;
  std::atomic<bool> training_done{false};
  std::exception_ptr exec_error;

  std::thread execution_thread([&] {
    common::set_thread_log_label("rank " + std::to_string(world_.rank()) + " exec");
    try {
      CellTrainer cell(config, grid, static_cast<int>(cell_id_), dataset_,
                       master_rng.fork(cell_id_), context);
      // Exchange transport per configuration: the paper's collective allgather
      // or the asynchronous neighbors-only publication.
      MpiCommManager allgather_manager(local_);
      AsyncMpiCommManager async_manager(local_, grid);
      CommManager& comm_manager =
          config.exchange_mode == ExchangeMode::kAsyncNeighbors
              ? static_cast<CommManager&>(async_manager)
              : static_cast<CommManager&>(allgather_manager);
      std::vector<std::vector<std::uint8_t>> gathered(grid.size());
      if (options_.restore != nullptr) {
        cell.restore_training_state(options_.restore->trainer_state);
        gathered = options_.restore->gathered;
      }
      for (std::uint32_t iter = options_.resume_epoch; iter < config.iterations;
           ++iter) {
        if (world_.peer_lost(0)) {
          throw minimpi::PeerDeathError(
              0, "slave rank " + std::to_string(world_.rank()) +
                     ": master died (" + world_.peer_loss_reason(0) + ")");
        }
        cell.step(gathered);
        iteration_.store(cell.iteration());
        {
          // Gather: exchange center genomes with the LOCAL communicator. Both
          // measured and simulated cost come from the actual messages.
          common::WallTimer gather_wall;
          const double vt_before = world_.clock().now();
          gathered = comm_manager.exchange(cell.export_genome());
          world_.profiler().add(common::routine::kGather, gather_wall.elapsed_s(),
                                world_.clock().now() - vt_before);
        }
        if (!options_.state_dir.empty()) {
          // Rolling recovery checkpoint: the state at the start of iteration
          // iter+1 (post-step trainer + this exchange's inbox). Pure wall
          // work — the virtual clocks never see it.
          RankCheckpoint snapshot;
          snapshot.epoch = iter + 1;
          snapshot.trainer_state = cell.serialize_training_state();
          snapshot.gathered = gathered;
          snapshot.clock_s = world_.clock().now();
          snapshot.jitter_rng = world_.jitter_rng().state();
          save_rank_checkpoint(options_.state_dir, world_.rank(), snapshot);
        }
        if (config.forward_records != 0) {
          // Forward this epoch's observer record to rank 0 — out-of-band, so
          // observation never perturbs the simulated clocks the parity suites
          // pin. Sent before the eventual Finished report on the same ordered
          // channel; the master drains them after all slaves finish. The flag
          // arrived with the config broadcast: no observers, no traffic.
          const auto record_bytes =
              cell.epoch_record(iter, world_.clock().now()).serialize();
          world_.send_oob(0, protocol::kEpochRecord, record_bytes);
        }
        if (options_.on_iteration) options_.on_iteration(iter);
      }
      result.cell_id = cell_id_;
      result.center = cell.center_genome();
      result.mixture_weights = cell.mixture().weights();
    } catch (...) {
      // Surfaced on the protocol thread after the join below — an escaped
      // exception here would std::terminate the process instead of giving
      // the recovery loop a chance to restart the generation.
      exec_error = std::current_exception();
    }
    training_done.store(true);
  });

  // Main thread: communication interface with the master.
  main_thread_loop(training_done);
  execution_thread.join();
  if (exec_error) std::rethrow_exception(exec_error);

  // Last iteration done: Processing -> Finished (Fig. 2).
  state_.store(protocol::SlaveState::kFinished);
  result.virtual_time_s = world_.clock().now();
  world_.send(0, protocol::kFinished, {});

  // Keep serving control messages until the master releases us, then join
  // the GLOBAL result gather.
  for (;;) {
    auto m = world_.recv(0, minimpi::kAnyTag);
    if (m.tag == protocol::kShutdown) break;
    if (m.tag == protocol::kStatusRequest) {
      protocol::StatusReply reply{state_.load(), iteration_.load(), cell_id_};
      const auto bytes = reply.serialize();
      world_.send_oob(0, protocol::kStatusReply, bytes);
    }
  }
  const auto result_bytes = result.serialize();
  global_.gather(result_bytes, /*root=*/0);
  return result;
}

void Slave::main_thread_loop(std::atomic<bool>& training_done) {
  while (!training_done.load()) {
    auto m = world_.recv_for(0, minimpi::kAnyTag, options_.poll_timeout_s);
    if (!m) continue;
    if (m->tag == protocol::kStatusRequest) {
      if (options_.mute_heartbeat != nullptr && options_.mute_heartbeat->load()) {
        continue;  // simulate an unresponsive slave
      }
      protocol::StatusReply reply{state_.load(), iteration_.load(), cell_id_};
      const auto bytes = reply.serialize();
      world_.send_oob(0, protocol::kStatusReply, bytes);
    } else {
      common::log_warn() << "slave: unexpected tag " << m->tag
                         << " while processing";
    }
  }
}

}  // namespace cellgan::core
