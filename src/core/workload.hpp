// Convenience for tests, examples and benchmarks: build a synthetic dataset
// whose image dimension matches the configured architecture (the procedural
// renderer always draws 28x28; reduced architectures get area-averaged
// images so the full code path still runs on real structured data).
#pragma once

#include "core/config.hpp"
#include "data/dataset.hpp"

namespace cellgan::core {

data::Dataset make_matched_dataset(const TrainingConfig& config, std::size_t samples,
                                   std::uint64_t seed);

}  // namespace cellgan::core
