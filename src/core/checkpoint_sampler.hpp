// A restored, ready-to-sample generative model reassembled from a grid
// Checkpoint — the serving-side counterpart of Session::sample_best.
//
// The paper's system returns "the sub-population with the highest quality"
// as its product (Section II.B): a neighborhood of generators plus evolved
// mixture weights. CheckpointMixture rebuilds exactly that from a saved
// Checkpoint (center genomes + mixture weights), so a serving process can
// load a model file and draw samples without any live trainer. Sampling is
// seed-addressed: sample(count, seed) is a pure function of (checkpoint,
// cell, count, seed), which is what makes serve-path responses verifiable
// bit-for-bit against a direct Session::sample_best on the same checkpoint.
//
// The plan()/forward() split exists for micro-batching servers: each
// request's stochastic half (generator assignment + latents) is planned on
// its own rng stream, many plans are concatenated per generator, and one
// forward pass serves them all. Per-request outputs are bit-identical to a
// solo sample() because every tensor kernel accumulates each output row in
// a partition-independent order (pinned by tests/tensor/kernel_parity).
#pragma once

#include <cstdint>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/grid.hpp"
#include "core/mixture.hpp"
#include "nn/sequential.hpp"

namespace cellgan::core {

class CheckpointMixture {
 public:
  /// Rebuild `cell`'s neighborhood mixture from `snapshot`; cell -1 picks the
  /// checkpoint's best cell (argmin center generator fitness). CG_EXPECTs a
  /// well-formed checkpoint (centers match the config's grid).
  explicit CheckpointMixture(const Checkpoint& snapshot, int cell = -1);

  /// argmin generator fitness over the checkpoint's centers.
  static int best_cell_of(const Checkpoint& snapshot);

  int cell() const { return cell_; }
  const std::vector<int>& members() const { return members_; }
  const MixtureWeights& weights() const { return weights_; }
  const TrainingConfig& config() const { return config_; }
  std::size_t generators() const { return generators_.size(); }
  std::size_t latent_dim() const { return config_.arch.latent_dim; }
  std::size_t image_dim() const { return config_.arch.image_dim; }

  /// Draw `count` samples on a fresh Rng(seed) stream. Deterministic in
  /// (checkpoint, cell, count, seed) for a fixed tensor-kernel kind. NOT
  /// thread-safe (forward passes reuse layer activation buffers) — callers
  /// serialize, e.g. on the serve batcher's single worker thread.
  tensor::Tensor sample(std::size_t count, std::uint64_t seed);

  /// The stochastic half of one request's draw, on its own Rng(seed) stream.
  /// Const and thread-safe: touches no network state.
  MixtureDraw plan(std::size_t count, std::uint64_t seed) const;

  /// Forward `latents` through member generator `g` (index into members()).
  /// NOT thread-safe; see sample().
  tensor::Tensor forward(std::size_t g, const tensor::Tensor& latents);

 private:
  TrainingConfig config_;
  int cell_ = 0;
  std::vector<int> members_;
  std::vector<nn::Sequential> generators_;  ///< one per member, center first
  MixtureWeights weights_;
};

}  // namespace cellgan::core
