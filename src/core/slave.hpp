// The slave process (Section III.B, Fig. 2 / Fig. 3 right column).
//
// Two threads, as in the paper: the *main thread* is the communication
// interface with the master (status queries, heartbeat replies, control
// messages) and the *execution thread* runs the cellular GAN training,
// exchanging genomes with neighbor slaves over the LOCAL communicator after
// every epoch. State machine: Inactive --run task--> Processing
// --last iteration--> Finished --master gathers--> exit.
#pragma once

#include <atomic>
#include <functional>

#include <string>

#include "core/cell_trainer.hpp"
#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/protocol.hpp"
#include "core/rank_state.hpp"
#include "data/dataset.hpp"
#include "minimpi/comm.hpp"

namespace cellgan::core {

class Slave {
 public:
  struct Options {
    double poll_timeout_s = 0.005;  ///< main-thread mailbox poll granularity
    /// Test hook: invoked after each training iteration on the execution
    /// thread (e.g. to inject delays for heartbeat fault tests).
    std::function<void(std::uint32_t)> on_iteration;
    /// Test hook: when set, the main thread stops answering status requests
    /// (simulates a hung slave for the unresponsive-detection path).
    std::atomic<bool>* mute_heartbeat = nullptr;
    /// First training iteration to run (the recovery negotiation's rollback
    /// epoch E); iterations E..N-1 execute. 0 trains from scratch.
    std::uint32_t resume_epoch = 0;
    /// This rank's epoch-E checkpoint when resume_epoch > 0 (owned by the
    /// caller, must outlive run()): trainer state, neighbor inbox, virtual
    /// clock and jitter-stream position are restored from it so the replay
    /// of E..N-1 is bit-identical to an undisturbed run.
    const RankCheckpoint* restore = nullptr;
    /// When non-empty, a rolling RankCheckpoint is written here after every
    /// exchange (two alternating slots per rank; see rank_state.hpp). The
    /// write is strict — rejoin depends on the file.
    std::string state_dir;
  };

  Slave(minimpi::Comm& world, minimpi::Comm& local, minimpi::Comm& global,
        const data::Dataset& dataset, const CostModel& cost_model);
  Slave(minimpi::Comm& world, minimpi::Comm& local, minimpi::Comm& global,
        const data::Dataset& dataset, const CostModel& cost_model,
        Options options);

  /// Full life cycle; returns this slave's final result (also sent to the
  /// master through the GLOBAL gather).
  protocol::SlaveResult run();

  protocol::SlaveState state() const { return state_.load(); }

 private:
  void main_thread_loop(std::atomic<bool>& training_done);

  minimpi::Comm& world_;
  minimpi::Comm& local_;
  minimpi::Comm& global_;
  const data::Dataset& dataset_;
  CostModel cost_model_;  // by value: callers may pass temporaries
  Options options_;
  std::atomic<protocol::SlaveState> state_{protocol::SlaveState::kInactive};
  std::atomic<std::uint32_t> iteration_{0};
  std::uint32_t cell_id_ = 0;
};

}  // namespace cellgan::core
