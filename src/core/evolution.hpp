// Compatibility re-export: the evolutionary operators moved to the evolve
// library. Include "evolve/evolution.hpp" directly in new code.
#pragma once

#include "evolve/evolution.hpp"

namespace cellgan::core {
using evolve::mutate_learning_rate;
using evolve::tournament_select;
}  // namespace cellgan::core
