#include "core/run_spec.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>

#include "common/expect.hpp"
#include "core/session.hpp"  // BackendRegistry: parse-time backend validation
#include "evolve/exchange.hpp"

namespace cellgan::core {

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kSequential: return "sequential";
    case Backend::kThreads: return "threads";
    case Backend::kDistributed: return "distributed";
    case Backend::kDistributedTcp: return "distributed-tcp";
  }
  return "unknown";
}

std::optional<Backend> backend_from_string(std::string_view name) {
  if (name == "sequential" || name == "seq") return Backend::kSequential;
  if (name == "threads" || name == "parallel") return Backend::kThreads;
  if (name == "distributed" || name == "dist") return Backend::kDistributed;
  if (name == "distributed-tcp" || name == "tcp") return Backend::kDistributedTcp;
  return std::nullopt;
}

std::string registered_backend_names() {
  std::string joined;
  for (const auto& name : BackendRegistry::instance().names()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

namespace {

/// Resolve a user-supplied backend name against both the enum vocabulary and
/// the live registry; on failure `error` holds a diagnostic listing every
/// registered backend (the parse-time rejection that used to happen only
/// inside Session::run).
std::optional<Backend> resolve_backend_name(const std::string& name,
                                            std::string* error) {
  const auto backend = backend_from_string(name);
  if (!backend) {
    if (BackendRegistry::instance().has(name)) {
      // Registered under a name outside the RunSpec vocabulary (custom
      // vehicles normally re-register a built-in name to swap it everywhere).
      *error = "backend '" + name + "' is registered with the Session but is "
               "not a RunSpec backend; re-register it as one of: sequential, "
               "threads, distributed, distributed-tcp";
    } else {
      *error = "unknown backend '" + name + "' (registered: " +
               registered_backend_names() + ")";
    }
    return std::nullopt;
  }
  if (!BackendRegistry::instance().has(to_string(*backend))) {
    *error = "backend '" + name + "' is not registered in this build (registered: " +
             registered_backend_names() + ")";
    return std::nullopt;
  }
  return backend;
}

}  // namespace

const char* to_string(CostProfileKind kind) {
  switch (kind) {
    case CostProfileKind::kNone: return "none";
    case CostProfileKind::kTable3: return "table3";
    case CostProfileKind::kTable4: return "table4";
  }
  return "unknown";
}

std::optional<CostProfileKind> cost_profile_from_string(std::string_view name) {
  if (name == "none") return CostProfileKind::kNone;
  if (name == "table3") return CostProfileKind::kTable3;
  if (name == "table4") return CostProfileKind::kTable4;
  return std::nullopt;
}

std::optional<LossMode> loss_mode_from_string(std::string_view name) {
  if (name == "heuristic") return LossMode::kHeuristic;
  if (name == "minimax") return LossMode::kMinimax;
  if (name == "lsq" || name == "least-squares") return LossMode::kLeastSquares;
  if (name == "mustangs") return LossMode::kMustangs;
  if (name == "wasserstein" || name == "wgan") return LossMode::kWasserstein;
  return std::nullopt;
}

std::optional<ExchangeMode> exchange_mode_from_string(std::string_view name) {
  if (name == "allgather") return ExchangeMode::kAllgather;
  if (name == "async-neighbors" || name == "async") {
    return ExchangeMode::kAsyncNeighbors;
  }
  return std::nullopt;
}

std::string registered_exchange_policy_names() {
  std::string joined;
  for (const auto& name : evolve::exchange_policy_names()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

namespace {

/// The async transport only moves neighbor genomes, so policies that need a
/// non-neighbor counterpart (ltfb tournaments, gap rotation) cannot run on
/// it. Checked at parse time AND by Session::prepare (specs can arrive via
/// from_text without a CLI in front).
bool validate_exchange_combo(const TrainingConfig& config, std::string* error) {
  const auto policy = evolve::resolve_exchange_policy(config.exchange_policy);
  if (policy != evolve::ExchangePolicyKind::kCellular &&
      config.exchange_mode == ExchangeMode::kAsyncNeighbors) {
    if (error != nullptr) {
      *error = std::string("exchange policy '") + evolve::to_string(policy) +
               "' needs the allgather transport (async-neighbors only moves "
               "neighbor genomes)";
    }
    return false;
  }
  return true;
}

}  // namespace

bool validate_exchange(const TrainingConfig& config, std::string* error) {
  return validate_exchange_combo(config, error);
}

const char* to_string(TensorKernel kernel) {
  switch (kernel) {
    case TensorKernel::kAuto: return "auto";
    case TensorKernel::kScalar: return "scalar";
    case TensorKernel::kSimd: return "simd";
  }
  return "unknown";
}

std::optional<TensorKernel> tensor_kernel_from_string(std::string_view name) {
  if (name == "auto") return TensorKernel::kAuto;
  if (name == "scalar") return TensorKernel::kScalar;
  if (name == "simd") return TensorKernel::kSimd;
  return std::nullopt;
}

// --- DatasetSpec ------------------------------------------------------------

std::optional<DatasetSpec> DatasetSpec::parse(const std::string& text,
                                              std::string* error) {
  return parse(text, DatasetSpec{}, error);
}

std::optional<DatasetSpec> DatasetSpec::parse(const std::string& text,
                                              const DatasetSpec& base,
                                              std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<DatasetSpec> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  DatasetSpec spec = base;
  if (text.rfind("idx:", 0) == 0) {
    spec.kind = Kind::kIdx;
    spec.idx_dir = text.substr(4);
    if (spec.idx_dir.empty()) return fail("idx: dataset needs a directory");
    return spec;
  }
  spec.kind = Kind::kSynthetic;
  spec.idx_dir.clear();
  if (text == "synthetic") return spec;
  if (text.rfind("synthetic:", 0) == 0) {
    // strtoull silently wraps negative or overflowing input, so digit runs
    // are parsed through the checked helper.
    const auto parse_unsigned = [](const std::string& digits, std::uint64_t& out) {
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        return false;
      }
      errno = 0;
      out = std::strtoull(digits.c_str(), nullptr, 10);
      return errno != ERANGE;
    };
    std::string rest = text.substr(10);
    std::string count = rest;
    const auto at = rest.find('@');
    if (at != std::string::npos) {
      count = rest.substr(0, at);
      const std::string seed_text = rest.substr(at + 1);
      if (!parse_unsigned(seed_text, spec.seed)) {
        return fail("bad dataset seed: '" + seed_text + "'");
      }
    }
    std::uint64_t samples = 0;
    if (!parse_unsigned(count, samples) || samples == 0) {
      return fail("bad synthetic sample count: '" + count + "'");
    }
    spec.samples = static_cast<std::size_t>(samples);
    return spec;
  }
  return fail("unknown dataset '" + text +
              "' (want synthetic[:N[@SEED]] or idx:DIR)");
}

std::string DatasetSpec::to_text() const {
  if (kind == Kind::kIdx) return "idx:" + idx_dir;
  return "synthetic:" + std::to_string(samples) + "@" + std::to_string(seed);
}

// --- command-line flags -----------------------------------------------------

void RunSpec::add_flags(common::CliParser& cli, const RunSpec& defaults) {
  cli.add_flag("spec", "", "load a RunSpec JSON file first; explicit flags override");
  cli.add_flag("backend", to_string(defaults.backend),
               "execution backend: sequential | threads | distributed |"
               " distributed-tcp");
  cli.add_flag("threads", std::to_string(defaults.threads),
               "worker lanes for --backend threads");
  cli.add_flag("grid", std::to_string(defaults.config.grid_rows),
               "grid side (grid x grid cells)");
  cli.add_flag("iterations", std::to_string(defaults.config.iterations),
               "training epochs");
  cli.add_flag("dataset", defaults.dataset.to_text(),
               "training data: synthetic[:N[@SEED]] | idx:DIR");
  cli.add_flag("samples", std::to_string(defaults.dataset.samples),
               "shorthand for the synthetic dataset's sample count");
  cli.add_flag("seed", std::to_string(defaults.config.seed), "global training seed");
  cli.add_flag("loss", to_string(defaults.config.loss_mode),
               "objective: heuristic | minimax | lsq | mustangs | wasserstein");
  cli.add_flag("exchange", evolve::to_string(defaults.config.exchange_policy),
               "population-exchange policy: auto (CELLGAN_EXCHANGE/cellular) |"
               " cellular | ltfb | gap");
  cli.add_flag("exchange-transport", to_string(defaults.config.exchange_mode),
               "genome transport: allgather | async-neighbors (cellular only)");
  cli.add_flag("exchange-every", std::to_string(defaults.config.exchange_every),
               "ltfb tournament / gap rotation cadence in epochs");
  cli.add_flag("conditional", defaults.config.conditional != 0 ? "true" : "false",
               "class-conditional training: one-hot labels ride the latent and"
               " image planes");
  char weight_clip_default[32];
  std::snprintf(weight_clip_default, sizeof(weight_clip_default), "%g",
                defaults.config.weight_clip);
  cli.add_flag("weight-clip", weight_clip_default,
               "critic weight-clipping bound for --loss wasserstein");
  cli.add_flag("batch-size", std::to_string(defaults.config.batch_size),
               "training batch size");
  cli.add_flag("batches-per-iteration",
               std::to_string(defaults.config.batches_per_iteration),
               "gradient batches per epoch per cell");
  char dieting_default[32];
  std::snprintf(dieting_default, sizeof(dieting_default), "%g",
                defaults.config.data_dieting_fraction);
  cli.add_flag("dieting", dieting_default,
               "data-dieting fraction: each cell trains on this share of the data");
  cli.add_flag("paper-arch",
               defaults.config.arch == nn::GanArch::paper() ? "true" : "false",
               "use the paper's full-size MLPs (Table I); upgrade-only");
  cli.add_flag("cost-profile", to_string(defaults.cost_profile),
               "virtual-time calibration: none | table3 | table4");
  cli.add_flag("tensor-kernel", to_string(defaults.tensor_kernel),
               "tensor microkernels: auto (env/default) | scalar (bit-exact"
               " reference) | simd (packed vectorized)");
  cli.add_flag("data-plane", datastore::to_string(defaults.config.data_plane),
               "batch source: auto (CELLGAN_DATA_PLANE/legacy) | legacy"
               " (per-trainer DataLoader) | store (shared prefetching"
               " SampleStore); bit-identical trajectories");
  cli.add_flag("eval-every", std::to_string(defaults.observers.eval_every),
               "compute IS/FID/mode coverage every N epochs (0 = off; needs a"
               " metric evaluator, attached by cellgan_run / table2_metrics)");
  cli.add_flag("eval-samples", std::to_string(defaults.observers.eval_samples),
               "samples per generator / mixture in each metric evaluation");
  cli.add_flag("telemetry", defaults.observers.telemetry,
               "append a JSONL training-event stream to this file");
  cli.add_flag("checkpoint-every",
               std::to_string(defaults.observers.checkpoint_every),
               "write a rolling checkpoint every N epochs (0 = off)");
  cli.add_flag("checkpoint-path", defaults.observers.checkpoint_path,
               "rolling checkpoint file for --checkpoint-every");
  cli.add_flag("result-json", defaults.result_json,
               "write the unified RunResult JSON to this file");
}

std::optional<RunSpec> RunSpec::from_cli(const common::CliParser& cli,
                                         const RunSpec& defaults) {
  // Integer flags funnel through this guard before any unsigned cast, so a
  // negative value is a diagnostic instead of a 2^64 wrap-around.
  bool flags_ok = true;
  const auto int_flag = [&](const char* name, std::int64_t min) -> std::int64_t {
    const std::int64_t value = cli.get_int(name);
    if (value < min) {
      std::fprintf(stderr, "--%s must be >= %lld\n", name,
                   static_cast<long long>(min));
      flags_ok = false;
    }
    return value;
  };
  RunSpec spec = defaults;
  if (cli.was_set("spec")) {
    std::string error;
    auto loaded = RunSpec::load(cli.get("spec"), &error);
    if (!loaded) {
      std::fprintf(stderr, "--spec %s: %s\n", cli.get("spec").c_str(), error.c_str());
      return std::nullopt;
    }
    spec = *loaded;
  }
  if (cli.was_set("backend")) {
    std::string backend_error;
    const auto backend = resolve_backend_name(cli.get("backend"), &backend_error);
    if (!backend) {
      std::fprintf(stderr, "--backend: %s\n", backend_error.c_str());
      return std::nullopt;
    }
    spec.backend = *backend;
  }
  if (cli.was_set("threads")) {
    spec.threads = static_cast<std::size_t>(int_flag("threads", 1));
  }
  if (cli.was_set("grid")) {
    spec.config.grid_rows = spec.config.grid_cols =
        static_cast<std::uint32_t>(int_flag("grid", 1));
  }
  if (cli.was_set("iterations")) {
    spec.config.iterations = static_cast<std::uint32_t>(int_flag("iterations", 0));
  }
  if (cli.was_set("dataset")) {
    std::string error;
    const auto dataset = DatasetSpec::parse(cli.get("dataset"), spec.dataset, &error);
    if (!dataset) {
      std::fprintf(stderr, "--dataset: %s\n", error.c_str());
      return std::nullopt;
    }
    spec.dataset = *dataset;
  }
  if (cli.was_set("samples")) {
    spec.dataset.samples = static_cast<std::size_t>(int_flag("samples", 1));
  }
  if (cli.was_set("seed")) {
    spec.config.seed = static_cast<std::uint64_t>(int_flag("seed", 0));
  }
  if (cli.was_set("loss")) {
    const auto loss = loss_mode_from_string(cli.get("loss"));
    if (!loss) {
      std::fprintf(stderr, "unknown loss '%s' (want heuristic | minimax | lsq |"
                   " mustangs | wasserstein)\n", cli.get("loss").c_str());
      return std::nullopt;
    }
    spec.config.loss_mode = *loss;
  }
  if (cli.was_set("exchange")) {
    const auto policy = evolve::exchange_policy_from_string(cli.get("exchange"));
    if (!policy) {
      std::fprintf(stderr, "unknown exchange policy '%s' (registered: %s)\n",
                   cli.get("exchange").c_str(),
                   registered_exchange_policy_names().c_str());
      return std::nullopt;
    }
    spec.config.exchange_policy = *policy;
  }
  if (cli.was_set("exchange-transport")) {
    const auto exchange = exchange_mode_from_string(cli.get("exchange-transport"));
    if (!exchange) {
      std::fprintf(stderr, "unknown exchange transport '%s' (want allgather |"
                   " async-neighbors)\n", cli.get("exchange-transport").c_str());
      return std::nullopt;
    }
    spec.config.exchange_mode = *exchange;
  }
  if (cli.was_set("exchange-every")) {
    spec.config.exchange_every =
        static_cast<std::uint32_t>(int_flag("exchange-every", 1));
  }
  if (cli.was_set("conditional")) {
    spec.config.conditional = cli.get_bool("conditional") ? 1 : 0;
  }
  if (cli.was_set("weight-clip")) {
    const double clip = cli.get_double("weight-clip");
    if (!(clip > 0.0)) {  // negated so NaN is rejected
      std::fprintf(stderr, "--weight-clip must be > 0\n");
      flags_ok = false;
    }
    spec.config.weight_clip = clip;
  }
  {
    std::string exchange_error;
    if (!validate_exchange(spec.config, &exchange_error)) {
      std::fprintf(stderr, "%s\n", exchange_error.c_str());
      flags_ok = false;
    }
  }
  if (cli.was_set("batch-size")) {
    spec.config.batch_size = static_cast<std::uint32_t>(int_flag("batch-size", 1));
  }
  if (cli.was_set("batches-per-iteration")) {
    spec.config.batches_per_iteration =
        static_cast<std::uint32_t>(int_flag("batches-per-iteration", 1));
  }
  if (cli.was_set("dieting")) {
    const double fraction = cli.get_double("dieting");
    if (!(fraction > 0.0 && fraction <= 1.0)) {  // negated so NaN is rejected
      std::fprintf(stderr, "--dieting must be in (0, 1]\n");
      flags_ok = false;
    }
    spec.config.data_dieting_fraction = fraction;
  }
  // Upgrade-only: programs whose defaults already use the paper arch (with
  // their own batch size) are untouched, and an explicit --batch-size wins.
  if (cli.was_set("paper-arch") && cli.get_bool("paper-arch") &&
      spec.config.arch != nn::GanArch::paper()) {
    spec.config.arch = nn::GanArch::paper();
    if (!cli.was_set("batch-size")) spec.config.batch_size = 100;
  }
  if (cli.was_set("cost-profile")) {
    const auto kind = cost_profile_from_string(cli.get("cost-profile"));
    if (!kind) {
      std::fprintf(stderr, "unknown cost profile '%s' (want none | table3 |"
                   " table4)\n", cli.get("cost-profile").c_str());
      return std::nullopt;
    }
    spec.cost_profile = *kind;
  }
  if (cli.was_set("tensor-kernel")) {
    const auto kernel = tensor_kernel_from_string(cli.get("tensor-kernel"));
    if (!kernel) {
      std::fprintf(stderr, "unknown tensor kernel '%s' (want auto | scalar |"
                   " simd)\n", cli.get("tensor-kernel").c_str());
      return std::nullopt;
    }
    spec.tensor_kernel = *kernel;
  }
  if (cli.was_set("data-plane")) {
    const auto plane = datastore::data_plane_from_string(cli.get("data-plane"));
    if (!plane) {
      std::fprintf(stderr, "unknown data plane '%s' (want auto | legacy |"
                   " store)\n", cli.get("data-plane").c_str());
      return std::nullopt;
    }
    spec.config.data_plane = *plane;
  }
  if (cli.was_set("eval-every")) {
    spec.observers.eval_every = static_cast<std::uint32_t>(int_flag("eval-every", 0));
  }
  if (cli.was_set("eval-samples")) {
    // FID fits a Gaussian per side; fewer than 2 samples has no covariance.
    spec.observers.eval_samples =
        static_cast<std::size_t>(int_flag("eval-samples", 2));
  }
  if (cli.was_set("telemetry")) spec.observers.telemetry = cli.get("telemetry");
  if (cli.was_set("checkpoint-every")) {
    spec.observers.checkpoint_every =
        static_cast<std::uint32_t>(int_flag("checkpoint-every", 0));
  }
  if (cli.was_set("checkpoint-path")) {
    spec.observers.checkpoint_path = cli.get("checkpoint-path");
  }
  if (spec.observers.checkpoint_every > 0 && spec.observers.checkpoint_path.empty()) {
    std::fprintf(stderr, "--checkpoint-every needs --checkpoint-path\n");
    flags_ok = false;
  }
  if (cli.was_set("result-json")) spec.result_json = cli.get("result-json");
  if (!flags_ok) return std::nullopt;
  return spec;
}

std::optional<RunSpec> RunSpec::from_args(int argc, const char* const* argv,
                                          const std::string& description,
                                          const RunSpec& defaults) {
  common::CliParser cli(description);
  add_flags(cli, defaults);
  if (!cli.parse(argc, argv)) return std::nullopt;
  return from_cli(cli, defaults);
}

// --- JSON text form ---------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Minimal parser for the subset RunSpec emits: one flat object of
/// string/number values plus one nested "config" object.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }
  const std::string& error() const { return error_; }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_space();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool at_end() {
    skip_space();
    return pos_ >= text_.size();
  }

  bool read_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out += c;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool read_number(std::string& out) {
    skip_space();
    out.clear();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      out += text_[pos_++];
    }
    if (out.empty()) return fail("expected a number");
    return true;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool parse_u64(const std::string& digits, std::uint64_t& out) {
  // strtoull wraps negative input; only plain digit runs are unsigned here.
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  errno = 0;
  out = std::strtoull(digits.c_str(), nullptr, 10);
  return errno != ERANGE;
}

bool parse_u32(const std::string& digits, std::uint32_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(digits, value) ||
      value > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  out = static_cast<std::uint32_t>(value);
  return true;
}

bool parse_f64(const std::string& digits, double& out) {
  char* end = nullptr;
  out = std::strtod(digits.c_str(), &end);
  return end != digits.c_str() && *end == '\0';
}

bool apply_config_key(JsonReader& reader, const std::string& key,
                      TrainingConfig& config) {
  std::string value;
  if (key == "loss_mode" || key == "exchange_mode") {
    if (!reader.read_string(value)) return false;
    if (key == "loss_mode") {
      const auto mode = loss_mode_from_string(value);
      if (!mode) return reader.fail("unknown loss_mode '" + value + "'");
      config.loss_mode = *mode;
    } else {
      const auto mode = exchange_mode_from_string(value);
      if (!mode) return reader.fail("unknown exchange_mode '" + value + "'");
      config.exchange_mode = *mode;
    }
    return true;
  }
  if (key == "data_plane") {
    if (!reader.read_string(value)) return false;
    const auto plane = datastore::data_plane_from_string(value);
    if (!plane) return reader.fail("unknown data_plane '" + value + "'");
    config.data_plane = *plane;
    return true;
  }
  if (key == "exchange_policy") {
    if (!reader.read_string(value)) return false;
    const auto policy = evolve::exchange_policy_from_string(value);
    if (!policy) {
      return reader.fail("unknown exchange_policy '" + value + "' (registered: " +
                         registered_exchange_policy_names() + ")");
    }
    config.exchange_policy = *policy;
    return true;
  }
  if (!reader.read_number(value)) return false;
  std::size_t* size_field = key == "latent_dim"      ? &config.arch.latent_dim
                            : key == "hidden_dim"    ? &config.arch.hidden_dim
                            : key == "hidden_layers" ? &config.arch.hidden_layers
                            : key == "image_dim"     ? &config.arch.image_dim
                                                     : nullptr;
  if (size_field != nullptr) {
    std::uint64_t parsed = 0;
    if (!parse_u64(value, parsed)) return reader.fail("bad " + key);
    *size_field = static_cast<std::size_t>(parsed);
    return true;
  }
  std::uint32_t* u32_field =
      key == "iterations"                  ? &config.iterations
      : key == "population_per_cell"       ? &config.population_per_cell
      : key == "tournament_size"           ? &config.tournament_size
      : key == "grid_rows"                 ? &config.grid_rows
      : key == "grid_cols"                 ? &config.grid_cols
      : key == "batch_size"                ? &config.batch_size
      : key == "discriminator_skip_steps"  ? &config.discriminator_skip_steps
      : key == "batches_per_iteration"     ? &config.batches_per_iteration
      : key == "fitness_eval_samples"      ? &config.fitness_eval_samples
      : key == "genome_record_every"       ? &config.genome_record_every
      : key == "genome_record_every_b"     ? &config.genome_record_every_b
      : key == "exchange_every"            ? &config.exchange_every
      : key == "conditional"               ? &config.conditional
                                           : nullptr;
  if (u32_field != nullptr) {
    if (!parse_u32(value, *u32_field)) return reader.fail("bad " + key);
    return true;
  }
  double* f64_field =
      key == "mixture_mutation_scale"   ? &config.mixture_mutation_scale
      : key == "initial_learning_rate"  ? &config.initial_learning_rate
      : key == "lr_mutation_sigma"      ? &config.lr_mutation_sigma
      : key == "lr_mutation_probability" ? &config.lr_mutation_probability
      : key == "data_dieting_fraction"  ? &config.data_dieting_fraction
      : key == "weight_clip"            ? &config.weight_clip
                                        : nullptr;
  if (f64_field != nullptr) {
    if (!parse_f64(value, *f64_field)) return reader.fail("bad " + key);
    return true;
  }
  if (key == "seed") {
    if (!parse_u64(value, config.seed)) return reader.fail("bad seed");
    return true;
  }
  return reader.fail("unknown config key '" + key + "'");
}

bool parse_object(JsonReader& reader,
                  const std::function<bool(JsonReader&, const std::string&)>& on_key) {
  if (!reader.consume('{')) return false;
  if (reader.peek('}')) return reader.consume('}');
  for (;;) {
    std::string key;
    if (!reader.read_string(key)) return false;
    if (!reader.consume(':')) return false;
    if (!on_key(reader, key)) return false;
    if (reader.peek(',')) {
      if (!reader.consume(',')) return false;
      continue;
    }
    return reader.consume('}');
  }
}

}  // namespace

std::string RunSpec::to_text() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"backend\": \"" << to_string(backend) << "\",\n";
  out << "  \"threads\": " << threads << ",\n";
  std::string dataset_text;
  append_escaped(dataset_text, dataset.to_text());
  out << "  \"dataset\": " << dataset_text << ",\n";
  out << "  \"cost_profile\": \"" << to_string(cost_profile) << "\",\n";
  out << "  \"tensor_kernel\": \"" << to_string(tensor_kernel) << "\",\n";
  out << "  \"observers\": {\n";
  out << "    \"eval_every\": " << observers.eval_every << ",\n";
  out << "    \"eval_samples\": " << observers.eval_samples << ",\n";
  std::string telemetry_text;
  append_escaped(telemetry_text, observers.telemetry);
  out << "    \"telemetry\": " << telemetry_text << ",\n";
  out << "    \"checkpoint_every\": " << observers.checkpoint_every << ",\n";
  std::string checkpoint_text;
  append_escaped(checkpoint_text, observers.checkpoint_path);
  out << "    \"checkpoint_path\": " << checkpoint_text << "\n";
  out << "  },\n";
  std::string result_text;
  append_escaped(result_text, result_json);
  out << "  \"result_json\": " << result_text << ",\n";
  out << "  \"config\": {\n";
  out << "    \"latent_dim\": " << config.arch.latent_dim << ",\n";
  out << "    \"hidden_dim\": " << config.arch.hidden_dim << ",\n";
  out << "    \"hidden_layers\": " << config.arch.hidden_layers << ",\n";
  out << "    \"image_dim\": " << config.arch.image_dim << ",\n";
  out << "    \"iterations\": " << config.iterations << ",\n";
  out << "    \"population_per_cell\": " << config.population_per_cell << ",\n";
  out << "    \"tournament_size\": " << config.tournament_size << ",\n";
  out << "    \"grid_rows\": " << config.grid_rows << ",\n";
  out << "    \"grid_cols\": " << config.grid_cols << ",\n";
  out << "    \"mixture_mutation_scale\": " << format_double(config.mixture_mutation_scale)
      << ",\n";
  out << "    \"initial_learning_rate\": " << format_double(config.initial_learning_rate)
      << ",\n";
  out << "    \"lr_mutation_sigma\": " << format_double(config.lr_mutation_sigma)
      << ",\n";
  out << "    \"lr_mutation_probability\": "
      << format_double(config.lr_mutation_probability) << ",\n";
  out << "    \"batch_size\": " << config.batch_size << ",\n";
  out << "    \"discriminator_skip_steps\": " << config.discriminator_skip_steps
      << ",\n";
  out << "    \"batches_per_iteration\": " << config.batches_per_iteration << ",\n";
  out << "    \"fitness_eval_samples\": " << config.fitness_eval_samples << ",\n";
  out << "    \"loss_mode\": \"" << core::to_string(config.loss_mode) << "\",\n";
  out << "    \"exchange_mode\": \"" << core::to_string(config.exchange_mode)
      << "\",\n";
  out << "    \"exchange_policy\": \"" << evolve::to_string(config.exchange_policy)
      << "\",\n";
  out << "    \"exchange_every\": " << config.exchange_every << ",\n";
  out << "    \"conditional\": " << config.conditional << ",\n";
  out << "    \"weight_clip\": " << format_double(config.weight_clip) << ",\n";
  out << "    \"data_dieting_fraction\": "
      << format_double(config.data_dieting_fraction) << ",\n";
  out << "    \"genome_record_every\": " << config.genome_record_every << ",\n";
  out << "    \"genome_record_every_b\": " << config.genome_record_every_b
      << ",\n";
  out << "    \"data_plane\": \"" << datastore::to_string(config.data_plane)
      << "\",\n";
  out << "    \"seed\": " << config.seed << "\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

std::optional<RunSpec> RunSpec::from_text(const std::string& text,
                                          std::string* error) {
  RunSpec spec;
  JsonReader reader(text);
  const auto on_top_key = [&](JsonReader& r, const std::string& key) -> bool {
    std::string value;
    if (key == "backend") {
      if (!r.read_string(value)) return false;
      std::string backend_error;
      const auto backend = resolve_backend_name(value, &backend_error);
      if (!backend) return r.fail(backend_error);
      spec.backend = *backend;
      return true;
    }
    if (key == "threads") {
      if (!r.read_number(value)) return false;
      std::uint64_t threads = 0;
      if (!parse_u64(value, threads) || threads == 0) return r.fail("bad threads");
      spec.threads = static_cast<std::size_t>(threads);
      return true;
    }
    if (key == "dataset") {
      if (!r.read_string(value)) return false;
      std::string dataset_error;
      const auto dataset = DatasetSpec::parse(value, &dataset_error);
      if (!dataset) return r.fail(dataset_error);
      spec.dataset = *dataset;
      return true;
    }
    if (key == "cost_profile") {
      if (!r.read_string(value)) return false;
      const auto kind = cost_profile_from_string(value);
      if (!kind) return r.fail("unknown cost_profile '" + value + "'");
      spec.cost_profile = *kind;
      return true;
    }
    if (key == "tensor_kernel") {
      if (!r.read_string(value)) return false;
      const auto kernel = tensor_kernel_from_string(value);
      if (!kernel) return r.fail("unknown tensor_kernel '" + value + "'");
      spec.tensor_kernel = *kernel;
      return true;
    }
    if (key == "result_json") return r.read_string(spec.result_json);
    if (key == "observers") {
      return parse_object(r, [&](JsonReader& obs, const std::string& obs_key) {
        std::string obs_value;
        if (obs_key == "telemetry") return obs.read_string(spec.observers.telemetry);
        if (obs_key == "checkpoint_path") {
          return obs.read_string(spec.observers.checkpoint_path);
        }
        if (!obs.read_number(obs_value)) return false;
        if (obs_key == "eval_every") {
          return parse_u32(obs_value, spec.observers.eval_every) ||
                 obs.fail("bad eval_every");
        }
        if (obs_key == "eval_samples") {
          std::uint64_t samples = 0;
          if (!parse_u64(obs_value, samples)) return obs.fail("bad eval_samples");
          spec.observers.eval_samples = static_cast<std::size_t>(samples);
          return true;
        }
        if (obs_key == "checkpoint_every") {
          return parse_u32(obs_value, spec.observers.checkpoint_every) ||
                 obs.fail("bad checkpoint_every");
        }
        return obs.fail("unknown observers key '" + obs_key + "'");
      });
    }
    if (key == "config") {
      return parse_object(r, [&](JsonReader& cr, const std::string& config_key) {
        return apply_config_key(cr, config_key, spec.config);
      });
    }
    return r.fail("unknown key '" + key + "'");
  };
  if (!parse_object(reader, on_top_key) || !reader.at_end()) {
    if (error != nullptr) {
      *error = reader.error().empty() ? "malformed RunSpec text" : reader.error();
    }
    return std::nullopt;
  }
  return spec;
}

std::optional<RunSpec> RunSpec::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return from_text(text.str(), error);
}

bool RunSpec::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << to_text();
  return out.good();
}

}  // namespace cellgan::core
