// Compatibility re-export: Grid moved to the evolve library (the population
// exchange subsystem owns grid topology). Include "evolve/grid.hpp" directly
// in new code.
#pragma once

#include "evolve/grid.hpp"

namespace cellgan::core {
using evolve::Grid;
using evolve::GridCoord;
using evolve::GridTopologyError;
}  // namespace cellgan::core
