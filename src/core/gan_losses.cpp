#include "core/gan_losses.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "tensor/flops.hpp"
#include "tensor/ops.hpp"

namespace cellgan::core {

const char* to_string(GanLossKind kind) {
  switch (kind) {
    case GanLossKind::kHeuristic: return "heuristic";
    case GanLossKind::kMinimax: return "minimax";
    case GanLossKind::kLeastSquares: return "least-squares";
    case GanLossKind::kWasserstein: return "wasserstein";
  }
  return "unknown";
}

namespace {

float stable_sigmoid(float z) {
  return z >= 0.0f ? 1.0f / (1.0f + std::exp(-z)) : std::exp(z) / (1.0f + std::exp(z));
}

}  // namespace

std::pair<float, tensor::Tensor> generator_loss_grad(
    GanLossKind kind, const tensor::Tensor& fake_logits) {
  const std::size_t n = fake_logits.size();
  CG_EXPECT(n > 0);
  tensor::Tensor grad(fake_logits.rows(), fake_logits.cols());
  tensor::count_flops(10ULL * n);
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  switch (kind) {
    case GanLossKind::kHeuristic: {
      // L = -log(sigma(z)); dL/dz = sigma(z) - 1.
      for (std::size_t i = 0; i < n; ++i) {
        const float z = fake_logits.data()[i];
        loss += std::max(z, 0.0f) - z + std::log1p(std::exp(-std::abs(z)));
        grad.data()[i] = (stable_sigmoid(z) - 1.0f) * inv_n;
      }
      break;
    }
    case GanLossKind::kMinimax: {
      // L = log(1 - sigma(z)) = -softplus(z); dL/dz = -sigma(z).
      // (Minimizing this loss maximizes D's fake-side error, the original
      // saturating objective; its gradient vanishes where D is confident.)
      for (std::size_t i = 0; i < n; ++i) {
        const float z = fake_logits.data()[i];
        loss += -(std::max(z, 0.0f) + std::log1p(std::exp(-std::abs(z))));
        grad.data()[i] = -stable_sigmoid(z) * inv_n;
      }
      break;
    }
    case GanLossKind::kLeastSquares: {
      // L = (z - 1)^2 ; dL/dz = 2 (z - 1).
      for (std::size_t i = 0; i < n; ++i) {
        const float z = fake_logits.data()[i];
        loss += (z - 1.0f) * (z - 1.0f);
        grad.data()[i] = 2.0f * (z - 1.0f) * inv_n;
      }
      break;
    }
    case GanLossKind::kWasserstein: {
      // Critic scores, not probabilities: G maximizes E[D(G(z))], so
      // L = -z ; dL/dz = -1.
      for (std::size_t i = 0; i < n; ++i) {
        loss += -fake_logits.data()[i];
        grad.data()[i] = -inv_n;
      }
      break;
    }
  }
  return {static_cast<float>(loss) * inv_n, std::move(grad)};
}

std::pair<float, tensor::Tensor> discriminator_real_loss_grad(
    GanLossKind kind, const tensor::Tensor& real_logits) {
  if (kind == GanLossKind::kWasserstein) {
    // Critic maximizes E[D(x)] - E[D(G(z))]: real term L = -z ; dL/dz = -1.
    const std::size_t n = real_logits.size();
    CG_EXPECT(n > 0);
    tensor::Tensor grad(real_logits.rows(), real_logits.cols());
    tensor::count_flops(2ULL * n);
    double loss = 0.0;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      loss += -real_logits.data()[i];
      grad.data()[i] = -inv_n;
    }
    return {static_cast<float>(loss) * inv_n, std::move(grad)};
  }
  if (kind == GanLossKind::kLeastSquares) {
    // L = (z - 1)^2 ; dL/dz = 2 (z - 1).
    const std::size_t n = real_logits.size();
    CG_EXPECT(n > 0);
    tensor::Tensor grad(real_logits.rows(), real_logits.cols());
    tensor::count_flops(6ULL * n);
    double loss = 0.0;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const float z = real_logits.data()[i];
      loss += (z - 1.0f) * (z - 1.0f);
      grad.data()[i] = 2.0f * (z - 1.0f) * inv_n;
    }
    return {static_cast<float>(loss) * inv_n, std::move(grad)};
  }
  // Both BCE-family generator objectives share the standard BCE critic.
  return tensor::bce_with_logits(
      real_logits,
      tensor::Tensor::full(real_logits.rows(), real_logits.cols(), 1.0f));
}

std::pair<float, tensor::Tensor> discriminator_fake_loss_grad(
    GanLossKind kind, const tensor::Tensor& fake_logits) {
  if (kind == GanLossKind::kWasserstein) {
    // Fake term of the critic objective: L = +z ; dL/dz = +1.
    const std::size_t n = fake_logits.size();
    CG_EXPECT(n > 0);
    tensor::Tensor grad(fake_logits.rows(), fake_logits.cols());
    tensor::count_flops(2ULL * n);
    double loss = 0.0;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      loss += fake_logits.data()[i];
      grad.data()[i] = inv_n;
    }
    return {static_cast<float>(loss) * inv_n, std::move(grad)};
  }
  if (kind == GanLossKind::kLeastSquares) {
    // L = z^2 ; dL/dz = 2 z.
    const std::size_t n = fake_logits.size();
    CG_EXPECT(n > 0);
    tensor::Tensor grad(fake_logits.rows(), fake_logits.cols());
    tensor::count_flops(4ULL * n);
    double loss = 0.0;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const float z = fake_logits.data()[i];
      loss += z * z;
      grad.data()[i] = 2.0f * z * inv_n;
    }
    return {static_cast<float>(loss) * inv_n, std::move(grad)};
  }
  return tensor::bce_with_logits(
      fake_logits,
      tensor::Tensor::full(fake_logits.rows(), fake_logits.cols(), 0.0f));
}

}  // namespace cellgan::core
