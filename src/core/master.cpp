#include "core/master.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "minimpi/errors.hpp"

namespace cellgan::core {

Master::Master(minimpi::Comm& world, minimpi::Comm& global, TrainingConfig config,
               const CostModel& cost_model)
    : Master(world, global, std::move(config), cost_model, Options{}) {}

Master::Master(minimpi::Comm& world, minimpi::Comm& global, TrainingConfig config,
               const CostModel& cost_model, Options options)
    : world_(world),
      global_(global),
      config_(std::move(config)),
      cost_model_(cost_model),
      options_(options) {
  CG_EXPECT(world_.rank() == 0);
  CG_EXPECT(world_.size() == static_cast<int>(config_.grid_cells()) + 1);
}

MasterOutcome Master::run() {
  const int slaves = world_.size() - 1;
  MasterOutcome outcome;

  // A slave's stream disappearing at any point of the master's run is a
  // failure: honest slaves keep their sockets open until after the final
  // gather, so even a clean EOF here means the process is gone (SIGKILL
  // closes streams cleanly too). Named immediately instead of waiting out a
  // timeout; the recovery loop above us decides whether to restart.
  const auto throw_if_slave_lost = [&] {
    for (int rank = 1; rank <= slaves; ++rank) {
      if (!world_.peer_lost(rank)) continue;
      throw minimpi::PeerDeathError(
          rank, "master: slave rank " + std::to_string(rank) + " died (" +
                    world_.peer_loss_reason(rank) + ")");
    }
  };

  // Deadline-aware control-plane receive when the caller bounded its
  // patience with slaves (Options::slave_timeout_s): sliced so a lost
  // stream surfaces as PeerDeathError without burning the deadline first.
  const auto recv_control = [&](int source, int tag) -> minimpi::Message {
    if (options_.slave_timeout_s <= 0.0) return world_.recv(source, tag);
    const double slice_s = std::min(options_.slave_timeout_s, 0.05);
    common::WallTimer quiet;
    for (;;) {
      auto m = world_.recv_for(source, tag, slice_s);
      if (m) return std::move(*m);
      throw_if_slave_lost();
      if (quiet.elapsed_s() >= options_.slave_timeout_s) {
        throw minimpi::TimeoutError(
            "master: no control message (tag " + std::to_string(tag) +
            ") within " + std::to_string(options_.slave_timeout_s) + "s");
      }
    }
  };

  // 1. Gather information about the computing infrastructure.
  outcome.node_names.resize(slaves);
  for (int i = 0; i < slaves; ++i) {
    const auto m = recv_control(minimpi::kAnySource, protocol::kNodeName);
    outcome.node_names[m.source - 1] =
        std::string(m.payload.begin(), m.payload.end());
  }
  common::log_debug() << "master: " << slaves << " slaves reported in";

  // 2./3. Decide placement (uniform: cell = rank - 1, the paper's uniform
  // partitioning) and share the parameter configuration with all slaves.
  // The broadcast also tells slaves whether anyone is observing at rank 0 —
  // unobserved runs carry no record traffic at all.
  const bool observing =
      options_.observers != nullptr && !options_.observers->empty();
  config_.forward_records = observing ? 1 : 0;
  auto config_bytes = config_.serialize();
  world_.bcast(config_bytes, /*root=*/0);

  // 4. Assign workload: run task messages flip slaves to Processing.
  for (int rank = 1; rank <= slaves; ++rank) {
    protocol::RunTask task;
    task.cell_id = static_cast<std::uint32_t>(rank - 1);
    task.seed = config_.seed;
    const auto bytes = task.serialize();
    world_.send(rank, protocol::kRunTask, bytes);
  }

  // 5. Monitor execution in the background while slaves train.
  HeartbeatMonitor heartbeat(world_, options_.heartbeat);
  if (options_.enable_heartbeat) heartbeat.start();

  // Incremental observer republication: drain the kEpochRecord messages the
  // slaves forward (out-of-band, so simulated clocks are never perturbed)
  // as they arrive, and publish each epoch through the bus as soon as all
  // of its cells have reported — in deterministic (epoch, cell) order, the
  // location-transparent half of the TrainObserver stream. Publishing LIVE
  // (not after the run) is what makes the telemetry sink and the checkpoint
  // policy crash-durable on the distributed backends: a run that dies at
  // epoch 95 still has 9 rolling checkpoints and 95 telemetry lines.
  // On a recovery generation the slaves resume at options_.resume_epoch, so
  // only epochs E..N-1 will ever fill — publication starts there.
  std::vector<EpochRecord> epochs(observing ? config_.iterations : 0);
  std::vector<std::size_t> epoch_filled(epochs.size(), 0);
  std::uint32_t epochs_published = observing ? options_.resume_epoch : 0;
  const auto drain_records = [&] {
    if (!observing) return;
    while (auto m = world_.try_recv(minimpi::kAnySource, protocol::kEpochRecord)) {
      auto record = CellEpochRecord::deserialize(m->payload);
      CG_EXPECT(record.epoch < config_.iterations);
      CG_EXPECT(record.epoch >= options_.resume_epoch);
      CG_EXPECT(record.cell < static_cast<std::uint32_t>(slaves));
      EpochRecord& epoch = epochs[record.epoch];
      if (epoch.cells.empty()) {
        epoch.epoch = record.epoch;
        epoch.cells.resize(static_cast<std::size_t>(slaves));
      }
      ++epoch_filled[record.epoch];
      epoch.cells[record.cell] = std::move(record);
    }
    while (epochs_published < config_.iterations &&
           epoch_filled[epochs_published] == static_cast<std::size_t>(slaves)) {
      const EpochRecord& epoch = epochs[epochs_published];
      options_.observers->epoch_started(epoch.epoch);
      for (const auto& cell : epoch.cells) {
        options_.observers->cell_stepped(cell);
      }
      for (const auto& cell : epoch.cells) {
        options_.observers->exchange(cell);
      }
      options_.observers->epoch_completed(epoch);
      ++epochs_published;
    }
  };

  // 6. Wait for every slave to report Finished (any order). With a slave
  // timeout configured the wait is liveness-aware, not duration-bounded: a
  // quiet interval only becomes TimeoutError when the heartbeat monitor also
  // finds a slave unresponsive (or is disabled), so an honest long training
  // run can take arbitrarily long while a dead peer is still named quickly.
  // While observing, the wait polls in slices so epoch records republish as
  // training progresses; the Finished message itself still drives the
  // virtual clock, so the polling cadence never shows up in simulated time.
  const auto recv_finished = [&]() -> minimpi::Message {
    if (options_.slave_timeout_s <= 0.0 && !observing) {
      return world_.recv(minimpi::kAnySource, protocol::kFinished);
    }
    // Always short slices: recv_for itself is not liveness-aware, so a lost
    // stream is only named when the loop comes back around to
    // throw_if_slave_lost. A full-timeout slice would sit blind for the
    // whole deadline.
    const double slice_s = options_.slave_timeout_s > 0.0
                               ? std::min(options_.slave_timeout_s, 0.05)
                               : 0.05;
    common::WallTimer quiet;
    for (;;) {
      auto m = world_.recv_for(minimpi::kAnySource, protocol::kFinished, slice_s);
      drain_records();
      if (m) return std::move(*m);
      throw_if_slave_lost();
      if (options_.slave_timeout_s <= 0.0 ||
          quiet.elapsed_s() < options_.slave_timeout_s) {
        continue;
      }
      const std::vector<int> stuck =
          options_.enable_heartbeat ? heartbeat.unresponsive() : std::vector<int>{};
      if (!options_.enable_heartbeat || !stuck.empty()) {
        std::string names;
        for (const int rank : stuck) names += " " + std::to_string(rank);
        throw minimpi::TimeoutError(
            "master: no Finished report within " +
            std::to_string(options_.slave_timeout_s) + "s" +
            (stuck.empty() ? " (heartbeat disabled)"
                           : " and unresponsive slave rank(s):" + names));
      }
      // Every slave still answers heartbeats: keep waiting.
      quiet.reset();
    }
  };
  for (int i = 0; i < slaves; ++i) {
    const auto m = recv_finished();
    common::log_debug() << "master: slave rank " << m.source << " finished";
  }
  if (options_.enable_heartbeat) heartbeat.stop();
  outcome.heartbeat_cycles = heartbeat.cycles();

  // All slaves finished, so every remaining record is already in the
  // mailbox (records precede Finished on the same ordered channel).
  drain_records();
  CG_EXPECT(!observing || epochs_published == config_.iterations);

  // 7. Release the slaves into the result gather.
  for (int rank = 1; rank <= slaves; ++rank) {
    world_.send(rank, protocol::kShutdown, {});
  }

  // 8. Gather results over GLOBAL and run the reduction. The per-slave
  // processing is serialized at the master; its calibrated cost is the
  // management overhead of Table III.
  const auto gathered = global_.gather({}, /*root=*/0);
  outcome.results.resize(slaves);
  common::WallTimer reduction_wall;
  for (int rank = 1; rank <= slaves; ++rank) {
    auto result = protocol::SlaveResult::deserialize(gathered[rank]);
    CG_EXPECT(result.cell_id < static_cast<std::uint32_t>(slaves));
    outcome.results[result.cell_id] = std::move(result);
  }
  // The serialized reduction runs on the master's node, whose speed varies
  // run to run on the best-effort cluster like everyone else's.
  const double mgmt_s = static_cast<double>(slaves) *
                        cost_model_.mgmt_seconds_per_slave(config_.iterations) *
                        cost_model_.node_factor(world_.jitter_rng());
  world_.clock().advance(mgmt_s);
  world_.profiler().add(common::routine::kManagement, reduction_wall.elapsed_s(),
                        mgmt_s);

  auto best = std::min_element(
      outcome.results.begin(), outcome.results.end(),
      [](const protocol::SlaveResult& a, const protocol::SlaveResult& b) {
        return a.center.g_fitness < b.center.g_fitness;
      });
  outcome.best_cell = static_cast<int>(best - outcome.results.begin());
  outcome.virtual_makespan_s = world_.clock().now();
  return outcome;
}

}  // namespace cellgan::core
