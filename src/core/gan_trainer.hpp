// Adversarial gradient steps and loss evaluations for one G/D pairing.
//
// Standard non-saturating GAN objective with BCE-with-logits:
//   D minimizes  BCE(D(x_real), 1) + BCE(D(G(z)), 0)
//   G minimizes  BCE(D(G(z)), 1)
// Each function performs exactly one mini-batch update (or a pure
// evaluation), so the cell trainer composes them freely under tournament
// selection.
//
// Two orthogonal extensions ride GanStepOptions (both off by default, so
// existing call sites and trajectories are untouched):
//   weight_clip  — WGAN critic clipping: after each discriminator step every
//                  parameter is clamped to [-c, +c] (Arjovsky et al.);
//   conditional  — class-conditional pathway: one-hot labels are appended to
//                  generator latents and discriminator inputs. Fake labels
//                  are drawn uniformly from the caller's rng (BEFORE the
//                  latent block, a fixed order the parity suites pin); real
//                  labels come from the dataset batch.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"
#include "core/gan_losses.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::core {

struct GanStepOptions {
  /// > 0: clamp every discriminator parameter to [-weight_clip, +weight_clip]
  /// after the optimizer step (the WGAN critic constraint).
  double weight_clip = 0.0;
  /// > 0: conditional pathway with this many one-hot label classes.
  std::size_t label_classes = 0;
  /// Row-aligned labels of the real batch; required when label_classes > 0
  /// and the call consumes a real batch.
  std::span<const std::uint32_t> real_labels = {};
};

/// One discriminator update on a real batch + an equal-size fake batch.
/// Returns the discriminator loss before the step. `loss_kind` selects the
/// objective (Mustangs loss diversity); the default reproduces Lipizzaner.
double train_discriminator_step(nn::Sequential& discriminator,
                                nn::Optimizer& d_optimizer,
                                nn::Sequential& generator,
                                const tensor::Tensor& real_batch,
                                std::size_t latent_dim, common::Rng& rng,
                                GanLossKind loss_kind = GanLossKind::kHeuristic,
                                const GanStepOptions& options = {});

/// One generator update against a fixed discriminator. Returns the generator
/// loss before the step.
double train_generator_step(nn::Sequential& generator, nn::Optimizer& g_optimizer,
                            nn::Sequential& discriminator, std::size_t batch_size,
                            std::size_t latent_dim, common::Rng& rng,
                            GanLossKind loss_kind = GanLossKind::kHeuristic,
                            const GanStepOptions& options = {});

/// Generator loss (how badly G fools D) without any update. Fitness
/// comparisons always use the heuristic objective so values are comparable
/// across cells regardless of each cell's training loss.
double evaluate_generator_loss(nn::Sequential& generator,
                               nn::Sequential& discriminator, std::size_t batch_size,
                               std::size_t latent_dim, common::Rng& rng,
                               const GanStepOptions& options = {});

/// Discriminator loss on real + fake batches without any update.
double evaluate_discriminator_loss(nn::Sequential& discriminator,
                                   nn::Sequential& generator,
                                   const tensor::Tensor& real_batch,
                                   std::size_t latent_dim, common::Rng& rng,
                                   const GanStepOptions& options = {});

/// Append `classes` one-hot columns (label per row) to `x` — the conditional
/// input encoding shared by training, fitness evaluation and mixture
/// sampling.
tensor::Tensor append_one_hot(const tensor::Tensor& x,
                              std::span<const std::uint32_t> labels,
                              std::size_t classes);

/// Clamp every parameter of `net` to [-clip, +clip] (WGAN critic clipping).
void clip_parameters(nn::Sequential& net, double clip);

}  // namespace cellgan::core
