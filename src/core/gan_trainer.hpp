// Adversarial gradient steps and loss evaluations for one G/D pairing.
//
// Standard non-saturating GAN objective with BCE-with-logits:
//   D minimizes  BCE(D(x_real), 1) + BCE(D(G(z)), 0)
//   G minimizes  BCE(D(G(z)), 1)
// Each function performs exactly one mini-batch update (or a pure
// evaluation), so the cell trainer composes them freely under tournament
// selection.
#pragma once

#include "common/rng.hpp"
#include "core/gan_losses.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::core {

/// One discriminator update on a real batch + an equal-size fake batch.
/// Returns the discriminator loss before the step. `loss_kind` selects the
/// objective (Mustangs loss diversity); the default reproduces Lipizzaner.
double train_discriminator_step(nn::Sequential& discriminator,
                                nn::Optimizer& d_optimizer,
                                nn::Sequential& generator,
                                const tensor::Tensor& real_batch,
                                std::size_t latent_dim, common::Rng& rng,
                                GanLossKind loss_kind = GanLossKind::kHeuristic);

/// One generator update against a fixed discriminator. Returns the generator
/// loss before the step.
double train_generator_step(nn::Sequential& generator, nn::Optimizer& g_optimizer,
                            nn::Sequential& discriminator, std::size_t batch_size,
                            std::size_t latent_dim, common::Rng& rng,
                            GanLossKind loss_kind = GanLossKind::kHeuristic);

/// Generator loss (how badly G fools D) without any update. Fitness
/// comparisons always use the heuristic objective so values are comparable
/// across cells regardless of each cell's training loss.
double evaluate_generator_loss(nn::Sequential& generator,
                               nn::Sequential& discriminator, std::size_t batch_size,
                               std::size_t latent_dim, common::Rng& rng);

/// Discriminator loss on real + fake batches without any update.
double evaluate_discriminator_loss(nn::Sequential& discriminator,
                                   nn::Sequential& generator,
                                   const tensor::Tensor& real_batch,
                                   std::size_t latent_dim, common::Rng& rng);

}  // namespace cellgan::core
