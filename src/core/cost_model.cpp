#include "core/cost_model.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace cellgan::core {

namespace {
constexpr double kSecondsPerMinute = 60.0;
// Table IV's single-core gather row (19.4 min) divided by 16 cells.
constexpr double kSeqGatherPercellMin = 19.4 / 16.0;
// Calibration assumes the five-cell neighborhood: 4 exchanged genomes/cell.
constexpr double kReferenceNeighbors = 4.0;
}  // namespace

CostProfile CostProfile::table3() {
  CostProfile p;
  // Distributed core (train/update/mutate) totals 12.13 min/slave; split in
  // Table IV's distributed routine proportions 43.8 : 16.8 : 17.9.
  p.dist_train_perslave_min = 6.77;
  p.dist_update_perslave_min = 2.60;
  p.dist_mutate_perslave_min = 2.77;
  // Sequential clean (pre-penalty) per-cell costs equal the distributed
  // per-slave core costs; the affine working-set penalty scales train+update.
  p.seq_train_percell_min = p.dist_train_perslave_min;
  p.seq_update_percell_min = p.dist_update_perslave_min;
  p.seq_mutate_percell_min = p.dist_mutate_perslave_min;
  p.seq_gather_percell_min = kSeqGatherPercellMin;
  p.seq_affine_penalty = true;
  p.seq_affine_cinf_min = 131.6;  // fits Table III: 339.6 / 999.5 / 1920.0
  p.seq_affine_k_min = 185.1;
  p.gather_per_member_min = 19.4 / 15.0;  // Table IV gather at 16 members
  p.mgmt_per_slave_min = 5.95;
  p.straggler_sigma = 0.02;
  return p;
}

CostProfile CostProfile::table4() {
  CostProfile p;
  // Table IV single-core column divided by 16 cells.
  p.seq_train_percell_min = 264.9 / 16.0;
  p.seq_update_percell_min = 199.8 / 16.0;
  p.seq_mutate_percell_min = 25.6 / 16.0;
  p.seq_gather_percell_min = kSeqGatherPercellMin;
  p.seq_affine_penalty = false;  // single grid size; no scaling model needed
  // Table IV distributed column, per slave.
  p.dist_train_perslave_min = 43.8;
  p.dist_update_perslave_min = 16.8;
  p.dist_mutate_perslave_min = 17.9;
  p.gather_per_member_min = 19.4 / 15.0;
  p.mgmt_per_slave_min = 5.95;
  p.straggler_sigma = 0.02;
  return p;
}

CostModel CostModel::calibrated(const CostProfile& profile, const WorkloadProbe& probe) {
  CG_EXPECT(probe.train_flops > 0.0);
  CG_EXPECT(probe.update_bytes > 0.0);
  CG_EXPECT(probe.mutate_calls > 0.0);
  CG_EXPECT(probe.genome_bytes > 0.0);
  CostModel m;
  m.enabled_ = true;
  m.profile_ = profile;
  m.probe_ = probe;
  const double per_iter = kSecondsPerMinute / profile.reference_iterations;
  m.seq_train_s_per_flop_ = profile.seq_train_percell_min * per_iter / probe.train_flops;
  m.dist_train_s_per_flop_ =
      profile.dist_train_perslave_min * per_iter / probe.train_flops;
  m.seq_update_s_per_byte_ =
      profile.seq_update_percell_min * per_iter / probe.update_bytes;
  m.dist_update_s_per_byte_ =
      profile.dist_update_perslave_min * per_iter / probe.update_bytes;
  m.seq_mutate_s_per_call_ =
      profile.seq_mutate_percell_min * per_iter / probe.mutate_calls;
  m.dist_mutate_s_per_call_ =
      profile.dist_mutate_perslave_min * per_iter / probe.mutate_calls;
  m.seq_gather_s_per_byte_ = profile.seq_gather_percell_min * per_iter /
                             (kReferenceNeighbors * probe.genome_bytes);
  return m;
}

double CostModel::seq_penalty(int grid_cells) const {
  if (!profile_.seq_affine_penalty) return 1.0;
  CG_EXPECT(grid_cells >= 1);
  // Target per-cell total (minutes/ref-run) from the affine Table III fit.
  const double target = profile_.seq_affine_cinf_min -
                        profile_.seq_affine_k_min / static_cast<double>(grid_cells);
  const double fixed = profile_.seq_mutate_percell_min + profile_.seq_gather_percell_min;
  const double clean =
      profile_.seq_train_percell_min + profile_.seq_update_percell_min;
  // Keep the model sane for tiny grids where the fit would go negative.
  return std::max(1.0, (target - fixed) / clean);
}

namespace {
// MultiThread shares SingleCore's per-cell rates: the process still trains
// the whole resident grid, so per-unit costs (and the working-set penalty)
// are unchanged — the speedup comes from max-over-lanes clock aggregation.
bool in_process(ExecMode mode) {
  return mode == ExecMode::SingleCore || mode == ExecMode::MultiThread;
}
}  // namespace

double CostModel::train_seconds(ExecMode mode, int grid_cells, double flops) const {
  if (!enabled_ || mode == ExecMode::RealTime) return 0.0;
  if (in_process(mode)) {
    return flops * seq_train_s_per_flop_ * seq_penalty(grid_cells);
  }
  return flops * dist_train_s_per_flop_;
}

double CostModel::update_seconds(ExecMode mode, int grid_cells, double bytes) const {
  if (!enabled_ || mode == ExecMode::RealTime) return 0.0;
  if (in_process(mode)) {
    return bytes * seq_update_s_per_byte_ * seq_penalty(grid_cells);
  }
  return bytes * dist_update_s_per_byte_;
}

double CostModel::mutate_seconds(ExecMode mode, int /*grid_cells*/, double calls) const {
  if (!enabled_ || mode == ExecMode::RealTime) return 0.0;
  return calls * (in_process(mode) ? seq_mutate_s_per_call_
                                   : dist_mutate_s_per_call_);
}

double CostModel::seq_gather_seconds(int /*grid_cells*/, double bytes) const {
  if (!enabled_) return 0.0;
  return bytes * seq_gather_s_per_byte_;
}

double CostModel::mgmt_seconds_per_slave(double iterations) const {
  if (!enabled_) return 0.0;
  return profile_.mgmt_per_slave_min * kSecondsPerMinute * iterations /
         profile_.reference_iterations;
}

double CostModel::jitter(common::Rng& rng) const {
  if (!enabled_ || profile_.straggler_sigma <= 0.0) return 1.0;
  const double sigma = profile_.straggler_sigma;
  // mu = -sigma^2/2 gives E[jitter] = 1.
  return rng.lognormal(-0.5 * sigma * sigma, sigma);
}

double CostModel::node_factor(common::Rng& rng) const {
  if (!enabled_ || profile_.node_sigma <= 0.0) return 1.0;
  const double sigma = profile_.node_sigma;
  return rng.lognormal(-0.5 * sigma * sigma, sigma);
}

minimpi::NetModelConfig CostModel::net_config() const {
  minimpi::NetModelConfig net;
  if (!enabled_) return net;
  net.enabled = true;
  net.latency_s = 1e-3;
  const double per_member_s = profile_.gather_per_member_min * kSecondsPerMinute /
                              profile_.reference_iterations;
  CG_EXPECT(per_member_s > 0.0);
  net.bandwidth_Bps = probe_.genome_bytes / per_member_s;
  net.recv_overhead_s_per_B = 0.0;  // deserialization is charged as update
  return net;
}

}  // namespace cellgan::core
