// One grid cell's coevolutionary learning algorithm (Section II.B).
//
// Each cell owns a center generator/discriminator pair with persistent Adam
// optimizers, plus the sub-population of neighbor genomes gathered through
// the comm-manager. An epoch (step) runs the paper's four profiled routines
// in order:
//
//   update_genomes — apply the configured exchange policy (evolve/exchange):
//                    cellular installs gathered neighbor genomes and adopts a
//                    strictly fitter neighbor center; ltfb/gap run tournament
//                    replacement / discriminator rotation instead;
//   train          — for each mini-batch, tournament-select (size 2) an
//                    opponent from the sub-population and apply adversarial
//                    gradient steps to the center pair, then re-evaluate
//                    center fitnesses;
//   mutate         — Gaussian mutation of the Adam learning rates
//                    (prob 0.5, sigma 1e-4) and (1+1)-ES mutation of the
//                    neighborhood mixture weights (scale 0.01).
//
// The fourth routine, gather, is the comm-manager exchange driven by the
// surrounding trainer loop. Every routine is wall-timed and charged to the
// cost model, which is how Table IV's per-routine rows are measured.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/comm_manager.hpp"
#include "core/config.hpp"
#include "core/exec_context.hpp"
#include "core/gan_losses.hpp"
#include "core/genome.hpp"
#include "core/mixture.hpp"
#include "core/observer.hpp"
#include "data/dataset.hpp"
#include "datastore/batch_feed.hpp"
#include "evolve/exchange.hpp"
#include "nn/gan_models.hpp"
#include "nn/optimizer.hpp"

namespace cellgan::core {

class CellTrainer : private evolve::ExchangeHost {
 public:
  /// `dataset` must outlive the trainer. `rng` seeds this cell's private
  /// stream (fork per cell for schedule-independent reproducibility).
  CellTrainer(const TrainingConfig& config, const Grid& grid, int cell_id,
              const data::Dataset& dataset, common::Rng rng,
              const ExecContext& context);

  /// One coevolutionary epoch. `gathered[cell]` holds that cell's serialized
  /// genome (empty entries are skipped; iteration 0 passes all-empty).
  void step(const std::vector<std::vector<std::uint8_t>>& gathered);

  /// Serialize the center genome for the neighbor exchange.
  std::vector<std::uint8_t> export_genome();

  int cell_id() const { return cell_; }
  std::uint32_t iteration() const { return iteration_; }
  double g_fitness() const override { return g_fitness_; }
  double d_fitness() const override { return d_fitness_; }
  /// Objective used in the most recent train() (fixed by config, or the
  /// epoch's Mustangs draw).
  GanLossKind current_loss() const { return current_loss_; }
  double g_learning_rate() const { return g_optimizer_.learning_rate(); }
  double d_learning_rate() const { return d_optimizer_.learning_rate(); }
  const MixtureWeights& mixture() const { return mixture_; }
  const Grid& grid() const override { return grid_; }

  /// Cells whose genomes this cell's exchange policy needs for `epoch`
  /// (installation order). Drives the local comm-manager's copy list; network
  /// transports may deliver a superset.
  std::vector<int> exchange_sources(std::uint32_t epoch) const;
  /// What the most recent update_genomes did (policy application outcome) —
  /// the payload of the `"event":"exchange"` telemetry.
  const evolve::ExchangeOutcome& last_exchange() const { return last_exchange_; }

  /// Snapshot of the center (params + hyperparams + fitness).
  CellGenome center_genome();

  /// Assemble this cell's observer record for `epoch` (fitnesses, learning
  /// rates, loss kind, cumulative train flops; on the configured
  /// genome_record_every cadence also the serialized center genome and
  /// mixture weights). `virtual_s` is supplied by the caller — the cell's
  /// own charge accumulator in-process, the rank clock on a slave — which
  /// is the only field that differs between the two publishers.
  CellEpochRecord epoch_record(std::uint32_t epoch, double virtual_s);

  /// Restore the center pair (and optionally the mixture) from a checkpoint
  /// snapshot: parameters, learning rates, fitnesses and iteration counter.
  /// Adam moment state restarts (only parameters travel in genomes, matching
  /// the exchange semantics).
  void restore(const CellGenome& genome, std::span<const double> mixture_weights);

  /// Serialize the *complete* training state — center genome, both Adam
  /// moment sets, the private rng stream, the loader's epoch order and
  /// cursor, installed neighbor genomes, mixture weights, loss draw and
  /// flops counters. Unlike the grid Checkpoint (which keeps only what the
  /// exchange moves), restoring this replays the remaining epochs
  /// bit-identically — the contract rank-death recovery's survivor-parity
  /// guarantee rests on.
  std::vector<std::uint8_t> serialize_training_state();
  void restore_training_state(std::span<const std::uint8_t> bytes);

  /// Sample `count` images from this cell's neighborhood mixture (center +
  /// installed neighbor generators, weighted by the evolved mixture).
  tensor::Tensor sample_from_mixture(std::size_t count);

  /// Work counters for cost-model calibration probes.
  double last_train_flops() const { return last_train_flops_; }
  double last_update_bytes() const { return last_update_bytes_; }
  /// Cumulative train-routine flops over every step() so far — harvested on
  /// whichever thread executed the step, so totals are schedule-independent.
  double total_train_flops() const { return total_train_flops_; }

 private:
  struct SubpopSlot {
    std::optional<CellGenome> genome;  ///< empty until first exchange
  };

  // ExchangeHost — the surface the pluggable exchange policy manipulates.
  int cell() const override { return cell_; }
  std::size_t subpop_slots() const override { return subpop_.size(); }
  const CellGenome* subpop_genome(std::size_t slot) const override;
  void install_subpop(std::size_t slot, CellGenome genome) override;
  void adopt_generator(const CellGenome& genome) override;
  void adopt_discriminator(const CellGenome& genome) override;

  /// Re-align subpopulation slots (and mixture size) with the grid's current
  /// neighbor list — supports dynamic topology reconfiguration: genomes of
  /// cells that remain neighbors are kept, new slots start empty, and the
  /// mixture resets to uniform when membership changes.
  void sync_topology();

  void update_genomes(const std::vector<std::vector<std::uint8_t>>& gathered);
  void train();
  void mutate();
  void evaluate_center_fitness();
  double mixture_quality(const MixtureWeights& weights);

  TrainingConfig config_;  // by value: outlives any caller-side copy
  const Grid& grid_;
  int cell_;
  ExecContext context_;  // pointers inside must outlive the trainer
  common::Rng rng_;

  /// Owned subsample when data dieting is on (must precede feed_).
  std::optional<data::Dataset> diet_;
  /// Batch source — legacy DataLoader or prefetching StoreFeed, selected by
  /// config_.data_plane. Both planes are bit-identical (parity suites).
  std::unique_ptr<datastore::BatchFeed> feed_;
  std::size_t next_batch_ = 0;

  nn::Sequential generator_;
  nn::Sequential discriminator_;
  nn::Adam g_optimizer_;
  nn::Adam d_optimizer_;

  // One scratch pair, re-loaded per use, keeps memory O(1) in neighbors.
  nn::Sequential scratch_generator_;
  nn::Sequential scratch_discriminator_;

  std::vector<SubpopSlot> subpop_;  ///< slot i <-> subpop_ids_[i]
  std::vector<int> subpop_ids_;     ///< neighbor cell ids, mirrors the grid
  MixtureWeights mixture_;

  /// How genomes migrate each epoch (cellular/ltfb/gap), resolved from the
  /// config at construction. Policies are pure functions of (seed, cell,
  /// epoch) and never touch rng_.
  std::unique_ptr<evolve::ExchangePolicy> policy_;
  evolve::ExchangeOutcome last_exchange_;

  double g_fitness_ = 0.0;
  double d_fitness_ = 0.0;
  GanLossKind current_loss_ = GanLossKind::kHeuristic;
  std::uint32_t iteration_ = 0;

  double last_train_flops_ = 0.0;
  double total_train_flops_ = 0.0;
  double last_update_bytes_ = 0.0;
};

}  // namespace cellgan::core
