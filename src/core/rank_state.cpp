#include "core/rank_state.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/log.hpp"
#include "common/serialize.hpp"
#include "core/checkpoint.hpp"  // write_file_atomic, CheckpointWriteError

namespace cellgan::core {

namespace {
constexpr std::uint32_t kRankMagic = 0xCE11'4ACB;
constexpr std::uint32_t kRankVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::optional<RankCheckpoint> load_slot(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return std::nullopt;
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size <= 0) return std::nullopt;
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    return std::nullopt;
  }
  if (bytes.size() < 12) return std::nullopt;
  std::uint32_t head, version, tail;
  std::memcpy(&head, bytes.data(), 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&tail, bytes.data() + bytes.size() - 4, 4);
  if (head != kRankMagic || tail != kRankMagic || version != kRankVersion) {
    common::log_warn() << "rank checkpoint " << path << " is corrupt or foreign";
    return std::nullopt;
  }
  return RankCheckpoint::deserialize(bytes);
}
}  // namespace

std::vector<std::uint8_t> RankCheckpoint::serialize() const {
  common::ByteWriter w;
  w.write(kRankMagic);
  w.write(kRankVersion);
  w.write(epoch);
  w.write_vector(trainer_state);
  w.write<std::uint64_t>(gathered.size());
  for (const auto& entry : gathered) w.write_vector(entry);
  w.write(clock_s);
  for (const std::uint64_t word : jitter_rng.s) w.write(word);
  w.write(jitter_rng.cached_normal);
  w.write<std::uint8_t>(jitter_rng.has_cached_normal ? 1 : 0);
  w.write(kRankMagic);  // trailing magic doubles as a truncation check
  return w.take();
}

RankCheckpoint RankCheckpoint::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  CG_EXPECT(r.read<std::uint32_t>() == kRankMagic);
  CG_EXPECT(r.read<std::uint32_t>() == kRankVersion);
  RankCheckpoint out;
  out.epoch = r.read<std::uint32_t>();
  out.trainer_state = r.read_vector<std::uint8_t>();
  const auto entries = r.read<std::uint64_t>();
  out.gathered.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    out.gathered.push_back(r.read_vector<std::uint8_t>());
  }
  out.clock_s = r.read<double>();
  for (auto& word : out.jitter_rng.s) word = r.read<std::uint64_t>();
  out.jitter_rng.cached_normal = r.read<double>();
  out.jitter_rng.has_cached_normal = r.read<std::uint8_t>() != 0;
  CG_EXPECT(r.read<std::uint32_t>() == kRankMagic);
  CG_ENSURE(r.exhausted());
  return out;
}

std::string rank_checkpoint_path(const std::string& dir, int rank, int slot) {
  return dir + "/rank" + std::to_string(rank) + (slot == 0 ? ".a.rck" : ".b.rck");
}

void save_rank_checkpoint(const std::string& dir, int rank,
                          const RankCheckpoint& checkpoint) {
  const std::string path =
      rank_checkpoint_path(dir, rank, static_cast<int>(checkpoint.epoch % 2));
  std::string error;
  if (!write_file_atomic(path, checkpoint.serialize(), &error)) {
    throw CheckpointWriteError("rank checkpoint write failed: " + error);
  }
}

std::optional<RankCheckpoint> load_latest_rank_checkpoint(const std::string& dir,
                                                          int rank) {
  std::optional<RankCheckpoint> best;
  for (int slot = 0; slot < 2; ++slot) {
    auto candidate = load_slot(rank_checkpoint_path(dir, rank, slot));
    if (candidate && (!best || candidate->epoch > best->epoch)) {
      best = std::move(candidate);
    }
  }
  return best;
}

std::optional<RankCheckpoint> load_rank_checkpoint_at(const std::string& dir,
                                                      int rank,
                                                      std::uint32_t epoch) {
  auto candidate = load_slot(rank_checkpoint_path(dir, rank, static_cast<int>(epoch % 2)));
  if (candidate && candidate->epoch == epoch) return candidate;
  return std::nullopt;
}

}  // namespace cellgan::core
