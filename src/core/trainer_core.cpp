#include "core/trainer_core.hpp"

#include <algorithm>
#include <string>

#include "common/timer.hpp"
#include "evolve/exchange.hpp"

namespace cellgan::core {

TrainerCore::TrainerCore(const TrainingConfig& config, const data::Dataset& dataset,
                         const CostModel& cost_model)
    : config_(config),
      dataset_(dataset),
      cost_model_(cost_model),
      grid_(static_cast<int>(config.grid_rows), static_cast<int>(config.grid_cols)),
      store_(static_cast<std::size_t>(grid_.size())) {}

void TrainerCore::build_cells(const std::function<ExecContext(int)>& context_of) {
  CG_EXPECT(cells_.empty());
  // Allocated before the contexts capture their addresses; never resized.
  cell_virtual_s_.assign(static_cast<std::size_t>(grid_.size()), {});
  contexts_.reserve(grid_.size());
  for (int cell = 0; cell < grid_.size(); ++cell) {
    contexts_.push_back(context_of(cell));
    // Every charge a cell makes also accumulates into its own counter, so
    // the observer records carry schedule-independent per-cell virtual time.
    contexts_.back().virtual_accumulator =
        &cell_virtual_s_[static_cast<std::size_t>(cell)].value;
  }
  common::Rng master_rng(config_.seed);
  cells_.reserve(grid_.size());
  comms_.reserve(grid_.size());
  for (int cell = 0; cell < grid_.size(); ++cell) {
    cells_.push_back(std::make_unique<CellTrainer>(
        config_, grid_, cell, dataset_,
        master_rng.fork(static_cast<std::uint64_t>(cell)), contexts_[cell]));
    comms_.push_back(
        std::make_unique<LocalCommManager>(store_, grid_, cell, contexts_[cell]));
  }
  epoch_records_.assign(static_cast<std::size_t>(grid_.size()), CellEpochRecord{});
}

void TrainerCore::begin_epoch(std::uint32_t epoch) {
  epoch_ = epoch;
  recording_ = observing();
  if (recording_) bus_->epoch_started(epoch_);
}

void TrainerCore::run_cell_epoch(int cell) {
  const ExecContext& context = contexts_[cell];
  common::WallTimer gather_wall;
  // The exchange policy names the cells whose genomes this epoch needs
  // (neighbors for cellular; plus a tournament partner / rotation donor for
  // ltfb/gap); the local transport copies exactly that list.
  const auto inbox = comms_[cell]->collect(
      cells_[cell]->exchange_sources(cells_[cell]->iteration()));
  // The virtual gather cost was charged inside collect(); here only the
  // measured wall time enters the books.
  context.charge(common::routine::kGather, gather_wall.elapsed_s(), 0.0);
  cells_[cell]->step(inbox);
  common::WallTimer publish_wall;
  comms_[cell]->publish(cells_[cell]->export_genome());
  context.charge(common::routine::kGather, publish_wall.elapsed_s(), 0.0);

  if (!recording_) return;
  epoch_records_[static_cast<std::size_t>(cell)] = cells_[cell]->epoch_record(
      epoch_, cell_virtual_s_[static_cast<std::size_t>(cell)].value);
}

void TrainerCore::publish_epoch() {
  if (!recording_) return;
  EpochRecord record;
  record.epoch = epoch_;
  // Move the slots out (genome payloads are not small) and re-arm them for
  // the next epoch's writers.
  record.cells = std::move(epoch_records_);
  epoch_records_.assign(static_cast<std::size_t>(grid_.size()), CellEpochRecord{});
  for (const auto& cell : record.cells) bus_->cell_stepped(cell);
  for (const auto& cell : record.cells) bus_->exchange(cell);
  bus_->epoch_completed(record);
}

TrainOutcome TrainerCore::make_outcome(double wall_s, double virtual_s,
                                       common::Profiler profiler) const {
  TrainOutcome outcome;
  outcome.wall_s = wall_s;
  outcome.virtual_s = virtual_s;
  outcome.profiler = std::move(profiler);
  outcome.g_fitnesses.reserve(cells_.size());
  outcome.d_fitnesses.reserve(cells_.size());
  for (const auto& cell : cells_) {
    outcome.g_fitnesses.push_back(cell->g_fitness());
    outcome.d_fitnesses.push_back(cell->d_fitness());
    outcome.train_flops += cell->total_train_flops();
  }
  outcome.best_cell = static_cast<int>(
      std::min_element(outcome.g_fitnesses.begin(), outcome.g_fitnesses.end()) -
      outcome.g_fitnesses.begin());
  return outcome;
}

Checkpoint TrainerCore::checkpoint() const {
  Checkpoint snapshot;
  snapshot.config = config_;
  snapshot.centers.reserve(cells_.size());
  snapshot.mixtures.reserve(cells_.size());
  std::uint32_t iteration = 0;
  for (const auto& cell : cells_) {
    snapshot.centers.push_back(cell->center_genome());
    snapshot.mixtures.push_back(cell->mixture().weights());
    iteration = std::max(iteration, cell->iteration());
  }
  snapshot.iteration = iteration;
  return snapshot;
}

void TrainerCore::restore(const Checkpoint& snapshot) {
  CG_EXPECT(snapshot.centers.size() == cells_.size());
  CG_EXPECT(snapshot.config.arch == config_.arch);
  // A snapshot trained under one exchange policy must not silently continue
  // under another (compared after env resolution, so `auto` has a concrete
  // meaning on both sides).
  const auto snapshot_policy =
      evolve::resolve_exchange_policy(snapshot.config.exchange_policy);
  const auto run_policy = evolve::resolve_exchange_policy(config_.exchange_policy);
  if (snapshot_policy != run_policy) {
    throw CheckpointPolicyMismatchError(
        std::string("checkpoint was written under exchange policy '") +
        evolve::to_string(snapshot_policy) + "' but this run uses '" +
        evolve::to_string(run_policy) + "'");
  }
  for (std::size_t cell = 0; cell < cells_.size(); ++cell) {
    const auto& mixture = cell < snapshot.mixtures.size()
                              ? snapshot.mixtures[cell]
                              : std::vector<double>{};
    cells_[cell]->restore(snapshot.centers[cell], mixture);
  }
}

WorkloadProbe TrainerCore::measure_workload(const TrainingConfig& config,
                                            const data::Dataset& dataset) {
  // Run two iterations of a throwaway cell wired to itself: the second
  // iteration installs a full set of neighbor genomes, giving representative
  // update bytes and train flops.
  Grid grid(static_cast<int>(config.grid_rows), static_cast<int>(config.grid_cols));
  ExecContext context;  // RealTime: no cost model, no clocks
  common::Rng rng(config.seed ^ 0x9e0be5ULL);
  CellTrainer probe_cell(config, grid, 0, dataset, rng, context);

  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  probe_cell.step(inbox);
  const std::vector<std::uint8_t> genome = probe_cell.export_genome();
  // Pretend every neighbor sent a genome of the same shape.
  for (const int neighbor : grid.neighbors_of(0)) inbox[neighbor] = genome;
  probe_cell.step(inbox);

  WorkloadProbe probe;
  probe.train_flops = probe_cell.last_train_flops();
  probe.update_bytes = std::max(1.0, probe_cell.last_update_bytes());
  probe.mutate_calls = 1.0;
  probe.genome_bytes = static_cast<double>(genome.size());
  return probe;
}

}  // namespace cellgan::core
