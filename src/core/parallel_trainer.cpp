#include "core/parallel_trainer.hpp"

#include <algorithm>

namespace cellgan::core {

ParallelTrainer::ParallelTrainer(const TrainingConfig& config,
                                 const data::Dataset& dataset, std::size_t threads,
                                 const CostModel& cost_model)
    : InProcessTrainer(config, dataset, cost_model),
      pool_(std::max<std::size_t>(1, threads)) {
  const auto n = static_cast<std::size_t>(core_.grid().size());
  // Balanced contiguous partition over exactly min(threads, cells) lanes:
  // the first n % lanes lanes take one extra cell, so no requested worker
  // sits idle while another carries two cells more.
  const std::size_t lanes =
      std::min(std::max<std::size_t>(1, threads), std::max<std::size_t>(1, n));
  const std::size_t base = n / lanes;
  const std::size_t extra = n % lanes;
  lane_begin_.reserve(lanes + 1);
  lane_begin_.push_back(0);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    lane_begin_.push_back(lane_begin_.back() + base + (lane < extra ? 1 : 0));
  }
  lanes_.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    lanes_.push_back(std::make_unique<Lane>(config.seed ^ 0x5eedbeefULL ^ lane));
  }
  core_.build_cells([this](int cell) {
    Lane& lane = *lanes_[lane_of(static_cast<std::size_t>(cell))];
    ExecContext context;
    context.mode = ExecMode::MultiThread;
    context.grid_cells = core_.grid().size();
    context.cost = &core_.cost_model();
    context.clock = &lane.clock;
    context.profiler = &lane.profiler;
    context.jitter_rng = &lane.jitter_rng;
    return context;
  });
}

std::size_t ParallelTrainer::lane_of(std::size_t cell) const {
  // Invert the balanced partition: the first `extra` lanes hold base+1 cells.
  const std::size_t lanes = lanes_.size();
  const std::size_t n = lane_begin_.back();
  const std::size_t base = n / lanes;
  const std::size_t extra = n % lanes;
  const std::size_t boundary = extra * (base + 1);
  if (cell < boundary) return cell / (base + 1);
  return extra + (cell - boundary) / base;
}

TrainOutcome ParallelTrainer::run() {
  common::WallTimer wall;
  for (std::uint32_t iter = 0; iter < core_.config().iterations; ++iter) {
    core_.begin_epoch(iter);
    // One task per lane; the pool hands each participant a contiguous lane
    // range, and every lane's cells run on exactly one thread (so the
    // per-thread flops counters harvested inside CellTrainer::step stay
    // attributed to the right cell).
    pool_.parallel_for(lanes_.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t lane = begin; lane < end; ++lane) {
        for (std::size_t cell = lane_begin_[lane]; cell < lane_begin_[lane + 1];
             ++cell) {
          core_.run_cell_epoch(static_cast<int>(cell));
        }
      }
    });
    // Epoch barrier, in virtual time too: every lane waits for the slowest
    // before the staged genomes become visible.
    double makespan = 0.0;
    for (const auto& lane : lanes_) makespan = std::max(makespan, lane->clock.now());
    for (const auto& lane : lanes_) lane->clock.wait_until(makespan);
    core_.finish_epoch();
    // Records were written by the pool workers (distinct slots per cell, and
    // parallel_for joined); publishing here keeps one thread, cell order.
    core_.publish_epoch();
  }
  double virtual_s = 0.0;
  std::vector<common::Profiler> parts;
  parts.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    virtual_s = std::max(virtual_s, lane->clock.now());
    parts.push_back(lane->profiler);
  }
  return core_.make_outcome(wall.elapsed_s(), virtual_s,
                            common::Profiler::merged(parts));
}

}  // namespace cellgan::core
