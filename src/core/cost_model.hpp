// Calibrated virtual-time cost model (DESIGN.md §4, EXPERIMENTS.md).
//
// The paper's evaluation ran on a 30-node cluster for up to 32 CPU-hours per
// configuration; this environment has two cores and no MPI. The benchmarks
// therefore execute the *real* training code at reduced scale and advance
// per-rank virtual clocks using per-unit-of-work rates (seconds per flop,
// per byte installed, per mutation call, per byte gathered) that are
// calibrated so the paper's configuration reproduces the paper's table rows.
//
// Two calibration profiles exist because the paper's own tables disagree
// (Table III implies a 15.17x overall 4x4 speedup, Table IV implies 5.21x
// for the same grid): `table3()` targets the scaling table, `table4()` the
// per-routine profiling table. Both derivations are in EXPERIMENTS.md.
//
// The model is event-driven: time only accrues when the training code
// actually performs work (flops counted by the tensor library, bytes counted
// at serialization boundaries, messages timed by minimpi's NetModel), so a
// different workload configuration yields proportionally different times.
#pragma once

#include "common/rng.hpp"
#include "minimpi/netmodel.hpp"

namespace cellgan::core {

/// How the training harness is being executed.
enum class ExecMode {
  RealTime,    ///< no virtual time; wall-clock measurements only
  SingleCore,  ///< all cells in one process (the paper's baseline column)
  /// All cells in one process, stepped concurrently on a thread pool — the
  /// "p cores" view of Table III. Per-cell charges are identical to
  /// SingleCore (the process still holds the whole grid's working set, so
  /// the memory penalty applies); only the clock aggregation differs: each
  /// worker lane owns a VirtualClock and the run's makespan is the max over
  /// lanes per epoch, not the serial sum.
  MultiThread,
  Distributed, ///< one slave process per cell + master (the paper's system)
};

/// Calibration targets, all in minutes per reference run (200 iterations)
/// unless stated otherwise. See EXPERIMENTS.md for the fits.
struct CostProfile {
  // Sequential (single-core) per-cell routine costs, before memory penalty.
  double seq_train_percell_min = 0.0;
  double seq_update_percell_min = 0.0;
  double seq_mutate_percell_min = 0.0;
  double seq_gather_percell_min = 0.0;  ///< in-process neighbor exchange

  // When true, the per-cell (train+update) cost is scaled so that the total
  // per-cell cost matches the affine fit  c_inf - k/n  of Table III's
  // single-core column (n = number of resident cells). This is the
  // working-set memory-pressure model that produces the paper's superlinear
  // speedups at 2x2/3x3.
  bool seq_affine_penalty = false;
  double seq_affine_cinf_min = 0.0;  ///< c_inf
  double seq_affine_k_min = 0.0;     ///< k

  // Distributed per-slave routine costs.
  double dist_train_perslave_min = 0.0;
  double dist_update_perslave_min = 0.0;
  double dist_mutate_perslave_min = 0.0;

  /// Sender-side allgather cost per other member of the LOCAL communicator
  /// (the direct-exchange allgather makes gather time linear in members).
  double gather_per_member_min = 0.0;

  /// Master-side serialized reduction/management cost per slave — the
  /// "overhead introduced by process management" that makes the paper's
  /// 4x4 speedup sublinear.
  double mgmt_per_slave_min = 0.0;

  double reference_iterations = 200.0;
  double straggler_sigma = 0.02;  ///< per-charge lognormal jitter
  /// Per-rank per-run speed factor (lognormal sigma): models the best-effort
  /// cluster handing different runs differently-loaded nodes — the source of
  /// the paper's run-to-run +-std.
  double node_sigma = 0.03;

  static CostProfile table3();
  static CostProfile table4();
};

/// Measured per-cell-per-iteration workload of the *actual* configuration,
/// used to convert calibration targets into per-unit rates.
struct WorkloadProbe {
  double train_flops = 0.0;    ///< flops spent in the train routine
  double update_bytes = 0.0;   ///< genome bytes installed in update_genomes
  double mutate_calls = 1.0;   ///< mutation invocations
  double genome_bytes = 0.0;   ///< serialized size of one exchanged genome
};

class CostModel {
 public:
  /// Disabled model: every charge is zero (pure real-time runs).
  CostModel() = default;

  static CostModel calibrated(const CostProfile& profile, const WorkloadProbe& probe);

  bool enabled() const { return enabled_; }

  /// Simulated seconds for `flops` of gradient work.
  double train_seconds(ExecMode mode, int grid_cells, double flops) const;
  /// Simulated seconds for installing `bytes` of genome data.
  double update_seconds(ExecMode mode, int grid_cells, double bytes) const;
  /// Simulated seconds for `calls` hyperparameter/mixture mutations.
  double mutate_seconds(ExecMode mode, int grid_cells, double calls) const;
  /// Simulated seconds for the single-core in-process exchange of `bytes`.
  double seq_gather_seconds(int grid_cells, double bytes) const;
  /// Master-side per-slave management charge for a whole run of `iterations`.
  double mgmt_seconds_per_slave(double iterations) const;

  double straggler_sigma() const { return profile_.straggler_sigma; }

  /// Multiplicative lognormal jitter with unit mean (applied to compute
  /// charges in Distributed mode; models the best-effort cluster).
  double jitter(common::Rng& rng) const;

  /// Run-level node speed factor, drawn once per rank per run.
  double node_factor(common::Rng& rng) const;

  /// NetModel configuration whose bandwidth realizes the gather target for
  /// the measured genome size.
  minimpi::NetModelConfig net_config() const;

 private:
  /// Memory-pressure multiplier on sequential train+update at n resident cells.
  double seq_penalty(int grid_cells) const;

  bool enabled_ = false;
  CostProfile profile_;
  WorkloadProbe probe_;
  // Per-unit rates (seconds per flop / byte / call).
  double seq_train_s_per_flop_ = 0.0;
  double dist_train_s_per_flop_ = 0.0;
  double seq_update_s_per_byte_ = 0.0;
  double dist_update_s_per_byte_ = 0.0;
  double seq_mutate_s_per_call_ = 0.0;
  double dist_mutate_s_per_call_ = 0.0;
  double seq_gather_s_per_byte_ = 0.0;
};

}  // namespace cellgan::core
