// Wire protocol between master and slaves (Fig. 2 / Fig. 3).
//
// Message tags live in the WORLD communicator's user tag space. Slaves are
// world ranks 1..N (world rank 0 is the master); within the LOCAL (slaves
// only) communicator, local rank == assigned grid cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "core/config.hpp"
#include "core/genome.hpp"

namespace cellgan::core::protocol {

enum Tag : int {
  kNodeName = 1,       ///< slave -> master at startup (Fig. 3 "send node name")
  kRunTask = 2,        ///< master -> slave: cell assignment; Inactive -> Processing
  kStatusRequest = 3,  ///< heartbeat thread -> slave main thread
  kStatusReply = 4,    ///< slave main thread -> heartbeat thread
  kFinished = 5,       ///< slave -> master: final result; Processing -> Finished
  kShutdown = 6,       ///< master -> slave: everything collected, exit
  /// slave -> master after every epoch: this rank's serialized
  /// core::CellEpochRecord (observer record forwarding). Sent out-of-band
  /// (no virtual-time cost) so observation never perturbs the simulated
  /// clocks; the master drains and republishes them through its EventBus.
  kEpochRecord = 7,
  /// slave -> master at the start of a recovery generation: the epoch of
  /// this rank's newest readable RankCheckpoint (kNoCheckpointEpoch when the
  /// rank has none). Out-of-band: negotiation must not move virtual clocks.
  kRecoverOffer = 8,
  /// master -> slave reply: the agreed rollback epoch E = min over offers
  /// (0 = fresh start). Every rank restores its epoch-E checkpoint and
  /// replays iterations E..N-1.
  kRecoverPlan = 9,
};

/// Offer sentinel: "I have no checkpoint" (forces a fresh start, E = 0).
inline constexpr std::uint32_t kNoCheckpointEpoch = 0xFFFFFFFFu;

/// Slave life cycle (Fig. 2).
enum class SlaveState : std::uint32_t {
  kInactive = 0,    ///< no workload received yet
  kProcessing = 1,  ///< training in progress
  kFinished = 2,    ///< training done, waiting for the master to gather
};

const char* to_string(SlaveState state);

/// master -> slave workload assignment.
struct RunTask {
  std::uint32_t cell_id = 0;
  std::uint64_t seed = 0;

  std::vector<std::uint8_t> serialize() const;
  static RunTask deserialize(std::span<const std::uint8_t> bytes);
};

/// slave main thread's answer to a status request.
struct StatusReply {
  SlaveState state = SlaveState::kInactive;
  std::uint32_t iteration = 0;
  std::uint32_t cell_id = 0;

  std::vector<std::uint8_t> serialize() const;
  static StatusReply deserialize(std::span<const std::uint8_t> bytes);
};

/// slave -> master final result.
struct SlaveResult {
  std::uint32_t cell_id = 0;
  CellGenome center;
  std::vector<double> mixture_weights;
  double virtual_time_s = 0.0;

  std::vector<std::uint8_t> serialize() const;
  static SlaveResult deserialize(std::span<const std::uint8_t> bytes);
};

}  // namespace cellgan::core::protocol
