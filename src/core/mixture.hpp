// Compatibility re-export: neighborhood mixtures moved to the evolve
// library. Include "evolve/mixture.hpp" directly in new code.
#pragma once

#include "evolve/mixture.hpp"

namespace cellgan::core {
using evolve::MixtureDraw;
using evolve::MixtureWeights;
using evolve::plan_mixture_draw;
using evolve::sample_mixture;
using evolve::scatter_mixture_rows;
}  // namespace cellgan::core
