// Neighborhood generator mixtures.
//
// Lipizzaner's final product is not a single generator but the sub-population
// of a neighborhood combined with mixture weights: samples are drawn from
// generator i with probability w_i. Weights evolve by Gaussian mutation
// (Table I: mixture mutation scale 0.01) under (1+1)-ES selection on the
// mixture's quality.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::core {

class MixtureWeights {
 public:
  /// Uniform weights over `size` generators.
  explicit MixtureWeights(std::size_t size);

  std::size_t size() const { return weights_.size(); }
  double weight(std::size_t i) const { return weights_[i]; }
  const std::vector<double>& weights() const { return weights_; }

  /// Replace weights (renormalized; non-negative required).
  void set_weights(std::vector<double> w);

  /// Install already-normalized weights verbatim (checkpoint restore):
  /// renormalizing an (approximately) unit-sum vector would perturb its
  /// low-order bits and break bit-exact resume. Requires non-negative
  /// weights summing to ~1.
  void restore_weights(std::vector<double> w);

  /// Gaussian-perturb every weight with stddev `scale`, clamp at zero,
  /// renormalize. Returns the mutated copy (callers keep the original for
  /// (1+1)-ES selection).
  MixtureWeights mutated(double scale, common::Rng& rng) const;

  /// Sample a generator index from the weight distribution.
  std::size_t sample_index(common::Rng& rng) const;

  std::vector<std::uint8_t> serialize() const;
  static MixtureWeights deserialize(std::span<const std::uint8_t> bytes);

 private:
  void normalize();
  std::vector<double> weights_;
};

/// Draw `count` samples from the weighted ensemble: each row comes from the
/// generator selected by the mixture distribution, fed with a fresh latent
/// vector z ~ N(0,1)^latent_dim.
tensor::Tensor sample_mixture(const MixtureWeights& weights,
                              std::vector<nn::Sequential*> generators,
                              std::size_t latent_dim, std::size_t count,
                              common::Rng& rng);

}  // namespace cellgan::core
