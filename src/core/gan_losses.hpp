// GAN objective variants — the Mustangs half of "Mustangs/Lipizzaner".
//
// Mustangs [Toutouh et al., GECCO 2019] extends Lipizzaner's spatial
// coevolution with E-GAN-style loss-function diversity: each training step
// may use the minimax, heuristic (non-saturating) or least-squares
// objective. All operate on raw discriminator logits:
//
//   minimax    G: min E[ log(1 - sigma(D(G(z)))) ]      (original GAN)
//   heuristic  G: min E[ -log(sigma(D(G(z)))) ]         (non-saturating)
//   lsq        G: min E[ (D(G(z)) - 1)^2 ]              (LSGAN)
//
//   D (bce kinds):  min BCE(D(x),1) + BCE(D(G(z)),0)
//   D (lsq):        min E[(D(x)-1)^2] + E[D(G(z))^2]
//
// Each helper returns (mean loss, dLoss/dlogits) so the training step can
// backpropagate through the discriminator into the generator.
#pragma once

#include <cstdint>
#include <utility>

#include "tensor/tensor.hpp"

namespace cellgan::core {

enum class GanLossKind : std::uint32_t {
  kHeuristic = 0,     ///< non-saturating BCE (Lipizzaner's default)
  kMinimax = 1,       ///< original saturating objective
  kLeastSquares = 2,  ///< LSGAN quadratic objective
  kWasserstein = 3,   ///< WGAN critic: linear losses, weight clipping outside
};

const char* to_string(GanLossKind kind);

/// Generator-side loss over the logits D emitted for generated samples.
std::pair<float, tensor::Tensor> generator_loss_grad(GanLossKind kind,
                                                     const tensor::Tensor& fake_logits);

/// Discriminator loss is separable into a real-batch and a fake-batch term;
/// the halves are exposed individually so the training step can interleave
/// forward/backward per batch without re-running forwards.
std::pair<float, tensor::Tensor> discriminator_real_loss_grad(
    GanLossKind kind, const tensor::Tensor& real_logits);
std::pair<float, tensor::Tensor> discriminator_fake_loss_grad(
    GanLossKind kind, const tensor::Tensor& fake_logits);

}  // namespace cellgan::core
