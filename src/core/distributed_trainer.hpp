// Top-level wiring of the distributed run: an minimpi world of
// grid_cells + 1 ranks, rank 0 the master, ranks 1..n the slaves; the
// LOCAL (slaves only) and GLOBAL (all ranks) communicators are split from
// WORLD exactly as Section III.D describes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/master.hpp"
#include "core/trainer_core.hpp"  // TrainOutcome
#include "data/dataset.hpp"
#include "minimpi/runtime.hpp"

namespace cellgan::core {

/// Average of a routine's simulated minutes across slave ranks (index 0 is
/// the master) — the per-slave view the paper's Table IV distributed column
/// reports. Shared by DistributedOutcome and the Session facade's RunResult.
double average_slave_routine_virtual_min(
    std::span<const minimpi::Runtime::RankResult> ranks,
    const std::string& routine);

struct DistributedOutcome {
  double wall_s = 0.0;
  double virtual_makespan_s = 0.0;  ///< master clock at the end of the run
  MasterOutcome master;
  /// Per-rank profilers/clocks (index 0 = master, 1.. = slaves).
  std::vector<minimpi::Runtime::RankResult> ranks;

  /// Average of a routine's simulated minutes across slaves (the per-slave
  /// view the paper's Table IV distributed column reports).
  double slave_routine_virtual_min(const std::string& routine) const;
  double slave_routine_wall_s(const std::string& routine) const;
};

/// Run the full master/slave training. `dataset` is shared read-only by all
/// rank threads (each node in the paper loads its own copy; see DESIGN.md).
DistributedOutcome run_distributed(const TrainingConfig& config,
                                   const data::Dataset& dataset,
                                   const CostModel& cost_model = {});
DistributedOutcome run_distributed(const TrainingConfig& config,
                                   const data::Dataset& dataset,
                                   const CostModel& cost_model,
                                   Master::Options master_options);

// ---- multi-process deployment (TCP transport) -------------------------------

/// This process' identity within a multi-process world (one process per
/// rank; rank 0 is the master). Usually read from the environment that
/// `cellgan_launch` exports — see minimpi/bootstrap.hpp.
struct TcpWorld {
  int world_size = 0;
  int rank = -1;
  std::string rendezvous;   ///< rank 0's host:port (rank 0 binds it)
  double timeout_s = 60.0;  ///< bootstrap / rendezvous deadline
  /// Test hook: invoked on rank 0 with the actual rendezvous endpoint once
  /// the listener is bound (resolves a port-0 request before peers dial in).
  std::function<void(const std::string&)> on_listening;
};

/// Build a TcpWorld from CELLGAN_RANK / CELLGAN_WORLD / CELLGAN_ENDPOINT.
/// nullopt (with a diagnostic) when the environment describes no world.
std::optional<TcpWorld> tcp_world_from_env(std::string* error);

/// Rank-death recovery policy for run_distributed_tcp. When enabled, every
/// slave writes a rolling RankCheckpoint (rank_state.hpp) to `state_dir`
/// after each exchange, and a minimpi::PeerDeathError — instead of killing
/// the run — tears the generation down and restarts it: all surviving ranks
/// re-bootstrap at the same rendezvous (a dead rank's replacement, respawned
/// by cellgan_launch, joins them there), agree on the rollback epoch
/// E = min over the ranks' newest checkpoints, restore, and replay epochs
/// E..N-1 bit-identically to an undisturbed run. Requires the allgather
/// exchange (the lockstep that bounds checkpoint skew to one epoch);
/// silently disabled — with a warning — under kAsyncNeighbors.
struct RecoveryOptions {
  bool enabled = false;
  std::string state_dir;  ///< rolling per-rank checkpoints live here
  int max_restarts = 3;   ///< generation restarts before the error propagates
  /// Real-time deadline for each step of the offer/plan negotiation.
  double negotiation_timeout_s = 60.0;
  /// Chaos hook: when >= 0, this rank raises SIGKILL on itself after
  /// completing the given (absolute) epoch — its checkpoint is already on
  /// disk, making the recovery path deterministically testable.
  std::int64_t kill_at_epoch = -1;
};

/// Environment plumbing for multi-process deployments (set by cellgan_launch,
/// read by the distributed-tcp backend in each rank process).
inline constexpr const char* kEnvRecoverDir = "CELLGAN_RECOVER_DIR";
inline constexpr const char* kEnvMaxRestarts = "CELLGAN_MAX_RESTARTS";
inline constexpr const char* kEnvKillAtEpoch = "CELLGAN_KILL_AT_EPOCH";

/// RecoveryOptions from the CELLGAN_RECOVER_DIR / CELLGAN_MAX_RESTARTS /
/// CELLGAN_KILL_AT_EPOCH environment; enabled iff the directory is set.
RecoveryOptions recovery_options_from_env();

/// Run this process' rank of the master/slave training over real sockets.
/// Exactly the same per-rank code as run_distributed — same seeds, same
/// virtual-time accounting — so per-rank outcomes are bit-identical to the
/// in-process simulation. The returned outcome carries this rank's results:
/// on rank 0 the full MasterOutcome and makespan, on slaves their own rank
/// entry only. Throws minimpi::BootstrapError / TimeoutError /
/// TransportError when the world cannot be formed or a peer dies.
DistributedOutcome run_distributed_tcp(const TcpWorld& world,
                                       const TrainingConfig& config,
                                       const data::Dataset& dataset,
                                       const CostModel& cost_model = {},
                                       Master::Options master_options = {},
                                       RecoveryOptions recovery = {});

}  // namespace cellgan::core
