// Warm model cache of the serving plane.
//
// Restoring a CheckpointMixture means reading the checkpoint file and
// rebuilding a neighborhood of generators — far too slow to repeat per
// request. The cache keeps ready-to-sample models keyed by checkpoint path,
// validated by file mtime: a request after the trainer overwrote the
// checkpoint (CheckpointPolicyObserver rewrites in place every cadence
// epoch) transparently reloads, so a long-lived server always serves the
// newest snapshot without a reload endpoint. Capacity-bounded with LRU
// eviction so a server pointed at many checkpoints cannot grow without
// bound.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "core/checkpoint_sampler.hpp"

namespace cellgan::serve {

class ModelCache {
 public:
  /// `capacity` >= 1: resident model bound before LRU eviction.
  explicit ModelCache(std::size_t capacity = 4);

  struct Lookup {
    /// The restored model; nullptr when the load failed (see error). Shared
    /// ownership: the batcher holds the model through in-flight jobs even if
    /// an eviction or reload drops it from the cache meanwhile.
    std::shared_ptr<core::CheckpointMixture> model;
    bool hit = false;  ///< served warm (path present with current mtime)
    std::string error;
  };

  /// Fetch (or load) the model of `checkpoint_path`. Thread-safe; loads run
  /// under the cache lock, serializing concurrent misses of the same path
  /// into one read.
  Lookup get(const std::string& checkpoint_path);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    std::string path;
    std::filesystem::file_time_type mtime;
    std::shared_ptr<core::CheckpointMixture> model;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> entries_;  ///< front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace cellgan::serve
