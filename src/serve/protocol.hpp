// Wire protocol of the cellgan serving plane.
//
// A serving conversation is a sequence of length-prefixed frames over one
// TCP connection, reusing minimpi's Frame codec (transport.hpp) so the
// serving plane inherits the same magic/length validation — and the same
// oversized-payload guard — as the training transport. The mapping:
//
//   Frame.context_key = kServeContextKey   (rejects cross-plane traffic)
//   Frame.tag         = MsgType
//   Frame.payload     = the message body (ByteWriter little-endian codec)
//
// Requests carry client-assigned request ids, so a client may pipeline many
// sample requests on one connection and match responses out of order — the
// server's micro-batcher completes them asynchronously.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cellgan::serve {

/// Context key of every serving frame ("SERVE" in ASCII). A frame with any
/// other key on a serving socket is a protocol error, not silently dropped.
inline constexpr std::uint64_t kServeContextKey = 0x5345525645ULL;

enum class MsgType : std::int32_t {
  kSampleRequest = 1,   ///< client -> server: SampleRequest
  kSampleResponse = 2,  ///< server -> client: SampleResponse
  kStatsRequest = 3,    ///< client -> server: empty payload
  kStatsResponse = 4,   ///< server -> client: StatsResponse
  kShutdownRequest = 5, ///< client -> server: empty payload
  kShutdownAck = 6,     ///< server -> client: empty payload ("will drain")
};

const char* to_string(MsgType type);

/// Ask the server for `count` mixture samples drawn on Rng(seed). The reply
/// is bit-identical to core::CheckpointMixture::sample(count, seed) on the
/// server's checkpoint (per tensor-kernel kind), whatever batch the server
/// folded the request into.
struct SampleRequest {
  std::uint64_t request_id = 0;
  std::uint64_t seed = 0;
  std::uint32_t count = 1;

  std::vector<std::uint8_t> serialize() const;
  static SampleRequest deserialize(std::span<const std::uint8_t> bytes);

  friend bool operator==(const SampleRequest&, const SampleRequest&) = default;
};

/// Status codes of a SampleResponse.
enum class SampleStatus : std::uint32_t {
  kOk = 0,
  kBadRequest = 1,   ///< count out of [1, max_samples_per_request]
  kModelError = 2,   ///< checkpoint could not be (re)loaded
  kShuttingDown = 3, ///< arrived after drain began
};

struct SampleResponse {
  std::uint64_t request_id = 0;
  std::uint32_t status = 0;  ///< SampleStatus
  std::string error;         ///< diagnostic when status != kOk
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<float> samples;  ///< row-major rows x cols
  // Serving telemetry echoed per response (also on the observer stream).
  std::uint32_t batch_requests = 0;  ///< requests in the shared forward
  double queue_us = 0.0;
  double forward_us = 0.0;

  bool ok() const { return status == 0; }

  std::vector<std::uint8_t> serialize() const;
  static SampleResponse deserialize(std::span<const std::uint8_t> bytes);

  friend bool operator==(const SampleResponse&, const SampleResponse&) = default;
};

/// Server-lifetime counters, answered to a kStatsRequest.
struct StatsResponse {
  std::uint64_t requests = 0;   ///< sample requests completed
  std::uint64_t samples = 0;    ///< rows generated
  std::uint64_t batches = 0;    ///< forward passes executed
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t rejected = 0;   ///< non-kOk responses sent
  double uptime_s = 0.0;
  double total_queue_us = 0.0;
  double total_forward_us = 0.0;

  std::vector<std::uint8_t> serialize() const;
  static StatsResponse deserialize(std::span<const std::uint8_t> bytes);

  friend bool operator==(const StatsResponse&, const StatsResponse&) = default;
};

/// Malformed traffic on a serving socket (bad magic, foreign context key,
/// oversized or truncated payload). Clean EOF is NOT an error — recv_message
/// returns false for it.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// One decoded serving frame.
struct Message {
  MsgType type = MsgType::kSampleRequest;
  std::vector<std::uint8_t> payload;
};

/// Frame and write a message. False when the peer is gone (broken pipe).
bool send_message(int fd, MsgType type, std::span<const std::uint8_t> payload);

/// Read one message. Returns false on clean EOF before any header byte
/// (orderly connection close); throws ProtocolError on malformed framing or
/// a mid-frame disconnect.
bool recv_message(int fd, Message* out);

}  // namespace cellgan::serve
