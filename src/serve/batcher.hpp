// Micro-batching sampler: folds concurrent sample requests into single
// generator forward passes without changing any request's bytes.
//
// Policy: a batch opens when the first job arrives and closes when either
// max_batch jobs are queued for the same model or max_delay_us has elapsed
// since the first arrival — the classic latency/throughput knob of serving
// systems. One worker thread executes batches (model forwards reuse layer
// activation buffers, so they must be serialized anyway; intra-op SIMD and
// the common::global_pool inside the GEMMs provide the parallelism).
//
// Bit-identity: each job's stochastic draw is planned on its OWN Rng(seed)
// stream (CheckpointMixture::plan), then the per-generator latents of all
// jobs are stacked into one tensor per generator and forwarded once. Because
// every tensor kernel accumulates each output row partition-independently
// (tests/tensor/kernel_parity pins this), the rows a job gets back are
// bit-identical to a solo CheckpointMixture::sample(count, seed) — whatever
// jobs happened to share the forward. The serve end-to-end suite asserts
// this across batch sizes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "core/checkpoint_sampler.hpp"
#include "serve/observer.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::serve {

struct BatchPolicy {
  std::size_t max_batch = 8;        ///< close a batch at this many requests
  std::uint32_t max_delay_us = 2000;  ///< ... or this long after the first
};

/// What the batcher hands back when a job's samples are ready.
struct SampleOutcome {
  tensor::Tensor samples;            ///< count x image_dim
  std::uint32_t batch_requests = 0;  ///< jobs in the shared forward
  std::uint32_t batch_samples = 0;   ///< total rows of the shared forward
  double queue_us = 0.0;             ///< enqueue -> batch close
  double forward_us = 0.0;           ///< plan+forward+scatter of the batch
  double total_us = 0.0;             ///< enqueue -> outcome ready
};

/// One queued request. `done` runs on the worker thread after the batch
/// executes; it must not block (the server's callback serializes the
/// response and writes it to the socket).
struct SampleJob {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  std::uint32_t count = 1;
  std::shared_ptr<core::CheckpointMixture> model;
  bool cache_hit = true;
  std::chrono::steady_clock::time_point enqueued;
  std::function<void(SampleOutcome)> done;
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy, ServeObserver* observer = nullptr);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Queue a job (stamps `enqueued`). False once drain_and_stop began — the
  /// caller answers kShuttingDown instead.
  bool enqueue(SampleJob job);

  /// Complete every queued job, then stop the worker. Idempotent; after
  /// return all `done` callbacks have run.
  void drain_and_stop();

  std::uint64_t batches_executed() const;

 private:
  void worker();
  /// Pop the next batch: front job plus up-to-max_batch successors sharing
  /// its model, FIFO order preserved. Blocks until policy closes a batch or
  /// drain begins with an empty queue (returns empty).
  std::deque<SampleJob> next_batch(std::unique_lock<std::mutex>& lock);
  void run_batch(std::deque<SampleJob> batch);

  BatchPolicy policy_;
  ServeObserver* observer_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<SampleJob> queue_;
  bool draining_ = false;
  std::uint64_t batch_id_ = 0;

  std::thread worker_;
};

}  // namespace cellgan::serve
