// Serving client: pipelined request/response matching over one framed TCP
// connection, plus an open-loop load generator for the serving benchmark.
//
// The client assigns request ids, writes requests from the caller's thread
// (under a write lock) and matches responses on a background reader thread,
// so many requests can be in flight at once — the shape the server's
// micro-batcher exists to exploit. Latency accounting is open-loop /
// coordinated-omission-correct: each request's latency is measured from its
// *scheduled* send time, so a stalled server debits every queued request,
// not just the one it was holding.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "minimpi/bootstrap.hpp"
#include "serve/protocol.hpp"

namespace cellgan::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Dial the server (retrying up to timeout_s) and start the reader.
  bool connect(const minimpi::Endpoint& endpoint, double timeout_s,
               std::string* error);

  struct Completion {
    SampleResponse response;
    std::chrono::steady_clock::time_point received;
  };

  /// Fire one sample request; returns its client-assigned id, or 0 when the
  /// write failed (connection gone). Does not wait.
  std::uint64_t send_request(std::uint64_t seed, std::uint32_t count);

  /// Wait for request `id`'s response. False on timeout or connection loss.
  bool wait(std::uint64_t id, Completion* out, double timeout_s);

  /// Round-trip a STATS request.
  bool stats(StatsResponse* out, double timeout_s);

  /// Send SHUTDOWN and wait for the ack. The server keeps answering
  /// everything already submitted (drain-first contract).
  bool shutdown_server(double timeout_s);

  bool connected() const;
  void close();

 private:
  void reader_loop();

  int fd_ = -1;
  std::thread reader_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Completion> completions_;
  std::optional<StatsResponse> stats_;
  bool shutdown_acked_ = false;
  bool reader_done_ = false;

  std::mutex write_mutex_;
};

/// Open-loop load profile for run_open_loop.
struct LoadOptions {
  double qps = 50.0;          ///< offered request rate
  double duration_s = 2.0;    ///< send window
  std::uint32_t count = 16;   ///< samples per request
  std::uint64_t seed_base = 1;  ///< request i uses seed_base + i
  double timeout_s = 30.0;    ///< per-response wait bound
};

/// What one load level measured.
struct LoadReport {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  ///< completed / wall
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;   ///< timeouts, write failures, non-OK statuses
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double mean_batch_requests = 0.0;  ///< mean co-batched occupancy
  double wall_s = 0.0;

  std::string to_json() const;
};

/// Drive `client` open-loop at options.qps for options.duration_s: requests
/// fire on a fixed schedule regardless of response progress, then all
/// responses are awaited. Latency = response received - scheduled send.
LoadReport run_open_loop(ServeClient& client, const LoadOptions& options);

}  // namespace cellgan::serve
