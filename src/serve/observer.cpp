#include "serve/observer.hpp"

namespace cellgan::serve {

void ServeObserver::record_request(const core::ServeRequestRecord& record) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    stats_.samples += record.count;
    stats_.total_queue_us += record.queue_us;
    stats_.total_forward_us += record.forward_us;
  }
  if (bus_ != nullptr) bus_->serve_request(record);
}

void ServeObserver::record_batch(const core::ServeBatchRecord& record) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.batches;
  }
  if (bus_ != nullptr) bus_->serve_batch(record);
}

ServeStats ServeObserver::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cellgan::serve
