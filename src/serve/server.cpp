#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/expect.hpp"
#include "common/log.hpp"

namespace cellgan::serve {

namespace {

/// Exact wire size of a SampleRequest payload (request_id + seed + count).
constexpr std::size_t kSampleRequestBytes = 8 + 8 + 4;

}  // namespace

Server::Server(ServerOptions options, core::EventBus* bus)
    : options_(std::move(options)),
      observer_(bus),
      cache_(options_.cache_capacity),
      batcher_(options_.batch, &observer_) {}

Server::~Server() { drain_and_stop(); }

bool Server::start(std::string* error) {
  CG_EXPECT(listen_fd_ < 0);  // start() once

  const auto endpoint = minimpi::Endpoint::parse(options_.listen, error);
  if (!endpoint) return false;

  // Warm the cache before accepting: a server that cannot restore its model
  // should fail fast, not answer its first request with kModelError.
  const auto warm = cache_.get(options_.checkpoint);
  if (warm.model == nullptr) {
    if (error != nullptr) *error = warm.error;
    return false;
  }

  listen_fd_ = minimpi::listen_on(*endpoint, error);
  if (listen_fd_ < 0) return false;
  endpoint_ = minimpi::local_endpoint_of(listen_fd_);
  started_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

double Server::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_)
      .count();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, 100);
    if (n <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connections_.push_back(conn);
    readers_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

void Server::serve_connection(std::shared_ptr<Connection> conn) {
  for (;;) {
    Message msg;
    try {
      if (!recv_message(conn->fd, &msg)) return;  // orderly close
    } catch (const ProtocolError& e) {
      // Malformed traffic or teardown-induced mid-frame EOF: drop the
      // connection (the transport offers no way to resynchronize a stream).
      if (!stopping_.load()) {
        common::log_warn() << "serve: " << e.what();
      }
      return;
    }
    switch (msg.type) {
      case MsgType::kSampleRequest: {
        if (msg.payload.size() != kSampleRequestBytes) {
          common::log_warn() << "serve: sample request with malformed payload; closing";
          return;
        }
        handle_sample(conn, SampleRequest::deserialize(msg.payload));
        break;
      }
      case MsgType::kStatsRequest: {
        const auto payload = stats_snapshot().serialize();
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        send_message(conn->fd, MsgType::kStatsResponse, payload);
        break;
      }
      case MsgType::kShutdownRequest: {
        // Ack means "accepted, will drain": every request already read off
        // this (or any) connection still gets its response, because
        // drain_and_stop() completes the batcher before closing sockets.
        shutdown_requested_.store(true);
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        send_message(conn->fd, MsgType::kShutdownAck, {});
        break;
      }
      default:
        common::log_warn() << "serve: unexpected message type on socket; closing";
        return;
    }
  }
}

void Server::handle_sample(const std::shared_ptr<Connection>& conn,
                           const SampleRequest& request) {
  SampleResponse reject;
  reject.request_id = request.request_id;

  if (draining_.load()) {
    reject.status = static_cast<std::uint32_t>(SampleStatus::kShuttingDown);
    reject.error = "server is draining";
    rejected_.fetch_add(1);
    send_response(conn, reject);
    return;
  }
  if (request.count < 1 || request.count > options_.max_samples_per_request) {
    reject.status = static_cast<std::uint32_t>(SampleStatus::kBadRequest);
    reject.error = "count must be in [1, " +
                   std::to_string(options_.max_samples_per_request) + "]";
    rejected_.fetch_add(1);
    send_response(conn, reject);
    return;
  }

  // Per-request lookup revalidates the checkpoint's mtime, so a server
  // whose trainer overwrote the file serves the new snapshot from the next
  // batch boundary on.
  const auto lookup = cache_.get(options_.checkpoint);
  if (lookup.model == nullptr) {
    reject.status = static_cast<std::uint32_t>(SampleStatus::kModelError);
    reject.error = lookup.error;
    rejected_.fetch_add(1);
    send_response(conn, reject);
    return;
  }

  SampleJob job;
  job.id = request.request_id;
  job.seed = request.seed;
  job.count = request.count;
  job.model = lookup.model;
  job.cache_hit = lookup.hit;
  job.done = [this, conn, id = request.request_id](SampleOutcome outcome) {
    SampleResponse response;
    response.request_id = id;
    response.status = static_cast<std::uint32_t>(SampleStatus::kOk);
    response.rows = static_cast<std::uint32_t>(outcome.samples.rows());
    response.cols = static_cast<std::uint32_t>(outcome.samples.cols());
    const auto data = outcome.samples.data();
    response.samples.assign(data.begin(), data.end());
    response.batch_requests = outcome.batch_requests;
    response.queue_us = outcome.queue_us;
    response.forward_us = outcome.forward_us;
    send_response(conn, response);
  };
  if (!batcher_.enqueue(std::move(job))) {
    reject.status = static_cast<std::uint32_t>(SampleStatus::kShuttingDown);
    reject.error = "server is draining";
    rejected_.fetch_add(1);
    send_response(conn, reject);
  }
}

void Server::send_response(const std::shared_ptr<Connection>& conn,
                           const SampleResponse& response) {
  const auto payload = response.serialize();
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  // A send failure means the client is gone; its response is undeliverable
  // by definition, so there is nothing further to do.
  send_message(conn->fd, MsgType::kSampleResponse, payload);
}

StatsResponse Server::stats_snapshot() const {
  const ServeStats aggregate = observer_.stats();
  StatsResponse stats;
  stats.requests = aggregate.requests;
  stats.samples = aggregate.samples;
  stats.batches = aggregate.batches;
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_evictions = cache_.evictions();
  stats.rejected = rejected_.load();
  stats.uptime_s = uptime_s();
  stats.total_queue_us = aggregate.total_queue_us;
  stats.total_forward_us = aggregate.total_forward_us;
  return stats;
}

void Server::drain_and_stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;

  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Drain first: every job already accepted completes and its response is
  // written over the still-open connection...
  draining_.store(true);
  batcher_.drain_and_stop();

  // ...then unblock the readers (shutdown() wakes blocked read()s with EOF)
  // and tear the sockets down.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto& conn : connections_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();
  readers_.clear();
}

}  // namespace cellgan::serve
