#include "serve/model_cache.hpp"

#include <exception>
#include <system_error>
#include <utility>

#include "common/expect.hpp"
#include "core/checkpoint.hpp"

namespace cellgan::serve {

ModelCache::ModelCache(std::size_t capacity) : capacity_(capacity) {
  CG_EXPECT(capacity_ >= 1);
}

ModelCache::Lookup ModelCache::get(const std::string& checkpoint_path) {
  Lookup result;

  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(checkpoint_path, ec);
  if (ec) {
    result.error = "cannot stat checkpoint '" + checkpoint_path +
                   "': " + ec.message();
    return result;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->path != checkpoint_path) continue;
    if (it->mtime == mtime) {
      entries_.splice(entries_.begin(), entries_, it);  // LRU touch
      ++hits_;
      result.model = entries_.front().model;
      result.hit = true;
      return result;
    }
    // The file changed under us: the stale model must not serve another
    // request. Drop it and fall through to a fresh load.
    entries_.erase(it);
    break;
  }

  ++misses_;
  auto snapshot = core::load_checkpoint(checkpoint_path);
  if (!snapshot) {
    result.error = "cannot load checkpoint '" + checkpoint_path + "'";
    return result;
  }
  try {
    result.model = std::make_shared<core::CheckpointMixture>(*snapshot);
  } catch (const std::exception& e) {
    result.error = "malformed checkpoint '" + checkpoint_path + "': " + e.what();
    return result;
  }
  entries_.push_front(Entry{checkpoint_path, mtime, result.model});
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    ++evictions_;
  }
  return result;
}

std::size_t ModelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ModelCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ModelCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ModelCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace cellgan::serve
