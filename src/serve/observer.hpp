// Serving telemetry: aggregates lifetime counters for the STATS frame and
// republishes per-request / per-batch records onto a core::EventBus, so the
// serving plane writes into the same JSONL telemetry stream as training
// (JsonlTelemetrySink's serve_request / serve_batch events).
#pragma once

#include <cstdint>
#include <mutex>

#include "core/observer.hpp"

namespace cellgan::serve {

/// Lifetime aggregates of one serving process.
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t samples = 0;
  std::uint64_t batches = 0;
  double total_queue_us = 0.0;
  double total_forward_us = 0.0;
};

class ServeObserver {
 public:
  /// `bus` may be null (aggregation only). The bus is NOT thread-safe; the
  /// record_* methods must be called from one thread only — the batcher's
  /// single worker honors this.
  explicit ServeObserver(core::EventBus* bus = nullptr) : bus_(bus) {}

  void record_request(const core::ServeRequestRecord& record);
  void record_batch(const core::ServeBatchRecord& record);

  /// Thread-safe snapshot (read by connection threads answering STATS).
  ServeStats stats() const;

 private:
  core::EventBus* bus_;
  mutable std::mutex mutex_;
  ServeStats stats_;
};

}  // namespace cellgan::serve
