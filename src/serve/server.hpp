// cellgan serving daemon core: restore a mixture from a checkpoint, accept
// sample requests over framed TCP, micro-batch them into shared forward
// passes, answer with bit-reproducible samples.
//
// Threading: one poll-based accept loop thread; one reader thread per
// connection (requests on one connection are processed in arrival order —
// the ordering the SHUTDOWN drain test relies on); the batcher's single
// worker executes forwards and completes responses through per-connection
// write locks, so pipelined responses never interleave bytes.
//
// Shutdown is drain-first: a SHUTDOWN frame (or the daemon's SIGINT/SIGTERM
// handler) only *requests* the stop. drain_and_stop() then stops accepting,
// lets the batcher finish every queued job — responses flush over the still
// open connections — and only then tears the sockets down. Requests that
// arrive after draining began are answered kShuttingDown, never dropped.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "minimpi/bootstrap.hpp"
#include "serve/batcher.hpp"
#include "serve/model_cache.hpp"
#include "serve/observer.hpp"
#include "serve/protocol.hpp"

namespace cellgan::serve {

struct ServerOptions {
  std::string listen = "127.0.0.1:0";  ///< port 0 = ephemeral
  std::string checkpoint;              ///< required: the model file to serve
  BatchPolicy batch;
  std::size_t cache_capacity = 4;
  std::uint32_t max_samples_per_request = 4096;
};

class Server {
 public:
  /// `bus` may be null (no JSONL telemetry); if set it must outlive the
  /// server and is only published to from the batcher's worker thread.
  explicit Server(ServerOptions options, core::EventBus* bus = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, warm-load the checkpoint into the cache, start the accept loop.
  /// False (with `error`) when the endpoint cannot be bound or the
  /// checkpoint cannot be restored.
  bool start(std::string* error);

  /// The bound address (resolves an ephemeral port). Valid after start().
  minimpi::Endpoint endpoint() const { return endpoint_; }

  /// True once a SHUTDOWN frame arrived — the daemon's main loop polls this
  /// and calls drain_and_stop().
  bool shutdown_requested() const { return shutdown_requested_.load(); }

  /// Drain-first stop; see file comment. Idempotent.
  void drain_and_stop();

  const ModelCache& cache() const { return cache_; }
  const ServeObserver& observer() const { return observer_; }
  std::uint64_t rejected() const { return rejected_.load(); }
  double uptime_s() const;

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
  };

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> conn);
  void handle_sample(const std::shared_ptr<Connection>& conn,
                     const SampleRequest& request);
  void send_response(const std::shared_ptr<Connection>& conn,
                     const SampleResponse& response);
  StatsResponse stats_snapshot() const;

  ServerOptions options_;
  ServeObserver observer_;
  ModelCache cache_;
  Batcher batcher_;

  int listen_fd_ = -1;
  minimpi::Endpoint endpoint_;
  std::chrono::steady_clock::time_point started_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> rejected_{0};

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
  bool stopped_ = false;
  std::mutex stop_mutex_;
};

}  // namespace cellgan::serve
