#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>

#include "common/serialize.hpp"
#include "minimpi/bootstrap.hpp"
#include "minimpi/transport.hpp"

namespace cellgan::serve {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kSampleRequest: return "sample_request";
    case MsgType::kSampleResponse: return "sample_response";
    case MsgType::kStatsRequest: return "stats_request";
    case MsgType::kStatsResponse: return "stats_response";
    case MsgType::kShutdownRequest: return "shutdown_request";
    case MsgType::kShutdownAck: return "shutdown_ack";
  }
  return "unknown";
}

std::vector<std::uint8_t> SampleRequest::serialize() const {
  common::ByteWriter w;
  w.write(request_id);
  w.write(seed);
  w.write(count);
  return w.take();
}

SampleRequest SampleRequest::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  SampleRequest req;
  req.request_id = r.read<std::uint64_t>();
  req.seed = r.read<std::uint64_t>();
  req.count = r.read<std::uint32_t>();
  CG_ENSURE(r.exhausted());
  return req;
}

std::vector<std::uint8_t> SampleResponse::serialize() const {
  common::ByteWriter w;
  w.write(request_id);
  w.write(status);
  w.write_string(error);
  w.write(rows);
  w.write(cols);
  w.write_vector(samples);
  w.write(batch_requests);
  w.write(queue_us);
  w.write(forward_us);
  return w.take();
}

SampleResponse SampleResponse::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  SampleResponse resp;
  resp.request_id = r.read<std::uint64_t>();
  resp.status = r.read<std::uint32_t>();
  resp.error = r.read_string();
  resp.rows = r.read<std::uint32_t>();
  resp.cols = r.read<std::uint32_t>();
  resp.samples = r.read_vector<float>();
  resp.batch_requests = r.read<std::uint32_t>();
  resp.queue_us = r.read<double>();
  resp.forward_us = r.read<double>();
  CG_ENSURE(r.exhausted());
  return resp;
}

std::vector<std::uint8_t> StatsResponse::serialize() const {
  common::ByteWriter w;
  w.write(requests);
  w.write(samples);
  w.write(batches);
  w.write(cache_hits);
  w.write(cache_misses);
  w.write(cache_evictions);
  w.write(rejected);
  w.write(uptime_s);
  w.write(total_queue_us);
  w.write(total_forward_us);
  return w.take();
}

StatsResponse StatsResponse::deserialize(std::span<const std::uint8_t> bytes) {
  common::ByteReader r(bytes);
  StatsResponse stats;
  stats.requests = r.read<std::uint64_t>();
  stats.samples = r.read<std::uint64_t>();
  stats.batches = r.read<std::uint64_t>();
  stats.cache_hits = r.read<std::uint64_t>();
  stats.cache_misses = r.read<std::uint64_t>();
  stats.cache_evictions = r.read<std::uint64_t>();
  stats.rejected = r.read<std::uint64_t>();
  stats.uptime_s = r.read<double>();
  stats.total_queue_us = r.read<double>();
  stats.total_forward_us = r.read<double>();
  CG_ENSURE(r.exhausted());
  return stats;
}

bool send_message(int fd, MsgType type, std::span<const std::uint8_t> payload) {
  minimpi::Frame frame;
  frame.context_key = kServeContextKey;
  frame.tag = static_cast<std::int32_t>(type);
  frame.payload.assign(payload.begin(), payload.end());
  const auto wire = minimpi::encode_frame(frame);
  return minimpi::write_all(fd, wire.data(), wire.size());
}

bool recv_message(int fd, Message* out) {
  std::uint8_t header[minimpi::kFrameHeaderBytes];
  std::size_t got = 0;
  if (!minimpi::read_exact(fd, header, sizeof(header), &got)) {
    if (got == 0) return false;  // orderly close between messages
    throw ProtocolError("serve: connection lost mid-header (" +
                        std::to_string(got) + " of " +
                        std::to_string(sizeof(header)) + " bytes)");
  }
  minimpi::Frame frame;
  std::uint64_t payload_len = 0;
  const auto status = minimpi::decode_frame_header(
      std::span<const std::uint8_t>(header, sizeof(header)), &frame,
      &payload_len);
  if (status != minimpi::FrameDecodeStatus::kOk) {
    throw ProtocolError(std::string("serve: bad frame header: ") +
                        minimpi::to_string(status));
  }
  if (frame.context_key != kServeContextKey) {
    throw ProtocolError("serve: frame for foreign context key");
  }
  out->type = static_cast<MsgType>(frame.tag);
  out->payload.resize(payload_len);
  if (payload_len > 0 &&
      !minimpi::read_exact(fd, out->payload.data(), out->payload.size())) {
    throw ProtocolError("serve: connection lost mid-payload");
  }
  return true;
}

}  // namespace cellgan::serve
