#include "serve/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/expect.hpp"

namespace cellgan::serve {

ServeClient::~ServeClient() { close(); }

bool ServeClient::connect(const minimpi::Endpoint& endpoint, double timeout_s,
                          std::string* error) {
  CG_EXPECT(fd_ < 0);
  fd_ = minimpi::connect_with_retry(endpoint, timeout_s, error);
  if (fd_ < 0) return false;
  reader_ = std::thread([this] { reader_loop(); });
  return true;
}

bool ServeClient::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fd_ >= 0 && !reader_done_;
}

void ServeClient::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  if (reader_.joinable()) reader_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t ServeClient::send_request(std::uint64_t seed,
                                        std::uint32_t count) {
  SampleRequest request;
  request.seed = seed;
  request.count = count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 || reader_done_) return 0;
    request.request_id = next_id_++;
  }
  const auto payload = request.serialize();
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (!send_message(fd_, MsgType::kSampleRequest, payload)) return 0;
  return request.request_id;
}

bool ServeClient::wait(std::uint64_t id, Completion* out, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    const auto it = completions_.find(id);
    if (it != completions_.end()) {
      if (out != nullptr) *out = it->second;
      completions_.erase(it);
      return true;
    }
    if (reader_done_) return false;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        completions_.find(id) == completions_.end()) {
      return false;
    }
  }
}

bool ServeClient::stats(StatsResponse* out, double timeout_s) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.reset();
  }
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!send_message(fd_, MsgType::kStatsRequest, {})) return false;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_until(lock, deadline,
                 [&] { return stats_.has_value() || reader_done_; });
  if (!stats_.has_value()) return false;
  if (out != nullptr) *out = *stats_;
  return true;
}

bool ServeClient::shutdown_server(double timeout_s) {
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!send_message(fd_, MsgType::kShutdownRequest, {})) return false;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_until(lock, deadline,
                 [&] { return shutdown_acked_ || reader_done_; });
  return shutdown_acked_;
}

void ServeClient::reader_loop() {
  for (;;) {
    Message msg;
    bool alive = false;
    try {
      alive = recv_message(fd_, &msg);
    } catch (const ProtocolError&) {
      alive = false;  // torn-down connection or corrupt stream: stop reading
    }
    if (!alive) break;
    std::lock_guard<std::mutex> lock(mutex_);
    switch (msg.type) {
      case MsgType::kSampleResponse: {
        Completion completion;
        completion.response = SampleResponse::deserialize(msg.payload);
        completion.received = std::chrono::steady_clock::now();
        completions_[completion.response.request_id] = std::move(completion);
        break;
      }
      case MsgType::kStatsResponse:
        stats_ = StatsResponse::deserialize(msg.payload);
        break;
      case MsgType::kShutdownAck:
        shutdown_acked_ = true;
        break;
      default:
        break;  // unknown server message: ignore
    }
    cv_.notify_all();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  reader_done_ = true;
  cv_.notify_all();
}

namespace {

double percentile_ms(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

void append_number(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out += buffer;
}

}  // namespace

std::string LoadReport::to_json() const {
  std::string out = "{\"offered_qps\":";
  append_number(out, offered_qps);
  out += ",\"achieved_qps\":";
  append_number(out, achieved_qps);
  out += ",\"sent\":" + std::to_string(sent);
  out += ",\"completed\":" + std::to_string(completed);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"p50_ms\":";
  append_number(out, p50_ms);
  out += ",\"p95_ms\":";
  append_number(out, p95_ms);
  out += ",\"p99_ms\":";
  append_number(out, p99_ms);
  out += ",\"mean_ms\":";
  append_number(out, mean_ms);
  out += ",\"max_ms\":";
  append_number(out, max_ms);
  out += ",\"mean_batch_requests\":";
  append_number(out, mean_batch_requests);
  out += ",\"wall_s\":";
  append_number(out, wall_s);
  out += "}";
  return out;
}

LoadReport run_open_loop(ServeClient& client, const LoadOptions& options) {
  CG_EXPECT(options.qps > 0.0 && options.duration_s > 0.0);
  using clock = std::chrono::steady_clock;

  LoadReport report;
  report.offered_qps = options.qps;

  const auto interval =
      std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(
          1.0 / options.qps));
  const auto total = static_cast<std::uint64_t>(
      std::max(1.0, std::floor(options.qps * options.duration_s)));

  struct Pending {
    std::uint64_t id = 0;  ///< 0 = send failed
    clock::time_point scheduled;
  };
  std::vector<Pending> pending;
  pending.reserve(total);

  const auto start = clock::now();
  for (std::uint64_t i = 0; i < total; ++i) {
    const auto scheduled = start + interval * i;
    std::this_thread::sleep_until(scheduled);
    Pending p;
    p.scheduled = scheduled;  // open loop: debit from the schedule, not now
    p.id = client.send_request(options.seed_base + i, options.count);
    pending.push_back(p);
    ++report.sent;
  }

  std::vector<double> latencies_ms;
  latencies_ms.reserve(pending.size());
  double batch_sum = 0.0;
  for (const auto& p : pending) {
    ServeClient::Completion completion;
    if (p.id == 0 || !client.wait(p.id, &completion, options.timeout_s) ||
        !completion.response.ok()) {
      ++report.failed;
      continue;
    }
    ++report.completed;
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(completion.received -
                                                  p.scheduled)
            .count());
    batch_sum += completion.response.batch_requests;
  }
  report.wall_s = std::chrono::duration<double>(clock::now() - start).count();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  report.p50_ms = percentile_ms(latencies_ms, 0.50);
  report.p95_ms = percentile_ms(latencies_ms, 0.95);
  report.p99_ms = percentile_ms(latencies_ms, 0.99);
  if (!latencies_ms.empty()) {
    double sum = 0.0;
    for (const double v : latencies_ms) sum += v;
    report.mean_ms = sum / static_cast<double>(latencies_ms.size());
    report.max_ms = latencies_ms.back();
  }
  if (report.completed > 0) {
    report.mean_batch_requests =
        batch_sum / static_cast<double>(report.completed);
  }
  if (report.wall_s > 0.0) {
    report.achieved_qps =
        static_cast<double>(report.completed) / report.wall_s;
  }
  return report;
}

}  // namespace cellgan::serve
