#include "serve/batcher.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/expect.hpp"

namespace cellgan::serve {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

Batcher::Batcher(BatchPolicy policy, ServeObserver* observer)
    : policy_(policy), observer_(observer) {
  CG_EXPECT(policy_.max_batch >= 1);
  worker_ = std::thread([this] { worker(); });
}

Batcher::~Batcher() { drain_and_stop(); }

bool Batcher::enqueue(SampleJob job) {
  CG_EXPECT(job.model != nullptr && job.count >= 1);
  job.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return false;
    queue_.push_back(std::move(job));
  }
  cv_.notify_all();
  return true;
}

void Batcher::drain_and_stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::uint64_t Batcher::batches_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batch_id_;
}

std::deque<SampleJob> Batcher::next_batch(std::unique_lock<std::mutex>& lock) {
  cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
  if (queue_.empty()) return {};  // draining and nothing left

  // Jobs co-batch only when they share a model instance (one forward pass
  // per generator serves them all); a model boundary closes the batch.
  const auto ready = [&] {
    std::size_t n = 0;
    const auto* model = queue_.front().model.get();
    for (const auto& job : queue_) {
      if (job.model.get() != model || n >= policy_.max_batch) break;
      ++n;
    }
    return n;
  };

  const auto deadline =
      queue_.front().enqueued + std::chrono::microseconds(policy_.max_delay_us);
  while (!draining_ && ready() < policy_.max_batch) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }

  std::deque<SampleJob> batch;
  const auto* model = queue_.front().model.get();
  while (!queue_.empty() && batch.size() < policy_.max_batch &&
         queue_.front().model.get() == model) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

void Batcher::run_batch(std::deque<SampleJob> batch) {
  using clock = std::chrono::steady_clock;
  const auto closed = clock::now();
  const auto model = batch.front().model;
  const std::size_t generators = model->generators();
  const std::size_t latent_dim = model->latent_dim();
  const std::size_t image_dim = model->image_dim();

  // Each job's stochastic draw on its own Rng(seed) stream — this is what
  // makes the result independent of which jobs shared the batch.
  std::vector<core::MixtureDraw> draws;
  draws.reserve(batch.size());
  std::uint32_t batch_samples = 0;
  for (const auto& job : batch) {
    draws.push_back(model->plan(job.count, job.seed));
    batch_samples += job.count;
  }

  std::vector<tensor::Tensor> outputs;
  outputs.reserve(batch.size());
  for (const auto& job : batch) {
    outputs.emplace_back(job.count, image_dim);
  }

  const auto forward_start = clock::now();
  for (std::size_t g = 0; g < generators; ++g) {
    std::size_t total_rows = 0;
    for (const auto& draw : draws) total_rows += draw.rows_of[g].size();
    if (total_rows == 0) continue;

    // Stack every job's latents for this generator, job order preserved.
    tensor::Tensor stacked(total_rows, latent_dim);
    std::size_t offset = 0;
    for (const auto& draw : draws) {
      const std::size_t n = draw.rows_of[g].size();
      if (n == 0) continue;
      const auto src = draw.latents[g].data();
      std::copy(src.begin(), src.end(),
                stacked.data().begin() +
                    static_cast<std::ptrdiff_t>(offset * latent_dim));
      offset += n;
    }

    const tensor::Tensor images = model->forward(g, stacked);

    // Scatter each job's slice back into its own output tensor.
    offset = 0;
    for (std::size_t j = 0; j < batch.size(); ++j) {
      const auto& rows_of = draws[j].rows_of[g];
      for (std::size_t k = 0; k < rows_of.size(); ++k) {
        const auto src = images.row_span(offset + k);
        auto dst = outputs[j].row_span(rows_of[k]);
        std::copy(src.begin(), src.end(), dst.begin());
      }
      offset += rows_of.size();
    }
  }
  const auto finished = clock::now();
  const double forward_us = elapsed_us(forward_start, finished);

  std::uint64_t batch_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_id = ++batch_id_;
  }

  if (observer_ != nullptr) {
    core::ServeBatchRecord record;
    record.batch_id = batch_id;
    record.requests = static_cast<std::uint32_t>(batch.size());
    record.samples = batch_samples;
    record.delay_us = elapsed_us(batch.front().enqueued, closed);
    record.forward_us = forward_us;
    observer_->record_batch(record);
  }

  for (std::size_t j = 0; j < batch.size(); ++j) {
    auto& job = batch[j];
    SampleOutcome outcome;
    outcome.samples = std::move(outputs[j]);
    outcome.batch_requests = static_cast<std::uint32_t>(batch.size());
    outcome.batch_samples = batch_samples;
    outcome.queue_us = elapsed_us(job.enqueued, closed);
    outcome.forward_us = forward_us;
    outcome.total_us = elapsed_us(job.enqueued, clock::now());
    if (observer_ != nullptr) {
      core::ServeRequestRecord record;
      record.request_id = job.id;
      record.count = job.count;
      record.batch_requests = outcome.batch_requests;
      record.batch_samples = batch_samples;
      record.queue_us = outcome.queue_us;
      record.forward_us = outcome.forward_us;
      record.total_us = outcome.total_us;
      record.cache_hit = job.cache_hit;
      observer_->record_request(record);
    }
    if (job.done) job.done(std::move(outcome));
  }
}

void Batcher::worker() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto batch = next_batch(lock);
    if (batch.empty()) return;
    lock.unlock();
    run_batch(std::move(batch));
    lock.lock();
  }
}

}  // namespace cellgan::serve
