// IDX file format (the MNIST distribution format): big-endian magic +
// dimension sizes, then raw unsigned bytes. Reader and writer are both
// provided so the loader can be round-trip tested without shipping the
// (non-redistributable here) original files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cellgan::data {

struct IdxImages {
  std::uint32_t count = 0;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<std::uint8_t> pixels;  // count*rows*cols bytes, row-major
};

/// Read an idx3-ubyte image file. Returns false (and logs) on open/parse error.
bool read_idx_images(const std::string& path, IdxImages& out);

/// Read an idx1-ubyte label file.
bool read_idx_labels(const std::string& path, std::vector<std::uint8_t>& out);

/// Write an idx3-ubyte image file. Returns false on I/O error.
bool write_idx_images(const std::string& path, const IdxImages& images);

/// Write an idx1-ubyte label file.
bool write_idx_labels(const std::string& path, const std::vector<std::uint8_t>& labels);

}  // namespace cellgan::data
