// Labeled image dataset.
//
// Images are stored as an (n x 784) tensor with pixel values in [-1, 1]
// (matching the generator's tanh output range, as in Lipizzaner's MNIST
// pipeline). Labels are digit classes 0..9.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::data {

inline constexpr std::size_t kImageSide = 28;
inline constexpr std::size_t kImageDim = kImageSide * kImageSide;
inline constexpr std::size_t kNumClasses = 10;

struct Dataset {
  tensor::Tensor images;               // n x 784, values in [-1, 1]
  std::vector<std::uint32_t> labels;   // n entries, 0..9

  std::size_t size() const { return images.rows(); }

  /// Copy of samples [begin, end).
  Dataset slice(std::size_t begin, std::size_t end) const;

  /// Uniform random subsample of `count` items (without replacement).
  Dataset subsample(std::size_t count, common::Rng& rng) const;

  /// Per-class counts (histogram over labels).
  std::vector<std::size_t> class_histogram() const;
};

/// Load the four MNIST IDX files (train-images-idx3-ubyte,
/// train-labels-idx1-ubyte, t10k-images-idx3-ubyte, t10k-labels-idx1-ubyte)
/// from `dir`. On failure returns nullopt and, when `error` is non-null,
/// writes a message naming the missing or malformed files so callers can
/// surface an actionable diagnostic instead of silently falling back.
std::optional<std::pair<Dataset, Dataset>> load_mnist_idx(const std::string& dir,
                                                          std::string* error = nullptr);

/// Load MNIST from IDX files when they exist at `dir` (train-images-idx3-ubyte
/// etc.); otherwise synthesize a procedural stand-in with the same shape
/// (see synthetic_mnist.hpp and DESIGN.md §1). Returns {train, test}.
std::pair<Dataset, Dataset> load_mnist_or_synthetic(const std::string& dir,
                                                    std::size_t synthetic_train,
                                                    std::size_t synthetic_test,
                                                    std::uint64_t seed);

/// Area-average the square images of a dataset down to new_side x new_side
/// (used to feed reduced architectures in tests and wall-clock benchmarks).
Dataset downsampled(const Dataset& dataset, std::size_t new_side);

}  // namespace cellgan::data
