#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/log.hpp"
#include "data/idx.hpp"
#include "data/synthetic_mnist.hpp"

namespace cellgan::data {

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  CG_EXPECT(begin <= end && end <= size());
  Dataset out;
  out.images = images.slice_rows(begin, end);
  out.labels.assign(labels.begin() + begin, labels.begin() + end);
  return out;
}

Dataset Dataset::subsample(std::size_t count, common::Rng& rng) const {
  CG_EXPECT(count <= size());
  std::vector<std::uint32_t> perm(size());
  for (std::size_t i = 0; i < size(); ++i) perm[i] = static_cast<std::uint32_t>(i);
  rng.shuffle(perm);
  Dataset out;
  out.images = tensor::Tensor(count, images.cols());
  out.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto src = images.row_span(perm[i]);
    auto dst = out.images.row_span(i);
    std::copy(src.begin(), src.end(), dst.begin());
    out.labels[i] = labels[perm[i]];
  }
  return out;
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(kNumClasses, 0);
  for (const auto y : labels) {
    CG_EXPECT(y < kNumClasses);
    ++hist[y];
  }
  return hist;
}

namespace {

bool load_idx_pair(const std::string& image_path, const std::string& label_path,
                   Dataset& out) {
  IdxImages raw;
  std::vector<std::uint8_t> raw_labels;
  if (!read_idx_images(image_path, raw) || !read_idx_labels(label_path, raw_labels)) {
    return false;
  }
  if (raw.count != raw_labels.size() || raw.rows != kImageSide || raw.cols != kImageSide) {
    common::log_warn() << "idx: unexpected shape in " << image_path;
    return false;
  }
  out.images = tensor::Tensor(raw.count, kImageDim);
  out.labels.assign(raw_labels.begin(), raw_labels.end());
  for (std::size_t i = 0; i < raw.count; ++i) {
    auto row = out.images.row_span(i);
    for (std::size_t j = 0; j < kImageDim; ++j) {
      // bytes 0..255 -> [-1, 1]
      row[j] = static_cast<float>(raw.pixels[i * kImageDim + j]) / 127.5f - 1.0f;
    }
  }
  return true;
}

bool file_exists(const std::string& path) { return std::ifstream(path).good(); }

}  // namespace

std::optional<std::pair<Dataset, Dataset>> load_mnist_idx(const std::string& dir,
                                                          std::string* error) {
  const char* names[] = {"train-images-idx3-ubyte", "train-labels-idx1-ubyte",
                         "t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte"};
  std::string missing;
  for (const char* name : names) {
    if (!file_exists(dir + "/" + name)) {
      if (!missing.empty()) missing += ", ";
      missing += name;
    }
  }
  if (!missing.empty()) {
    if (error != nullptr) {
      *error = "MNIST IDX files missing under '" + dir + "': " + missing;
    }
    return std::nullopt;
  }
  Dataset train, test;
  if (!load_idx_pair(dir + "/train-images-idx3-ubyte",
                     dir + "/train-labels-idx1-ubyte", train)) {
    if (error != nullptr) {
      *error = "MNIST IDX train pair under '" + dir +
               "' is unreadable or has an unexpected shape (want " +
               std::to_string(kImageSide) + "x" + std::to_string(kImageSide) +
               " images with matching label count)";
    }
    return std::nullopt;
  }
  if (!load_idx_pair(dir + "/t10k-images-idx3-ubyte",
                     dir + "/t10k-labels-idx1-ubyte", test)) {
    if (error != nullptr) {
      *error = "MNIST IDX test pair under '" + dir +
               "' is unreadable or has an unexpected shape";
    }
    return std::nullopt;
  }
  return std::make_pair(std::move(train), std::move(test));
}

Dataset downsampled(const Dataset& dataset, std::size_t new_side) {
  const std::size_t old_dim = dataset.images.cols();
  const auto old_side = static_cast<std::size_t>(std::lround(std::sqrt(
      static_cast<double>(old_dim))));
  CG_EXPECT(old_side * old_side == old_dim);
  CG_EXPECT(new_side >= 1 && new_side <= old_side);
  if (new_side == old_side) return dataset;

  Dataset out;
  out.labels = dataset.labels;
  out.images = tensor::Tensor(dataset.size(), new_side * new_side);
  const double scale = static_cast<double>(old_side) / static_cast<double>(new_side);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    auto src = dataset.images.row_span(i);
    auto dst = out.images.row_span(i);
    for (std::size_t ty = 0; ty < new_side; ++ty) {
      const auto y0 = static_cast<std::size_t>(ty * scale);
      const auto y1 = std::min(old_side, static_cast<std::size_t>((ty + 1) * scale) + 1);
      for (std::size_t tx = 0; tx < new_side; ++tx) {
        const auto x0 = static_cast<std::size_t>(tx * scale);
        const auto x1 =
            std::min(old_side, static_cast<std::size_t>((tx + 1) * scale) + 1);
        double acc = 0.0;
        for (std::size_t y = y0; y < y1; ++y) {
          for (std::size_t x = x0; x < x1; ++x) acc += src[y * old_side + x];
        }
        dst[ty * new_side + tx] =
            static_cast<float>(acc / static_cast<double>((y1 - y0) * (x1 - x0)));
      }
    }
  }
  return out;
}

std::pair<Dataset, Dataset> load_mnist_or_synthetic(const std::string& dir,
                                                    std::size_t synthetic_train,
                                                    std::size_t synthetic_test,
                                                    std::uint64_t seed) {
  if (!dir.empty()) {
    if (auto loaded = load_mnist_idx(dir)) {
      common::log_info() << "loaded real MNIST from " << dir;
      return std::move(*loaded);
    }
  }
  common::log_info() << "MNIST IDX files not found; using synthetic stand-in ("
                     << synthetic_train << " train / " << synthetic_test << " test)";
  return {make_synthetic_mnist(synthetic_train, seed),
          make_synthetic_mnist(synthetic_test, seed + 1)};
}

}  // namespace cellgan::data
