// PGM (portable graymap) export, used by the examples to dump generated
// samples in a format viewable without any image library.
#pragma once

#include <span>
#include <string>

namespace cellgan::data {

/// Write one 28x28 image (784 floats in [-1,1]) as a binary PGM file.
bool write_pgm(const std::string& path, std::span<const float> image);

/// Tile `count` images (each 784 floats in [-1,1], contiguous) into a grid of
/// `tiles_per_row` columns and write as one PGM.
bool write_pgm_grid(const std::string& path, std::span<const float> images,
                    std::size_t count, std::size_t tiles_per_row);

/// Arbitrary-resolution variant: each image is side x side floats.
bool write_pgm_grid_sized(const std::string& path, std::span<const float> images,
                          std::size_t count, std::size_t tiles_per_row,
                          std::size_t side);

/// Render an image as ASCII art (for terminal quickstart output).
std::string ascii_art(std::span<const float> image);

/// Arbitrary-resolution ASCII art.
std::string ascii_art_sized(std::span<const float> image, std::size_t side);

}  // namespace cellgan::data
