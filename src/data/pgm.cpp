#include "data/pgm.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/expect.hpp"
#include "data/dataset.hpp"

namespace cellgan::data {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::uint8_t to_byte(float v) {
  const float clamped = std::clamp((v + 1.0f) * 0.5f, 0.0f, 1.0f);
  return static_cast<std::uint8_t>(clamped * 255.0f + 0.5f);
}
}  // namespace

bool write_pgm(const std::string& path, std::span<const float> image) {
  return write_pgm_grid(path, image, 1, 1);
}

bool write_pgm_grid_sized(const std::string& path, std::span<const float> images,
                          std::size_t count, std::size_t tiles_per_row,
                          std::size_t side) {
  CG_EXPECT(count > 0 && tiles_per_row > 0 && side > 0);
  const std::size_t dim = side * side;
  CG_EXPECT(images.size() == count * dim);
  const std::size_t tile_rows = (count + tiles_per_row - 1) / tiles_per_row;
  const std::size_t width = tiles_per_row * side;
  const std::size_t height = tile_rows * side;
  std::vector<std::uint8_t> canvas(width * height, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t tile_r = i / tiles_per_row;
    const std::size_t tile_c = i % tiles_per_row;
    for (std::size_t y = 0; y < side; ++y) {
      for (std::size_t x = 0; x < side; ++x) {
        canvas[(tile_r * side + y) * width + tile_c * side + x] =
            to_byte(images[i * dim + y * side + x]);
      }
    }
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  std::fprintf(f.get(), "P5\n%zu %zu\n255\n", width, height);
  return std::fwrite(canvas.data(), 1, canvas.size(), f.get()) == canvas.size();
}

bool write_pgm_grid(const std::string& path, std::span<const float> images,
                    std::size_t count, std::size_t tiles_per_row) {
  return write_pgm_grid_sized(path, images, count, tiles_per_row, kImageSide);
}

std::string ascii_art_sized(std::span<const float> image, std::size_t side) {
  CG_EXPECT(image.size() == side * side);
  static constexpr const char kRamp[] = " .:-=+*#%@";
  std::string out;
  out.reserve(side * (side + 1));
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      const float v = std::clamp((image[y * side + x] + 1.0f) * 0.5f, 0.0f, 1.0f);
      out.push_back(kRamp[static_cast<std::size_t>(v * 9.0f)]);
    }
    out.push_back('\n');
  }
  return out;
}

std::string ascii_art(std::span<const float> image) {
  return ascii_art_sized(image, kImageSide);
}

}  // namespace cellgan::data
