// Procedural MNIST stand-in (substitution documented in DESIGN.md §1).
//
// Each digit 0-9 is a polyline glyph in the unit square, rendered into a
// 28x28 grayscale image with a soft-edged stroke, after a per-sample random
// affine jitter (rotation, scale, translation, shear), stroke-width
// variation and additive pixel noise. The result is a 10-mode image
// distribution with intra-mode variation — structurally the role MNIST plays
// in the paper's evaluation (limited target space, suitable for observing
// mode collapse), with identical tensor shapes and value ranges.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace cellgan::data {

/// Rendering knobs; defaults give MNIST-like variability.
struct SyntheticMnistOptions {
  float stroke_width_mean = 0.060f;   ///< stroke half-width in unit-square units
  float stroke_width_jitter = 0.015f;
  float rotation_jitter_rad = 0.18f;
  float scale_jitter = 0.10f;
  float translation_jitter = 0.06f;
  float shear_jitter = 0.08f;
  float pixel_noise = 0.03f;          ///< additive N(0, sigma) per pixel
};

/// Render one sample of `digit` (0..9) into `out` (784 floats, range [-1,1]).
void render_digit(std::uint32_t digit, common::Rng& rng,
                  const SyntheticMnistOptions& options, std::span<float> out);

/// Rasterize at an arbitrary resolution (`out` must hold side*side floats).
/// The glyphs are vector polylines, so this is true re-rendering, not
/// scaling — the hook for the paper's "higher dimensional images" future
/// work (Section V).
void render_digit_sized(std::uint32_t digit, common::Rng& rng,
                        const SyntheticMnistOptions& options, std::size_t side,
                        std::span<float> out);

/// Build a dataset of `count` samples with a balanced label distribution.
Dataset make_synthetic_mnist(std::size_t count, std::uint64_t seed,
                             const SyntheticMnistOptions& options = {});

/// Arbitrary-resolution variant: images are side x side.
Dataset make_synthetic_digits(std::size_t count, std::size_t side,
                              std::uint64_t seed,
                              const SyntheticMnistOptions& options = {});

}  // namespace cellgan::data
