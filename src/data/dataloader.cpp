#include "data/dataloader.hpp"

#include <algorithm>

namespace cellgan::data {

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size)
    : dataset_(dataset), batch_size_(batch_size) {
  CG_EXPECT(batch_size_ > 0);
  CG_EXPECT(dataset_.size() >= batch_size_);
  order_.resize(dataset_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
  }
}

std::size_t DataLoader::batches_per_epoch() const {
  return dataset_.size() / batch_size_;
}

void DataLoader::reshuffle(common::Rng& rng) { rng.shuffle(order_); }

tensor::Tensor DataLoader::batch(std::size_t index) const {
  CG_EXPECT(index < batches_per_epoch());
  tensor::Tensor out(batch_size_, dataset_.images.cols());
  for (std::size_t i = 0; i < batch_size_; ++i) {
    auto src = dataset_.images.row_span(order_[index * batch_size_ + i]);
    auto dst = out.row_span(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

std::vector<std::uint32_t> DataLoader::batch_labels(std::size_t index) const {
  CG_EXPECT(index < batches_per_epoch());
  std::vector<std::uint32_t> out(batch_size_);
  for (std::size_t i = 0; i < batch_size_; ++i) {
    out[i] = dataset_.labels[order_[index * batch_size_ + i]];
  }
  return out;
}

}  // namespace cellgan::data
