// Shuffling mini-batch iterator over a Dataset (batch size 100 in Table I).
//
// Deterministic: the shuffle order is drawn from the Rng passed to
// reshuffle(), so two loaders over the same data with equal-seeded
// generators produce identical batch streams.
#pragma once

#include <utility>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace cellgan::data {

class DataLoader {
 public:
  /// Keeps a reference to `dataset`; caller guarantees it outlives the loader.
  DataLoader(const Dataset& dataset, std::size_t batch_size);

  std::size_t batch_size() const { return batch_size_; }
  /// Number of full batches per epoch (the tail partial batch is dropped,
  /// matching the usual GAN training loop).
  std::size_t batches_per_epoch() const;

  /// Draw a new epoch order.
  void reshuffle(common::Rng& rng);

  /// The current epoch order (sample indices), for checkpointing: a resumed
  /// run must replay the same batches the interrupted one would have drawn.
  const std::vector<std::uint32_t>& order() const { return order_; }
  void restore_order(std::vector<std::uint32_t> order) { order_ = std::move(order); }

  /// Materialize batch `index` (0-based within the current epoch order).
  tensor::Tensor batch(std::size_t index) const;

  /// Labels aligned with batch(index) rows.
  std::vector<std::uint32_t> batch_labels(std::size_t index) const;

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  std::vector<std::uint32_t> order_;
};

}  // namespace cellgan::data
