#include "data/idx.hpp"

#include <cstdio>
#include <memory>

#include "common/log.hpp"

namespace cellgan::data {

namespace {

constexpr std::uint32_t kImagesMagic = 0x00000803;  // idx3, ubyte
constexpr std::uint32_t kLabelsMagic = 0x00000801;  // idx1, ubyte

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool read_u32_be(std::FILE* f, std::uint32_t& value) {
  std::uint8_t b[4];
  if (std::fread(b, 1, 4, f) != 4) return false;
  value = (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
          (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
  return true;
}

bool write_u32_be(std::FILE* f, std::uint32_t value) {
  const std::uint8_t b[4] = {static_cast<std::uint8_t>(value >> 24),
                             static_cast<std::uint8_t>(value >> 16),
                             static_cast<std::uint8_t>(value >> 8),
                             static_cast<std::uint8_t>(value)};
  return std::fwrite(b, 1, 4, f) == 4;
}

/// Actual byte size of the (already-open) file, or -1 on seek failure.
long file_size(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long size = std::ftell(f);
  if (std::fseek(f, pos, SEEK_SET) != 0) return -1;
  return size;
}

}  // namespace

bool read_idx_images(const std::string& path, IdxImages& out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  std::uint32_t magic = 0;
  if (!read_u32_be(f.get(), magic) || magic != kImagesMagic) {
    common::log_warn() << "idx: bad image magic in " << path;
    return false;
  }
  if (!read_u32_be(f.get(), out.count) || !read_u32_be(f.get(), out.rows) ||
      !read_u32_be(f.get(), out.cols)) {
    common::log_warn() << "idx: truncated image header in " << path;
    return false;
  }
  // Validate the declared shape against the real file size BEFORE allocating:
  // a truncated download (or a corrupt count field) must be a named error,
  // not a bad_alloc or a silent short read.
  const std::size_t total =
      std::size_t{out.count} * out.rows * out.cols;
  const long size = file_size(f.get());
  const std::size_t expected = 16 + total;
  if (size < 0 || static_cast<std::size_t>(size) < expected) {
    common::log_warn() << "idx: " << path << " is truncated: header declares "
                       << out.count << " images of " << out.rows << "x"
                       << out.cols << " (" << expected << " bytes) but the file"
                       << " has " << size << " bytes";
    return false;
  }
  out.pixels.resize(total);
  return std::fread(out.pixels.data(), 1, total, f.get()) == total;
}

bool read_idx_labels(const std::string& path, std::vector<std::uint8_t>& out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  std::uint32_t magic = 0, count = 0;
  if (!read_u32_be(f.get(), magic) || magic != kLabelsMagic) {
    common::log_warn() << "idx: bad label magic in " << path;
    return false;
  }
  if (!read_u32_be(f.get(), count)) {
    common::log_warn() << "idx: truncated label header in " << path;
    return false;
  }
  const long size = file_size(f.get());
  const std::size_t expected = 8 + std::size_t{count};
  if (size < 0 || static_cast<std::size_t>(size) < expected) {
    common::log_warn() << "idx: " << path << " is truncated: header declares "
                       << count << " labels (" << expected << " bytes) but the"
                       << " file has " << size << " bytes";
    return false;
  }
  out.resize(count);
  return std::fread(out.data(), 1, count, f.get()) == count;
}

bool write_idx_images(const std::string& path, const IdxImages& images) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (!write_u32_be(f.get(), kImagesMagic) || !write_u32_be(f.get(), images.count) ||
      !write_u32_be(f.get(), images.rows) || !write_u32_be(f.get(), images.cols)) {
    return false;
  }
  return std::fwrite(images.pixels.data(), 1, images.pixels.size(), f.get()) ==
         images.pixels.size();
}

bool write_idx_labels(const std::string& path, const std::vector<std::uint8_t>& labels) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (!write_u32_be(f.get(), kLabelsMagic) ||
      !write_u32_be(f.get(), static_cast<std::uint32_t>(labels.size()))) {
    return false;
  }
  return std::fwrite(labels.data(), 1, labels.size(), f.get()) == labels.size();
}

}  // namespace cellgan::data
