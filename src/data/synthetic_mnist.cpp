#include "data/synthetic_mnist.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace cellgan::data {

namespace {

struct Vec2 {
  float x, y;
};

// Glyph skeletons: polylines in the unit square, origin top-left, y down.
// Circles/arcs are approximated by dense polylines built at startup.
using Polyline = std::vector<Vec2>;

Polyline arc(float cx, float cy, float rx, float ry, float a0, float a1, int segments = 16) {
  Polyline p;
  p.reserve(segments + 1);
  for (int i = 0; i <= segments; ++i) {
    const float t = a0 + (a1 - a0) * static_cast<float>(i) / static_cast<float>(segments);
    p.push_back({cx + rx * std::cos(t), cy + ry * std::sin(t)});
  }
  return p;
}

constexpr float kPi = 3.14159265358979323846f;

std::vector<Polyline> glyph_for_digit(std::uint32_t digit) {
  switch (digit) {
    case 0:
      return {arc(0.5f, 0.5f, 0.26f, 0.36f, 0.0f, 2.0f * kPi, 28)};
    case 1:
      return {{{0.38f, 0.28f}, {0.54f, 0.14f}, {0.54f, 0.86f}},
              {{0.38f, 0.86f}, {0.70f, 0.86f}}};
    case 2:
      return {arc(0.5f, 0.32f, 0.24f, 0.18f, -kPi, 0.0f, 12),
              {{0.74f, 0.32f}, {0.70f, 0.50f}, {0.30f, 0.84f}},
              {{0.30f, 0.84f}, {0.76f, 0.84f}}};
    case 3:
      return {arc(0.46f, 0.32f, 0.24f, 0.18f, -kPi * 0.9f, kPi * 0.45f, 14),
              arc(0.46f, 0.68f, 0.26f, 0.20f, -kPi * 0.45f, kPi * 0.9f, 14)};
    case 4:
      return {{{0.62f, 0.86f}, {0.62f, 0.14f}, {0.26f, 0.62f}, {0.78f, 0.62f}}};
    case 5:
      return {{{0.72f, 0.16f}, {0.34f, 0.16f}, {0.32f, 0.48f}},
              arc(0.48f, 0.66f, 0.25f, 0.21f, -kPi * 0.5f, kPi * 0.8f, 16)};
    case 6:
      return {{{0.62f, 0.14f}, {0.38f, 0.44f}, {0.30f, 0.64f}},
              arc(0.50f, 0.66f, 0.21f, 0.20f, 0.0f, 2.0f * kPi, 20)};
    case 7:
      return {{{0.26f, 0.16f}, {0.74f, 0.16f}, {0.44f, 0.86f}}};
    case 8:
      return {arc(0.5f, 0.32f, 0.19f, 0.17f, 0.0f, 2.0f * kPi, 20),
              arc(0.5f, 0.68f, 0.23f, 0.19f, 0.0f, 2.0f * kPi, 20)};
    case 9:
      return {arc(0.50f, 0.34f, 0.21f, 0.20f, 0.0f, 2.0f * kPi, 20),
              {{0.70f, 0.36f}, {0.62f, 0.60f}, {0.42f, 0.86f}}};
    default:
      CG_EXPECT(false && "digit must be 0..9");
      return {};
  }
}

/// Squared distance from point p to segment ab.
float dist2_point_segment(Vec2 p, Vec2 a, Vec2 b) {
  const float abx = b.x - a.x, aby = b.y - a.y;
  const float apx = p.x - a.x, apy = p.y - a.y;
  const float len2 = abx * abx + aby * aby;
  float t = len2 > 0.0f ? (apx * abx + apy * aby) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float dx = apx - t * abx, dy = apy - t * aby;
  return dx * dx + dy * dy;
}

struct Affine {
  // [x', y']^T = M [x-0.5, y-0.5]^T + [0.5+tx, 0.5+ty]
  float m00, m01, m10, m11, tx, ty;

  Vec2 apply(Vec2 p) const {
    const float cx = p.x - 0.5f, cy = p.y - 0.5f;
    return {m00 * cx + m01 * cy + 0.5f + tx, m10 * cx + m11 * cy + 0.5f + ty};
  }
};

Affine random_affine(common::Rng& rng, const SyntheticMnistOptions& o) {
  const float theta = static_cast<float>(rng.normal(0.0, o.rotation_jitter_rad));
  const float s = 1.0f + static_cast<float>(rng.normal(0.0, o.scale_jitter));
  const float shear = static_cast<float>(rng.normal(0.0, o.shear_jitter));
  const float c = std::cos(theta), sn = std::sin(theta);
  Affine a;
  a.m00 = s * c + shear * -sn;
  a.m01 = s * -sn + shear * c;
  a.m10 = s * sn;
  a.m11 = s * c;
  a.tx = static_cast<float>(rng.normal(0.0, o.translation_jitter));
  a.ty = static_cast<float>(rng.normal(0.0, o.translation_jitter));
  return a;
}

}  // namespace

void render_digit_sized(std::uint32_t digit, common::Rng& rng,
                        const SyntheticMnistOptions& options, std::size_t side,
                        std::span<float> out) {
  CG_EXPECT(digit < kNumClasses);
  CG_EXPECT(side >= 4);
  CG_EXPECT(out.size() == side * side);

  const Affine affine = random_affine(rng, options);
  std::vector<Polyline> glyph = glyph_for_digit(digit);
  for (auto& polyline : glyph) {
    for (auto& p : polyline) p = affine.apply(p);
  }

  const float half_width = std::max(
      0.02f, options.stroke_width_mean +
                 static_cast<float>(rng.normal(0.0, options.stroke_width_jitter)));
  const float inv_falloff = 1.0f / (0.35f * half_width);

  for (std::size_t py = 0; py < side; ++py) {
    for (std::size_t px = 0; px < side; ++px) {
      const Vec2 p{(static_cast<float>(px) + 0.5f) / side,
                   (static_cast<float>(py) + 0.5f) / side};
      float d2_min = 1e9f;
      for (const auto& polyline : glyph) {
        for (std::size_t i = 0; i + 1 < polyline.size(); ++i) {
          d2_min = std::min(d2_min, dist2_point_segment(p, polyline[i], polyline[i + 1]));
        }
      }
      const float d = std::sqrt(d2_min);
      // 1 inside the stroke, soft linear falloff at the boundary.
      float intensity = std::clamp(1.0f - (d - half_width) * inv_falloff, 0.0f, 1.0f);
      intensity += static_cast<float>(rng.normal(0.0, options.pixel_noise));
      intensity = std::clamp(intensity, 0.0f, 1.0f);
      out[py * side + px] = 2.0f * intensity - 1.0f;  // [0,1] -> [-1,1]
    }
  }
}

void render_digit(std::uint32_t digit, common::Rng& rng,
                  const SyntheticMnistOptions& options, std::span<float> out) {
  render_digit_sized(digit, rng, options, kImageSide, out);
}

Dataset make_synthetic_digits(std::size_t count, std::size_t side,
                              std::uint64_t seed,
                              const SyntheticMnistOptions& options) {
  Dataset ds;
  ds.images = tensor::Tensor(count, side * side);
  ds.labels.resize(count);
  common::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const auto digit = static_cast<std::uint32_t>(i % kNumClasses);
    ds.labels[i] = digit;
    render_digit_sized(digit, rng, options, side, ds.images.row_span(i));
  }
  // Shuffle sample order so batches are label-mixed even without a shuffling
  // loader on top.
  std::vector<std::uint32_t> perm(count);
  for (std::size_t i = 0; i < count; ++i) perm[i] = static_cast<std::uint32_t>(i);
  rng.shuffle(perm);
  Dataset shuffled;
  shuffled.images = tensor::Tensor(count, side * side);
  shuffled.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = perm[i];
    auto dst_row = shuffled.images.row_span(i);
    auto src_row = ds.images.row_span(src);
    std::copy(src_row.begin(), src_row.end(), dst_row.begin());
    shuffled.labels[i] = ds.labels[src];
  }
  return shuffled;
}

Dataset make_synthetic_mnist(std::size_t count, std::uint64_t seed,
                             const SyntheticMnistOptions& options) {
  return make_synthetic_digits(count, kImageSide, seed, options);
}

}  // namespace cellgan::data
