#include "tensor/tensor.hpp"

#include <algorithm>

namespace cellgan::tensor {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  CG_EXPECT(data_.size() == rows_ * cols_);
}

Tensor Tensor::row(std::initializer_list<float> values) {
  return Tensor(1, values.size(), std::vector<float>(values));
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) { return Tensor(rows, cols); }

Tensor Tensor::full(std::size_t rows, std::size_t cols, float value) {
  Tensor t(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::size_t rows, std::size_t cols, common::Rng& rng, float stddev) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(std::size_t rows, std::size_t cols, common::Rng& rng,
                            float lo, float hi) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::reshaped(std::size_t new_rows, std::size_t new_cols) const {
  CG_EXPECT(new_rows * new_cols == data_.size());
  return Tensor(new_rows, new_cols, data_);
}

Tensor Tensor::slice_rows(std::size_t begin, std::size_t end) const {
  CG_EXPECT(begin <= end && end <= rows_);
  Tensor t(end - begin, cols_);
  std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
            t.data_.begin());
  return t;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

}  // namespace cellgan::tensor
