// Dense row-major float32 matrix.
//
// The paper's networks are MLPs, so a 2-D tensor (batch x features, plus
// 1 x n vectors for biases) covers the whole workload. Data lives in one
// contiguous std::vector<float>; views are std::span. All shape mismatches
// are contract violations (CG_EXPECT), not silent broadcasts.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace cellgan::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// rows x cols, zero-initialized.
  Tensor(std::size_t rows, std::size_t cols);

  /// rows x cols with explicit data (size must equal rows*cols).
  Tensor(std::size_t rows, std::size_t cols, std::vector<float> data);

  /// 1 x n row vector from an initializer list (test convenience).
  static Tensor row(std::initializer_list<float> values);

  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor full(std::size_t rows, std::size_t cols, float value);
  /// N(0, stddev^2) entries.
  static Tensor randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                      float stddev = 1.0f);
  /// U(lo, hi) entries.
  static Tensor rand_uniform(std::size_t rows, std::size_t cols, common::Rng& rng,
                             float lo, float hi);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    CG_EXPECT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    CG_EXPECT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  std::span<float> row_span(std::size_t r) {
    CG_EXPECT(r < rows_);
    return std::span<float>(data_).subspan(r * cols_, cols_);
  }
  std::span<const float> row_span(std::size_t r) const {
    CG_EXPECT(r < rows_);
    return std::span<const float>(data_).subspan(r * cols_, cols_);
  }

  /// Reinterpret as new_rows x new_cols (element count must match).
  Tensor reshaped(std::size_t new_rows, std::size_t new_cols) const;

  /// Copy of rows [begin, end).
  Tensor slice_rows(std::size_t begin, std::size_t end) const;

  void fill(float value);

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace cellgan::tensor
