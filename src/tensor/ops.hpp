// Tensor ops used by the neural network layers.
//
// GEMM variants cover forward (A*B), weight gradients (A^T*B) and input
// gradients (A*B^T) so layers never materialize transposes. Ops report
// their flop counts (see flops.hpp) and parallelize across the process
// thread pool — the shared-memory level of the paper's two-level model.
//
// The inner loops live behind the microkernel seam in tensor/kernels.hpp:
// a scalar bit-exact reference and a packed-panel SIMD implementation,
// selected at runtime (CELLGAN_TENSOR_KERNEL=scalar|simd, or
// RunSpec::tensor_kernel through the Session). This header's contracts are
// kind-independent; only GEMM accumulation order (and so low-order float
// bits) may differ between kinds.
#pragma once

#include <utility>

#include "tensor/tensor.hpp"

namespace cellgan::tensor {

// ---- GEMM -----------------------------------------------------------------

/// C = A(mxk) * B(kxn)
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T(m<-k) * B : a is (k x m), b is (k x n), result (m x n).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A(m x k) * B^T : b is (n x k), result (m x n).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// ---- Elementwise ------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
/// y += alpha * x
void axpy(float alpha, const Tensor& x, Tensor& y);
/// Each row of `a` += bias (bias is 1 x cols).
void add_row_bias(Tensor& a, const Tensor& bias);
/// 1 x cols vector of column sums (bias gradient).
Tensor col_sum(const Tensor& a);

// ---- Activations ------------------------------------------------------------

Tensor tanh_forward(const Tensor& x);
/// dx = dy * (1 - y^2), where y = tanh(x) from the forward pass.
Tensor tanh_backward(const Tensor& dy, const Tensor& y);
Tensor sigmoid_forward(const Tensor& x);
/// dx = dy * y * (1 - y).
Tensor sigmoid_backward(const Tensor& dy, const Tensor& y);
Tensor leaky_relu_forward(const Tensor& x, float negative_slope);
Tensor leaky_relu_backward(const Tensor& dy, const Tensor& x, float negative_slope);

// ---- Reductions -------------------------------------------------------------

float sum(const Tensor& a);
float mean(const Tensor& a);

// ---- Losses -----------------------------------------------------------------

/// Binary cross-entropy with logits, numerically stable.
/// Returns (loss_mean, dloss/dlogits). `target` is the same shape as logits.
std::pair<float, Tensor> bce_with_logits(const Tensor& logits, const Tensor& target);

/// Row-wise softmax cross-entropy against integer labels.
/// Returns (loss_mean, dloss/dlogits).
std::pair<float, Tensor> softmax_cross_entropy(const Tensor& logits,
                                               const std::vector<std::uint32_t>& labels);

/// Row-wise softmax probabilities.
Tensor softmax(const Tensor& logits);

/// Index of the max entry of each row.
std::vector<std::uint32_t> argmax_rows(const Tensor& a);

}  // namespace cellgan::tensor
