#include "tensor/flops.hpp"

namespace cellgan::tensor {

namespace {
thread_local std::uint64_t t_flops = 0;
}  // namespace

void count_flops(std::uint64_t n) { t_flops += n; }

std::uint64_t thread_flops() { return t_flops; }

std::uint64_t exchange_thread_flops() {
  const std::uint64_t value = t_flops;
  t_flops = 0;
  return value;
}

}  // namespace cellgan::tensor
