#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"
#include "tensor/flops.hpp"

namespace cellgan::tensor {

namespace {

// Row-blocked inner kernel: for each row i of A, accumulate A(i,l) * B(l, :)
// into C(i, :). Streaming over B rows keeps the access pattern sequential.
void gemm_rows(const float* a, const float* b, float* c, std::size_t row_begin,
               std::size_t row_end, std::size_t k, std::size_t n) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* ci = c + i * n;
    std::fill(ci, ci + n, 0.0f);
    const float* ai = a + i * k;
    for (std::size_t l = 0; l < k; ++l) {
      const float ail = ai[l];
      if (ail == 0.0f) continue;
      const float* bl = b + l * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

// C(i,j) += sum_l A(l,i) * B(l,j) for output rows i in [row_begin, row_end),
// A stored k x m. The l loop is blocked so the touched B rows stay in cache
// while the block is swept once per output row.
void gemm_tn_rows(const float* a, const float* b, float* c, std::size_t row_begin,
                  std::size_t row_end, std::size_t k, std::size_t m, std::size_t n) {
  constexpr std::size_t kBlockL = 64;
  for (std::size_t l0 = 0; l0 < k; l0 += kBlockL) {
    const std::size_t l1 = std::min(k, l0 + kBlockL);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      float* ci = c + i * n;
      for (std::size_t l = l0; l < l1; ++l) {
        const float ali = a[l * m + i];
        if (ali == 0.0f) continue;
        const float* bl = b + l * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += ali * bl[j];
      }
    }
  }
}

// C(i,j) = dot(A row i, B row j) for rows i in [row_begin, row_end), B stored
// n x k. Four output columns per pass share each load of A's row (register
// tiling), which roughly quadruples arithmetic per byte over the naive dot.
void gemm_nt_rows(const float* a, const float* b, float* c, std::size_t row_begin,
                  std::size_t row_end, std::size_t k, std::size_t n) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::size_t l = 0; l < k; ++l) {
        const float ail = ai[l];
        acc0 += ail * b0[l];
        acc1 += ail * b1[l];
        acc2 += ail * b2[l];
        acc3 += ail * b3[l];
      }
      ci[j] = acc0;
      ci[j + 1] = acc1;
      ci[j + 2] = acc2;
      ci[j + 3] = acc3;
    }
    for (; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.0f;
      for (std::size_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
      ci[j] = acc;
    }
  }
}

// Fan an elementwise map over [0, n) out to the process pool. Chunks are
// independent and each output element depends on exactly its own inputs, so
// results are bit-identical to the serial loop at any thread count. Below
// the cutoff the pool dispatch overhead dwarfs the loop itself — the GAN's
// activation/gradient tensors only clear it at real batch sizes.
constexpr std::size_t kElementwiseParallelCutoff = 1 << 14;

// Templated so the common below-cutoff case is a direct call into the body
// (no std::function type erasure on the per-step hot path); the wrapper is
// only materialized when the pool dispatch actually happens.
template <typename Body>
void elementwise_for(std::size_t n, Body&& body) {
  auto& pool = common::global_pool();
  if (pool.size() > 1 && n >= kElementwiseParallelCutoff) {
    pool.parallel_for(n, body);
  } else {
    body(0, n);
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n);
  auto& pool = common::global_pool();
  if (pool.size() > 1 && m >= 2 * pool.size()) {
    // Flops must be charged on the caller's thread-local counter: worker
    // threads would otherwise swallow them.
    count_flops(2ULL * m * k * n);
    const float* ap = a.data().data();
    const float* bp = b.data().data();
    float* cp = c.data().data();
    pool.parallel_for(m, [&](std::size_t begin, std::size_t end) {
      gemm_rows(ap, bp, cp, begin, end, k, n);
    });
  } else {
    count_flops(2ULL * m * k * n);
    gemm_rows(a.data().data(), b.data().data(), c.data().data(), 0, m, k, n);
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.rows() == b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor c(m, n);
  // Flops on the caller's counter (same convention as matmul): worker
  // threads would otherwise swallow them.
  count_flops(2ULL * m * k * n);
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  auto& pool = common::global_pool();
  if (pool.size() > 1 && m >= 2 * pool.size()) {
    pool.parallel_for(m, [&](std::size_t begin, std::size_t end) {
      gemm_tn_rows(ap, bp, cp, begin, end, k, m, n);
    });
  } else {
    gemm_tn_rows(ap, bp, cp, 0, m, k, m, n);
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  count_flops(2ULL * m * k * n);
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  auto& pool = common::global_pool();
  if (pool.size() > 1 && m >= 2 * pool.size()) {
    pool.parallel_for(m, [&](std::size_t begin, std::size_t end) {
      gemm_nt_rows(ap, bp, cp, begin, end, k, n);
    });
  } else {
    gemm_nt_rows(ap, bp, cp, 0, m, k, n);
  }
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.same_shape(b));
  Tensor c(a.rows(), a.cols());
  // Flops on the caller's counter (same convention as matmul): worker
  // threads would otherwise swallow them.
  count_flops(a.size());
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  elementwise_for(a.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) cp[i] = ap[i] + bp[i];
  });
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.same_shape(b));
  Tensor c(a.rows(), a.cols());
  count_flops(a.size());
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  elementwise_for(a.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) cp[i] = ap[i] - bp[i];
  });
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.same_shape(b));
  Tensor c(a.rows(), a.cols());
  count_flops(a.size());
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  elementwise_for(a.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) cp[i] = ap[i] * bp[i];
  });
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c(a.rows(), a.cols());
  count_flops(a.size());
  const float* ap = a.data().data();
  float* cp = c.data().data();
  elementwise_for(a.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) cp[i] = ap[i] * s;
  });
  return c;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  CG_EXPECT(x.same_shape(y));
  count_flops(2ULL * x.size());
  const float* xp = x.data().data();
  float* yp = y.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) yp[i] += alpha * xp[i];
  });
}

void add_row_bias(Tensor& a, const Tensor& bias) {
  CG_EXPECT(bias.rows() == 1 && bias.cols() == a.cols());
  count_flops(a.size());
  const float* bp = bias.data().data();
  float* ap = a.data().data();
  const std::size_t cols = a.cols();
  const auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      float* row = ap + r * cols;
      for (std::size_t c = 0; c < cols; ++c) row[c] += bp[c];
    }
  };
  // Chunked over rows, but gated on total elements: the work per row is
  // `cols` flops, so a rows-only threshold would leave wide matrices serial.
  auto& pool = common::global_pool();
  if (pool.size() > 1 && a.size() >= kElementwiseParallelCutoff && a.rows() >= 2) {
    pool.parallel_for(a.rows(), body);
  } else {
    body(0, a.rows());
  }
}

Tensor col_sum(const Tensor& a) {
  Tensor out(1, a.cols());
  count_flops(a.size());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row_span(r);
    for (std::size_t c = 0; c < a.cols(); ++c) out.data()[c] += row[c];
  }
  return out;
}

Tensor tanh_forward(const Tensor& x) {
  Tensor y(x.rows(), x.cols());
  count_flops(8ULL * x.size());  // tanh ~ several flops; fixed estimate
  const float* xp = x.data().data();
  float* yp = y.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) yp[i] = std::tanh(xp[i]);
  });
  return y;
}

Tensor tanh_backward(const Tensor& dy, const Tensor& y) {
  CG_EXPECT(dy.same_shape(y));
  Tensor dx(y.rows(), y.cols());
  count_flops(3ULL * y.size());
  const float* dyp = dy.data().data();
  const float* yp = y.data().data();
  float* dxp = dx.data().data();
  elementwise_for(y.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const float yi = yp[i];
      dxp[i] = dyp[i] * (1.0f - yi * yi);
    }
  });
  return dx;
}

Tensor sigmoid_forward(const Tensor& x) {
  Tensor y(x.rows(), x.cols());
  count_flops(8ULL * x.size());
  const float* xp = x.data().data();
  float* yp = y.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const float v = xp[i];
      yp[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                        : std::exp(v) / (1.0f + std::exp(v));
    }
  });
  return y;
}

Tensor sigmoid_backward(const Tensor& dy, const Tensor& y) {
  CG_EXPECT(dy.same_shape(y));
  Tensor dx(y.rows(), y.cols());
  count_flops(3ULL * y.size());
  const float* dyp = dy.data().data();
  const float* yp = y.data().data();
  float* dxp = dx.data().data();
  elementwise_for(y.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const float yi = yp[i];
      dxp[i] = dyp[i] * yi * (1.0f - yi);
    }
  });
  return dx;
}

Tensor leaky_relu_forward(const Tensor& x, float negative_slope) {
  Tensor y(x.rows(), x.cols());
  count_flops(x.size());
  const float* xp = x.data().data();
  float* yp = y.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const float v = xp[i];
      yp[i] = v >= 0.0f ? v : negative_slope * v;
    }
  });
  return y;
}

Tensor leaky_relu_backward(const Tensor& dy, const Tensor& x, float negative_slope) {
  CG_EXPECT(dy.same_shape(x));
  Tensor dx(x.rows(), x.cols());
  count_flops(x.size());
  const float* dyp = dy.data().data();
  const float* xp = x.data().data();
  float* dxp = dx.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      dxp[i] = dyp[i] * (xp[i] >= 0.0f ? 1.0f : negative_slope);
    }
  });
  return dx;
}

float sum(const Tensor& a) {
  count_flops(a.size());
  double acc = 0.0;
  for (const float v : a.data()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  CG_EXPECT(a.size() > 0);
  return sum(a) / static_cast<float>(a.size());
}

std::pair<float, Tensor> bce_with_logits(const Tensor& logits, const Tensor& target) {
  CG_EXPECT(logits.same_shape(target));
  Tensor dz(logits.rows(), logits.cols());
  count_flops(12ULL * logits.size());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float z = logits.data()[i];
    const float y = target.data()[i];
    // max(z,0) - z*y + log(1 + exp(-|z|))
    loss += std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::abs(z)));
    const float sig = z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                                : std::exp(z) / (1.0f + std::exp(z));
    dz.data()[i] = (sig - y) * inv_n;
  }
  return {static_cast<float>(loss) * inv_n, std::move(dz)};
}

Tensor softmax(const Tensor& logits) {
  Tensor probs(logits.rows(), logits.cols());
  count_flops(10ULL * logits.size());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    auto in = logits.row_span(r);
    auto out = probs.row_span(r);
    float mx = in[0];
    for (const float v : in) mx = std::max(mx, v);
    float denom = 0.0f;
    for (std::size_t c = 0; c < in.size(); ++c) {
      out[c] = std::exp(in[c] - mx);
      denom += out[c];
    }
    for (auto& v : out) v /= denom;
  }
  return probs;
}

std::pair<float, Tensor> softmax_cross_entropy(const Tensor& logits,
                                               const std::vector<std::uint32_t>& labels) {
  CG_EXPECT(labels.size() == logits.rows());
  Tensor dz = softmax(logits);
  count_flops(4ULL * logits.size());
  double loss = 0.0;
  const float inv_b = 1.0f / static_cast<float>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const std::uint32_t y = labels[r];
    CG_EXPECT(y < logits.cols());
    auto row = dz.row_span(r);
    loss -= std::log(std::max(row[y], 1e-12f));
    row[y] -= 1.0f;
    for (auto& v : row) v *= inv_b;
  }
  return {static_cast<float>(loss) * inv_b, std::move(dz)};
}

std::vector<std::uint32_t> argmax_rows(const Tensor& a) {
  std::vector<std::uint32_t> out(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row_span(r);
    std::size_t best = 0;
    for (std::size_t c = 1; c < row.size(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<std::uint32_t>(best);
  }
  return out;
}

}  // namespace cellgan::tensor
