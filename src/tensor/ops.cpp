#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"
#include "tensor/flops.hpp"
#include "tensor/kernels.hpp"

namespace cellgan::tensor {

namespace {

// Fan an elementwise map over [0, n) out to the process pool. Chunks are
// independent and each output element depends on exactly its own inputs, so
// results are bit-identical to the serial loop at any thread count. Below
// the cutoff the pool dispatch overhead dwarfs the loop itself — the GAN's
// activation/gradient tensors only clear it at real batch sizes.
constexpr std::size_t kElementwiseParallelCutoff = 1 << 14;

// Templated so the common below-cutoff case is a direct call into the body
// (no std::function type erasure on the per-step hot path); the wrapper is
// only materialized when the pool dispatch actually happens.
template <typename Body>
void elementwise_for(std::size_t n, Body&& body) {
  auto& pool = common::global_pool();
  if (pool.size() > 1 && n >= kElementwiseParallelCutoff) {
    pool.parallel_for(n, body);
  } else {
    body(0, n);
  }
}

// Row-parallel GEMM dispatch: the selected kernel (tensor/kernels.hpp seam)
// overwrites its row range, so fan-out only partitions rows. The kernel kind
// is sampled once per op, so a mid-run set_kernel_kind can never split one
// matrix between implementations.
template <typename RowKernel>
void gemm_over_rows(std::size_t m, const RowKernel& kernel) {
  auto& pool = common::global_pool();
  if (pool.size() > 1 && m >= 2 * pool.size()) {
    pool.parallel_for(m, kernel);
  } else {
    kernel(0, m);
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n);
  // Flops must be charged on the caller's thread-local counter: worker
  // threads would otherwise swallow them.
  count_flops(2ULL * m * k * n);
  const KernelKind kind = active_kernel_kind();
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  gemm_over_rows(m, [&](std::size_t begin, std::size_t end) {
    kernels::gemm(kind, ap, bp, cp, begin, end, k, n);
  });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.rows() == b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor c(m, n);
  count_flops(2ULL * m * k * n);
  const KernelKind kind = active_kernel_kind();
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  gemm_over_rows(m, [&](std::size_t begin, std::size_t end) {
    kernels::gemm_tn(kind, ap, bp, cp, begin, end, k, m, n);
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  count_flops(2ULL * m * k * n);
  const KernelKind kind = active_kernel_kind();
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  gemm_over_rows(m, [&](std::size_t begin, std::size_t end) {
    kernels::gemm_nt(kind, ap, bp, cp, begin, end, k, n);
  });
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.same_shape(b));
  Tensor c(a.rows(), a.cols());
  // Flops on the caller's counter (same convention as matmul): worker
  // threads would otherwise swallow them.
  count_flops(a.size());
  const KernelKind kind = active_kernel_kind();
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  elementwise_for(a.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_add(kind, ap + begin, bp + begin, cp + begin, end - begin);
  });
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.same_shape(b));
  Tensor c(a.rows(), a.cols());
  count_flops(a.size());
  const KernelKind kind = active_kernel_kind();
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  elementwise_for(a.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_sub(kind, ap + begin, bp + begin, cp + begin, end - begin);
  });
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  CG_EXPECT(a.same_shape(b));
  Tensor c(a.rows(), a.cols());
  count_flops(a.size());
  const KernelKind kind = active_kernel_kind();
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  elementwise_for(a.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_mul(kind, ap + begin, bp + begin, cp + begin, end - begin);
  });
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c(a.rows(), a.cols());
  count_flops(a.size());
  const KernelKind kind = active_kernel_kind();
  const float* ap = a.data().data();
  float* cp = c.data().data();
  elementwise_for(a.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_scale(kind, ap + begin, s, cp + begin, end - begin);
  });
  return c;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  CG_EXPECT(x.same_shape(y));
  count_flops(2ULL * x.size());
  const KernelKind kind = active_kernel_kind();
  const float* xp = x.data().data();
  float* yp = y.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_axpy(kind, alpha, xp + begin, yp + begin, end - begin);
  });
}

void add_row_bias(Tensor& a, const Tensor& bias) {
  CG_EXPECT(bias.rows() == 1 && bias.cols() == a.cols());
  count_flops(a.size());
  const KernelKind kind = active_kernel_kind();
  const float* bp = bias.data().data();
  float* ap = a.data().data();
  const std::size_t cols = a.cols();
  const auto body = [&](std::size_t begin, std::size_t end) {
    kernels::ew_add_row_bias(kind, ap + begin * cols, bp, end - begin, cols);
  };
  // Chunked over rows, but gated on total elements: the work per row is
  // `cols` flops, so a rows-only threshold would leave wide matrices serial.
  auto& pool = common::global_pool();
  if (pool.size() > 1 && a.size() >= kElementwiseParallelCutoff && a.rows() >= 2) {
    pool.parallel_for(a.rows(), body);
  } else {
    body(0, a.rows());
  }
}

Tensor col_sum(const Tensor& a) {
  Tensor out(1, a.cols());
  count_flops(a.size());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row_span(r);
    for (std::size_t c = 0; c < a.cols(); ++c) out.data()[c] += row[c];
  }
  return out;
}

Tensor tanh_forward(const Tensor& x) {
  Tensor y(x.rows(), x.cols());
  count_flops(8ULL * x.size());  // tanh ~ several flops; fixed estimate
  const KernelKind kind = active_kernel_kind();
  const float* xp = x.data().data();
  float* yp = y.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_tanh_forward(kind, xp + begin, yp + begin, end - begin);
  });
  return y;
}

Tensor tanh_backward(const Tensor& dy, const Tensor& y) {
  CG_EXPECT(dy.same_shape(y));
  Tensor dx(y.rows(), y.cols());
  count_flops(3ULL * y.size());
  const KernelKind kind = active_kernel_kind();
  const float* dyp = dy.data().data();
  const float* yp = y.data().data();
  float* dxp = dx.data().data();
  elementwise_for(y.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_tanh_backward(kind, dyp + begin, yp + begin, dxp + begin,
                              end - begin);
  });
  return dx;
}

Tensor sigmoid_forward(const Tensor& x) {
  Tensor y(x.rows(), x.cols());
  count_flops(8ULL * x.size());
  const KernelKind kind = active_kernel_kind();
  const float* xp = x.data().data();
  float* yp = y.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_sigmoid_forward(kind, xp + begin, yp + begin, end - begin);
  });
  return y;
}

Tensor sigmoid_backward(const Tensor& dy, const Tensor& y) {
  CG_EXPECT(dy.same_shape(y));
  Tensor dx(y.rows(), y.cols());
  count_flops(3ULL * y.size());
  const KernelKind kind = active_kernel_kind();
  const float* dyp = dy.data().data();
  const float* yp = y.data().data();
  float* dxp = dx.data().data();
  elementwise_for(y.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_sigmoid_backward(kind, dyp + begin, yp + begin, dxp + begin,
                                 end - begin);
  });
  return dx;
}

Tensor leaky_relu_forward(const Tensor& x, float negative_slope) {
  Tensor y(x.rows(), x.cols());
  count_flops(x.size());
  const KernelKind kind = active_kernel_kind();
  const float* xp = x.data().data();
  float* yp = y.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_leaky_relu_forward(kind, xp + begin, negative_slope,
                                   yp + begin, end - begin);
  });
  return y;
}

Tensor leaky_relu_backward(const Tensor& dy, const Tensor& x, float negative_slope) {
  CG_EXPECT(dy.same_shape(x));
  Tensor dx(x.rows(), x.cols());
  count_flops(x.size());
  const KernelKind kind = active_kernel_kind();
  const float* dyp = dy.data().data();
  const float* xp = x.data().data();
  float* dxp = dx.data().data();
  elementwise_for(x.size(), [&](std::size_t begin, std::size_t end) {
    kernels::ew_leaky_relu_backward(kind, dyp + begin, xp + begin,
                                    negative_slope, dxp + begin, end - begin);
  });
  return dx;
}

float sum(const Tensor& a) {
  count_flops(a.size());
  double acc = 0.0;
  for (const float v : a.data()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  CG_EXPECT(a.size() > 0);
  return sum(a) / static_cast<float>(a.size());
}

std::pair<float, Tensor> bce_with_logits(const Tensor& logits, const Tensor& target) {
  CG_EXPECT(logits.same_shape(target));
  Tensor dz(logits.rows(), logits.cols());
  count_flops(12ULL * logits.size());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float z = logits.data()[i];
    const float y = target.data()[i];
    // max(z,0) - z*y + log(1 + exp(-|z|))
    loss += std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::abs(z)));
    const float sig = z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                                : std::exp(z) / (1.0f + std::exp(z));
    dz.data()[i] = (sig - y) * inv_n;
  }
  return {static_cast<float>(loss) * inv_n, std::move(dz)};
}

Tensor softmax(const Tensor& logits) {
  Tensor probs(logits.rows(), logits.cols());
  count_flops(10ULL * logits.size());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    auto in = logits.row_span(r);
    auto out = probs.row_span(r);
    float mx = in[0];
    for (const float v : in) mx = std::max(mx, v);
    float denom = 0.0f;
    for (std::size_t c = 0; c < in.size(); ++c) {
      out[c] = std::exp(in[c] - mx);
      denom += out[c];
    }
    for (auto& v : out) v /= denom;
  }
  return probs;
}

std::pair<float, Tensor> softmax_cross_entropy(const Tensor& logits,
                                               const std::vector<std::uint32_t>& labels) {
  CG_EXPECT(labels.size() == logits.rows());
  Tensor dz = softmax(logits);
  count_flops(4ULL * logits.size());
  double loss = 0.0;
  const float inv_b = 1.0f / static_cast<float>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const std::uint32_t y = labels[r];
    CG_EXPECT(y < logits.cols());
    auto row = dz.row_span(r);
    loss -= std::log(std::max(row[y], 1e-12f));
    row[y] -= 1.0f;
    for (auto& v : row) v *= inv_b;
  }
  return {static_cast<float>(loss) * inv_b, std::move(dz)};
}

std::vector<std::uint32_t> argmax_rows(const Tensor& a) {
  std::vector<std::uint32_t> out(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row_span(r);
    std::size_t best = 0;
    for (std::size_t c = 1; c < row.size(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<std::uint32_t>(best);
  }
  return out;
}

}  // namespace cellgan::tensor
