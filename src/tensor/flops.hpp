// Floating-point operation accounting.
//
// Every tensor kernel reports the flops it executes to a thread-local
// counter. The minimpi NetModel converts the flops a rank performed into
// simulated compute time (flops / calibrated_rate * memory_penalty), which is
// how the Table III/IV virtual-time reproduction stays tied to the *actual*
// arithmetic the training code performs rather than to hand-waved estimates.
#pragma once

#include <cstdint>

namespace cellgan::tensor {

/// Add `n` floating point operations to the calling thread's counter.
void count_flops(std::uint64_t n);

/// Current value of the calling thread's counter.
std::uint64_t thread_flops();

/// Reset the calling thread's counter to zero and return the previous value.
std::uint64_t exchange_thread_flops();

}  // namespace cellgan::tensor
