// Floating-point operation accounting.
//
// Every tensor kernel reports the flops it executes to a thread-local
// counter. The minimpi NetModel converts the flops a rank performed into
// simulated compute time (flops / calibrated_rate * memory_penalty), which is
// how the Table III/IV virtual-time reproduction stays tied to the *actual*
// arithmetic the training code performs rather than to hand-waved estimates.
#pragma once

#include <cstdint>

namespace cellgan::tensor {

/// Add `n` floating point operations to the calling thread's counter.
void count_flops(std::uint64_t n);

/// Current value of the calling thread's counter.
std::uint64_t thread_flops();

/// Reset the calling thread's counter to zero and return the previous value.
std::uint64_t exchange_thread_flops();

/// Isolates one task's flop count from whatever the executing thread has
/// already accumulated. Construction zeroes the calling thread's counter
/// (saving the outer value); taken() reads the flops counted since entry;
/// destruction restores the outer count on top of the section's, so
/// enclosing accountants still see every operation. This is how per-cell
/// tasks harvest their own flops when a scheduler runs them on arbitrary
/// worker threads — a bare exchange_thread_flops() would silently discard
/// the counts of whichever task ran on that thread before.
class ScopedFlopsCounter {
 public:
  ScopedFlopsCounter() : outer_(exchange_thread_flops()) {}
  ~ScopedFlopsCounter() { count_flops(outer_); }
  ScopedFlopsCounter(const ScopedFlopsCounter&) = delete;
  ScopedFlopsCounter& operator=(const ScopedFlopsCounter&) = delete;

  /// Flops counted on this thread since construction.
  std::uint64_t taken() const { return thread_flops(); }

 private:
  std::uint64_t outer_;
};

}  // namespace cellgan::tensor
