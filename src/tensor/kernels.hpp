// The tensor microkernel seam: scalar reference kernels and a vectorized
// (packed-panel SIMD) implementation behind one runtime switch.
//
// ops.cpp owns shape checks, flop accounting and thread-pool fan-out; this
// layer owns only the inner loops. Two kernel kinds exist:
//
//  * kScalar — the bit-exact reference. Plain loops in the exact
//    accumulation order the repo has always used, so runs pinned to it
//    reproduce the seed behavior bit for bit.
//  * kSimd — packed A/B panels (L1/L2-sized, 64-byte aligned) swept by a
//    register-tiled microkernel: AVX2+FMA when the CPU supports it (runtime
//    dispatch via target attributes), NEON on ARM, and a
//    compiler-autovectorized portable tile otherwise. GEMM results may
//    differ from scalar by accumulation order (FMA + vector-lane sums); the
//    kernel_parity suite bounds the drift. The elementwise family is
//    bit-identical to scalar by construction (same per-element expression).
//
// Selection: CELLGAN_TENSOR_KERNEL=scalar|simd in the environment sets the
// process default (unset -> simd); set_kernel_kind() — reachable through
// RunSpec::tensor_kernel / `--tensor-kernel` — overrides it at runtime.
// Whatever the kind, results are deterministic for a fixed kind and
// independent of the thread count: row-partitioned GEMM accumulates every
// output element in an order that does not depend on the partition.
//
// Output contract (uniform across all three GEMM kernels): gemm, gemm_tn and
// gemm_nt OVERWRITE C rows [row_begin, row_end); callers never pre-zero.
// (Historically gemm filled while gemm_tn accumulated into caller-zeroed
// memory — that asymmetry is gone.)
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace cellgan::tensor {

enum class KernelKind : std::uint32_t {
  kScalar = 0,  ///< bit-exact reference loops
  kSimd = 1,    ///< packed panels + vector microkernel
};

const char* to_string(KernelKind kind);
std::optional<KernelKind> kernel_kind_from_string(std::string_view name);

/// Currently selected kernel kind (env default until set_kernel_kind).
KernelKind active_kernel_kind();
/// Select the kernel kind process-wide (overrides CELLGAN_TENSOR_KERNEL).
void set_kernel_kind(KernelKind kind);

/// Name of the vector instruction set the kSimd path engages on this
/// machine: "avx2+fma", "neon" or "portable" (autovectorized tile).
const char* simd_instruction_set();

namespace kernels {

// All GEMM kernels OVERWRITE c rows [row_begin, row_end) — see the contract
// above. Matrices are dense row-major, tightly packed.

/// C(m x n) = A(m x k) * B(k x n), rows [row_begin, row_end).
void gemm(KernelKind kind, const float* a, const float* b, float* c,
          std::size_t row_begin, std::size_t row_end, std::size_t k,
          std::size_t n);

/// C(m x n) = A^T * B with A stored (k x m), B (k x n).
void gemm_tn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t row_begin, std::size_t row_end, std::size_t k,
             std::size_t m, std::size_t n);

/// C(m x n) = A(m x k) * B^T with B stored (n x k).
void gemm_nt(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t row_begin, std::size_t row_end, std::size_t k,
             std::size_t n);

// Elementwise family over [0, n). Bit-identical across kinds (one
// independent expression per element; the kSimd variants only widen the
// loop). Kept behind the seam so the selection knob and the parity suite
// cover every op the layers execute.

void ew_add(KernelKind kind, const float* a, const float* b, float* c,
            std::size_t n);
void ew_sub(KernelKind kind, const float* a, const float* b, float* c,
            std::size_t n);
void ew_mul(KernelKind kind, const float* a, const float* b, float* c,
            std::size_t n);
void ew_scale(KernelKind kind, const float* a, float s, float* c,
              std::size_t n);
/// y += alpha * x
void ew_axpy(KernelKind kind, float alpha, const float* x, float* y,
             std::size_t n);
/// rows [0, rows) of a (rows x cols) += bias (1 x cols)
void ew_add_row_bias(KernelKind kind, float* a, const float* bias,
                     std::size_t rows, std::size_t cols);
void ew_tanh_forward(KernelKind kind, const float* x, float* y, std::size_t n);
void ew_tanh_backward(KernelKind kind, const float* dy, const float* y,
                      float* dx, std::size_t n);
void ew_sigmoid_forward(KernelKind kind, const float* x, float* y,
                        std::size_t n);
void ew_sigmoid_backward(KernelKind kind, const float* dy, const float* y,
                         float* dx, std::size_t n);
void ew_leaky_relu_forward(KernelKind kind, const float* x, float slope,
                           float* y, std::size_t n);
void ew_leaky_relu_backward(KernelKind kind, const float* dy, const float* x,
                            float slope, float* dx, std::size_t n);

}  // namespace kernels

}  // namespace cellgan::tensor
