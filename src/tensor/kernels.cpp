#include "tensor/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/aligned.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define CELLGAN_X86 1
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

// Portable "please vectorize" hint for the fallback tile and the elementwise
// kSimd loops: every iteration is independent, so the hint only licenses what
// is already legal.
#if defined(__clang__)
#define CG_VEC_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define CG_VEC_LOOP _Pragma("GCC ivdep")
#else
#define CG_VEC_LOOP
#endif

namespace cellgan::tensor {

// --- kernel selection -------------------------------------------------------

const char* to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar: return "scalar";
    case KernelKind::kSimd: return "simd";
  }
  return "unknown";
}

std::optional<KernelKind> kernel_kind_from_string(std::string_view name) {
  if (name == "scalar") return KernelKind::kScalar;
  if (name == "simd") return KernelKind::kSimd;
  return std::nullopt;
}

namespace {

KernelKind env_default_kind() {
  const char* env = std::getenv("CELLGAN_TENSOR_KERNEL");
  if (env == nullptr || *env == '\0') return KernelKind::kSimd;
  const auto kind = kernel_kind_from_string(env);
  if (!kind) {
    std::fprintf(stderr,
                 "warning: CELLGAN_TENSOR_KERNEL='%s' is not scalar|simd; "
                 "using simd\n",
                 env);
    return KernelKind::kSimd;
  }
  return *kind;
}

std::atomic<KernelKind>& kind_state() {
  // Magic static so the env read happens on first use, whatever the TU
  // initialization order.
  static std::atomic<KernelKind> state{env_default_kind()};
  return state;
}

}  // namespace

KernelKind active_kernel_kind() {
  return kind_state().load(std::memory_order_relaxed);
}

void set_kernel_kind(KernelKind kind) {
  kind_state().store(kind, std::memory_order_relaxed);
}

namespace kernels {

namespace {

// --- scalar reference GEMM --------------------------------------------------
// The exact loops (and accumulation orders) the repo has always run, so a
// scalar-pinned run reproduces seed numbers bit for bit. The historical
// `if (a == 0.0f) continue;` branches are gone: on dense float data the
// branch costs more than the multiply it skips and it blocked the compiler
// from vectorizing the j loop.

// Row-blocked: for each row i of A, accumulate A(i,l) * B(l, :) into C(i, :).
// Streaming over B rows keeps the access pattern sequential.
void scalar_gemm(const float* a, const float* b, float* c,
                 std::size_t row_begin, std::size_t row_end, std::size_t k,
                 std::size_t n) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* ci = c + i * n;
    std::fill(ci, ci + n, 0.0f);
    const float* ai = a + i * k;
    for (std::size_t l = 0; l < k; ++l) {
      const float ail = ai[l];
      const float* bl = b + l * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

// C(i,j) = sum_l A(l,i) * B(l,j), A stored k x m. The l loop is blocked so
// the touched B rows stay in cache while the block is swept once per output
// row. Rows are zeroed up front (the kernel owns its output now — callers
// used to pre-zero), which preserves the historical accumulation order.
void scalar_gemm_tn(const float* a, const float* b, float* c,
                    std::size_t row_begin, std::size_t row_end, std::size_t k,
                    std::size_t m, std::size_t n) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* ci = c + i * n;
    std::fill(ci, ci + n, 0.0f);
  }
  constexpr std::size_t kBlockL = 64;
  for (std::size_t l0 = 0; l0 < k; l0 += kBlockL) {
    const std::size_t l1 = std::min(k, l0 + kBlockL);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      float* ci = c + i * n;
      for (std::size_t l = l0; l < l1; ++l) {
        const float ali = a[l * m + i];
        const float* bl = b + l * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += ali * bl[j];
      }
    }
  }
}

// C(i,j) = dot(A row i, B row j), B stored n x k. Four output columns per
// pass share each load of A's row (register tiling).
void scalar_gemm_nt(const float* a, const float* b, float* c,
                    std::size_t row_begin, std::size_t row_end, std::size_t k,
                    std::size_t n) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::size_t l = 0; l < k; ++l) {
        const float ail = ai[l];
        acc0 += ail * b0[l];
        acc1 += ail * b1[l];
        acc2 += ail * b2[l];
        acc3 += ail * b3[l];
      }
      ci[j] = acc0;
      ci[j + 1] = acc1;
      ci[j + 2] = acc2;
      ci[j + 3] = acc3;
    }
    for (; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.0f;
      for (std::size_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
      ci[j] = acc;
    }
  }
}

// --- packed-panel SIMD GEMM -------------------------------------------------
//
// One blocked implementation covers all three variants: the logical operands
// Op(A)[i,l] and Op(B)[l,j] are addressed through (row, col) strides, so the
// TN/NT transposes are absorbed by the packing routines instead of
// materialized. Panels are packed into 64-byte-aligned thread-local scratch
// (kKC x kNR B slabs, kMR x kKC A slabs, zero-padded to full tiles) and swept
// by a kMR x kNR register-tiled microkernel — AVX2+FMA (runtime-dispatched),
// NEON, or an autovectorized portable tile.
//
// Determinism: for any output element, partial products accumulate in panel
// (pc) order, and within a panel in l order on a fixed register lane — none
// of which depends on the caller's row partition [row_begin, row_end) or on
// which jc/ic block the element lands in. Threaded runs are therefore
// bit-identical to single-threaded runs for the same kind.

constexpr std::size_t kMR = 6;    ///< microkernel rows (A register tile)
constexpr std::size_t kNR = 16;   ///< microkernel cols (two 8-float vectors)
constexpr std::size_t kKC = 256;  ///< k panel: packed A slab ~kMR*kKC*4 = 6KB
constexpr std::size_t kMC = 96;   ///< m panel: packed A block ~96KB, L2-sized
constexpr std::size_t kNC = 1024; ///< n panel: packed B block <= 1MB

/// ctile[kMR * kNR] = sum_l pa[l*kMR + r] * pb[l*kNR + c]
using MicroKernel = void (*)(std::size_t kc, const float* pa, const float* pb,
                             float* ctile);

void micro_portable(std::size_t kc, const float* pa, const float* pb,
                    float* ctile) {
  float acc[kMR * kNR] = {};
  for (std::size_t l = 0; l < kc; ++l) {
    const float* al = pa + l * kMR;
    const float* bl = pb + l * kNR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const float av = al[r];
      CG_VEC_LOOP
      for (std::size_t c = 0; c < kNR; ++c) acc[r * kNR + c] += av * bl[c];
    }
  }
  std::memcpy(ctile, acc, sizeof(acc));
}

#if defined(CELLGAN_X86)

__attribute__((target("avx2,fma"))) void micro_avx2(std::size_t kc,
                                                    const float* pa,
                                                    const float* pb,
                                                    float* ctile) {
  __m256 acc0[kMR];
  __m256 acc1[kMR];
  for (std::size_t r = 0; r < kMR; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  for (std::size_t l = 0; l < kc; ++l) {
    const __m256 b0 = _mm256_load_ps(pb + l * kNR);
    const __m256 b1 = _mm256_load_ps(pb + l * kNR + 8);
    const float* al = pa + l * kMR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const __m256 av = _mm256_broadcast_ss(al + r);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  for (std::size_t r = 0; r < kMR; ++r) {
    _mm256_store_ps(ctile + r * kNR, acc0[r]);
    _mm256_store_ps(ctile + r * kNR + 8, acc1[r]);
  }
}

bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#elif defined(__ARM_NEON)

void micro_neon(std::size_t kc, const float* pa, const float* pb,
                float* ctile) {
  float32x4_t acc[kMR][4];
  for (std::size_t r = 0; r < kMR; ++r) {
    for (std::size_t q = 0; q < 4; ++q) acc[r][q] = vdupq_n_f32(0.0f);
  }
  for (std::size_t l = 0; l < kc; ++l) {
    const float* bl = pb + l * kNR;
    float32x4_t b[4];
    for (std::size_t q = 0; q < 4; ++q) b[q] = vld1q_f32(bl + 4 * q);
    const float* al = pa + l * kMR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const float32x4_t av = vdupq_n_f32(al[r]);
      for (std::size_t q = 0; q < 4; ++q) {
        acc[r][q] = vfmaq_f32(acc[r][q], av, b[q]);
      }
    }
  }
  for (std::size_t r = 0; r < kMR; ++r) {
    for (std::size_t q = 0; q < 4; ++q) {
      vst1q_f32(ctile + r * kNR + 4 * q, acc[r][q]);
    }
  }
}

#endif

MicroKernel select_microkernel() {
#if defined(CELLGAN_X86)
  if (cpu_has_avx2_fma()) return micro_avx2;
  return micro_portable;
#elif defined(__ARM_NEON)
  return micro_neon;
#else
  return micro_portable;
#endif
}

MicroKernel active_microkernel() {
  static const MicroKernel kernel = select_microkernel();
  return kernel;
}

/// Pack Op(A) rows [i0, i0+mc) x cols [l0, l0+kc) into kMR-row slabs:
/// dst slab s holds rows [s*kMR, s*kMR+kMR) laid out dst[l*kMR + r],
/// zero-padded past mc so the microkernel never needs a row tail path.
void pack_a(const float* a, float* dst, std::size_t i0, std::size_t mc,
            std::size_t l0, std::size_t kc, std::size_t row_stride,
            std::size_t col_stride) {
  for (std::size_t slab = 0; slab < mc; slab += kMR) {
    const std::size_t rows = std::min(kMR, mc - slab);
    float* out = dst + slab * kc;
    for (std::size_t l = 0; l < kc; ++l) {
      const float* src = a + (l0 + l) * col_stride + (i0 + slab) * row_stride;
      std::size_t r = 0;
      for (; r < rows; ++r) out[l * kMR + r] = src[r * row_stride];
      for (; r < kMR; ++r) out[l * kMR + r] = 0.0f;
    }
  }
}

/// Pack Op(B) rows [l0, l0+kc) x cols [j0, j0+nc) into kNR-column slabs
/// (dst[l*kNR + c], zero-padded past nc).
void pack_b(const float* b, float* dst, std::size_t l0, std::size_t kc,
            std::size_t j0, std::size_t nc, std::size_t row_stride,
            std::size_t col_stride) {
  for (std::size_t slab = 0; slab < nc; slab += kNR) {
    const std::size_t cols = std::min(kNR, nc - slab);
    float* out = dst + slab * kc;
    for (std::size_t l = 0; l < kc; ++l) {
      const float* src = b + (l0 + l) * row_stride + (j0 + slab) * col_stride;
      std::size_t c = 0;
      for (; c < cols; ++c) out[l * kNR + c] = src[c * col_stride];
      for (; c < kNR; ++c) out[l * kNR + c] = 0.0f;
    }
  }
}

/// Blocked, packed GEMM over logical operands: C rows [row_begin, row_end)
/// OVERWRITTEN with Op(A) * Op(B), where Op(A)[i,l] = a[i*a_rs + l*a_cs] and
/// Op(B)[l,j] = b[l*b_rs + j*b_cs]. C is dense row-major (m x n).
void simd_gemm(const float* a, const float* b, float* c, std::size_t row_begin,
               std::size_t row_end, std::size_t k, std::size_t n,
               std::size_t a_rs, std::size_t a_cs, std::size_t b_rs,
               std::size_t b_cs) {
  if (row_end <= row_begin || n == 0) return;
  if (k == 0) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      std::fill(c + i * n, c + i * n + n, 0.0f);
    }
    return;
  }
  const MicroKernel micro = active_microkernel();
  // Thread-local so pool workers pack into private panels; capacity persists
  // across calls (the training loop reuses a handful of shapes).
  static thread_local common::AlignedBuffer a_panels;
  static thread_local common::AlignedBuffer b_panels;
  const std::size_t m = row_end - row_begin;
  alignas(common::kCacheLineBytes) float ctile[kMR * kNR];
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    const std::size_t n_slabs = (nc + kNR - 1) / kNR;
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      float* pb = b_panels.grow(n_slabs * kNR * kc);
      pack_b(b, pb, pc, kc, jc, nc, b_rs, b_cs);
      const bool first_panel = pc == 0;
      for (std::size_t ic = 0; ic < m; ic += kMC) {
        const std::size_t mc = std::min(kMC, m - ic);
        const std::size_t m_slabs = (mc + kMR - 1) / kMR;
        float* pa = a_panels.grow(m_slabs * kMR * kc);
        pack_a(a, pa, row_begin + ic, mc, pc, kc, a_rs, a_cs);
        for (std::size_t si = 0; si < m_slabs; ++si) {
          const std::size_t tile_rows = std::min(kMR, mc - si * kMR);
          for (std::size_t sj = 0; sj < n_slabs; ++sj) {
            const std::size_t tile_cols = std::min(kNR, nc - sj * kNR);
            micro(kc, pa + si * kMR * kc, pb + sj * kNR * kc, ctile);
            float* cbase =
                c + (row_begin + ic + si * kMR) * n + jc + sj * kNR;
            for (std::size_t r = 0; r < tile_rows; ++r) {
              float* crow = cbase + r * n;
              const float* trow = ctile + r * kNR;
              if (first_panel) {
                for (std::size_t cc = 0; cc < tile_cols; ++cc) {
                  crow[cc] = trow[cc];
                }
              } else {
                for (std::size_t cc = 0; cc < tile_cols; ++cc) {
                  crow[cc] += trow[cc];
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

// --- GEMM dispatch ----------------------------------------------------------

void gemm(KernelKind kind, const float* a, const float* b, float* c,
          std::size_t row_begin, std::size_t row_end, std::size_t k,
          std::size_t n) {
  if (kind == KernelKind::kScalar) {
    scalar_gemm(a, b, c, row_begin, row_end, k, n);
  } else {
    simd_gemm(a, b, c, row_begin, row_end, k, n, /*a_rs=*/k, /*a_cs=*/1,
              /*b_rs=*/n, /*b_cs=*/1);
  }
}

void gemm_tn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t row_begin, std::size_t row_end, std::size_t k,
             std::size_t m, std::size_t n) {
  if (kind == KernelKind::kScalar) {
    scalar_gemm_tn(a, b, c, row_begin, row_end, k, m, n);
  } else {
    // Op(A)[i,l] = a[l*m + i]: the packing absorbs the transpose.
    simd_gemm(a, b, c, row_begin, row_end, k, n, /*a_rs=*/1, /*a_cs=*/m,
              /*b_rs=*/n, /*b_cs=*/1);
  }
}

void gemm_nt(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t row_begin, std::size_t row_end, std::size_t k,
             std::size_t n) {
  if (kind == KernelKind::kScalar) {
    scalar_gemm_nt(a, b, c, row_begin, row_end, k, n);
  } else {
    // Op(B)[l,j] = b[j*k + l].
    simd_gemm(a, b, c, row_begin, row_end, k, n, /*a_rs=*/k, /*a_cs=*/1,
              /*b_rs=*/1, /*b_cs=*/k);
  }
}

const char* instruction_set_name() {
#if defined(CELLGAN_X86)
  return cpu_has_avx2_fma() ? "avx2+fma" : "portable";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "portable";
#endif
}

// --- elementwise family -----------------------------------------------------
// Per-element expressions are identical across kinds, so kScalar == kSimd bit
// for bit; the kSimd variants only add a vectorization hint (and give the
// parity suite a second dispatch path to pin).

void ew_add(KernelKind kind, const float* a, const float* b, float* c,
            std::size_t n) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
  } else {
    CG_VEC_LOOP
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
  }
}

void ew_sub(KernelKind kind, const float* a, const float* b, float* c,
            std::size_t n) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] - b[i];
  } else {
    CG_VEC_LOOP
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] - b[i];
  }
}

void ew_mul(KernelKind kind, const float* a, const float* b, float* c,
            std::size_t n) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] * b[i];
  } else {
    CG_VEC_LOOP
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] * b[i];
  }
}

void ew_scale(KernelKind kind, const float* a, float s, float* c,
              std::size_t n) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] * s;
  } else {
    CG_VEC_LOOP
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] * s;
  }
}

void ew_axpy(KernelKind kind, float alpha, const float* x, float* y,
             std::size_t n) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    CG_VEC_LOOP
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  }
}

void ew_add_row_bias(KernelKind kind, float* a, const float* bias,
                     std::size_t rows, std::size_t cols) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t r = 0; r < rows; ++r) {
      float* row = a + r * cols;
      for (std::size_t c = 0; c < cols; ++c) row[c] += bias[c];
    }
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      float* row = a + r * cols;
      CG_VEC_LOOP
      for (std::size_t c = 0; c < cols; ++c) row[c] += bias[c];
    }
  }
}

void ew_tanh_forward(KernelKind kind, const float* x, float* y,
                     std::size_t n) {
  // libm calls do not vectorize without -ffast-math/libmvec; both kinds run
  // the same loop so results stay identical whatever the toolchain does.
  (void)kind;
  for (std::size_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void ew_tanh_backward(KernelKind kind, const float* dy, const float* y,
                      float* dx, std::size_t n) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t i = 0; i < n; ++i) {
      const float yi = y[i];
      dx[i] = dy[i] * (1.0f - yi * yi);
    }
  } else {
    CG_VEC_LOOP
    for (std::size_t i = 0; i < n; ++i) {
      const float yi = y[i];
      dx[i] = dy[i] * (1.0f - yi * yi);
    }
  }
}

void ew_sigmoid_forward(KernelKind kind, const float* x, float* y,
                        std::size_t n) {
  (void)kind;  // branchy + libm: one loop, identical results for both kinds
  for (std::size_t i = 0; i < n; ++i) {
    const float v = x[i];
    y[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                     : std::exp(v) / (1.0f + std::exp(v));
  }
}

void ew_sigmoid_backward(KernelKind kind, const float* dy, const float* y,
                         float* dx, std::size_t n) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t i = 0; i < n; ++i) {
      const float yi = y[i];
      dx[i] = dy[i] * yi * (1.0f - yi);
    }
  } else {
    CG_VEC_LOOP
    for (std::size_t i = 0; i < n; ++i) {
      const float yi = y[i];
      dx[i] = dy[i] * yi * (1.0f - yi);
    }
  }
}

void ew_leaky_relu_forward(KernelKind kind, const float* x, float slope,
                           float* y, std::size_t n) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t i = 0; i < n; ++i) {
      const float v = x[i];
      y[i] = v >= 0.0f ? v : slope * v;
    }
  } else {
    CG_VEC_LOOP
    for (std::size_t i = 0; i < n; ++i) {
      const float v = x[i];
      y[i] = v >= 0.0f ? v : slope * v;
    }
  }
}

void ew_leaky_relu_backward(KernelKind kind, const float* dy, const float* x,
                            float slope, float* dx, std::size_t n) {
  if (kind == KernelKind::kScalar) {
    for (std::size_t i = 0; i < n; ++i) {
      dx[i] = dy[i] * (x[i] >= 0.0f ? 1.0f : slope);
    }
  } else {
    CG_VEC_LOOP
    for (std::size_t i = 0; i < n; ++i) {
      dx[i] = dy[i] * (x[i] >= 0.0f ? 1.0f : slope);
    }
  }
}

}  // namespace kernels

const char* simd_instruction_set() { return kernels::instruction_set_name(); }

}  // namespace cellgan::tensor
