#include "metrics/classifier.hpp"

#include <memory>

#include "data/dataloader.hpp"
#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace cellgan::metrics {

Classifier::Classifier(common::Rng& rng, std::size_t hidden_dim, std::size_t image_dim)
    : hidden_dim_(hidden_dim) {
  net_.add(std::make_unique<nn::Linear>(image_dim, hidden_dim));
  net_.add(std::make_unique<nn::Tanh>());
  net_.add(std::make_unique<nn::Linear>(hidden_dim, data::kNumClasses));
  nn::xavier_uniform_init(net_, rng);
}

float Classifier::train(const data::Dataset& dataset, std::size_t epochs,
                        std::size_t batch_size, double learning_rate,
                        common::Rng& rng) {
  data::DataLoader loader(dataset, batch_size);
  nn::Adam optimizer(learning_rate);
  float last_epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    loader.reshuffle(rng);
    float epoch_loss = 0.0f;
    for (std::size_t b = 0; b < loader.batches_per_epoch(); ++b) {
      const tensor::Tensor images = loader.batch(b);
      const auto labels = loader.batch_labels(b);
      net_.zero_grad();
      const tensor::Tensor logits = net_.forward(images);
      auto [loss, dlogits] = tensor::softmax_cross_entropy(logits, labels);
      net_.backward(dlogits);
      optimizer.step(net_);
      epoch_loss += loss;
    }
    last_epoch_loss = epoch_loss / static_cast<float>(loader.batches_per_epoch());
  }
  return last_epoch_loss;
}

double Classifier::accuracy(const data::Dataset& dataset) {
  const auto predicted = predict_labels(dataset.images);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == dataset.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

tensor::Tensor Classifier::predict_probs(const tensor::Tensor& images) {
  return tensor::softmax(net_.forward(images));
}

tensor::Tensor Classifier::features(const tensor::Tensor& images) {
  // Forward through Linear + Tanh only (layers 0 and 1).
  tensor::Tensor x = net_.layer(0).forward(images);
  return net_.layer(1).forward(x);
}

std::vector<std::uint32_t> Classifier::predict_labels(const tensor::Tensor& images) {
  return tensor::argmax_rows(net_.forward(images));
}

}  // namespace cellgan::metrics
