// Digit classifier: the in-domain stand-in for the Inception network.
//
// Inception score and FID both need (a) class posteriors p(y|x) and (b) a
// feature embedding. A small MLP trained on the (synthetic or real) MNIST
// training set provides both: softmax outputs for (a), penultimate hidden
// activations for (b). See DESIGN.md §1 for why this substitution preserves
// the fitness-ordering role the paper assigns to the inception score.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "nn/sequential.hpp"

namespace cellgan::metrics {

class Classifier {
 public:
  /// 784 -> hidden (tanh) -> 10 logits.
  explicit Classifier(common::Rng& rng, std::size_t hidden_dim = 64,
                      std::size_t image_dim = data::kImageDim);

  /// Mini-batch SGD training; returns final epoch's mean loss.
  float train(const data::Dataset& dataset, std::size_t epochs,
              std::size_t batch_size, double learning_rate, common::Rng& rng);

  /// Accuracy on a labeled set.
  double accuracy(const data::Dataset& dataset);

  /// p(y|x) rows for a batch of images (n x 10).
  tensor::Tensor predict_probs(const tensor::Tensor& images);

  /// Penultimate (hidden tanh) activations (n x hidden_dim).
  tensor::Tensor features(const tensor::Tensor& images);

  /// Most likely class per image.
  std::vector<std::uint32_t> predict_labels(const tensor::Tensor& images);

  std::size_t hidden_dim() const { return hidden_dim_; }

 private:
  std::size_t hidden_dim_;
  nn::Sequential net_;
};

}  // namespace cellgan::metrics
