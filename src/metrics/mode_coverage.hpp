// Mode-collapse diagnostics.
//
// MNIST is used in the paper precisely because its ten well-separated modes
// make generator collapse observable. These helpers classify generated
// samples and summarize how many of the ten modes are represented and how
// far the generated class distribution is from the real one.
#pragma once

#include <vector>

#include "metrics/classifier.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::metrics {

struct ModeReport {
  std::vector<std::size_t> class_counts;  ///< per-digit counts among samples
  std::size_t modes_covered = 0;          ///< classes with >= threshold share
  double tvd_from_uniform = 0.0;          ///< total variation vs uniform(10)
};

/// `min_share` is the fraction of samples a class needs to count as covered
/// (default: a tenth of its fair share). An empty batch is defined (no NaN):
/// zero counts, zero modes covered, tvd_from_uniform = 1.0.
ModeReport mode_report(Classifier& classifier, const tensor::Tensor& images,
                       double min_share = 0.01);

/// Total variation distance between two discrete distributions given as
/// count histograms (not necessarily normalized). Empty histograms are
/// defined: two empties are 0 apart, one empty is 1 from any non-empty.
double total_variation(const std::vector<std::size_t>& a,
                       const std::vector<std::size_t>& b);

}  // namespace cellgan::metrics
