// Small dense linear-algebra statistics used by the FID metric:
// sample mean / covariance of feature matrices and a Jacobi eigensolver for
// symmetric matrices (needed for the matrix square root inside FID).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace cellgan::metrics {

/// Column means of an (n x d) sample matrix -> 1 x d.
tensor::Tensor column_mean(const tensor::Tensor& samples);

/// Unbiased sample covariance (d x d) of an (n x d) matrix. Requires n >= 2.
tensor::Tensor covariance(const tensor::Tensor& samples);

/// Eigen decomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Returns eigenvalues (ascending) and the orthonormal eigenvector matrix V
/// with columns as eigenvectors (A = V diag(w) V^T).
struct EigenResult {
  std::vector<double> eigenvalues;
  tensor::Tensor eigenvectors;  // d x d, column i <-> eigenvalue i
};
EigenResult symmetric_eigen(const tensor::Tensor& a, int max_sweeps = 64);

/// Symmetric positive-semidefinite square root via eigen decomposition.
/// Negative eigenvalues from numerical noise are clamped to zero.
tensor::Tensor psd_sqrt(const tensor::Tensor& a);

/// Squared L2 distance between two equal-length vectors (1 x d tensors).
double squared_distance(const tensor::Tensor& a, const tensor::Tensor& b);

/// Trace of a square matrix.
double trace(const tensor::Tensor& a);

}  // namespace cellgan::metrics
