#include "metrics/fid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "metrics/stats.hpp"
#include "tensor/ops.hpp"

namespace cellgan::metrics {

double fid_from_features(const tensor::Tensor& real_features,
                         const tensor::Tensor& fake_features) {
  CG_EXPECT(real_features.cols() == fake_features.cols());
  // The Gaussian fit needs a covariance on each side; fewer than two samples
  // has none — a named, catchable error instead of a 0/0 NaN downstream.
  if (real_features.rows() < 2 || fake_features.rows() < 2) {
    throw std::invalid_argument(
        "fid: need at least 2 samples per side, got " +
        std::to_string(real_features.rows()) + " real / " +
        std::to_string(fake_features.rows()) + " fake");
  }
  const tensor::Tensor mu_r = column_mean(real_features);
  const tensor::Tensor mu_f = column_mean(fake_features);
  const tensor::Tensor cov_r = covariance(real_features);
  const tensor::Tensor cov_f = covariance(fake_features);

  const tensor::Tensor s = psd_sqrt(cov_r);
  const tensor::Tensor inner = tensor::matmul(tensor::matmul(s, cov_f), s);
  const EigenResult eig = symmetric_eigen(inner);
  double trace_sqrt = 0.0;
  for (const double w : eig.eigenvalues) trace_sqrt += std::sqrt(std::max(w, 0.0));

  return squared_distance(mu_r, mu_f) + trace(cov_r) + trace(cov_f) - 2.0 * trace_sqrt;
}

double fid_score(Classifier& classifier, const tensor::Tensor& real_images,
                 const tensor::Tensor& fake_images) {
  return fid_from_features(classifier.features(real_images),
                           classifier.features(fake_images));
}

}  // namespace cellgan::metrics
