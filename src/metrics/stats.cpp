#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace cellgan::metrics {

tensor::Tensor column_mean(const tensor::Tensor& samples) {
  CG_EXPECT(samples.rows() > 0);
  tensor::Tensor mean = tensor::col_sum(samples);
  const float inv_n = 1.0f / static_cast<float>(samples.rows());
  for (auto& v : mean.data()) v *= inv_n;
  return mean;
}

tensor::Tensor covariance(const tensor::Tensor& samples) {
  const std::size_t n = samples.rows(), d = samples.cols();
  CG_EXPECT(n >= 2);
  const tensor::Tensor mu = column_mean(samples);
  tensor::Tensor centered(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    auto src = samples.row_span(i);
    auto dst = centered.row_span(i);
    for (std::size_t j = 0; j < d; ++j) dst[j] = src[j] - mu.data()[j];
  }
  tensor::Tensor cov = tensor::matmul_tn(centered, centered);
  const float scale = 1.0f / static_cast<float>(n - 1);
  for (auto& v : cov.data()) v *= scale;
  return cov;
}

EigenResult symmetric_eigen(const tensor::Tensor& a, int max_sweeps) {
  CG_EXPECT(a.rows() == a.cols());
  const std::size_t d = a.rows();
  // Work in double for numerical robustness on ill-conditioned covariances.
  std::vector<double> m(d * d);
  for (std::size_t i = 0; i < d * d; ++i) m[i] = a.data()[i];
  std::vector<double> v(d * d, 0.0);
  for (std::size_t i = 0; i < d; ++i) v[i * d + i] = 1.0;

  auto off_diagonal_norm = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) s += m[i * d + j] * m[i * d + j];
    }
    return std::sqrt(2.0 * s);
  };

  for (int sweep = 0; sweep < max_sweeps && off_diagonal_norm() > 1e-12; ++sweep) {
    for (std::size_t p = 0; p < d; ++p) {
      for (std::size_t q = p + 1; q < d; ++q) {
        const double apq = m[p * d + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = m[p * d + p];
        const double aqq = m[q * d + q];
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Rotate rows/columns p and q of M (symmetric update).
        for (std::size_t k = 0; k < d; ++k) {
          const double mkp = m[k * d + p];
          const double mkq = m[k * d + q];
          m[k * d + p] = c * mkp - s * mkq;
          m[k * d + q] = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < d; ++k) {
          const double mpk = m[p * d + k];
          const double mqk = m[q * d + k];
          m[p * d + k] = c * mpk - s * mqk;
          m[q * d + k] = s * mpk + c * mqk;
        }
        // Accumulate eigenvectors.
        for (std::size_t k = 0; k < d; ++k) {
          const double vkp = v[k * d + p];
          const double vkq = v[k * d + q];
          v[k * d + p] = c * vkp - s * vkq;
          v[k * d + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort ascending by eigenvalue.
  std::vector<std::size_t> order(d);
  for (std::size_t i = 0; i < d; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return m[x * d + x] < m[y * d + y];
  });

  EigenResult result;
  result.eigenvalues.resize(d);
  result.eigenvectors = tensor::Tensor(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    result.eigenvalues[i] = m[order[i] * d + order[i]];
    for (std::size_t k = 0; k < d; ++k) {
      result.eigenvectors.at(k, i) = static_cast<float>(v[k * d + order[i]]);
    }
  }
  return result;
}

tensor::Tensor psd_sqrt(const tensor::Tensor& a) {
  const EigenResult eig = symmetric_eigen(a);
  const std::size_t d = a.rows();
  // sqrt(A) = V diag(sqrt(max(w,0))) V^T
  tensor::Tensor scaled(d, d);  // V * diag(sqrt(w))
  for (std::size_t i = 0; i < d; ++i) {
    const float root = static_cast<float>(std::sqrt(std::max(eig.eigenvalues[i], 0.0)));
    for (std::size_t k = 0; k < d; ++k) {
      scaled.at(k, i) = eig.eigenvectors.at(k, i) * root;
    }
  }
  return tensor::matmul_nt(scaled, eig.eigenvectors);  // (V sqrt(w)) V^T
}

double squared_distance(const tensor::Tensor& a, const tensor::Tensor& b) {
  CG_EXPECT(a.same_shape(b));
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a.data()[i]) - b.data()[i];
    acc += diff * diff;
  }
  return acc;
}

double trace(const tensor::Tensor& a) {
  CG_EXPECT(a.rows() == a.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) acc += a.at(i, i);
  return acc;
}

}  // namespace cellgan::metrics
