#include "metrics/mode_coverage.hpp"

#include <cmath>

namespace cellgan::metrics {

ModeReport mode_report(Classifier& classifier, const tensor::Tensor& images,
                       double min_share) {
  ModeReport report;
  report.class_counts.assign(data::kNumClasses, 0);
  if (images.rows() == 0) {
    // No samples: no mode is covered and the (undefined) class distribution
    // is reported at the maximum distance from uniform — defined values
    // instead of 0/0 NaNs.
    report.tvd_from_uniform = 1.0;
    return report;
  }
  const auto labels = classifier.predict_labels(images);
  for (const auto y : labels) ++report.class_counts[y];

  const double n = static_cast<double>(labels.size());
  for (const auto count : report.class_counts) {
    if (static_cast<double>(count) / n >= min_share) ++report.modes_covered;
  }
  double tvd = 0.0;
  for (const auto count : report.class_counts) {
    tvd += std::abs(static_cast<double>(count) / n - 1.0 / data::kNumClasses);
  }
  report.tvd_from_uniform = 0.5 * tvd;
  return report;
}

double total_variation(const std::vector<std::size_t>& a,
                       const std::vector<std::size_t>& b) {
  CG_EXPECT(a.size() == b.size());
  double total_a = 0.0, total_b = 0.0;
  for (const auto v : a) total_a += static_cast<double>(v);
  for (const auto v : b) total_b += static_cast<double>(v);
  // Empty histograms carry no distribution: two empties are identical
  // (distance 0), one empty is maximally far from any real one (distance 1)
  // — defined values instead of a contract abort mid-telemetry.
  if (total_a == 0.0 || total_b == 0.0) {
    return total_a == total_b ? 0.0 : 1.0;
  }
  double tvd = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    tvd += std::abs(static_cast<double>(a[i]) / total_a -
                    static_cast<double>(b[i]) / total_b);
  }
  return 0.5 * tvd;
}

}  // namespace cellgan::metrics
