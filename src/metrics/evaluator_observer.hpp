// Pluggable metric evaluation over the core observer stream.
//
// The paper evaluates training quality with periodic held-out metrics
// (Table II: inception score per grid size); this observer closes the loop
// between the metrics layer and the trainers. Subscribed to a
// core::EventBus, it waits for epoch records that carry genome payloads
// (TrainingConfig::genome_record_every — core::Session derives the cadence
// from RunSpec::observers.eval_every), rebuilds every cell's generator from
// its serialized center genome, samples each one plus the best cell's
// neighborhood mixture, and scores them with the existing metrics layer:
// inception score per generator, IS + FID + mode coverage for the mixture.
// Snapshots are republished through the bus (so a telemetry sink logs them)
// and the last one is harvested into RunResult::metrics.
//
// Location transparency for free: the records look the same whichever
// backend produced them, so the same evaluator scores sequential, threaded
// and (at rank 0) distributed runs — synthetic or `idx:` MNIST.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/grid.hpp"
#include "core/observer.hpp"
#include "data/dataset.hpp"
#include "metrics/classifier.hpp"

namespace cellgan::metrics {

struct EvaluatorOptions {
  /// Evaluate on epochs where (epoch + 1) % eval_every == 0 and the record
  /// carries genomes. 0 evaluates on every genome-carrying epoch.
  std::uint32_t eval_every = 0;
  std::size_t samples = 256;  ///< per generator and for the mixture
  std::uint64_t seed = 0xe7a1ULL;  ///< latents + classifier init/training
  std::size_t classifier_epochs = 4;
  std::size_t classifier_batch = 50;
  double classifier_lr = 2e-3;
};

class EvaluatorObserver final : public core::TrainObserver {
 public:
  /// `real` is the held-out set metrics compare against (images must match
  /// config.arch.image_dim); copied, so temporaries are fine. The in-domain
  /// classifier (the Inception stand-in) is trained here, once.
  EvaluatorObserver(const core::TrainingConfig& config, data::Dataset real,
                    EvaluatorOptions options = {});

  void on_epoch_completed(const core::EpochRecord& record) override;
  std::optional<core::MetricSnapshot> take_metrics() override;
  std::optional<core::MetricSnapshot> final_metrics() const override;

  /// Every snapshot computed so far, in epoch order.
  const std::vector<core::MetricSnapshot>& history() const { return history_; }

 private:
  core::TrainingConfig config_;
  core::Grid grid_;
  data::Dataset real_;
  EvaluatorOptions options_;
  Classifier classifier_;
  std::vector<core::MetricSnapshot> history_;
  bool pending_ = false;  ///< history_.back() not yet taken by the bus
};

}  // namespace cellgan::metrics
