#include "metrics/evaluator_observer.hpp"

#include <algorithm>
#include <utility>

#include "core/genome.hpp"
#include "core/mixture.hpp"
#include "metrics/fid.hpp"
#include "metrics/inception_score.hpp"
#include "metrics/mode_coverage.hpp"
#include "nn/gan_models.hpp"

namespace cellgan::metrics {

namespace {

Classifier make_trained_classifier(const data::Dataset& real,
                                   std::size_t image_dim,
                                   const EvaluatorOptions& options) {
  // Contract checks first — this runs in the member initializer list, so a
  // degenerate held-out set must fail here, named, not deep inside training.
  // FID needs a covariance on each side (fid_from_features throws below 2).
  CG_EXPECT(real.size() >= 2);
  CG_EXPECT(real.images.cols() == image_dim);
  common::Rng rng(options.seed);
  Classifier classifier(rng, /*hidden_dim=*/64, image_dim);
  // Held-out sets at reduced scale can be smaller than the default batch.
  const std::size_t batch =
      std::max<std::size_t>(1, std::min(options.classifier_batch, real.size()));
  classifier.train(real, options.classifier_epochs, batch, options.classifier_lr,
                   rng);
  return classifier;
}

/// Rebuild one cell's generator from its serialized center genome.
nn::Sequential generator_from_record(const core::TrainingConfig& config,
                                     const core::CellEpochRecord& record,
                                     common::Rng& rng) {
  const core::CellGenome genome = core::CellGenome::deserialize(record.genome);
  nn::Sequential generator =
      nn::make_generator(config.arch, rng, config.conditional_classes());
  generator.load_parameters(genome.generator_params);
  return generator;
}

}  // namespace

EvaluatorObserver::EvaluatorObserver(const core::TrainingConfig& config,
                                     data::Dataset real, EvaluatorOptions options)
    : config_(config),
      grid_(static_cast<int>(config.grid_rows), static_cast<int>(config.grid_cols)),
      real_(std::move(real)),
      options_(options),
      classifier_(make_trained_classifier(real_, config.arch.image_dim, options_)) {
  // FID also needs >= 2 generated samples; clamp the batch size.
  options_.samples = std::max<std::size_t>(2, options_.samples);
}

void EvaluatorObserver::on_epoch_completed(const core::EpochRecord& record) {
  if (!record.has_genomes()) return;
  if (options_.eval_every > 0 && (record.epoch + 1) % options_.eval_every != 0) {
    return;
  }
  // Deterministic per epoch, independent of which backend produced the
  // record — the evaluation stream is as reproducible as the training one.
  common::Rng rng(options_.seed ^ (static_cast<std::uint64_t>(record.epoch) + 1));

  core::MetricSnapshot snapshot;
  snapshot.epoch = record.epoch;
  snapshot.best_cell = record.best_cell();

  // Per-generator inception scores (Table II's quality column, per cell).
  snapshot.cell_is.reserve(record.cells.size());
  for (const auto& cell : record.cells) {
    nn::Sequential generator = generator_from_record(config_, cell, rng);
    const core::MixtureWeights single(1);
    const tensor::Tensor images =
        core::sample_mixture(single, {&generator}, config_.arch.latent_dim,
                             options_.samples, rng, config_.conditional_classes());
    snapshot.cell_is.push_back(inception_score(classifier_, images));
  }

  // The returned generative model: the best cell's neighborhood mixture.
  const auto members = grid_.neighborhood_of(snapshot.best_cell);
  std::vector<nn::Sequential> generators;
  generators.reserve(members.size());
  for (const int member : members) {
    generators.push_back(generator_from_record(
        config_, record.cells[static_cast<std::size_t>(member)], rng));
  }
  std::vector<nn::Sequential*> generator_ptrs;
  generator_ptrs.reserve(generators.size());
  for (auto& generator : generators) generator_ptrs.push_back(&generator);
  core::MixtureWeights weights(members.size());
  const auto& evolved =
      record.cells[static_cast<std::size_t>(snapshot.best_cell)].mixture_weights;
  if (evolved.size() == members.size()) weights.set_weights(evolved);
  const tensor::Tensor mixture_images = core::sample_mixture(
      weights, generator_ptrs, config_.arch.latent_dim, options_.samples, rng,
      config_.conditional_classes());

  snapshot.mixture_is = inception_score(classifier_, mixture_images);
  snapshot.fid = fid_score(classifier_, real_.images, mixture_images);
  const ModeReport modes = mode_report(classifier_, mixture_images);
  snapshot.modes_covered = modes.modes_covered;
  snapshot.tvd_from_uniform = modes.tvd_from_uniform;

  history_.push_back(std::move(snapshot));
  pending_ = true;
}

std::optional<core::MetricSnapshot> EvaluatorObserver::take_metrics() {
  if (!pending_) return std::nullopt;
  pending_ = false;
  return history_.back();
}

std::optional<core::MetricSnapshot> EvaluatorObserver::final_metrics() const {
  if (history_.empty()) return std::nullopt;
  return history_.back();
}

}  // namespace cellgan::metrics
