// Inception score analogue over the in-domain classifier:
//   IS = exp( E_x[ KL( p(y|x) || p(y) ) ] )
// High when samples are individually confident (low-entropy posteriors) and
// collectively diverse (high-entropy marginal) — exactly the property the
// paper uses to pick the best neighborhood's generative mixture.
#pragma once

#include "metrics/classifier.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::metrics {

/// Score a batch of generated images (n x 784, values in [-1,1]).
/// Range [1, num_classes]; higher is better. Degenerate batches have
/// defined scores: an empty batch scores 1.0 (no evidence — the scale's
/// minimum), as does a single sample (its marginal equals its posterior).
double inception_score(Classifier& classifier, const tensor::Tensor& images);

/// Score precomputed posteriors (n x num_classes) directly.
double inception_score_from_probs(const tensor::Tensor& probs);

}  // namespace cellgan::metrics
