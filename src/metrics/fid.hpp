// Fréchet distance between Gaussian fits of classifier features:
//   FID = |mu_r - mu_f|^2 + Tr(C_r + C_f - 2 (C_r C_f)^{1/2})
// The matrix square root is computed as S = sqrt(C_r), then
// Tr((C_r C_f)^{1/2}) = sum_i sqrt(lambda_i(S C_f S)) with S C_f S symmetric
// PSD, using the Jacobi eigensolver in stats.hpp. Lower is better.
#pragma once

#include "metrics/classifier.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::metrics {

/// FID between feature distributions of two image sets (rows = samples).
double fid_score(Classifier& classifier, const tensor::Tensor& real_images,
                 const tensor::Tensor& fake_images);

/// FID from precomputed feature matrices (n x d each). Fewer than 2 samples
/// on either side has no covariance: throws std::invalid_argument naming the
/// batch sizes (never a silent NaN).
double fid_from_features(const tensor::Tensor& real_features,
                         const tensor::Tensor& fake_features);

}  // namespace cellgan::metrics
