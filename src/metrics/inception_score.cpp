#include "metrics/inception_score.hpp"

#include <algorithm>
#include <cmath>

namespace cellgan::metrics {

double inception_score_from_probs(const tensor::Tensor& probs) {
  // An empty batch carries no evidence of confidence or diversity: defined
  // as the scale's minimum (a single sample also scores 1 — its marginal
  // equals its posterior, so the KL term vanishes).
  if (probs.rows() == 0) return 1.0;
  const std::size_t n = probs.rows(), k = probs.cols();
  std::vector<double> marginal(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = probs.row_span(i);
    for (std::size_t j = 0; j < k; ++j) marginal[j] += row[j];
  }
  for (auto& v : marginal) v /= static_cast<double>(n);

  double kl_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    auto row = probs.row_span(i);
    for (std::size_t j = 0; j < k; ++j) {
      const double p = std::max(static_cast<double>(row[j]), 1e-12);
      kl_sum += p * (std::log(p) - std::log(std::max(marginal[j], 1e-12)));
    }
  }
  return std::exp(kl_sum / static_cast<double>(n));
}

double inception_score(Classifier& classifier, const tensor::Tensor& images) {
  return inception_score_from_probs(classifier.predict_probs(images));
}

}  // namespace cellgan::metrics
