#include "datastore/sample_store.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>

#include "common/expect.hpp"
#include "datastore/errors.hpp"
#include "datastore/stats.hpp"

namespace cellgan::datastore {

namespace {

constexpr std::uint32_t kImagesMagic = 0x00000803;  // idx3, ubyte
constexpr std::size_t kHeaderBytes = 16;            // magic + count + rows + cols
/// Sanity ceiling for one image side; a "dimension" above this is header
/// corruption, not a plausible dataset. Also keeps rows*cols in 32 bits so
/// the size arithmetic below cannot overflow.
constexpr std::uint32_t kMaxSide = 1u << 15;

std::uint32_t read_u32_be(const unsigned char* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

GlobalStats global_stats;

/// Registry of live stores keyed by the dataset's float storage address.
/// Entries are weak so the registry never extends a store's lifetime; a dead
/// entry is simply replaced on the next lookup. The (size, dim) pair is
/// checked on hits so a recycled allocation address with a different shape
/// cannot alias a stale store.
struct Registry {
  std::mutex mutex;
  std::map<const float*, std::weak_ptr<SampleStore>> stores;

  static Registry& instance() {
    static Registry registry;
    return registry;
  }
};

const float* dataset_key(const data::Dataset& dataset) {
  return dataset.images.data().data();
}

}  // namespace

GlobalStats& stats() { return global_stats; }

std::shared_ptr<SampleStore> SampleStore::map_idx(const std::string& images_path) {
  MappedFile mapping(images_path);  // throws MissingFileError / MappingError
  if (mapping.size() < kHeaderBytes) {
    throw TruncatedFileError("datastore: '" + images_path + "' holds " +
                             std::to_string(mapping.size()) +
                             " bytes, smaller than the 16-byte IDX header");
  }
  const unsigned char* head = mapping.data();
  const std::uint32_t magic = read_u32_be(head);
  if (magic != kImagesMagic) {
    char hex[16];
    std::snprintf(hex, sizeof(hex), "0x%08x", magic);
    throw BadMagicError("datastore: '" + images_path + "' has magic " + hex +
                        ", not idx3-ubyte (0x00000803)");
  }
  const std::uint32_t count = read_u32_be(head + 4);
  const std::uint32_t rows = read_u32_be(head + 8);
  const std::uint32_t cols = read_u32_be(head + 12);
  if (rows == 0 || cols == 0 || rows > kMaxSide || cols > kMaxSide) {
    throw BadMagicError("datastore: '" + images_path +
                        "' declares implausible image dimensions " +
                        std::to_string(rows) + "x" + std::to_string(cols));
  }
  if (count == 0) {
    throw EmptyStoreError("datastore: '" + images_path +
                          "' declares zero samples");
  }
  // Validate the payload against the real file size before trusting `count`
  // anywhere: division instead of count*rows*cols sidesteps overflow from a
  // garbage header.
  const std::uint64_t row_bytes = std::uint64_t{rows} * cols;
  const std::uint64_t available = mapping.size() - kHeaderBytes;
  if (count > available / row_bytes) {
    throw TruncatedFileError(
        "datastore: '" + images_path + "' is truncated: header declares " +
        std::to_string(count) + " images of " + std::to_string(row_bytes) +
        " bytes but only " + std::to_string(available) +
        " payload bytes are on disk");
  }

  auto store = std::shared_ptr<SampleStore>(new SampleStore());
  store->samples_ = count;
  store->dim_ = static_cast<std::size_t>(row_bytes);
  store->mapping_ = std::move(mapping);
  store->pixels_ = store->mapping_->data() + kHeaderBytes;
  global_stats.bytes_mapped.value.fetch_add(store->mapping_->size(),
                                            std::memory_order_relaxed);
  global_stats.stores_created.value.fetch_add(1, std::memory_order_relaxed);
  return store;
}

std::shared_ptr<SampleStore> SampleStore::adopt(const data::Dataset& dataset) {
  CG_EXPECT(dataset.size() > 0);
  auto store = std::shared_ptr<SampleStore>(new SampleStore());
  store->samples_ = dataset.size();
  store->dim_ = dataset.images.cols();
  store->floats_ = dataset.images.data().data();
  global_stats.stores_created.value.fetch_add(1, std::memory_order_relaxed);
  return store;
}

std::shared_ptr<SampleStore> SampleStore::for_dataset(const data::Dataset& dataset) {
  Registry& registry = Registry::instance();
  const float* key = dataset_key(dataset);
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.stores.find(key);
  if (it != registry.stores.end()) {
    if (auto live = it->second.lock();
        live != nullptr && live->samples() == dataset.size() &&
        live->sample_dim() == dataset.images.cols()) {
      return live;
    }
  }
  auto store = adopt(dataset);
  registry.stores[key] = store;
  return store;
}

std::shared_ptr<SampleStore> SampleStore::bind_idx(const data::Dataset& dataset,
                                                   const std::string& images_path) {
  auto store = map_idx(images_path);
  if (store->samples() != dataset.size() ||
      store->sample_dim() != dataset.images.cols()) {
    throw DataStoreError(
        "datastore: '" + images_path + "' shape (" +
        std::to_string(store->samples()) + " x " +
        std::to_string(store->sample_dim()) +
        ") does not match the dataset it should back (" +
        std::to_string(dataset.size()) + " x " +
        std::to_string(dataset.images.cols()) + ")");
  }
  Registry& registry = Registry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.stores[dataset_key(dataset)] = store;
  return store;
}

void SampleStore::stage_row(std::size_t row, float* dst) const {
  CG_EXPECT(row < samples_);
  if (pixels_ != nullptr) {
    const unsigned char* src = pixels_ + row * dim_;
    for (std::size_t j = 0; j < dim_; ++j) {
      // bytes 0..255 -> [-1, 1]; must stay the exact expression
      // data::load_idx_pair uses so staged floats are bit-identical.
      dst[j] = static_cast<float>(src[j]) / 127.5f - 1.0f;
    }
  } else {
    std::memcpy(dst, floats_ + row * dim_, dim_ * sizeof(float));
  }
}

}  // namespace cellgan::datastore
