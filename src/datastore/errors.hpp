// Named failure modes of the sample store's IDX ingest path.
//
// Every error carries the offending path and the concrete mismatch, so a
// misconfigured data directory fails with "which file, what's wrong with it"
// instead of a generic read failure deep inside training setup. The family
// mirrors the named-error style of the minimpi transport (PeerDeathError,
// TimeoutError): callers that want to degrade gracefully catch
// DataStoreError; tests pin the specific subclass per failure mode.
#pragma once

#include <stdexcept>
#include <string>

namespace cellgan::datastore {

/// Base of every datastore failure.
class DataStoreError : public std::runtime_error {
 public:
  explicit DataStoreError(const std::string& message)
      : std::runtime_error(message) {}
};

/// The IDX file does not exist (or cannot be opened at all).
class MissingFileError : public DataStoreError {
 public:
  explicit MissingFileError(const std::string& message)
      : DataStoreError(message) {}
};

/// The file is shorter than its own header claims (truncated download,
/// corrupt header declaring more samples than the bytes on disk).
class TruncatedFileError : public DataStoreError {
 public:
  explicit TruncatedFileError(const std::string& message)
      : DataStoreError(message) {}
};

/// The magic number (or the dimension fields) are not an idx3-ubyte header.
class BadMagicError : public DataStoreError {
 public:
  explicit BadMagicError(const std::string& message)
      : DataStoreError(message) {}
};

/// A structurally valid file declaring zero samples — nothing to train on.
class EmptyStoreError : public DataStoreError {
 public:
  explicit EmptyStoreError(const std::string& message)
      : DataStoreError(message) {}
};

/// The OS-level mmap itself failed (permissions, address space, I/O error).
class MappingError : public DataStoreError {
 public:
  explicit MappingError(const std::string& message)
      : DataStoreError(message) {}
};

}  // namespace cellgan::datastore
