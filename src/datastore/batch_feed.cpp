#include "datastore/batch_feed.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/aligned.hpp"
#include "common/expect.hpp"
#include "datastore/epoch_view.hpp"
#include "datastore/prefetcher.hpp"
#include "datastore/stats.hpp"

namespace cellgan::datastore {

namespace {

constexpr std::uint64_t kUnkeyed = ~std::uint64_t{0};

}  // namespace

/// Shared between the feed and in-flight prefetch tasks (which hold it weakly:
/// a dying feed orphans its workers harmlessly).
struct StoreFeed::State {
  /// One staging slot. `key`/`ready`/`inflight` are guarded by `mutex`;
  /// `staging` is written lock-free by the single worker that claimed the
  /// slot (inflight, matching key) and read by the consumer only once ready.
  struct Slot {
    std::uint64_t key = kUnkeyed;
    bool ready = false;
    bool inflight = false;
    common::AlignedBuffer staging;
  };

  std::shared_ptr<const SampleStore> store;
  std::size_t batch_size = 0;
  std::size_t dim = 0;
  std::size_t depth = 0;

  std::mutex mutex;
  std::condition_variable ready_cv;
  std::vector<std::unique_ptr<Slot>> slots;
};

StoreFeed::StoreFeed(std::shared_ptr<const SampleStore> store, std::size_t batch_size,
                     std::vector<std::uint32_t> labels)
    : shuffle_(store->samples()), state_(std::make_shared<State>()),
      labels_(std::move(labels)) {
  CG_EXPECT(batch_size > 0);
  CG_EXPECT(labels_.empty() || labels_.size() == store->samples());
  state_->store = std::move(store);
  state_->batch_size = batch_size;
  state_->dim = state_->store->sample_dim();
  const std::size_t batches = state_->store->samples() / batch_size;
  state_->depth = std::clamp<std::size_t>(batches, 1, 8);
  state_->slots.reserve(state_->depth);
  for (std::size_t i = 0; i < state_->depth; ++i) {
    auto slot = std::make_unique<State::Slot>();
    slot->staging.grow(batch_size * state_->dim);
    state_->slots.push_back(std::move(slot));
  }
}

StoreFeed::~StoreFeed() = default;

std::size_t StoreFeed::batch_size() const { return state_->batch_size; }

std::size_t StoreFeed::batches_per_epoch() const {
  return shuffle_.order().size() / state_->batch_size;
}

const SampleStore& StoreFeed::store() const { return *state_->store; }

std::uint64_t StoreFeed::key_of(std::size_t index) const {
  return (static_cast<std::uint64_t>(generation_) << 32) | static_cast<std::uint32_t>(index);
}

void StoreFeed::reshuffle(common::Rng& rng) {
  shuffle_.reshuffle(rng);
  ++generation_;  // orphan any slot keyed to the old order
  // Warm the ring for the fresh epoch: batch 0 is about to be drawn.
  const std::size_t batches = batches_per_epoch();
  for (std::size_t k = 0; k < std::min(state_->depth, batches); ++k) schedule_one(k);
}

void StoreFeed::restore_order(std::vector<std::uint32_t> order) {
  shuffle_.restore(std::move(order));
  ++generation_;  // the restored epoch's first read takes one stall, then refills
}

void StoreFeed::schedule_one(std::size_t index) {
  auto& state = *state_;
  const std::uint64_t key = key_of(index);
  std::vector<std::uint32_t> rows;
  const std::size_t slot_idx = index % state.depth;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    State::Slot& slot = *state.slots[slot_idx];
    if (slot.key == key && (slot.ready || slot.inflight)) return;  // covered
    if (slot.inflight) return;  // stale work still owns the buffer; retry later
    slot.key = key;
    slot.ready = false;
    slot.inflight = true;
    std::size_t outstanding = 0;
    for (const auto& s : state.slots) outstanding += (s->ready || s->inflight) ? 1 : 0;
    stats().note_depth(outstanding);
  }
  const auto& order = shuffle_.order();
  rows.assign(order.begin() + static_cast<std::ptrdiff_t>(index * state.batch_size),
              order.begin() + static_cast<std::ptrdiff_t>((index + 1) * state.batch_size));

  std::weak_ptr<State> weak = state_;
  Prefetcher::global().enqueue([weak, key, slot_idx, rows = std::move(rows)] {
    auto state = weak.lock();
    if (!state) return;
    State::Slot& slot = *state->slots[slot_idx];
    // Sole owner of `staging` while (inflight, key) names this task.
    float* dst = slot.staging.data();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      state->store->stage_row(rows[i], dst + i * state->dim);
    }
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (slot.key == key && slot.inflight) {
        slot.inflight = false;
        slot.ready = true;
        published = true;
      }
    }
    if (published) {
      stats().staged_batches.value.fetch_add(1, std::memory_order_relaxed);
      state->ready_cv.notify_all();
    }
  });
}

void StoreFeed::schedule_ahead(std::size_t index) {
  const std::size_t batches = batches_per_epoch();
  // Stop short of reclaiming `index`'s own slot ((index + depth) % depth):
  // the trainer peeks an index before consuming it and must hit twice.
  for (std::size_t k = index + 1; k < index + state_->depth && k < batches; ++k) {
    schedule_one(k);
  }
}

tensor::Tensor StoreFeed::batch(std::size_t index) {
  auto& state = *state_;
  CG_EXPECT(index < batches_per_epoch());
  tensor::Tensor out(state.batch_size, state.dim);
  const std::uint64_t key = key_of(index);
  State::Slot& slot = *state.slots[index % state.depth];

  bool copied = false;
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    if (slot.key == key) {
      if (!slot.ready && slot.inflight) {
        stats().prefetch_waits.value.fetch_add(1, std::memory_order_relaxed);
        state.ready_cv.wait(lock, [&] { return slot.key != key || slot.ready; });
      }
      if (slot.key == key && slot.ready) {
        const float* src = slot.staging.data();
        std::copy(src, src + state.batch_size * state.dim, out.data().data());
        stats().prefetch_hits.value.fetch_add(1, std::memory_order_relaxed);
        copied = true;
      }
    }
  }
  if (!copied) {
    // Cold read (first touch after construction/restore, or ring miss):
    // stage synchronously through the same view path the workers use.
    stats().prefetch_stalls.value.fetch_add(1, std::memory_order_relaxed);
    EpochView(state.store, shuffle_.order(), state.batch_size)
        .stage_batch(index, out.data().data());
  }
  schedule_ahead(index);
  return out;
}

std::vector<std::uint32_t> StoreFeed::batch_labels(std::size_t index) const {
  CG_EXPECT(index < batches_per_epoch());
  CG_EXPECT(!labels_.empty());  // feed built without a label plane
  const auto& order = shuffle_.order();
  std::vector<std::uint32_t> out(state_->batch_size);
  for (std::size_t i = 0; i < state_->batch_size; ++i) {
    out[i] = labels_[order[index * state_->batch_size + i]];
  }
  return out;
}

std::unique_ptr<BatchFeed> make_feed(DataPlane plane, const data::Dataset& dataset,
                                     std::size_t batch_size) {
  const DataPlane resolved = resolve_data_plane(plane);
  if (resolved == DataPlane::kStore) {
    auto store = SampleStore::for_dataset(dataset);
    CG_EXPECT(store->sample_dim() == dataset.images.cols());
    return std::make_unique<StoreFeed>(std::move(store), batch_size, dataset.labels);
  }
  return std::make_unique<LegacyFeed>(dataset, batch_size);
}

}  // namespace cellgan::datastore
