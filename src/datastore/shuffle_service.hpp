// ShuffleService — deterministic epoch-order management.
//
// The one shuffle implementation in the system is common::Rng::shuffle
// (Fisher-Yates); both the legacy data::DataLoader and this service delegate
// to it, so a StoreFeed seeded like a DataLoader draws bit-identical epoch
// orders — the property every cross-plane parity suite rests on. The order is
// exposed for checkpointing exactly like the loader's: a resumed run restores
// the interrupted epoch's permutation and cursor and replays the same batches.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace cellgan::datastore {

class ShuffleService {
 public:
  /// Identity order over `samples` indices (matching a fresh DataLoader).
  explicit ShuffleService(std::size_t samples);

  /// Draw a new epoch order. Delegates to common::Rng::shuffle — the same
  /// Fisher-Yates the legacy loader consumes, one uniform_int draw per
  /// element, so the caller's Rng stream advances identically.
  void reshuffle(common::Rng& rng);

  const std::vector<std::uint32_t>& order() const { return order_; }
  void restore(std::vector<std::uint32_t> order) { order_ = std::move(order); }

 private:
  std::vector<std::uint32_t> order_;
};

}  // namespace cellgan::datastore
