// Read-only memory mapping with named errors.
//
// The sample store keeps the IDX pixel plane as the kernel's page-cache copy
// instead of a heap duplicate: one MappedFile per image file, shared by every
// lane and rank in the process. PROT_READ means a stray write through the
// mapping faults instead of corrupting training data.
#pragma once

#include <cstddef>
#include <string>

namespace cellgan::datastore {

class MappedFile {
 public:
  /// Map `path` read-only in its entirety. Throws MissingFileError when the
  /// file cannot be opened, MappingError when fstat/mmap fail.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void unmap() noexcept;

  std::string path_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace cellgan::datastore
