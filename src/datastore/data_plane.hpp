// DataPlane — which batch-feeding implementation the trainers consume.
//
// kLegacy is the original per-cell data::DataLoader path; kStore routes
// batches through the shared SampleStore + background Prefetcher. The two are
// bit-identical by construction (same shuffle, same normalization, same
// gather), so the switch is a pure performance seam — mirrored on
// RunSpec/TrainingConfig the way TensorKernel mirrors the microkernel seam.
// kAuto defers to the CELLGAN_DATA_PLANE environment variable (legacy when
// unset), which is how CI forces the whole tier-1 bed through the store path
// without touching any test.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace cellgan::datastore {

enum class DataPlane : std::uint32_t { kAuto = 0, kLegacy = 1, kStore = 2 };

const char* to_string(DataPlane plane);
std::optional<DataPlane> data_plane_from_string(std::string_view name);

/// Resolve kAuto against the process environment (CELLGAN_DATA_PLANE=legacy|
/// store; unset or unparsable -> legacy, with a one-time warning on garbage).
/// Explicit choices pass through untouched.
DataPlane resolve_data_plane(DataPlane requested);

}  // namespace cellgan::datastore
