// EpochView — a zero-copy, read-only window over one epoch's batch stream.
//
// A view binds (store, epoch order, batch size) without copying any sample
// data; batch materialization gathers rows through the store's staging path
// on demand. Views are value types safe to copy across threads, and every
// method is const: any number of lanes can read overlapping or sharded views
// of the same store concurrently (the ASan hammer suite pins this).
//
// shard(lane, lanes) splits the epoch's batches contiguously across lanes —
// the per-rank partition a sharded consumer (bench sweeps, future
// data-parallel modes) reads its slice through.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "datastore/sample_store.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::datastore {

class EpochView {
 public:
  /// `order` must outlive the view (it lives in the owning ShuffleService /
  /// test fixture); the store is kept alive by the shared_ptr.
  EpochView(std::shared_ptr<const SampleStore> store,
            std::span<const std::uint32_t> order, std::size_t batch_size);

  std::size_t batch_size() const { return batch_size_; }
  std::size_t sample_dim() const { return store_->sample_dim(); }
  /// Full batches in this view (tail dropped, like the legacy loader).
  std::size_t batches() const { return order_.size() / batch_size_; }

  /// Stage batch `index` as batches()*sample_dim() floats into `dst`.
  void stage_batch(std::size_t index, float* dst) const;

  /// Materialize batch `index` as a fresh tensor (legacy-loader-identical).
  tensor::Tensor batch(std::size_t index) const;

  /// This lane's contiguous share of the view's batches. Lanes partition:
  /// every batch belongs to exactly one lane, early lanes get the remainder.
  EpochView shard(std::size_t lane, std::size_t lanes) const;

 private:
  std::shared_ptr<const SampleStore> store_;
  std::span<const std::uint32_t> order_;
  std::size_t batch_size_;
};

}  // namespace cellgan::datastore
