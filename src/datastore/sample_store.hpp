// SampleStore — the process-wide in-memory sample plane.
//
// The LBANN data_store idea applied to this codebase: instead of every cell
// materializing batches from its own private copy of the training tensor, a
// single read-only store per dataset serves every lane and rank in the
// process. Two backings exist behind one staging API:
//
//   * mmap-backed ("idx"): the raw idx3-ubyte pixel plane stays in the
//     kernel page cache (no heap copy of the bytes); staging normalizes
//     bytes -> [-1, 1] floats with the exact expression the legacy loader
//     used at load time, so a staged batch is bit-identical to a legacy one.
//   * float-backed ("adopted"): a view over an already-resolved float
//     Dataset (synthetic stand-ins, downsampled or dieted subsets); staging
//     is a row copy.
//
// Stores are interned in a process-wide registry keyed by the dataset's
// storage address, so the distributed thread-per-rank backend — every rank in
// one process, all referencing one Dataset — shares one store instead of
// per-rank copies. Registry entries are weak: a store lives exactly as long
// as some feed (or the Session that bound it) holds it.
//
// All read paths are const and thread-safe; EpochViews and the prefetcher
// read concurrently without synchronization.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "data/dataset.hpp"
#include "datastore/mapped_file.hpp"

namespace cellgan::datastore {

class SampleStore {
 public:
  /// Map an idx3-ubyte image file. Validates — in order, before touching any
  /// pixel — that the file opens (MissingFileError), is large enough for a
  /// header and its declared payload (TruncatedFileError), carries the idx3
  /// magic and plausible dimensions (BadMagicError), and declares at least
  /// one sample (EmptyStoreError).
  static std::shared_ptr<SampleStore> map_idx(const std::string& images_path);

  /// Wrap an already-resolved float dataset (no copy; `dataset` must outlive
  /// the store).
  static std::shared_ptr<SampleStore> adopt(const data::Dataset& dataset);

  /// Interning lookup: the store registered for `dataset`'s storage, creating
  /// (and registering) a float-backed store on first use. Every CellTrainer
  /// feed over the same dataset in this process shares the returned store.
  static std::shared_ptr<SampleStore> for_dataset(const data::Dataset& dataset);

  /// Register an mmap-backed store as the one serving `dataset`: the Session
  /// calls this after load_mnist_idx so feeds stage straight from the mapped
  /// bytes. Throws DataStoreError when the file's shape does not match the
  /// dataset (wrong file for this data). Returns the bound store; the caller
  /// must keep the shared_ptr alive for the binding to persist.
  static std::shared_ptr<SampleStore> bind_idx(const data::Dataset& dataset,
                                               const std::string& images_path);

  std::size_t samples() const { return samples_; }
  std::size_t sample_dim() const { return dim_; }
  bool mmap_backed() const { return mapping_.has_value(); }
  /// Bytes of file kept mapped (0 for adopted float stores).
  std::size_t bytes_mapped() const { return mapping_ ? mapping_->size() : 0; }

  /// Write sample `row` as `sample_dim()` floats in [-1, 1] to `dst`.
  /// Bit-identical to the legacy loader's normalization. Thread-safe.
  void stage_row(std::size_t row, float* dst) const;

 private:
  SampleStore() = default;

  std::size_t samples_ = 0;
  std::size_t dim_ = 0;
  /// mmap backing: pixel plane lives at pixels_ inside mapping_.
  std::optional<MappedFile> mapping_;
  const unsigned char* pixels_ = nullptr;
  /// float backing: rows live in the adopted dataset's tensor.
  const float* floats_ = nullptr;
};

}  // namespace cellgan::datastore
