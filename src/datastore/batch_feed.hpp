// BatchFeed — the seam between training loops and the data plane.
//
// CellTrainer consumes batches through this interface; which plane serves
// them is a RunSpec/env switch (see data_plane.hpp):
//
//   * LegacyFeed forwards to data::DataLoader — byte-for-byte the historical
//     path, the parity baseline.
//   * StoreFeed reads a shared SampleStore through a generation-keyed ring of
//     cache-aligned staging slots filled by the background Prefetcher, so the
//     gather+normalize cost overlaps training compute.
//
// Contract (both planes, pinned by tests/datastore/prefetch_test.cpp):
//   * construction leaves the identity order, like a fresh DataLoader;
//   * reshuffle() consumes exactly the Rng draws DataLoader::reshuffle does;
//   * batch(i) is repeatable — the trainer peeks an index in
//     evaluate_center_fitness() and reads it again in train();
//   * order()/restore_order() round-trip through checkpoints.
// Feeds are single-consumer: all methods are called from the owning trainer's
// thread. Cross-thread concurrency lives inside StoreFeed (prefetch workers).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "data/dataloader.hpp"
#include "data/dataset.hpp"
#include "datastore/data_plane.hpp"
#include "datastore/sample_store.hpp"
#include "datastore/shuffle_service.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::datastore {

class BatchFeed {
 public:
  virtual ~BatchFeed() = default;

  virtual DataPlane plane() const = 0;
  virtual std::size_t batch_size() const = 0;
  virtual std::size_t batches_per_epoch() const = 0;
  virtual void reshuffle(common::Rng& rng) = 0;
  virtual const std::vector<std::uint32_t>& order() const = 0;
  virtual void restore_order(std::vector<std::uint32_t> order) = 0;
  /// Materialize batch `index` of the current epoch. Repeatable: reading the
  /// same index twice (peek, then consume) returns identical tensors.
  virtual tensor::Tensor batch(std::size_t index) = 0;
  /// Row-aligned class labels of batch `index` — the conditional pathway's
  /// label plane. Follows the same order() the image batch uses, so labels[i]
  /// annotates batch(index).row(i).
  virtual std::vector<std::uint32_t> batch_labels(std::size_t index) const = 0;
};

/// The historical path: a thin forwarder around data::DataLoader.
class LegacyFeed final : public BatchFeed {
 public:
  LegacyFeed(const data::Dataset& dataset, std::size_t batch_size)
      : loader_(dataset, batch_size) {}

  DataPlane plane() const override { return DataPlane::kLegacy; }
  std::size_t batch_size() const override { return loader_.batch_size(); }
  std::size_t batches_per_epoch() const override { return loader_.batches_per_epoch(); }
  void reshuffle(common::Rng& rng) override { loader_.reshuffle(rng); }
  const std::vector<std::uint32_t>& order() const override { return loader_.order(); }
  void restore_order(std::vector<std::uint32_t> order) override {
    loader_.restore_order(std::move(order));
  }
  tensor::Tensor batch(std::size_t index) override { return loader_.batch(index); }
  std::vector<std::uint32_t> batch_labels(std::size_t index) const override {
    return loader_.batch_labels(index);
  }

 private:
  data::DataLoader loader_;
};

/// Store-served batches with background prefetch.
///
/// A ring of `depth` staging slots covers the next few batches of the current
/// epoch order. Slots are keyed by (generation << 32 | batch index); every
/// reshuffle/restore bumps the generation so stale in-flight work can never
/// publish into the new epoch — a worker compares its captured key against the
/// slot's before marking it ready and silently drops on mismatch. Row indices
/// are snapshotted into the task at schedule time (on the consumer thread,
/// which owns the order), so workers never read the mutable order vector.
///
/// batch(i): ready slot with matching key → copy out (hit); matching slot
/// still in flight → wait on the slot condvar (wait); anything else → stage
/// synchronously from the store (stall). Counters land in datastore::stats().
class StoreFeed final : public BatchFeed {
 public:
  StoreFeed(std::shared_ptr<const SampleStore> store, std::size_t batch_size,
            std::vector<std::uint32_t> labels = {});
  ~StoreFeed() override;

  DataPlane plane() const override { return DataPlane::kStore; }
  std::size_t batch_size() const override;
  std::size_t batches_per_epoch() const override;
  void reshuffle(common::Rng& rng) override;
  const std::vector<std::uint32_t>& order() const override { return shuffle_.order(); }
  void restore_order(std::vector<std::uint32_t> order) override;
  tensor::Tensor batch(std::size_t index) override;
  std::vector<std::uint32_t> batch_labels(std::size_t index) const override;

  const SampleStore& store() const;

 private:
  struct State;

  std::uint64_t key_of(std::size_t index) const;
  /// Claim and enqueue staging for batches (index, index + depth - 1] that
  /// are in range and not already covered. Never touches `index`'s own slot,
  /// so a peeked batch stays resident for its second read.
  void schedule_ahead(std::size_t index);
  void schedule_one(std::size_t index);

  ShuffleService shuffle_;
  std::uint32_t generation_ = 0;
  std::shared_ptr<State> state_;
  /// Per-sample class labels (copied from the dataset at feed construction);
  /// the store itself only holds the pixel plane.
  std::vector<std::uint32_t> labels_;
};

/// Build the feed `plane` selects (resolving kAuto via CELLGAN_DATA_PLANE).
/// Store feeds intern the process-wide SampleStore for `dataset`.
std::unique_ptr<BatchFeed> make_feed(DataPlane plane, const data::Dataset& dataset,
                                     std::size_t batch_size);

}  // namespace cellgan::datastore
