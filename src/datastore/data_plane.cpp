#include "datastore/data_plane.hpp"

#include <cstdio>
#include <cstdlib>

namespace cellgan::datastore {

const char* to_string(DataPlane plane) {
  switch (plane) {
    case DataPlane::kAuto: return "auto";
    case DataPlane::kLegacy: return "legacy";
    case DataPlane::kStore: return "store";
  }
  return "unknown";
}

std::optional<DataPlane> data_plane_from_string(std::string_view name) {
  if (name == "auto") return DataPlane::kAuto;
  if (name == "legacy") return DataPlane::kLegacy;
  if (name == "store") return DataPlane::kStore;
  return std::nullopt;
}

DataPlane resolve_data_plane(DataPlane requested) {
  if (requested != DataPlane::kAuto) return requested;
  static const DataPlane env_default = [] {
    const char* env = std::getenv("CELLGAN_DATA_PLANE");
    if (env == nullptr || *env == '\0') return DataPlane::kLegacy;
    const auto parsed = data_plane_from_string(env);
    if (parsed.has_value() && *parsed != DataPlane::kAuto) return *parsed;
    std::fprintf(stderr,
                 "warning: CELLGAN_DATA_PLANE='%s' is not legacy|store; "
                 "using legacy\n",
                 env);
    return DataPlane::kLegacy;
  }();
  return env_default;
}

}  // namespace cellgan::datastore
