#include "datastore/shuffle_service.hpp"

namespace cellgan::datastore {

ShuffleService::ShuffleService(std::size_t samples) : order_(samples) {
  for (std::size_t i = 0; i < samples; ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
  }
}

void ShuffleService::reshuffle(common::Rng& rng) { rng.shuffle(order_); }

}  // namespace cellgan::datastore
