// Process-wide data-plane counters.
//
// Every SampleStore / StoreFeed in the process accumulates into one global
// set of relaxed atomics; core::Session snapshots them around a run and
// publishes the delta through the EventBus as a DataStoreRecord, so the JSONL
// telemetry stream shows how the data plane behaved (bytes served from the
// page cache, how often training found its batch pre-staged vs. stalled).
// Relaxed ordering is enough: the counters are diagnostics, never control
// flow, and each is independently monotone.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/aligned.hpp"

namespace cellgan::datastore {

struct StatsSnapshot {
  std::uint64_t bytes_mapped = 0;     ///< live mmap bytes across all stores
  std::uint64_t stores_created = 0;   ///< SampleStore constructions
  std::uint64_t prefetch_hits = 0;    ///< batch() found its slot staged & ready
  std::uint64_t prefetch_waits = 0;   ///< batch() waited on an inflight stage
  std::uint64_t prefetch_stalls = 0;  ///< batch() staged synchronously (miss)
  std::uint64_t staged_batches = 0;   ///< batches staged by the background pool
  std::uint64_t staging_depth = 0;    ///< largest configured ring depth seen

  friend bool operator==(const StatsSnapshot&, const StatsSnapshot&) = default;
};

/// The live counters. Each on its own cache line: the prefetcher pool and
/// every training lane write them concurrently.
struct GlobalStats {
  common::CacheAligned<std::atomic<std::uint64_t>> bytes_mapped;
  common::CacheAligned<std::atomic<std::uint64_t>> stores_created;
  common::CacheAligned<std::atomic<std::uint64_t>> prefetch_hits;
  common::CacheAligned<std::atomic<std::uint64_t>> prefetch_waits;
  common::CacheAligned<std::atomic<std::uint64_t>> prefetch_stalls;
  common::CacheAligned<std::atomic<std::uint64_t>> staged_batches;
  common::CacheAligned<std::atomic<std::uint64_t>> staging_depth;  // max gauge

  StatsSnapshot snapshot() const {
    StatsSnapshot s;
    s.bytes_mapped = bytes_mapped.value.load(std::memory_order_relaxed);
    s.stores_created = stores_created.value.load(std::memory_order_relaxed);
    s.prefetch_hits = prefetch_hits.value.load(std::memory_order_relaxed);
    s.prefetch_waits = prefetch_waits.value.load(std::memory_order_relaxed);
    s.prefetch_stalls = prefetch_stalls.value.load(std::memory_order_relaxed);
    s.staged_batches = staged_batches.value.load(std::memory_order_relaxed);
    s.staging_depth = staging_depth.value.load(std::memory_order_relaxed);
    return s;
  }

  void note_depth(std::uint64_t depth) {
    std::uint64_t seen = staging_depth.value.load(std::memory_order_relaxed);
    while (seen < depth && !staging_depth.value.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }
};

GlobalStats& stats();

}  // namespace cellgan::datastore
