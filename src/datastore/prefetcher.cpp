#include "datastore/prefetcher.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace cellgan::datastore {

namespace {

std::size_t configured_threads() {
  const char* env = std::getenv("CELLGAN_PREFETCH_THREADS");
  if (env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return std::min<std::size_t>(static_cast<std::size_t>(parsed), 16);
  }
  return 2;
}

}  // namespace

Prefetcher& Prefetcher::global() {
  // Leaked on purpose: feeds may enqueue from static-destruction-ordered
  // contexts in tests; a leaked pool cannot be destroyed under them. The OS
  // reclaims the threads at process exit.
  static Prefetcher* pool = new Prefetcher(configured_threads());
  return *pool;
}

Prefetcher::Prefetcher(std::size_t threads) {
  workers_.reserve(std::max<std::size_t>(1, threads));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, threads); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Prefetcher::~Prefetcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void Prefetcher::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void Prefetcher::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void Prefetcher::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace cellgan::datastore
