#include "datastore/mapped_file.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "datastore/errors.hpp"

namespace cellgan::datastore {

MappedFile::MappedFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw MissingFileError("datastore: cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw MappingError("datastore: fstat '" + path +
                       "' failed: " + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap(0) is EINVAL; represent an empty file as an empty mapping and let
    // the header validation produce the named TruncatedFileError.
    ::close(fd);
    return;
  }
  void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);  // the mapping keeps its own reference to the file
  if (mapping == MAP_FAILED) {
    size_ = 0;
    throw MappingError("datastore: mmap '" + path +
                       "' failed: " + std::strerror(err));
  }
  data_ = static_cast<const unsigned char*>(mapping);
}

MappedFile::~MappedFile() { unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)), data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedFile::unmap() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
    data_ = nullptr;
  }
  size_ = 0;
}

}  // namespace cellgan::datastore
