// Prefetcher — the shared background staging pool.
//
// One small process-wide pool of worker threads stages upcoming minibatches
// while the training lanes compute, overlapping the gather+normalize cost
// with GEMMs instead of paying it inline. The pool is deliberately separate
// from common::ThreadPool: that pool's parallel_for blocks the caller, while
// staging must be fire-and-forget with completion observed through the
// feed's own slot state.
//
// Determinism: the pool never touches an Rng and never decides *what* to
// stage — feeds enqueue fully-described tasks (store + snapshotted row
// indices + destination slot), so scheduling jitter can only change *when* a
// batch is ready, never its contents or the training trajectory.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cellgan::datastore {

class Prefetcher {
 public:
  /// The process-wide pool, created on first use. Thread count comes from
  /// CELLGAN_PREFETCH_THREADS (default 2, clamped to [1, 16]).
  static Prefetcher& global();

  explicit Prefetcher(std::size_t threads);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  std::size_t threads() const { return workers_.size(); }

  /// Run `task` on a worker thread. Tasks must not throw.
  void enqueue(std::function<void()> task);

  /// Block until every task enqueued so far has finished (tests/benches).
  void drain();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cellgan::datastore
