#include "datastore/epoch_view.hpp"

#include "common/expect.hpp"

namespace cellgan::datastore {

EpochView::EpochView(std::shared_ptr<const SampleStore> store,
                     std::span<const std::uint32_t> order, std::size_t batch_size)
    : store_(std::move(store)), order_(order), batch_size_(batch_size) {
  CG_EXPECT(store_ != nullptr);
  CG_EXPECT(batch_size_ > 0);
}

void EpochView::stage_batch(std::size_t index, float* dst) const {
  CG_EXPECT(index < batches());
  const std::size_t dim = store_->sample_dim();
  for (std::size_t i = 0; i < batch_size_; ++i) {
    store_->stage_row(order_[index * batch_size_ + i], dst + i * dim);
  }
}

tensor::Tensor EpochView::batch(std::size_t index) const {
  tensor::Tensor out(batch_size_, store_->sample_dim());
  stage_batch(index, out.data().data());
  return out;
}

EpochView EpochView::shard(std::size_t lane, std::size_t lanes) const {
  CG_EXPECT(lanes > 0 && lane < lanes);
  const std::size_t total = batches();
  const std::size_t begin = total * lane / lanes;
  const std::size_t end = total * (lane + 1) / lanes;
  return EpochView(store_,
                   order_.subspan(begin * batch_size_, (end - begin) * batch_size_),
                   batch_size_);
}

}  // namespace cellgan::datastore
