// ExchangePolicy: the population-exchange seam (evolve/exchange.hpp) — the
// registry vocabulary, the pinned LTFB pairing order, and the per-policy
// semantics (cellular strictly-fitter adoption, ltfb tournaments, gap
// discriminator rotation) against a fake host.
#include "evolve/exchange.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/serialize.hpp"

namespace cellgan::evolve {
namespace {

/// Minimal ExchangeHost: records adoptions and mirrors the real trainer's
/// bookkeeping (adopting a side takes over that side's fitness).
class FakeHost final : public ExchangeHost {
 public:
  FakeHost(const Grid& grid, int cell, double g_fitness, double d_fitness)
      : grid_(grid),
        cell_(cell),
        g_fitness_(g_fitness),
        d_fitness_(d_fitness),
        subpop_(grid.neighbors_of(cell).size()) {}

  int cell() const override { return cell_; }
  const Grid& grid() const override { return grid_; }
  double g_fitness() const override { return g_fitness_; }
  double d_fitness() const override { return d_fitness_; }
  std::size_t subpop_slots() const override { return subpop_.size(); }
  const CellGenome* subpop_genome(std::size_t slot) const override {
    return subpop_[slot].has_value() ? &*subpop_[slot] : nullptr;
  }
  void install_subpop(std::size_t slot, CellGenome genome) override {
    subpop_[slot] = std::move(genome);
  }
  void adopt_generator(const CellGenome& genome) override {
    g_adopted_from = static_cast<int>(genome.origin_cell);
    g_fitness_ = genome.g_fitness;
  }
  void adopt_discriminator(const CellGenome& genome) override {
    d_adopted_from = static_cast<int>(genome.origin_cell);
    d_fitness_ = genome.d_fitness;
  }

  int g_adopted_from = -1;
  int d_adopted_from = -1;

 private:
  const Grid& grid_;
  int cell_;
  double g_fitness_;
  double d_fitness_;
  std::vector<std::optional<CellGenome>> subpop_;
};

CellGenome make_genome(int origin, double g_fitness, double d_fitness) {
  CellGenome genome;
  genome.generator_params = {1.0f, 2.0f};
  genome.discriminator_params = {3.0f};
  genome.g_learning_rate = 0.1;
  genome.d_learning_rate = 0.2;
  genome.g_fitness = g_fitness;
  genome.d_fitness = d_fitness;
  genome.origin_cell = static_cast<std::uint32_t>(origin);
  return genome;
}

/// gathered[] sized for `grid` with the given (cell, genome) entries filled.
std::vector<std::vector<std::uint8_t>> gather(
    const Grid& grid, const std::vector<std::pair<int, CellGenome>>& entries) {
  std::vector<std::vector<std::uint8_t>> gathered(
      static_cast<std::size_t>(grid.size()));
  for (const auto& [cell, genome] : entries) {
    gathered[static_cast<std::size_t>(cell)] = genome.serialize();
  }
  return gathered;
}

TEST(ExchangeRegistryTest, NamesRoundTripAndListRegistered) {
  for (const auto kind : {ExchangePolicyKind::kCellular, ExchangePolicyKind::kLtfb,
                          ExchangePolicyKind::kGap, ExchangePolicyKind::kAuto}) {
    const auto parsed = exchange_policy_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(exchange_policy_from_string("ring").has_value());
  EXPECT_FALSE(exchange_policy_from_string("").has_value());
  // The registered set the CLI diagnostics print ("auto" is a resolution
  // mode, not a policy, so it is not listed).
  EXPECT_EQ(exchange_policy_names(),
            (std::vector<std::string>{"cellular", "ltfb", "gap"}));
}

TEST(ExchangeRegistryTest, ExplicitKindsPassThroughResolution) {
  // Only kAuto consults the environment; explicit choices are untouched.
  for (const auto kind : {ExchangePolicyKind::kCellular, ExchangePolicyKind::kLtfb,
                          ExchangePolicyKind::kGap}) {
    EXPECT_EQ(resolve_exchange_policy(kind), kind);
  }
}

TEST(ExchangeRegistryTest, FactoryBuildsEveryRegisteredPolicy) {
  for (const auto kind : {ExchangePolicyKind::kCellular, ExchangePolicyKind::kLtfb,
                          ExchangePolicyKind::kGap}) {
    const auto policy = make_exchange_policy(kind, /*seed=*/7, /*every=*/1);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
  }
}

TEST(LtfbPairingTest, PairingIsAnInvolutionWithoutSelfPairs) {
  for (const int cells : {2, 5, 9, 16}) {
    for (const std::uint64_t round : {1u, 2u, 7u}) {
      const auto partner = ltfb_pairing(/*seed=*/99, cells, round);
      ASSERT_EQ(partner.size(), static_cast<std::size_t>(cells));
      int unpaired = 0;
      for (int cell = 0; cell < cells; ++cell) {
        if (partner[cell] < 0) {
          ++unpaired;
          continue;
        }
        EXPECT_NE(partner[cell], cell);
        EXPECT_EQ(partner[partner[cell]], cell);  // symmetric pairing
      }
      EXPECT_EQ(unpaired, cells % 2);  // exactly the odd cell sits out
    }
  }
}

TEST(LtfbPairingTest, PairingOrderIsPinnedForever) {
  // The historical pairing tables for seed 1234 on a 4x4 grid, rounds 1 and
  // 2. Every rank computes this table independently (zero communication) and
  // every checkpointed LTFB run replays against it, so these exact values are
  // a compatibility contract like RngTest.ShuffleOrderIsPinnedForever. If
  // this test fails, the change broke replay compatibility — revert it.
  const std::vector<int> round1{4, 11, 15, 14, 0,  6, 5, 13,
                                10, 12, 8,  1,  9,  7, 3, 2};
  const std::vector<int> round2{10, 14, 8, 11, 7, 13, 12, 4,
                                2,  15, 0, 3,  6, 5,  1,  9};
  EXPECT_EQ(ltfb_pairing(1234, 16, 1), round1);
  EXPECT_EQ(ltfb_pairing(1234, 16, 2), round2);
  // And the table is a pure function: recomputing gives identical results.
  EXPECT_EQ(ltfb_pairing(1234, 16, 1), ltfb_pairing(1234, 16, 1));
  EXPECT_NE(ltfb_pairing(1234, 16, 1), ltfb_pairing(1234, 16, 2));
}

TEST(CellularPolicyTest, StrictlyFitterNeighborAdoptedPerSide) {
  Grid grid(3, 3);
  const auto policy = make_exchange_policy(ExchangePolicyKind::kCellular, 7, 1);
  FakeHost host(grid, 0, /*g=*/1.0, /*d=*/1.0);
  const auto& neighbors = grid.neighbors_of(0);
  ASSERT_GE(neighbors.size(), 3u);
  // Two fitter generators (the fittest must win) and one fitter
  // discriminator; the host's own fitness bounds the rest.
  const auto gathered = gather(
      grid, {{neighbors[0], make_genome(neighbors[0], 0.5, 2.0)},
             {neighbors[1], make_genome(neighbors[1], 0.2, 3.0)},
             {neighbors[2], make_genome(neighbors[2], 4.0, 0.7)}});
  const ExchangeOutcome outcome = policy->apply(host, gathered, /*epoch=*/1);
  EXPECT_TRUE(outcome.g_adopted);
  EXPECT_TRUE(outcome.d_adopted);
  EXPECT_EQ(host.g_adopted_from, neighbors[1]);  // fittest generator
  EXPECT_EQ(host.d_adopted_from, neighbors[2]);
  EXPECT_EQ(outcome.partner, neighbors[1]);  // g-adoption origin wins the slot
  EXPECT_DOUBLE_EQ(outcome.g_fitness_before, 1.0);
  EXPECT_DOUBLE_EQ(outcome.g_fitness_after, 0.2);
  EXPECT_DOUBLE_EQ(outcome.d_fitness_after, 0.7);
  EXPECT_GT(outcome.bytes_in, 0.0);
  EXPECT_TRUE(outcome.exchanged());
}

TEST(CellularPolicyTest, EqualFitnessIsNotAdopted) {
  // Strict comparison: an equally-fit neighbor must not replace the center
  // (the pre-seam semantics the seam is pinned to).
  Grid grid(3, 3);
  const auto policy = make_exchange_policy(ExchangePolicyKind::kCellular, 7, 1);
  FakeHost host(grid, 0, 1.0, 1.0);
  const int neighbor = grid.neighbors_of(0)[0];
  const auto gathered = gather(grid, {{neighbor, make_genome(neighbor, 1.0, 1.0)}});
  const ExchangeOutcome outcome = policy->apply(host, gathered, 1);
  EXPECT_FALSE(outcome.exchanged());
  EXPECT_EQ(outcome.partner, -1);
  EXPECT_EQ(host.g_adopted_from, -1);
  EXPECT_DOUBLE_EQ(outcome.g_fitness_after, 1.0);
}

TEST(CellularPolicyTest, SourcesAreTheNeighbors) {
  Grid grid(3, 3);
  const auto policy = make_exchange_policy(ExchangePolicyKind::kCellular, 7, 1);
  for (int cell = 0; cell < grid.size(); ++cell) {
    EXPECT_EQ(policy->sources(grid, cell, 5), grid.neighbors_of(cell));
  }
}

TEST(LtfbPolicyTest, TournamentLoserAdoptsWholeGenome) {
  Grid grid(2, 2);
  const std::uint64_t seed = 42;
  const auto policy = make_exchange_policy(ExchangePolicyKind::kLtfb, seed, 1);
  FakeHost host(grid, 0, /*g=*/1.0, /*d=*/1.0);
  const auto partner_table = ltfb_pairing(seed, grid.size(), 1);
  const int partner = partner_table[0];
  ASSERT_GE(partner, 0);
  // The rival's generator loss is strictly lower: the host loses and adopts
  // BOTH sides of the rival's genome.
  const auto gathered =
      gather(grid, {{partner, make_genome(partner, 0.5, 9.0)}});
  const ExchangeOutcome outcome = policy->apply(host, gathered, /*epoch=*/1);
  EXPECT_EQ(outcome.partner, partner);
  EXPECT_TRUE(outcome.g_adopted);
  EXPECT_TRUE(outcome.d_adopted);
  EXPECT_EQ(host.g_adopted_from, partner);
  EXPECT_EQ(host.d_adopted_from, partner);
  EXPECT_DOUBLE_EQ(outcome.g_fitness_after, 0.5);
  EXPECT_EQ(outcome.wins, 0u);
}

TEST(LtfbPolicyTest, TournamentWinnerKeepsGenomeAndCountsWin) {
  Grid grid(2, 2);
  const std::uint64_t seed = 42;
  const auto policy = make_exchange_policy(ExchangePolicyKind::kLtfb, seed, 1);
  FakeHost host(grid, 0, 0.3, 1.0);
  const int partner = ltfb_pairing(seed, grid.size(), 1)[0];
  const auto gathered =
      gather(grid, {{partner, make_genome(partner, 0.8, 0.1)}});
  const ExchangeOutcome outcome = policy->apply(host, gathered, 1);
  EXPECT_EQ(outcome.partner, partner);
  EXPECT_FALSE(outcome.exchanged());
  EXPECT_EQ(outcome.wins, 1u);
  EXPECT_DOUBLE_EQ(outcome.g_fitness_after, 0.3);

  // Win counters accumulate and round-trip through checkpoint state. Each
  // round has its own pairing table, so look the rival up per round.
  const int partner2 = ltfb_pairing(seed, grid.size(), 2)[0];
  const auto gathered2 =
      gather(grid, {{partner2, make_genome(partner2, 0.9, 0.1)}});
  EXPECT_EQ(policy->apply(host, gathered2, 2).wins, 2u);
  common::ByteWriter writer;
  policy->serialize_state(writer);
  const auto bytes = writer.take();
  const auto fresh = make_exchange_policy(ExchangePolicyKind::kLtfb, seed, 1);
  common::ByteReader reader(bytes);
  fresh->restore_state(reader);
  const int partner3 = ltfb_pairing(seed, grid.size(), 3)[0];
  const auto gathered3 =
      gather(grid, {{partner3, make_genome(partner3, 0.9, 0.1)}});
  EXPECT_EQ(fresh->apply(host, gathered3, 3).wins, 3u);
}

TEST(LtfbPolicyTest, TieBreaksTowardLowerCellId) {
  Grid grid(2, 2);
  const std::uint64_t seed = 42;
  const int partner_of_0 = ltfb_pairing(seed, grid.size(), 1)[0];
  // Equal generator losses: the higher-id side of the pair adopts, the
  // lower-id side keeps its genome — exactly one adoption per pair.
  const int low = std::min(0, partner_of_0), high = std::max(0, partner_of_0);
  const auto policy_low = make_exchange_policy(ExchangePolicyKind::kLtfb, seed, 1);
  const auto policy_high = make_exchange_policy(ExchangePolicyKind::kLtfb, seed, 1);
  FakeHost host_low(grid, low, 1.0, 1.0);
  FakeHost host_high(grid, high, 1.0, 1.0);
  const auto gathered = gather(grid, {{low, make_genome(low, 1.0, 1.0)},
                                      {high, make_genome(high, 1.0, 1.0)}});
  const auto outcome_low = policy_low->apply(host_low, gathered, 1);
  const auto outcome_high = policy_high->apply(host_high, gathered, 1);
  EXPECT_FALSE(outcome_low.exchanged());
  EXPECT_EQ(outcome_low.wins, 1u);
  EXPECT_TRUE(outcome_high.g_adopted);
  EXPECT_TRUE(outcome_high.d_adopted);
  EXPECT_EQ(host_high.g_adopted_from, low);
}

TEST(LtfbPolicyTest, OffCadenceEpochsOnlyFlowNeighbors) {
  Grid grid(2, 2);
  const std::uint64_t seed = 42;
  const auto policy = make_exchange_policy(ExchangePolicyKind::kLtfb, seed,
                                           /*every=*/3);
  FakeHost host(grid, 0, 1.0, 1.0);
  // Epochs 0..2 are not tournament epochs under every=3 (epoch 0 never is).
  for (const std::uint32_t epoch : {0u, 1u, 2u, 4u}) {
    const auto gathered = gather(grid, {});
    const auto outcome = policy->apply(host, gathered, epoch);
    EXPECT_FALSE(outcome.exchanged()) << "epoch " << epoch;
    EXPECT_EQ(outcome.partner, -1) << "epoch " << epoch;
    EXPECT_EQ(policy->sources(grid, 0, epoch), grid.neighbors_of(0));
  }
  // Epoch 3 is round 1: the partner joins the source list when it is not
  // already a neighbor (on the 2x2 torus every cell borders every other, so
  // here we just assert the tournament fires).
  const auto gathered = gather(
      grid, {{ltfb_pairing(seed, grid.size(), 1)[0],
              make_genome(ltfb_pairing(seed, grid.size(), 1)[0], 0.1, 0.1)}});
  EXPECT_TRUE(policy->apply(host, gathered, 3).exchanged());
}

TEST(LtfbPolicyTest, NonNeighborPartnerJoinsSources) {
  // On a 4x4 grid some tournament partners are not grid neighbors; the
  // source list must name them so allgather-free transports could fetch them.
  Grid grid(4, 4);
  const std::uint64_t seed = 1234;
  const auto policy = make_exchange_policy(ExchangePolicyKind::kLtfb, seed, 1);
  bool saw_non_neighbor = false;
  for (int cell = 0; cell < grid.size(); ++cell) {
    const int partner = ltfb_pairing(seed, grid.size(), 1)[cell];
    if (partner < 0) continue;
    const auto sources = policy->sources(grid, cell, /*epoch=*/1);
    EXPECT_NE(std::find(sources.begin(), sources.end(), partner), sources.end())
        << "cell " << cell;
    const auto& neighbors = grid.neighbors_of(cell);
    if (std::find(neighbors.begin(), neighbors.end(), partner) ==
        neighbors.end()) {
      saw_non_neighbor = true;
    }
  }
  EXPECT_TRUE(saw_non_neighbor);
}

TEST(GapPolicyTest, DiscriminatorRotatesGeneratorStays) {
  Grid grid(3, 3);
  const auto policy = make_exchange_policy(ExchangePolicyKind::kGap, 7,
                                           /*every=*/1);
  FakeHost host(grid, 0, 1.0, 1.0);
  // Round 1: shift 1 — cell 0 adopts cell 1's discriminator, even when that
  // discriminator is LESS fit (rotation is unconditional, unlike cellular).
  const auto gathered = gather(grid, {{1, make_genome(1, 0.1, 5.0)}});
  const ExchangeOutcome outcome = policy->apply(host, gathered, /*epoch=*/1);
  EXPECT_EQ(outcome.partner, 1);
  EXPECT_FALSE(outcome.g_adopted);
  EXPECT_TRUE(outcome.d_adopted);
  EXPECT_EQ(host.g_adopted_from, -1);
  EXPECT_EQ(host.d_adopted_from, 1);
  EXPECT_DOUBLE_EQ(outcome.d_fitness_after, 5.0);
}

TEST(GapPolicyTest, RotationVisitsEveryOtherCellBeforeRepeating) {
  Grid grid(3, 3);
  const auto policy = make_exchange_policy(ExchangePolicyKind::kGap, 7, 1);
  // donor(round r) = (cell + ((r-1) mod 8) + 1) mod 9: rounds 1..8 visit
  // cells 1..8 from cell 0, round 9 wraps back to 1.
  std::vector<int> donors;
  for (std::uint32_t epoch = 1; epoch <= 9; ++epoch) {
    FakeHost host(grid, 0, 1.0, 1.0);
    const auto sources = policy->sources(grid, 0, epoch);
    // The donor is the one source that is not a default neighbor, or a
    // neighbor itself — recover it from apply's partner field.
    const int donor = static_cast<int>(epoch) <= 8 ? static_cast<int>(epoch)
                                                   : 1;  // expected
    const auto gathered = gather(grid, {{donor, make_genome(donor, 1.0, 1.0)}});
    const auto outcome = policy->apply(host, gathered, epoch);
    EXPECT_EQ(outcome.partner, donor) << "epoch " << epoch;
    EXPECT_NE(std::find(sources.begin(), sources.end(), donor), sources.end());
    donors.push_back(outcome.partner);
  }
  EXPECT_EQ(donors, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 1}));
}

TEST(GapPolicyTest, OffCadenceAndEpochZeroDoNothing) {
  Grid grid(3, 3);
  const auto policy = make_exchange_policy(ExchangePolicyKind::kGap, 7,
                                           /*every=*/4);
  FakeHost host(grid, 0, 1.0, 1.0);
  for (const std::uint32_t epoch : {0u, 1u, 2u, 3u, 5u}) {
    const auto outcome = policy->apply(host, gather(grid, {}), epoch);
    EXPECT_FALSE(outcome.exchanged()) << "epoch " << epoch;
    EXPECT_EQ(outcome.partner, -1) << "epoch " << epoch;
    EXPECT_EQ(policy->sources(grid, 0, epoch), grid.neighbors_of(0));
  }
  // Epoch 4 is round 1: the rotation fires.
  const auto gathered = gather(grid, {{1, make_genome(1, 1.0, 1.0)}});
  EXPECT_TRUE(policy->apply(host, gathered, 4).d_adopted);
}

}  // namespace
}  // namespace cellgan::evolve
