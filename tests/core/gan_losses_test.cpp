#include "core/gan_losses.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"

namespace cellgan::core {
namespace {

/// Central-difference gradient of a (loss, grad) functional at `logits`.
tensor::Tensor numeric_gradient(
    const std::function<float(const tensor::Tensor&)>& loss_of, tensor::Tensor logits,
    float eps = 1e-3f) {
  tensor::Tensor grad(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float original = logits.data()[i];
    logits.data()[i] = original + eps;
    const float up = loss_of(logits);
    logits.data()[i] = original - eps;
    const float down = loss_of(logits);
    logits.data()[i] = original;
    grad.data()[i] = (up - down) / (2.0f * eps);
  }
  return grad;
}

class LossKindSweep : public ::testing::TestWithParam<GanLossKind> {};

TEST_P(LossKindSweep, GeneratorGradientMatchesFiniteDifference) {
  common::Rng rng(1);
  const tensor::Tensor logits = tensor::Tensor::randn(6, 1, rng);
  auto [loss, grad] = generator_loss_grad(GetParam(), logits);
  (void)loss;
  const tensor::Tensor numeric = numeric_gradient(
      [&](const tensor::Tensor& z) { return generator_loss_grad(GetParam(), z).first; },
      logits);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(grad.data()[i], numeric.data()[i], 2e-2f) << "index " << i;
  }
}

TEST_P(LossKindSweep, DiscriminatorRealGradientMatchesFiniteDifference) {
  common::Rng rng(2);
  const tensor::Tensor logits = tensor::Tensor::randn(6, 1, rng);
  auto [loss, grad] = discriminator_real_loss_grad(GetParam(), logits);
  (void)loss;
  const tensor::Tensor numeric = numeric_gradient(
      [&](const tensor::Tensor& z) {
        return discriminator_real_loss_grad(GetParam(), z).first;
      },
      logits);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(grad.data()[i], numeric.data()[i], 2e-2f) << "index " << i;
  }
}

TEST_P(LossKindSweep, DiscriminatorFakeGradientMatchesFiniteDifference) {
  common::Rng rng(3);
  const tensor::Tensor logits = tensor::Tensor::randn(6, 1, rng);
  auto [loss, grad] = discriminator_fake_loss_grad(GetParam(), logits);
  (void)loss;
  const tensor::Tensor numeric = numeric_gradient(
      [&](const tensor::Tensor& z) {
        return discriminator_fake_loss_grad(GetParam(), z).first;
      },
      logits);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(grad.data()[i], numeric.data()[i], 2e-2f) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, LossKindSweep,
                         ::testing::Values(GanLossKind::kHeuristic,
                                           GanLossKind::kMinimax,
                                           GanLossKind::kLeastSquares));

TEST(GanLossesTest, HeuristicGradientPushesLogitsUp) {
  // dL/dz = sigma(z) - 1 < 0 everywhere: gradient descent raises z.
  const tensor::Tensor logits(1, 3, {-3.0f, 0.0f, 3.0f});
  auto [loss, grad] = generator_loss_grad(GanLossKind::kHeuristic, logits);
  (void)loss;
  for (const float g : grad.data()) EXPECT_LT(g, 0.0f);
}

TEST(GanLossesTest, MinimaxSaturatesWhereDiscriminatorIsConfident) {
  // The saturating objective's hallmark: near-zero gradient at very negative
  // logits (D confidently rejects fakes), strong gradient at positive logits.
  const tensor::Tensor logits(1, 2, {-8.0f, 8.0f});
  auto [loss, grad] = generator_loss_grad(GanLossKind::kMinimax, logits);
  (void)loss;
  EXPECT_NEAR(grad.data()[0], 0.0f, 1e-3f);
  EXPECT_LT(grad.data()[1], -0.4f);
  // While the heuristic keeps learning exactly there.
  auto [h_loss, h_grad] = generator_loss_grad(GanLossKind::kHeuristic, logits);
  (void)h_loss;
  EXPECT_LT(h_grad.data()[0], -0.4f);
}

TEST(GanLossesTest, LeastSquaresZeroAtTarget) {
  const tensor::Tensor at_target = tensor::Tensor::full(4, 1, 1.0f);
  auto [loss, grad] = generator_loss_grad(GanLossKind::kLeastSquares, at_target);
  EXPECT_NEAR(loss, 0.0f, 1e-6f);
  for (const float g : grad.data()) EXPECT_NEAR(g, 0.0f, 1e-6f);
}

TEST(GanLossesTest, LeastSquaresDiscriminatorTargets) {
  // Real logits want 1, fake logits want 0.
  auto [rl, rg] = discriminator_real_loss_grad(GanLossKind::kLeastSquares,
                                               tensor::Tensor::full(2, 1, 1.0f));
  EXPECT_NEAR(rl, 0.0f, 1e-6f);
  (void)rg;
  auto [fl, fg] = discriminator_fake_loss_grad(GanLossKind::kLeastSquares,
                                               tensor::Tensor::full(2, 1, 0.0f));
  EXPECT_NEAR(fl, 0.0f, 1e-6f);
  (void)fg;
}

TEST(GanLossesTest, BceKindsShareTheDiscriminatorObjective) {
  common::Rng rng(4);
  const tensor::Tensor logits = tensor::Tensor::randn(5, 1, rng);
  auto [h, hg] = discriminator_real_loss_grad(GanLossKind::kHeuristic, logits);
  auto [m, mg] = discriminator_real_loss_grad(GanLossKind::kMinimax, logits);
  EXPECT_FLOAT_EQ(h, m);
  for (std::size_t i = 0; i < hg.size(); ++i) {
    EXPECT_FLOAT_EQ(hg.data()[i], mg.data()[i]);
  }
}

TEST(GanLossesTest, NamesAreStable) {
  EXPECT_STREQ(to_string(GanLossKind::kHeuristic), "heuristic");
  EXPECT_STREQ(to_string(GanLossKind::kMinimax), "minimax");
  EXPECT_STREQ(to_string(GanLossKind::kLeastSquares), "least-squares");
}

TEST(GanLossesTest, AllLossesAreFiniteOnExtremeLogits) {
  const tensor::Tensor extreme(1, 4, {-500.0f, -1.0f, 1.0f, 500.0f});
  for (const GanLossKind kind :
       {GanLossKind::kHeuristic, GanLossKind::kMinimax, GanLossKind::kLeastSquares}) {
    auto [gl, gg] = generator_loss_grad(kind, extreme);
    EXPECT_TRUE(std::isfinite(gl)) << to_string(kind);
    for (const float g : gg.data()) EXPECT_TRUE(std::isfinite(g));
    auto [dl, dg] = discriminator_fake_loss_grad(kind, extreme);
    EXPECT_TRUE(std::isfinite(dl)) << to_string(kind);
    for (const float g : dg.data()) EXPECT_TRUE(std::isfinite(g));
  }
}

}  // namespace
}  // namespace cellgan::core
