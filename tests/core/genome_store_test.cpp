// Concurrency regression tests for the double-buffered GenomeStore: the
// parallel trainer hammers publish/latest from every worker thread while the
// epoch barrier flips buffers, so the store must stay internally consistent
// under arbitrary interleavings (run under the asan preset on every push).
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/comm_manager.hpp"

namespace cellgan::core {
namespace {

// Payload for `cell` at `version`: fixed length, every byte identical, so a
// reader can detect torn or mixed-version values.
std::vector<std::uint8_t> payload(int cell, std::uint32_t version) {
  const auto fill = static_cast<std::uint8_t>((cell * 31 + version * 7) & 0xff);
  return std::vector<std::uint8_t>(64, fill);
}

TEST(GenomeStoreConcurrencyTest, PublishAndLatestFromManyThreads) {
  constexpr int kCells = 8;
  constexpr int kRounds = 50;
  GenomeStore store(kCells);
  std::atomic<bool> failed{false};

  // One writer+reader thread per cell: publish my genome, then read every
  // other cell. Readers must only ever observe untorn, single-version
  // payloads of the right length (or nothing).
  auto worker = [&](int cell) {
    for (std::uint32_t round = 0; round < kRounds; ++round) {
      store.publish(cell, payload(cell, round));
      for (int other = 0; other < kCells; ++other) {
        const std::vector<std::uint8_t> seen = store.latest(other);
        if (seen.empty()) continue;
        if (seen.size() != 64) {
          failed = true;
          return;
        }
        for (const std::uint8_t byte : seen) {
          if (byte != seen[0]) {  // mixed versions => torn read
            failed = true;
            return;
          }
        }
      }
    }
  };

  // A flipper thread drives epoch barriers concurrently with the traffic.
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop) {
      store.flip();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kCells);
  for (int cell = 0; cell < kCells; ++cell) workers.emplace_back(worker, cell);
  for (auto& t : workers) t.join();
  stop = true;
  flipper.join();

  EXPECT_FALSE(failed) << "torn or malformed genome observed";
}

TEST(GenomeStoreConcurrencyTest, EpochStagingHoldsUnderContention) {
  // With the flip under test control, concurrent publishes must never leak
  // into the epoch that is being read.
  constexpr int kThreads = 4;
  GenomeStore store(1);
  store.publish(0, payload(0, 0));
  store.flip();
  const std::vector<std::uint8_t> visible = store.latest(0);

  std::vector<std::thread> writers;
  std::atomic<bool> leaked{false};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint32_t round = 1; round <= 100; ++round) {
        store.publish(0, payload(0, round * kThreads + t));
        if (store.latest(0) != visible) {
          leaked = true;
          return;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_FALSE(leaked) << "same-epoch publish became visible before flip()";
  store.flip();
  EXPECT_NE(store.latest(0), visible);  // staged value surfaced at the barrier
}

}  // namespace
}  // namespace cellgan::core
