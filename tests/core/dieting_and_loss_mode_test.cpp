// Data dieting (per-cell training subsamples) and loss-mode selection in the
// cell trainer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/cell_trainer.hpp"
#include "core/workload.hpp"

namespace cellgan::core {
namespace {

struct Fixture : public ::testing::Test {
  void SetUp() override {
    config = TrainingConfig::tiny();
    config.grid_rows = config.grid_cols = 3;
    dataset = make_matched_dataset(config, 200, 8);
  }

  CellTrainer make_cell(int cell_id = 0) {
    common::Rng master(config.seed);
    return CellTrainer(config, grid, cell_id, dataset, master.fork(cell_id),
                       context);
  }

  TrainingConfig config;
  Grid grid{3, 3};
  data::Dataset dataset;
  ExecContext context;
};

TEST_F(Fixture, DietingCellTrainsNormally) {
  config.data_dieting_fraction = 0.25;
  CellTrainer cell = make_cell();
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  for (int i = 0; i < 4; ++i) cell.step(inbox);
  EXPECT_TRUE(std::isfinite(cell.g_fitness()));
  EXPECT_EQ(cell.iteration(), 4u);
}

TEST_F(Fixture, DietingIsDeterministicPerCell) {
  config.data_dieting_fraction = 0.5;
  CellTrainer a = make_cell(0);
  CellTrainer b = make_cell(0);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  a.step(inbox);
  b.step(inbox);
  EXPECT_EQ(a.export_genome(), b.export_genome());
}

TEST_F(Fixture, DifferentCellsGetDifferentDiets) {
  // With dieting on, sibling cells train on different subsamples, so even
  // from identical initial conditions their trajectories diverge at least
  // as much as without dieting; just assert they are not identical.
  config.data_dieting_fraction = 0.3;
  CellTrainer a = make_cell(0);
  CellTrainer b = make_cell(1);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  a.step(inbox);
  b.step(inbox);
  EXPECT_NE(a.export_genome(), b.export_genome());
}

TEST_F(Fixture, TinyFractionClampsToBatchSize) {
  config.data_dieting_fraction = 1e-6;  // would be < one batch
  CellTrainer cell = make_cell();
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  cell.step(inbox);  // must not abort in the data loader
  EXPECT_TRUE(std::isfinite(cell.g_fitness()));
}

TEST_F(Fixture, ZeroFractionAborts) {
  config.data_dieting_fraction = 0.0;
  EXPECT_DEATH(make_cell(), "precondition");
}

TEST_F(Fixture, FixedLossModesStayFixed) {
  for (const auto& [mode, kind] :
       {std::pair{LossMode::kHeuristic, GanLossKind::kHeuristic},
        std::pair{LossMode::kMinimax, GanLossKind::kMinimax},
        std::pair{LossMode::kLeastSquares, GanLossKind::kLeastSquares}}) {
    config.loss_mode = mode;
    CellTrainer cell = make_cell();
    std::vector<std::vector<std::uint8_t>> inbox(grid.size());
    for (int i = 0; i < 3; ++i) {
      cell.step(inbox);
      EXPECT_EQ(cell.current_loss(), kind) << to_string(mode);
    }
  }
}

TEST_F(Fixture, MustangsModeDrawsMultipleObjectives) {
  config.loss_mode = LossMode::kMustangs;
  CellTrainer cell = make_cell();
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  std::set<GanLossKind> seen;
  for (int i = 0; i < 24; ++i) {
    cell.step(inbox);
    seen.insert(cell.current_loss());
  }
  // 24 uniform draws over 3 kinds miss one with probability ~3e-5.
  EXPECT_GE(seen.size(), 2u);
}

TEST_F(Fixture, MustangsTrainingStaysFinite) {
  config.loss_mode = LossMode::kMustangs;
  config.batches_per_iteration = 2;
  CellTrainer cell = make_cell();
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  for (int i = 0; i < 8; ++i) {
    cell.step(inbox);
    ASSERT_TRUE(std::isfinite(cell.g_fitness())) << "iteration " << i;
    ASSERT_TRUE(std::isfinite(cell.d_fitness())) << "iteration " << i;
  }
}

TEST_F(Fixture, ConfigRoundtripKeepsNewKnobs) {
  config.loss_mode = LossMode::kLeastSquares;
  config.exchange_mode = ExchangeMode::kAsyncNeighbors;
  config.data_dieting_fraction = 0.42;
  const TrainingConfig loaded = TrainingConfig::deserialize(config.serialize());
  EXPECT_EQ(loaded, config);
}

TEST_F(Fixture, ModeNamesAreStable) {
  EXPECT_STREQ(to_string(ExchangeMode::kAllgather), "allgather");
  EXPECT_STREQ(to_string(ExchangeMode::kAsyncNeighbors), "async-neighbors");
  EXPECT_STREQ(to_string(LossMode::kMustangs), "mustangs");
}

}  // namespace
}  // namespace cellgan::core
