// Analytic checks that the calibrated cost model reproduces the paper's
// Table III numbers by construction — the closed-form backbone of the
// scaling benchmark. See EXPERIMENTS.md for the derivations.
#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace cellgan::core {
namespace {

WorkloadProbe test_probe() {
  WorkloadProbe probe;
  probe.train_flops = 1e6;
  probe.update_bytes = 4e4;
  probe.mutate_calls = 1.0;
  probe.genome_bytes = 1e4;
  return probe;
}

/// Total sequential virtual minutes for a full reference run on n cells.
double seq_total_min(const CostModel& model, int n) {
  const WorkloadProbe probe = test_probe();
  const double iters = 200.0;
  const double per_cell_s =
      model.train_seconds(ExecMode::SingleCore, n, probe.train_flops) +
      model.update_seconds(ExecMode::SingleCore, n, probe.update_bytes) +
      model.mutate_seconds(ExecMode::SingleCore, n, 1.0) +
      model.seq_gather_seconds(n, 4.0 * probe.genome_bytes);
  return per_cell_s * n * iters / 60.0;
}

TEST(CostModelTest, DisabledModelChargesNothing) {
  CostModel model;
  EXPECT_FALSE(model.enabled());
  EXPECT_DOUBLE_EQ(model.train_seconds(ExecMode::SingleCore, 16, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(model.update_seconds(ExecMode::Distributed, 16, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(model.mutate_seconds(ExecMode::Distributed, 16, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(model.mgmt_seconds_per_slave(200), 0.0);
  EXPECT_FALSE(model.net_config().enabled);
}

TEST(CostModelTest, RealTimeModeChargesNothingEvenWhenCalibrated) {
  const CostModel model = CostModel::calibrated(CostProfile::table3(), test_probe());
  EXPECT_DOUBLE_EQ(model.train_seconds(ExecMode::RealTime, 16, 1e9), 0.0);
}

TEST(CostModelTest, Table3SequentialTotalsMatchPaper) {
  const CostModel model = CostModel::calibrated(CostProfile::table3(), test_probe());
  // Paper Table III single-core column: 339.6 / 999.5 / 1920.0 minutes.
  EXPECT_NEAR(seq_total_min(model, 4), 339.6, 0.02 * 339.6);
  EXPECT_NEAR(seq_total_min(model, 9), 999.5, 0.02 * 999.5);
  EXPECT_NEAR(seq_total_min(model, 16), 1920.0, 0.02 * 1920.0);
}

TEST(CostModelTest, Table3DistributedCoreMatchesDecomposition) {
  const CostModel model = CostModel::calibrated(CostProfile::table3(), test_probe());
  const WorkloadProbe probe = test_probe();
  const double iters = 200.0;
  const double core_min =
      (model.train_seconds(ExecMode::Distributed, 16, probe.train_flops) +
       model.update_seconds(ExecMode::Distributed, 16, probe.update_bytes) +
       model.mutate_seconds(ExecMode::Distributed, 16, 1.0)) *
      iters / 60.0;
  EXPECT_NEAR(core_min, 6.77 + 2.60 + 2.77, 0.05);
}

TEST(CostModelTest, ManagementScalesWithIterations) {
  const CostModel model = CostModel::calibrated(CostProfile::table3(), test_probe());
  const double full = model.mgmt_seconds_per_slave(200);
  const double half = model.mgmt_seconds_per_slave(100);
  EXPECT_NEAR(full, 5.95 * 60.0, 1.0);
  EXPECT_NEAR(half, full / 2.0, 1e-9);
}

TEST(CostModelTest, NetBandwidthRealizesGatherTarget) {
  const CostModel model = CostModel::calibrated(CostProfile::table3(), test_probe());
  const auto net = model.net_config();
  ASSERT_TRUE(net.enabled);
  // One genome transfer to one member, 200 times, across 15 members should
  // cost 19.4 minutes (Table IV gather row at 4x4).
  const double per_send_s = test_probe().genome_bytes / net.bandwidth_Bps;
  EXPECT_NEAR(per_send_s * 200.0 * 15.0 / 60.0, 19.4, 0.1);
}

TEST(CostModelTest, SequentialPenaltyGrowsWithResidentCells) {
  const CostModel model = CostModel::calibrated(CostProfile::table3(), test_probe());
  const double t4 = model.train_seconds(ExecMode::SingleCore, 4, 1e6);
  const double t9 = model.train_seconds(ExecMode::SingleCore, 9, 1e6);
  const double t16 = model.train_seconds(ExecMode::SingleCore, 16, 1e6);
  EXPECT_LT(t4, t9);
  EXPECT_LT(t9, t16);
}

TEST(CostModelTest, PenaltyClampedAtTinyGrids) {
  // The affine fit would go negative at n=1; the model must clamp to >= the
  // clean distributed rate.
  const CostModel model = CostModel::calibrated(CostProfile::table3(), test_probe());
  const double seq = model.train_seconds(ExecMode::SingleCore, 1, 1e6);
  const double dist = model.train_seconds(ExecMode::Distributed, 1, 1e6);
  EXPECT_GE(seq, dist * 0.99);
}

TEST(CostModelTest, Table4RoutinesMatchPaperColumns) {
  const CostModel model = CostModel::calibrated(CostProfile::table4(), test_probe());
  const WorkloadProbe probe = test_probe();
  const double iters = 200.0;
  // Distributed column: train 43.8, update 16.8, mutate 17.9 (per slave).
  EXPECT_NEAR(model.train_seconds(ExecMode::Distributed, 16, probe.train_flops) *
                  iters / 60.0,
              43.8, 0.1);
  EXPECT_NEAR(model.update_seconds(ExecMode::Distributed, 16, probe.update_bytes) *
                  iters / 60.0,
              16.8, 0.1);
  EXPECT_NEAR(model.mutate_seconds(ExecMode::Distributed, 16, 1.0) * iters / 60.0,
              17.9, 0.1);
  // Single-core column: per-cell x16 = 264.9 / 199.8 / 25.6 (no affine
  // penalty in the table4 profile).
  EXPECT_NEAR(model.train_seconds(ExecMode::SingleCore, 16, probe.train_flops) *
                  iters * 16.0 / 60.0,
              264.9, 0.5);
  EXPECT_NEAR(model.update_seconds(ExecMode::SingleCore, 16, probe.update_bytes) *
                  iters * 16.0 / 60.0,
              199.8, 0.5);
  EXPECT_NEAR(model.mutate_seconds(ExecMode::SingleCore, 16, 1.0) * iters * 16.0 /
                  60.0,
              25.6, 0.2);
}

TEST(CostModelTest, ChargesScaleLinearlyWithWork) {
  const CostModel model = CostModel::calibrated(CostProfile::table3(), test_probe());
  const double one = model.train_seconds(ExecMode::Distributed, 16, 1e6);
  const double three = model.train_seconds(ExecMode::Distributed, 16, 3e6);
  EXPECT_NEAR(three, 3.0 * one, 1e-12);
}

TEST(CostModelTest, JitterHasUnitMean) {
  const CostModel model = CostModel::calibrated(CostProfile::table3(), test_probe());
  common::Rng rng(1);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double j = model.jitter(rng);
    EXPECT_GT(j, 0.0);
    sum += j;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(CostModelTest, DisabledJitterIsOne) {
  CostModel model;
  common::Rng rng(2);
  EXPECT_DOUBLE_EQ(model.jitter(rng), 1.0);
}

TEST(CostModelDeathTest, CalibrationRequiresPositiveProbe) {
  WorkloadProbe bad = test_probe();
  bad.train_flops = 0.0;
  EXPECT_DEATH((void)CostModel::calibrated(CostProfile::table3(), bad),
               "precondition");
}

}  // namespace
}  // namespace cellgan::core
