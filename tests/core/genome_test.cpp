#include "core/genome.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/gan_models.hpp"
#include "tensor/ops.hpp"

namespace cellgan::core {
namespace {

CellGenome make_test_genome() {
  CellGenome g;
  g.generator_params = {1.0f, 2.0f, 3.0f};
  g.discriminator_params = {-1.0f, -2.0f};
  g.g_learning_rate = 0.0002;
  g.d_learning_rate = 0.0003;
  g.g_fitness = 0.5;
  g.d_fitness = 1.5;
  g.origin_cell = 7;
  g.iteration = 42;
  return g;
}

TEST(GenomeTest, SerializeRoundtrip) {
  const CellGenome g = make_test_genome();
  const auto bytes = g.serialize();
  const CellGenome loaded = CellGenome::deserialize(bytes);
  EXPECT_EQ(loaded.generator_params, g.generator_params);
  EXPECT_EQ(loaded.discriminator_params, g.discriminator_params);
  EXPECT_DOUBLE_EQ(loaded.g_learning_rate, g.g_learning_rate);
  EXPECT_DOUBLE_EQ(loaded.d_learning_rate, g.d_learning_rate);
  EXPECT_DOUBLE_EQ(loaded.g_fitness, g.g_fitness);
  EXPECT_DOUBLE_EQ(loaded.d_fitness, g.d_fitness);
  EXPECT_EQ(loaded.origin_cell, 7u);
  EXPECT_EQ(loaded.iteration, 42u);
}

TEST(GenomeTest, ByteSizeMatchesSerializedLength) {
  const CellGenome g = make_test_genome();
  EXPECT_EQ(g.serialize().size(), g.byte_size());
}

TEST(GenomeTest, CaptureTakesCurrentParameters) {
  common::Rng rng(1);
  const nn::GanArch arch = nn::GanArch::tiny();
  nn::Sequential generator = nn::make_generator(arch, rng);
  nn::Sequential discriminator = nn::make_discriminator(arch, rng);
  const CellGenome g = CellGenome::capture(generator, discriminator);
  EXPECT_EQ(g.generator_params.size(), arch.generator_parameter_count());
  EXPECT_EQ(g.discriminator_params.size(), arch.discriminator_parameter_count());
  EXPECT_EQ(g.generator_params, generator.flatten_parameters());
}

TEST(GenomeTest, InstallRestoresNetworkBehavior) {
  common::Rng rng(2);
  const nn::GanArch arch = nn::GanArch::tiny();
  nn::Sequential g1 = nn::make_generator(arch, rng);
  nn::Sequential d1 = nn::make_discriminator(arch, rng);
  const CellGenome genome = CellGenome::capture(g1, d1);

  nn::Sequential g2 = nn::make_generator(arch, rng);  // different weights
  nn::Sequential d2 = nn::make_discriminator(arch, rng);
  genome.install(g2, d2);

  const tensor::Tensor z = tensor::Tensor::randn(4, arch.latent_dim, rng);
  const tensor::Tensor out1 = g1.forward(z);
  const tensor::Tensor out2 = g2.forward(z);
  for (std::size_t i = 0; i < out1.size(); ++i) {
    EXPECT_FLOAT_EQ(out1.data()[i], out2.data()[i]);
  }
}

TEST(GenomeTest, PaperGenomeByteSizeIsMegabytes) {
  // The exchanged payload at paper scale: ~2.2 MB of float32 parameters —
  // the size that drives the gather-time calibration.
  CellGenome g;
  g.generator_params.resize(nn::GanArch::paper().generator_parameter_count());
  g.discriminator_params.resize(
      nn::GanArch::paper().discriminator_parameter_count());
  const double mb = static_cast<double>(g.byte_size()) / (1024.0 * 1024.0);
  EXPECT_GT(mb, 2.0);
  EXPECT_LT(mb, 2.5);
}

TEST(GenomeTest, EmptyGenomeRoundtrips) {
  CellGenome g;
  const CellGenome loaded = CellGenome::deserialize(g.serialize());
  EXPECT_TRUE(loaded.generator_params.empty());
  EXPECT_TRUE(loaded.discriminator_params.empty());
}

TEST(GenomeDeathTest, TruncatedPayloadAborts) {
  const auto bytes = make_test_genome().serialize();
  const std::span<const std::uint8_t> truncated(bytes.data(), bytes.size() - 4);
  EXPECT_DEATH((void)CellGenome::deserialize(truncated), "condition");
}

}  // namespace
}  // namespace cellgan::core
