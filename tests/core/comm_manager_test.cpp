#include "core/comm_manager.hpp"

#include <gtest/gtest.h>

#include "minimpi/runtime.hpp"

namespace cellgan::core {
namespace {

TEST(GenomeStoreTest, PublishIsStagedUntilFlip) {
  GenomeStore store(3);
  EXPECT_TRUE(store.latest(0).empty());
  store.publish(1, {1, 2, 3});
  // Staged for the next epoch: invisible until the epoch barrier.
  EXPECT_TRUE(store.latest(1).empty());
  store.flip();
  EXPECT_EQ(store.latest(1), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(GenomeStoreTest, RepublishWithinEpochOverwritesStagedValue) {
  GenomeStore store(2);
  store.publish(1, {1, 2, 3});
  store.publish(1, {4});
  store.flip();
  EXPECT_EQ(store.latest(1), (std::vector<std::uint8_t>{4}));
}

TEST(GenomeStoreTest, ReadersKeepPreviousEpochWhilePublishing) {
  // The double buffer: a publish must never clobber the version the current
  // epoch still reads.
  GenomeStore store(1);
  store.publish(0, {1});
  store.flip();
  store.publish(0, {2});
  EXPECT_EQ(store.latest(0), (std::vector<std::uint8_t>{1}));
  store.flip();
  EXPECT_EQ(store.latest(0), (std::vector<std::uint8_t>{2}));
}

TEST(GenomeStoreTest, NewestAvailableSurvivesSkippedEpochs) {
  // A cell that stops publishing stays visible at its newest version — the
  // cellular "newest available neighbor genome" rule.
  GenomeStore store(1);
  store.publish(0, {7});
  store.flip();
  store.flip();
  store.flip();
  EXPECT_EQ(store.latest(0), (std::vector<std::uint8_t>{7}));
}

TEST(GenomeStoreTest, EpochCounterAdvancesOnFlip) {
  GenomeStore store(1);
  EXPECT_EQ(store.epoch(), 0u);
  store.flip();
  store.flip();
  EXPECT_EQ(store.epoch(), 2u);
}

TEST(GenomeStoreDeathTest, OutOfRangeAborts) {
  GenomeStore store(2);
  EXPECT_DEATH(store.publish(2, {}), "precondition");
  EXPECT_DEATH((void)store.latest(-1), "precondition");
}

TEST(LocalCommManagerTest, ReturnsNeighborsOnly) {
  Grid grid(3, 3);
  GenomeStore store(grid.size());
  ExecContext context;
  // Pre-publish everyone's genome and cross the epoch barrier.
  for (int cell = 0; cell < grid.size(); ++cell) {
    store.publish(cell, {static_cast<std::uint8_t>(cell)});
  }
  store.flip();
  LocalCommManager comm(store, grid, 4, context);
  const auto gathered = comm.exchange({});
  ASSERT_EQ(gathered.size(), 9u);
  for (int cell = 0; cell < grid.size(); ++cell) {
    if (grid.is_neighbor(4, cell)) {
      ASSERT_EQ(gathered[cell].size(), 1u) << "cell " << cell;
      EXPECT_EQ(gathered[cell][0], static_cast<std::uint8_t>(cell));
    } else {
      EXPECT_TRUE(gathered[cell].empty()) << "cell " << cell;
    }
  }
}

TEST(LocalCommManagerTest, ExchangePublishesOwnGenomeForNextEpoch) {
  Grid grid(2, 2);
  GenomeStore store(grid.size());
  ExecContext context;
  LocalCommManager comm(store, grid, 0, context);
  const std::vector<std::uint8_t> mine{7, 7};
  (void)comm.exchange(mine);
  store.flip();
  EXPECT_EQ(store.latest(0), mine);
}

TEST(LocalCommManagerTest, CollectSeesPreviousEpochOnly) {
  Grid grid(1, 2);  // two cells, mutual neighbors
  GenomeStore store(grid.size());
  ExecContext context;
  LocalCommManager a(store, grid, 0, context);
  LocalCommManager b(store, grid, 1, context);
  a.publish(std::vector<std::uint8_t>{1});
  // Same epoch: b must not see a's publish yet, whatever the cell order.
  EXPECT_TRUE(b.collect()[0].empty());
  store.flip();
  EXPECT_EQ(b.collect()[0], (std::vector<std::uint8_t>{1}));
}

TEST(LocalCommManagerTest, ChargesGatherWhenCostModelEnabled) {
  Grid grid(3, 3);
  GenomeStore store(grid.size());
  for (int cell = 0; cell < grid.size(); ++cell) {
    store.publish(cell, std::vector<std::uint8_t>(100, 1));
  }
  store.flip();
  WorkloadProbe probe;
  probe.train_flops = 1.0;
  probe.update_bytes = 1.0;
  probe.mutate_calls = 1.0;
  probe.genome_bytes = 100.0;
  const CostModel cost = CostModel::calibrated(CostProfile::table3(), probe);
  common::VirtualClock clock;
  common::Profiler profiler;
  ExecContext context;
  context.mode = ExecMode::SingleCore;
  context.grid_cells = 9;
  context.cost = &cost;
  context.clock = &clock;
  context.profiler = &profiler;

  LocalCommManager comm(store, grid, 0, context);
  (void)comm.exchange(std::vector<std::uint8_t>(100, 2));
  EXPECT_GT(clock.now(), 0.0);
  EXPECT_GT(profiler.cost(common::routine::kGather).virtual_s, 0.0);
}

TEST(MpiCommManagerTest, ExchangeMatchesAllgatherSemantics) {
  minimpi::Runtime runtime(4);
  runtime.run([](minimpi::Comm& world) {
    MpiCommManager comm(world);
    EXPECT_EQ(comm.cell_id(), world.rank());
    const std::vector<std::uint8_t> mine{static_cast<std::uint8_t>(world.rank())};
    const auto gathered = comm.exchange(mine);
    ASSERT_EQ(gathered.size(), 4u);
    for (int cell = 0; cell < 4; ++cell) {
      ASSERT_EQ(gathered[cell].size(), 1u);
      EXPECT_EQ(gathered[cell][0], static_cast<std::uint8_t>(cell));
    }
  });
}

TEST(MpiCommManagerTest, RepeatedExchangesSeeLatestGenomes) {
  minimpi::Runtime runtime(3);
  runtime.run([](minimpi::Comm& world) {
    MpiCommManager comm(world);
    for (std::uint8_t round = 0; round < 5; ++round) {
      const std::vector<std::uint8_t> mine{
          static_cast<std::uint8_t>(world.rank() * 10 + round)};
      const auto gathered = comm.exchange(mine);
      for (int cell = 0; cell < 3; ++cell) {
        ASSERT_EQ(gathered[cell][0],
                  static_cast<std::uint8_t>(cell * 10 + round));
      }
    }
  });
}

TEST(AsyncMpiCommManagerTest, PublishedGenomesAreVisibleNextRound) {
  Grid grid(2, 2);
  minimpi::Runtime runtime(4);
  runtime.run([&grid](minimpi::Comm& world) {
    AsyncMpiCommManager comm(world, grid);
    // Round 0: everyone publishes (sends enqueue synchronously); the first
    // read may legitimately see nothing — it must not block either way.
    const std::vector<std::uint8_t> mine{static_cast<std::uint8_t>(world.rank())};
    (void)comm.exchange(mine);
    // Once every rank has demonstrably published...
    world.barrier();
    // ...the next exchange must deliver every neighbor's genome, and only
    // neighbors' (non-neighbor slots stay empty).
    const auto gathered = comm.exchange(mine);
    for (int cell = 0; cell < 4; ++cell) {
      if (grid.is_neighbor(world.rank(), cell)) {
        ASSERT_FALSE(gathered[cell].empty()) << "neighbor " << cell;
        EXPECT_EQ(gathered[cell][0], static_cast<std::uint8_t>(cell));
      } else {
        EXPECT_TRUE(gathered[cell].empty()) << "cell " << cell;
      }
    }
  });
}

TEST(AsyncMpiCommManagerTest, NewestGenomeWins) {
  Grid grid(1, 2);  // two cells, mutual neighbors
  minimpi::Runtime runtime(2);
  runtime.run([&grid](minimpi::Comm& world) {
    AsyncMpiCommManager comm(world, grid);
    if (world.rank() == 0) {
      // Publish three generations before rank 1 reads anything.
      for (std::uint8_t version = 1; version <= 3; ++version) {
        (void)comm.exchange(std::vector<std::uint8_t>{version});
      }
      world.send_value<int>(1, 7, 1);  // signal: publications done
      (void)world.recv(1, 8);
    } else {
      (void)world.recv(0, 7);
      const auto gathered = comm.exchange(std::vector<std::uint8_t>{9});
      ASSERT_FALSE(gathered[0].empty());
      EXPECT_EQ(gathered[0][0], 3);  // newest, older ones discarded
      world.send_value<int>(0, 8, 1);
    }
  });
}

TEST(AsyncMpiCommManagerTest, VirtualTimeRespectsCausality) {
  // A message sent "late" in virtual time must be invisible to a receiver
  // whose clock has not reached the arrival stamp.
  Grid grid(1, 2);
  minimpi::NetModelConfig net;
  net.enabled = true;
  net.latency_s = 100.0;  // arrival far in the receiver's future
  net.bandwidth_Bps = 1e12;
  minimpi::Runtime runtime(2, net);
  runtime.run([&grid](minimpi::Comm& world) {
    AsyncMpiCommManager comm(world, grid);
    if (world.rank() == 0) {
      (void)comm.exchange(std::vector<std::uint8_t>{42});
      world.send_oob(1, 7, {});  // real-time signal, no virtual effect
      (void)world.recv(1, 8);
    } else {
      (void)world.recv(0, 7);
      auto gathered = comm.exchange(std::vector<std::uint8_t>{1});
      EXPECT_TRUE(gathered[0].empty()) << "message from the future was seen";
      // Advance past the arrival stamp: now it must be delivered.
      world.clock().advance(200.0);
      gathered = comm.exchange(std::vector<std::uint8_t>{2});
      ASSERT_FALSE(gathered[0].empty());
      EXPECT_EQ(gathered[0][0], 42);
      world.send_oob(0, 8, {});
    }
  });
}

}  // namespace
}  // namespace cellgan::core
