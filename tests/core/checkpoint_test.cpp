#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "testsupport/temp_dir.hpp"

namespace cellgan::core {
namespace {

Checkpoint make_checkpoint() {
  Checkpoint cp;
  cp.config = TrainingConfig::tiny();
  cp.config.grid_rows = cp.config.grid_cols = 2;
  cp.config.loss_mode = LossMode::kMustangs;
  cp.iteration = 17;
  for (std::uint32_t cell = 0; cell < 4; ++cell) {
    CellGenome genome;
    genome.generator_params = {static_cast<float>(cell), 1.0f, 2.0f};
    genome.discriminator_params = {3.0f, static_cast<float>(cell)};
    genome.g_fitness = 0.1 * cell;
    genome.origin_cell = cell;
    genome.iteration = 17;
    cp.centers.push_back(std::move(genome));
    cp.mixtures.push_back({0.5, 0.25, 0.25});
  }
  return cp;
}

class CheckpointTest : public ::testing::Test {
 protected:
  std::string path(const char* name) const { return tmp_.file(name).string(); }
  testsupport::TempDir tmp_{"cellgan_ckpt"};
};

TEST_F(CheckpointTest, SerializeRoundtrip) {
  const Checkpoint cp = make_checkpoint();
  const Checkpoint loaded = Checkpoint::deserialize(cp.serialize());
  EXPECT_EQ(loaded.config, cp.config);
  EXPECT_EQ(loaded.iteration, 17u);
  ASSERT_EQ(loaded.centers.size(), 4u);
  EXPECT_EQ(loaded.centers[2].generator_params, cp.centers[2].generator_params);
  EXPECT_EQ(loaded.mixtures, cp.mixtures);
}

TEST_F(CheckpointTest, FileRoundtrip) {
  const Checkpoint cp = make_checkpoint();
  ASSERT_TRUE(save_checkpoint(path("run.ckpt"), cp));
  const auto loaded = load_checkpoint(path("run.ckpt"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->config, cp.config);
  EXPECT_EQ(loaded->centers.size(), 4u);
  EXPECT_DOUBLE_EQ(loaded->centers[3].g_fitness, 0.3);
}

TEST_F(CheckpointTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_checkpoint(path("absent.ckpt")).has_value());
}

TEST_F(CheckpointTest, CorruptFileRejected) {
  std::ofstream out(path("junk.ckpt"), std::ios::binary);
  out << "this is not a checkpoint at all, definitely not";
  out.close();
  EXPECT_FALSE(load_checkpoint(path("junk.ckpt")).has_value());
}

TEST_F(CheckpointTest, TruncatedFileRejected) {
  const Checkpoint cp = make_checkpoint();
  ASSERT_TRUE(save_checkpoint(path("trunc.ckpt"), cp));
  const auto full_size = std::filesystem::file_size(path("trunc.ckpt"));
  std::filesystem::resize_file(path("trunc.ckpt"), full_size / 2);
  EXPECT_FALSE(load_checkpoint(path("trunc.ckpt")).has_value());
}

TEST_F(CheckpointTest, OverwriteIsAtomicRename) {
  const Checkpoint first = make_checkpoint();
  ASSERT_TRUE(save_checkpoint(path("same.ckpt"), first));
  Checkpoint second = make_checkpoint();
  second.iteration = 99;
  ASSERT_TRUE(save_checkpoint(path("same.ckpt"), second));
  const auto loaded = load_checkpoint(path("same.ckpt"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->iteration, 99u);
  EXPECT_FALSE(std::filesystem::exists(path("same.ckpt.tmp")));
}

TEST_F(CheckpointTest, UnwritablePathFails) {
  EXPECT_FALSE(save_checkpoint("/nonexistent_dir_xyz/run.ckpt", make_checkpoint()));
}

TEST_F(CheckpointTest, EmptyCheckpointRoundtrips) {
  Checkpoint cp;
  const Checkpoint loaded = Checkpoint::deserialize(cp.serialize());
  EXPECT_TRUE(loaded.centers.empty());
  EXPECT_TRUE(loaded.mixtures.empty());
}

}  // namespace
}  // namespace cellgan::core
