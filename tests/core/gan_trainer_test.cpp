#include "core/gan_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/workload.hpp"
#include "nn/gan_models.hpp"
#include "nn/optimizer.hpp"

namespace cellgan::core {
namespace {

struct GanFixture : public ::testing::Test {
  void SetUp() override {
    TrainingConfig config = TrainingConfig::tiny();
    dataset = make_matched_dataset(config, 200, 3);
    generator = nn::make_generator(arch, rng);
    discriminator = nn::make_discriminator(arch, rng);
  }

  common::Rng rng{11};
  nn::GanArch arch = nn::GanArch::tiny();
  data::Dataset dataset;
  nn::Sequential generator;
  nn::Sequential discriminator;
};

TEST_F(GanFixture, DiscriminatorStepReturnsFiniteLossAndUpdates) {
  nn::Adam d_opt(1e-3);
  const tensor::Tensor real = dataset.images.slice_rows(0, 16);
  const auto before = discriminator.flatten_parameters();
  const double loss = train_discriminator_step(discriminator, d_opt, generator,
                                               real, arch.latent_dim, rng);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
  EXPECT_NE(discriminator.flatten_parameters(), before);
}

TEST_F(GanFixture, DiscriminatorStepDoesNotTouchGenerator) {
  nn::Adam d_opt(1e-3);
  const tensor::Tensor real = dataset.images.slice_rows(0, 16);
  const auto g_before = generator.flatten_parameters();
  (void)train_discriminator_step(discriminator, d_opt, generator, real,
                                 arch.latent_dim, rng);
  EXPECT_EQ(generator.flatten_parameters(), g_before);
}

TEST_F(GanFixture, GeneratorStepUpdatesOnlyGenerator) {
  nn::Adam g_opt(1e-3);
  const auto g_before = generator.flatten_parameters();
  const auto d_before = discriminator.flatten_parameters();
  const double loss = train_generator_step(generator, g_opt, discriminator, 16,
                                           arch.latent_dim, rng);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NE(generator.flatten_parameters(), g_before);
  EXPECT_EQ(discriminator.flatten_parameters(), d_before);
}

TEST_F(GanFixture, DiscriminatorLearnsToSeparate) {
  // Repeated D updates against a frozen generator must reduce D loss.
  nn::Adam d_opt(2e-3);
  const tensor::Tensor real = dataset.images.slice_rows(0, 32);
  const double initial = evaluate_discriminator_loss(discriminator, generator,
                                                     real, arch.latent_dim, rng);
  for (int i = 0; i < 60; ++i) {
    (void)train_discriminator_step(discriminator, d_opt, generator, real,
                                   arch.latent_dim, rng);
  }
  const double trained = evaluate_discriminator_loss(discriminator, generator,
                                                     real, arch.latent_dim, rng);
  EXPECT_LT(trained, initial * 0.8);
}

TEST_F(GanFixture, GeneratorLearnsToFoolFrozenDiscriminator) {
  // Make D mildly informed first, then let G chase it.
  nn::Adam d_opt(2e-3);
  const tensor::Tensor real = dataset.images.slice_rows(0, 32);
  for (int i = 0; i < 20; ++i) {
    (void)train_discriminator_step(discriminator, d_opt, generator, real,
                                   arch.latent_dim, rng);
  }
  const double initial = evaluate_generator_loss(generator, discriminator, 64,
                                                 arch.latent_dim, rng);
  nn::Adam g_opt(2e-3);
  for (int i = 0; i < 80; ++i) {
    (void)train_generator_step(generator, g_opt, discriminator, 32,
                               arch.latent_dim, rng);
  }
  const double trained = evaluate_generator_loss(generator, discriminator, 64,
                                                 arch.latent_dim, rng);
  EXPECT_LT(trained, initial);
}

TEST_F(GanFixture, EvaluationsDoNotMutateNetworks) {
  const auto g_before = generator.flatten_parameters();
  const auto d_before = discriminator.flatten_parameters();
  const tensor::Tensor real = dataset.images.slice_rows(0, 8);
  (void)evaluate_generator_loss(generator, discriminator, 8, arch.latent_dim, rng);
  (void)evaluate_discriminator_loss(discriminator, generator, real,
                                    arch.latent_dim, rng);
  EXPECT_EQ(generator.flatten_parameters(), g_before);
  EXPECT_EQ(discriminator.flatten_parameters(), d_before);
}

TEST_F(GanFixture, UntrainedLossesNearChanceLevel) {
  // With random nets, D's two-sided BCE should be near 2*ln2 and G's near ln2.
  const tensor::Tensor real = dataset.images.slice_rows(0, 32);
  const double d_loss = evaluate_discriminator_loss(discriminator, generator,
                                                    real, arch.latent_dim, rng);
  const double g_loss = evaluate_generator_loss(generator, discriminator, 64,
                                                arch.latent_dim, rng);
  EXPECT_NEAR(d_loss, 2.0 * std::log(2.0), 0.7);
  EXPECT_NEAR(g_loss, std::log(2.0), 0.5);
}

}  // namespace
}  // namespace cellgan::core
