// The core observability surface in isolation: record serialization (the
// wire format slaves forward to rank 0 and the parity suite compares bit for
// bit), EventBus dispatch order and metric republication, the JSONL
// telemetry sink's line format, the checkpoint policy observer's cadence,
// and a whole SequentialTrainer run publishing the expected stream.
#include "core/observer.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::core {
namespace {

CellEpochRecord make_record(std::uint32_t cell, std::uint32_t epoch) {
  CellEpochRecord record;
  record.cell = cell;
  record.epoch = epoch;
  record.g_fitness = 0.25 + cell;
  record.d_fitness = 0.5 + cell;
  record.g_learning_rate = 2e-4;
  record.d_learning_rate = 3e-4;
  record.loss_kind = 1;
  record.virtual_s = 12.5 * (cell + 1);
  record.train_flops = 1e6 * (epoch + 1);
  return record;
}

CellGenome make_genome(std::uint32_t cell) {
  CellGenome genome;
  genome.generator_params = {0.5f, -1.0f, static_cast<float>(cell)};
  genome.discriminator_params = {2.0f};
  genome.g_fitness = 0.25 + cell;
  genome.origin_cell = cell;
  genome.iteration = 40 + cell;  // absolute counter, survives restore
  return genome;
}

/// Records every hook invocation in order, plus the serialized epoch records.
class RecordingObserver final : public TrainObserver {
 public:
  void on_run_started(const RunInfo& info) override {
    events.push_back("run_started:" + info.backend);
  }
  void on_epoch_started(std::uint32_t epoch) override {
    events.push_back("epoch_started:" + std::to_string(epoch));
  }
  void on_cell_stepped(const CellEpochRecord& record) override {
    events.push_back("cell:" + std::to_string(record.epoch) + ":" +
                     std::to_string(record.cell));
  }
  void on_epoch_completed(const EpochRecord& record) override {
    events.push_back("epoch_completed:" + std::to_string(record.epoch));
    epoch_records.push_back(record);
  }
  void on_metrics(const MetricSnapshot& snapshot) override {
    events.push_back("metrics:" + std::to_string(snapshot.epoch));
  }
  void on_run_completed(const RunSummary& summary) override {
    events.push_back("run_completed:" + summary.backend);
  }

  std::vector<std::string> events;
  std::vector<EpochRecord> epoch_records;
};

TEST(ObserverTest, CellEpochRecordRoundTripsByteExact) {
  CellEpochRecord record = make_record(3, 7);
  record.genome = make_genome(3).serialize();
  record.mixture_weights = {0.5, 0.25, 0.25};

  const auto bytes = record.serialize();
  const CellEpochRecord back = CellEpochRecord::deserialize(bytes);
  EXPECT_EQ(back, record);
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(ObserverTest, EpochRecordRoundTripsAndDerives) {
  EpochRecord record;
  record.epoch = 4;
  record.cells = {make_record(0, 4), make_record(1, 4), make_record(2, 4)};
  record.cells[1].g_fitness = -1.0;  // best
  record.cells[2].virtual_s = 99.0;

  const auto bytes = record.serialize();
  const EpochRecord back = EpochRecord::deserialize(bytes);
  EXPECT_EQ(back, record);
  EXPECT_EQ(back.serialize(), bytes);

  EXPECT_EQ(record.best_cell(), 1);
  EXPECT_DOUBLE_EQ(record.max_virtual_s(), 99.0);
  EXPECT_DOUBLE_EQ(record.total_train_flops(), 3e6 * 5);
  EXPECT_FALSE(record.has_genomes());
  for (auto& cell : record.cells) cell.genome = make_genome(cell.cell).serialize();
  EXPECT_TRUE(record.has_genomes());
}

TEST(ObserverTest, TruncatedRecordIsRejected) {
  auto bytes = make_record(0, 0).serialize();
  bytes.pop_back();
  EXPECT_DEATH((void)CellEpochRecord::deserialize(bytes), "precondition");
}

TEST(ObserverTest, EventBusDispatchesInOrderAndRepublishesMetrics) {
  /// An evaluator stand-in: hands the bus one snapshot per completed epoch.
  class FakeEvaluator final : public TrainObserver {
   public:
    void on_epoch_completed(const EpochRecord& record) override {
      pending_ = MetricSnapshot{};
      pending_->epoch = record.epoch;
    }
    std::optional<MetricSnapshot> take_metrics() override {
      auto taken = pending_;
      pending_.reset();
      return taken;
    }
    std::optional<MetricSnapshot> final_metrics() const override {
      return MetricSnapshot{};
    }

   private:
    std::optional<MetricSnapshot> pending_;
  };

  EventBus bus;
  EXPECT_TRUE(bus.empty());
  RecordingObserver recorder;
  FakeEvaluator evaluator;
  bus.subscribe(&recorder);
  bus.subscribe(&evaluator);
  EXPECT_FALSE(bus.empty());

  bus.run_started(RunInfo{"sequential", TrainingConfig::tiny()});
  bus.epoch_started(0);
  bus.cell_stepped(make_record(0, 0));
  EpochRecord epoch;
  epoch.epoch = 0;
  epoch.cells = {make_record(0, 0)};
  bus.epoch_completed(epoch);
  RunSummary summary;
  summary.backend = "sequential";
  bus.run_completed(summary);

  const std::vector<std::string> expected = {
      "run_started:sequential", "epoch_started:0", "cell:0:0",
      "epoch_completed:0",      "metrics:0",       "run_completed:sequential"};
  EXPECT_EQ(recorder.events, expected);
}

TEST(ObserverTest, JsonlTelemetrySinkWritesSelfDescribingLines) {
  testsupport::TempDir dir("telemetry");
  const std::string path = dir.file("run.jsonl").string();
  {
    JsonlTelemetrySink sink(path);
    ASSERT_TRUE(sink.ok());
    RunInfo info{"threads", TrainingConfig::tiny()};
    sink.on_run_started(info);
    EpochRecord epoch;
    epoch.epoch = 2;
    epoch.cells = {make_record(0, 2), make_record(1, 2)};
    sink.on_epoch_completed(epoch);
    MetricSnapshot snapshot;
    snapshot.epoch = 2;
    snapshot.cell_is = {1.5, 2.5};
    snapshot.mixture_is = 3.0;
    snapshot.fid = 7.25;
    snapshot.modes_covered = 6;
    sink.on_metrics(snapshot);
    RunSummary summary;
    summary.backend = "threads";
    summary.g_fitnesses = {0.25, 1.25};
    sink.on_run_completed(summary);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"event\":\"run_started\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"schema_version\":" +
                          std::to_string(kRunJsonSchemaVersion)),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"backend\":\"threads\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"epoch\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"epoch\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"g_fitnesses\":[0.25,1.25]"), std::string::npos);
  EXPECT_NE(lines[2].find("\"event\":\"metrics\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"mixture_is\":3"), std::string::npos);
  EXPECT_NE(lines[2].find("\"modes_covered\":6"), std::string::npos);
  EXPECT_NE(lines[3].find("\"event\":\"run_completed\""), std::string::npos);
}

TEST(ObserverTest, TelemetrySinkReportsUnopenablePath) {
  JsonlTelemetrySink sink("/no/such/dir/run.jsonl");
  EXPECT_FALSE(sink.ok());
  // Writing through a failed sink is a no-op, not a crash.
  sink.on_epoch_started(0);
  sink.on_metrics(MetricSnapshot{});
}

TEST(ObserverTest, CheckpointPolicyWritesOnCadenceEpochsWithGenomes) {
  testsupport::TempDir dir("checkpoint_policy");
  const std::string path = dir.file("rolling.ckpt").string();
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = 1;
  config.grid_cols = 2;
  CheckpointPolicyObserver policy(path, /*every=*/2, config);

  const auto epoch_with_genomes = [&](std::uint32_t epoch) {
    EpochRecord record;
    record.epoch = epoch;
    for (std::uint32_t cell = 0; cell < 2; ++cell) {
      record.cells.push_back(make_record(cell, epoch));
      record.cells.back().genome = make_genome(cell).serialize();
      record.cells.back().mixture_weights = {0.75, 0.25};
    }
    return record;
  };

  policy.on_epoch_completed(epoch_with_genomes(0));  // epoch 1: off-cadence
  EXPECT_EQ(policy.checkpoints_written(), 0u);
  EXPECT_FALSE(load_checkpoint(path).has_value());

  EpochRecord no_genomes = epoch_with_genomes(1);
  for (auto& cell : no_genomes.cells) cell.genome.clear();
  policy.on_epoch_completed(no_genomes);  // cadence epoch, no payload
  EXPECT_EQ(policy.checkpoints_written(), 0u);

  policy.on_epoch_completed(epoch_with_genomes(3));  // epoch 4: cadence hit
  EXPECT_EQ(policy.checkpoints_written(), 1u);
  const auto snapshot = load_checkpoint(path);
  ASSERT_TRUE(snapshot.has_value());
  // Iteration comes from the genomes' absolute counters (max over cells),
  // not the run-relative epoch, so resumed runs keep honest progress.
  EXPECT_EQ(snapshot->iteration, 41u);
  ASSERT_EQ(snapshot->centers.size(), 2u);
  EXPECT_EQ(snapshot->centers[1].generator_params,
            make_genome(1).generator_params);
  EXPECT_EQ(snapshot->mixtures[0], (std::vector<double>{0.75, 0.25}));
}

TEST(ObserverTest, SequentialTrainerPublishesTheFullStream) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 2;
  config.iterations = 3;
  config.genome_record_every = 2;
  const auto dataset = make_matched_dataset(config, 64, 5);

  EventBus bus;
  RecordingObserver recorder;
  bus.subscribe(&recorder);
  SequentialTrainer trainer(config, dataset);
  trainer.set_observers(&bus);
  const TrainOutcome outcome = trainer.run();

  ASSERT_EQ(recorder.epoch_records.size(), 3u);
  for (std::uint32_t epoch = 0; epoch < 3; ++epoch) {
    const EpochRecord& record = recorder.epoch_records[epoch];
    EXPECT_EQ(record.epoch, epoch);
    ASSERT_EQ(record.cells.size(), 4u);
    for (std::uint32_t cell = 0; cell < 4; ++cell) {
      EXPECT_EQ(record.cells[cell].cell, cell);
      EXPECT_EQ(record.cells[cell].epoch, epoch);
    }
    // Genome payloads exactly on the configured cadence.
    EXPECT_EQ(record.has_genomes(), (epoch + 1) % 2 == 0) << "epoch " << epoch;
  }
  // The final epoch's fitnesses are the run outcome's.
  const EpochRecord& last = recorder.epoch_records.back();
  for (std::size_t cell = 0; cell < 4; ++cell) {
    EXPECT_EQ(last.cells[cell].g_fitness, outcome.g_fitnesses[cell]);
    EXPECT_EQ(last.cells[cell].d_fitness, outcome.d_fitnesses[cell]);
  }
  EXPECT_EQ(last.best_cell(), outcome.best_cell);
  EXPECT_EQ(last.total_train_flops(), outcome.train_flops);

  // Event order: every epoch is started, its cells step in id order, then it
  // completes — 3 epochs x (1 + 4 + 1) events.
  ASSERT_EQ(recorder.events.size(), 18u);
  EXPECT_EQ(recorder.events[0], "epoch_started:0");
  EXPECT_EQ(recorder.events[1], "cell:0:0");
  EXPECT_EQ(recorder.events[4], "cell:0:3");
  EXPECT_EQ(recorder.events[5], "epoch_completed:0");
  EXPECT_EQ(recorder.events[17], "epoch_completed:2");
}

TEST(ObserverTest, ObservationDoesNotPerturbTraining) {
  // The whole contract of the seam: subscribing observers must not change
  // the training trajectory — same fitnesses, flops and virtual time as an
  // unobserved run.
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 2;
  config.iterations = 2;
  const auto dataset = make_matched_dataset(config, 64, 5);

  SequentialTrainer bare(config, dataset);
  const TrainOutcome reference = bare.run();

  TrainingConfig observed_config = config;
  observed_config.genome_record_every = 1;
  EventBus bus;
  RecordingObserver recorder;
  bus.subscribe(&recorder);
  SequentialTrainer observed(observed_config, dataset);
  observed.set_observers(&bus);
  const TrainOutcome outcome = observed.run();

  EXPECT_EQ(outcome.g_fitnesses, reference.g_fitnesses);
  EXPECT_EQ(outcome.d_fitnesses, reference.d_fitnesses);
  EXPECT_EQ(outcome.train_flops, reference.train_flops);
  EXPECT_EQ(outcome.virtual_s, reference.virtual_s);
}

}  // namespace
}  // namespace cellgan::core
