#include "core/grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace cellgan::core {
namespace {

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(GridTest, DefaultNeighborhoodIsFiveCell) {
  Grid grid(4, 4);
  for (int cell = 0; cell < grid.size(); ++cell) {
    EXPECT_EQ(grid.subpopulation_size(cell), 5u);
    EXPECT_EQ(grid.neighbors_of(cell).size(), 4u);
  }
}

TEST(GridTest, NeighborhoodOfPutsCenterFirst) {
  Grid grid(3, 3);
  const auto hood = grid.neighborhood_of(4);
  ASSERT_EQ(hood.size(), 5u);
  EXPECT_EQ(hood[0], 4);
}

TEST(GridTest, TwoByTwoSubpopulationIsThree) {
  // N==S and W==E on the 2x2 torus.
  Grid grid(2, 2);
  for (int cell = 0; cell < 4; ++cell) {
    EXPECT_EQ(grid.subpopulation_size(cell), 3u);
  }
}

TEST(GridTest, Figure1OverlapExample) {
  // The paper's Fig. 1: on the 4x4 toroid, updates in N1,0 and N1,2 reach
  // the neighborhoods of N1,1 and N1,3 through overlap.
  Grid grid(4, 4);
  const int c10 = grid.cell_of({1, 0});
  const int c12 = grid.cell_of({1, 2});
  const int c11 = grid.cell_of({1, 1});
  const int c13 = grid.cell_of({1, 3});
  // Cell (1,1) has both (1,0) and (1,2) in its neighborhood.
  EXPECT_TRUE(grid.is_neighbor(c11, c10));
  EXPECT_TRUE(grid.is_neighbor(c11, c12));
  // Cell (1,3) reaches (1,0) westward across the wrap and (1,2) eastward.
  EXPECT_TRUE(grid.is_neighbor(c13, c10));
  EXPECT_TRUE(grid.is_neighbor(c13, c12));
  // And the influence sets confirm propagation targets.
  EXPECT_TRUE(contains(grid.influenced_by(c10), c11));
  EXPECT_TRUE(contains(grid.influenced_by(c10), c13));
  EXPECT_TRUE(contains(grid.influenced_by(c12), c11));
  EXPECT_TRUE(contains(grid.influenced_by(c12), c13));
}

TEST(GridTest, DefaultInfluenceIsSymmetric) {
  Grid grid(3, 3);
  for (int cell = 0; cell < grid.size(); ++cell) {
    const auto influenced = grid.influenced_by(cell);
    const auto& neighbors = grid.neighbors_of(cell);
    EXPECT_EQ(std::set<int>(influenced.begin(), influenced.end()),
              std::set<int>(neighbors.begin(), neighbors.end()));
  }
}

TEST(GridTest, SetNeighborsReplacesList) {
  Grid grid(3, 3);
  grid.set_neighbors(0, {1, 2});
  EXPECT_EQ(grid.neighbors_of(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(grid.subpopulation_size(0), 3u);
}

TEST(GridTest, SetNeighborsDropsSelfAndDuplicates) {
  Grid grid(3, 3);
  grid.set_neighbors(0, {0, 1, 1, 2, 0, 2});
  EXPECT_EQ(grid.neighbors_of(0), (std::vector<int>{1, 2}));
}

TEST(GridTest, SetNeighborsAllowsEmpty) {
  Grid grid(3, 3);
  grid.set_neighbors(4, {});
  EXPECT_TRUE(grid.neighbors_of(4).empty());
  EXPECT_EQ(grid.subpopulation_size(4), 1u);  // isolated cell trains alone
}

TEST(GridTest, SetNeighborsSelfOnlyListBecomesIsolated) {
  // A list of only the cell itself collapses to the empty neighborhood (self
  // entries are dropped, not errors — the cell is always its own center).
  Grid grid(3, 3);
  grid.set_neighbors(4, {4, 4});
  EXPECT_TRUE(grid.neighbors_of(4).empty());
  EXPECT_EQ(grid.subpopulation_size(4), 1u);
}

TEST(GridTest, SetNeighborsRejectsOutOfRangeWithNamedError) {
  // Out-of-range neighbor ids used to be silently accepted and blow up later
  // inside exchange; now they are a named topology error at the call site.
  Grid grid(3, 3);
  EXPECT_THROW(grid.set_neighbors(0, {9}), GridTopologyError);
  EXPECT_THROW(grid.set_neighbors(0, {-1}), GridTopologyError);
  EXPECT_THROW(grid.set_neighbors(0, {1, 2, 42}), GridTopologyError);
  try {
    grid.set_neighbors(0, {9});
    FAIL() << "expected GridTopologyError";
  } catch (const GridTopologyError& e) {
    // The diagnostic names the offending id and the valid range.
    EXPECT_NE(std::string(e.what()).find('9'), std::string::npos) << e.what();
  }
  // A failed rewiring leaves the previous neighborhood untouched.
  EXPECT_EQ(grid.neighbors_of(0).size(), 4u);
}

TEST(GridTest, DynamicRewiringCanBeAsymmetric) {
  Grid grid(3, 3);
  grid.set_neighbors(0, {4});
  // 4 sees its default neighbors; 0 is not among them (not adjacent).
  EXPECT_TRUE(grid.is_neighbor(0, 4));
  EXPECT_FALSE(grid.is_neighbor(4, 0));
  EXPECT_TRUE(contains(grid.influenced_by(4), 0));
}

TEST(GridTest, ResetRestoresDefaults) {
  Grid grid(3, 3);
  const auto original = grid.neighbors_of(4);
  grid.set_neighbors(4, {0});
  EXPECT_NE(grid.neighbors_of(4), original);
  grid.reset_default_neighborhoods();
  EXPECT_EQ(grid.neighbors_of(4), original);
}

TEST(GridTest, CoordsRoundtrip) {
  Grid grid(3, 4);
  for (int cell = 0; cell < grid.size(); ++cell) {
    EXPECT_EQ(grid.cell_of(grid.coords_of(cell)), cell);
  }
}

TEST(GridDeathTest, InvalidCellAborts) {
  Grid grid(2, 2);
  EXPECT_DEATH((void)grid.neighbors_of(4), "precondition");
  // The CELL argument is still a hard contract violation (abort); only the
  // neighbor LIST is user/config input and throws GridTopologyError.
  EXPECT_DEATH(grid.set_neighbors(7, {0}), "precondition");
}

}  // namespace
}  // namespace cellgan::core
