// Cross-layer coverage: common/serialize.hpp round-trips of the
// core/protocol.hpp message types actually exchanged between master and
// slave. The per-layer suites test ByteWriter/ByteReader and the protocol
// structs in isolation; this suite checks the combination — byte-exact
// re-serialization, exhaustion of the buffer, and truncation safety.
#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/genome.hpp"
#include "core/protocol.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::core::protocol {
namespace {

CellGenome make_genome() {
  CellGenome genome;
  genome.generator_params = {0.5f, -1.25f, 3.0f, 0.0f};
  genome.discriminator_params = {2.0f, 7.5f};
  genome.g_learning_rate = 1e-3;
  genome.d_learning_rate = 2e-4;
  genome.g_fitness = 0.731;
  genome.d_fitness = 0.402;
  genome.origin_cell = 5;
  genome.iteration = 42;
  return genome;
}

void expect_genomes_equal(const CellGenome& a, const CellGenome& b) {
  EXPECT_EQ(a.generator_params, b.generator_params);
  EXPECT_EQ(a.discriminator_params, b.discriminator_params);
  EXPECT_DOUBLE_EQ(a.g_learning_rate, b.g_learning_rate);
  EXPECT_DOUBLE_EQ(a.d_learning_rate, b.d_learning_rate);
  EXPECT_DOUBLE_EQ(a.g_fitness, b.g_fitness);
  EXPECT_DOUBLE_EQ(a.d_fitness, b.d_fitness);
  EXPECT_EQ(a.origin_cell, b.origin_cell);
  EXPECT_EQ(a.iteration, b.iteration);
}

TEST(SerializeProtocolTest, RunTaskRoundTrip) {
  RunTask task;
  task.cell_id = 11;
  task.seed = 0xdeadbeefcafef00dull;

  const std::vector<std::uint8_t> bytes = task.serialize();
  const RunTask back = RunTask::deserialize(bytes);
  EXPECT_EQ(back.cell_id, task.cell_id);
  EXPECT_EQ(back.seed, task.seed);

  // Re-serializing the decoded message reproduces the wire bytes exactly.
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(SerializeProtocolTest, StatusReplyRoundTripAllStates) {
  for (const SlaveState state :
       {SlaveState::kInactive, SlaveState::kProcessing, SlaveState::kFinished}) {
    StatusReply reply;
    reply.state = state;
    reply.iteration = 99;
    reply.cell_id = 3;

    const std::vector<std::uint8_t> bytes = reply.serialize();
    const StatusReply back = StatusReply::deserialize(bytes);
    EXPECT_EQ(back.state, state) << to_string(state);
    EXPECT_EQ(back.iteration, reply.iteration);
    EXPECT_EQ(back.cell_id, reply.cell_id);
    EXPECT_EQ(back.serialize(), bytes);
  }
}

TEST(SerializeProtocolTest, SlaveResultRoundTrip) {
  SlaveResult result;
  result.cell_id = 7;
  result.center = make_genome();
  result.mixture_weights = {0.5, 0.25, 0.125, 0.125};
  result.virtual_time_s = 12.75;

  const std::vector<std::uint8_t> bytes = result.serialize();
  const SlaveResult back = SlaveResult::deserialize(bytes);
  EXPECT_EQ(back.cell_id, result.cell_id);
  expect_genomes_equal(back.center, result.center);
  EXPECT_EQ(back.mixture_weights, result.mixture_weights);
  EXPECT_DOUBLE_EQ(back.virtual_time_s, result.virtual_time_s);
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(SerializeProtocolTest, SlaveResultWithEmptyPayloads) {
  SlaveResult result;  // default genome, no mixture weights
  const std::vector<std::uint8_t> bytes = result.serialize();
  const SlaveResult back = SlaveResult::deserialize(bytes);
  EXPECT_EQ(back.cell_id, 0u);
  EXPECT_TRUE(back.center.generator_params.empty());
  EXPECT_TRUE(back.center.discriminator_params.empty());
  EXPECT_TRUE(back.mixture_weights.empty());
}

TEST(SerializeProtocolTest, RandomizedSlaveResultRoundTrips) {
  // Paper-scale payloads (thousands of parameters) with varied sizes, seeded
  // deterministically per test so failures reproduce bit-for-bit.
  common::Rng rng(testsupport::deterministic_seed());
  for (int round = 0; round < 8; ++round) {
    SlaveResult result;
    result.cell_id = static_cast<std::uint32_t>(rng.uniform_int(64));
    result.center.generator_params.resize(1 + rng.uniform_int(4096));
    result.center.discriminator_params.resize(1 + rng.uniform_int(4096));
    for (float& v : result.center.generator_params) {
      v = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    for (float& v : result.center.discriminator_params) {
      v = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    result.mixture_weights.resize(1 + rng.uniform_int(9), 0.125);
    result.virtual_time_s = rng.uniform(0.0, 600.0);

    const std::vector<std::uint8_t> bytes = result.serialize();
    const SlaveResult back = SlaveResult::deserialize(bytes);
    expect_genomes_equal(back.center, result.center);
    EXPECT_EQ(back.mixture_weights, result.mixture_weights);
    EXPECT_EQ(back.serialize(), bytes);
  }
}

TEST(SerializeProtocolTest, TruncatedBufferIsRejected) {
  // A truncated frame between ranks must trip the bounds-checked reader, not
  // silently decode garbage.
  SlaveResult result;
  result.center = make_genome();
  result.mixture_weights = {0.25, 0.75};
  std::vector<std::uint8_t> bytes = result.serialize();
  bytes.pop_back();
  EXPECT_DEATH((void)SlaveResult::deserialize(bytes), "precondition");

  RunTask task;
  const std::vector<std::uint8_t> task_bytes = task.serialize();
  const std::vector<std::uint8_t> half(task_bytes.begin(),
                                       task_bytes.begin() + task_bytes.size() / 2);
  EXPECT_DEATH((void)RunTask::deserialize(half), "precondition");
}

}  // namespace
}  // namespace cellgan::core::protocol
