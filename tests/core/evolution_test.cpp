#include "core/evolution.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cellgan::core {
namespace {

TEST(TournamentTest, SingleEntrantAlwaysWins) {
  common::Rng rng(1);
  const std::vector<double> fitnesses{0.5};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(tournament_select(fitnesses, 2, rng), 0u);
  }
}

TEST(TournamentTest, FullTournamentPicksGlobalBest) {
  common::Rng rng(2);
  const std::vector<double> fitnesses{3.0, 1.0, 2.0, 0.5, 4.0};
  // With tournament size >> population, the minimum is found w.h.p.
  int best_picked = 0;
  for (int i = 0; i < 50; ++i) {
    if (tournament_select(fitnesses, 64, rng) == 3u) ++best_picked;
  }
  EXPECT_GE(best_picked, 49);
}

TEST(TournamentTest, Size2PrefersBetterIndividuals) {
  common::Rng rng(3);
  const std::vector<double> fitnesses{0.1, 10.0};  // index 0 far better
  int zero_wins = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (tournament_select(fitnesses, 2, rng) == 0u) ++zero_wins;
  }
  // P(best wins binary tournament over 2 individuals) = 3/4.
  EXPECT_NEAR(zero_wins / static_cast<double>(trials), 0.75, 0.02);
}

TEST(TournamentTest, Size1IsUniform) {
  common::Rng rng(4);
  const std::vector<double> fitnesses{1.0, 2.0, 3.0, 4.0};
  std::vector<int> counts(4, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) ++counts[tournament_select(fitnesses, 1, rng)];
  for (const int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(trials), 0.25, 0.02);
  }
}

TEST(TournamentTest, LowerIsBetterConvention) {
  common::Rng rng(5);
  const std::vector<double> fitnesses{-5.0, 0.0, 5.0};
  int neg_wins = 0;
  for (int i = 0; i < 1000; ++i) {
    if (tournament_select(fitnesses, 3, rng) == 0u) ++neg_wins;
  }
  EXPECT_GT(neg_wins, 600);  // -5 should dominate size-3 tournaments
}

TEST(TournamentDeathTest, EmptyPopulationAborts) {
  common::Rng rng(6);
  EXPECT_DEATH((void)tournament_select({}, 2, rng), "precondition");
}

TEST(LrMutationTest, ZeroProbabilityNeverMutates) {
  common::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(mutate_learning_rate(2e-4, 1e-4, 0.0, rng), 2e-4);
  }
}

TEST(LrMutationTest, UnitProbabilityAlwaysMutates) {
  common::Rng rng(8);
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    if (mutate_learning_rate(2e-4, 1e-4, 1.0, rng) != 2e-4) ++changed;
  }
  EXPECT_EQ(changed, 100);
}

TEST(LrMutationTest, PaperProbabilityMutatesAboutHalf) {
  common::Rng rng(9);
  int changed = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (mutate_learning_rate(2e-4, 1e-4, 0.5, rng) != 2e-4) ++changed;
  }
  EXPECT_NEAR(changed / static_cast<double>(trials), 0.5, 0.03);
}

TEST(LrMutationTest, PerturbationScaleMatchesSigma) {
  common::Rng rng(10);
  double sum_sq = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double mutated = mutate_learning_rate(1.0, 1e-4, 1.0, rng);
    sum_sq += (mutated - 1.0) * (mutated - 1.0);
  }
  EXPECT_NEAR(std::sqrt(sum_sq / trials), 1e-4, 1e-5);
}

TEST(LrMutationTest, NeverGoesNonPositive) {
  common::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    // Tiny rate + huge sigma: clamping must keep it positive.
    EXPECT_GT(mutate_learning_rate(1e-7, 1.0, 1.0, rng), 0.0);
  }
}

TEST(LrMutationDeathTest, NonPositiveInputAborts) {
  common::Rng rng(12);
  EXPECT_DEATH((void)mutate_learning_rate(0.0, 1e-4, 0.5, rng), "precondition");
}

}  // namespace
}  // namespace cellgan::core
