#include "core/protocol.hpp"

#include <gtest/gtest.h>

namespace cellgan::core::protocol {
namespace {

TEST(ProtocolTest, RunTaskRoundtrip) {
  RunTask task;
  task.cell_id = 13;
  task.seed = 0xfeedfaceULL;
  const RunTask loaded = RunTask::deserialize(task.serialize());
  EXPECT_EQ(loaded.cell_id, 13u);
  EXPECT_EQ(loaded.seed, 0xfeedfaceULL);
}

TEST(ProtocolTest, StatusReplyRoundtrip) {
  StatusReply reply;
  reply.state = SlaveState::kProcessing;
  reply.iteration = 57;
  reply.cell_id = 3;
  const StatusReply loaded = StatusReply::deserialize(reply.serialize());
  EXPECT_EQ(loaded.state, SlaveState::kProcessing);
  EXPECT_EQ(loaded.iteration, 57u);
  EXPECT_EQ(loaded.cell_id, 3u);
}

TEST(ProtocolTest, SlaveResultRoundtrip) {
  SlaveResult result;
  result.cell_id = 5;
  result.virtual_time_s = 123.5;
  result.mixture_weights = {0.5, 0.25, 0.25};
  result.center.generator_params = {1.0f, 2.0f};
  result.center.discriminator_params = {3.0f};
  result.center.g_fitness = 0.7;
  const SlaveResult loaded = SlaveResult::deserialize(result.serialize());
  EXPECT_EQ(loaded.cell_id, 5u);
  EXPECT_DOUBLE_EQ(loaded.virtual_time_s, 123.5);
  EXPECT_EQ(loaded.mixture_weights, result.mixture_weights);
  EXPECT_EQ(loaded.center.generator_params, result.center.generator_params);
  EXPECT_DOUBLE_EQ(loaded.center.g_fitness, 0.7);
}

TEST(ProtocolTest, StateNamesMatchFig2) {
  EXPECT_STREQ(to_string(SlaveState::kInactive), "inactive");
  EXPECT_STREQ(to_string(SlaveState::kProcessing), "processing");
  EXPECT_STREQ(to_string(SlaveState::kFinished), "finished");
}

TEST(ProtocolTest, TagsAreDistinct) {
  const int tags[] = {kNodeName, kRunTask, kStatusRequest,
                      kStatusReply, kFinished, kShutdown};
  for (std::size_t i = 0; i < std::size(tags); ++i) {
    EXPECT_GE(tags[i], 0) << "user tags must be non-negative";
    for (std::size_t j = i + 1; j < std::size(tags); ++j) {
      EXPECT_NE(tags[i], tags[j]);
    }
  }
}

TEST(ProtocolTest, ConfigRoundtripThroughBroadcastBytes) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = 4;
  config.grid_cols = 4;
  config.iterations = 77;
  config.initial_learning_rate = 0.00042;
  const TrainingConfig loaded = TrainingConfig::deserialize(config.serialize());
  EXPECT_EQ(loaded, config);
}

TEST(ProtocolTest, PaperDefaultsSurviveSerialization) {
  const TrainingConfig config;  // Table I defaults
  const TrainingConfig loaded = TrainingConfig::deserialize(config.serialize());
  EXPECT_EQ(loaded.arch.latent_dim, 64u);
  EXPECT_EQ(loaded.iterations, 200u);
  EXPECT_EQ(loaded.tournament_size, 2u);
  EXPECT_DOUBLE_EQ(loaded.mixture_mutation_scale, 0.01);
  EXPECT_DOUBLE_EQ(loaded.initial_learning_rate, 0.0002);
  EXPECT_DOUBLE_EQ(loaded.lr_mutation_sigma, 0.0001);
  EXPECT_DOUBLE_EQ(loaded.lr_mutation_probability, 0.5);
  EXPECT_EQ(loaded.batch_size, 100u);
  EXPECT_EQ(loaded.discriminator_skip_steps, 1u);
}

}  // namespace
}  // namespace cellgan::core::protocol
