#include "core/mixture.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gan_models.hpp"

namespace cellgan::core {
namespace {

double weight_sum(const MixtureWeights& w) {
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) total += w.weight(i);
  return total;
}

TEST(MixtureWeightsTest, StartsUniformNormalized) {
  MixtureWeights w(5);
  EXPECT_EQ(w.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(w.weight(i), 0.2);
}

TEST(MixtureWeightsTest, SetWeightsNormalizes) {
  MixtureWeights w(3);
  w.set_weights({2.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(w.weight(0), 0.5);
  EXPECT_DOUBLE_EQ(w.weight(1), 0.25);
  EXPECT_NEAR(weight_sum(w), 1.0, 1e-12);
}

TEST(MixtureWeightsTest, MutationKeepsSimplexInvariants) {
  common::Rng rng(1);
  MixtureWeights w(5);
  for (int round = 0; round < 100; ++round) {
    w = w.mutated(0.05, rng);
    EXPECT_NEAR(weight_sum(w), 1.0, 1e-9) << "round " << round;
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_GE(w.weight(i), 0.0);
    }
  }
}

TEST(MixtureWeightsTest, MutationWithPaperScaleIsSmall) {
  common::Rng rng(2);
  MixtureWeights w(5);
  const MixtureWeights m = w.mutated(0.01, rng);  // Table I scale
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(m.weight(i), w.weight(i), 0.1);
  }
}

TEST(MixtureWeightsTest, MutationDoesNotChangeOriginal) {
  common::Rng rng(3);
  MixtureWeights w(4);
  (void)w.mutated(0.5, rng);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(w.weight(i), 0.25);
}

TEST(MixtureWeightsTest, DegenerateMutationFallsBackToUniform) {
  common::Rng rng(4);
  MixtureWeights w(3);
  // Huge negative shifts clamp everything to zero -> renormalize to uniform.
  w.set_weights({1.0, 0.0, 0.0});
  bool saw_uniform_fallback = false;
  for (int i = 0; i < 200 && !saw_uniform_fallback; ++i) {
    const MixtureWeights m = w.mutated(5.0, rng);
    saw_uniform_fallback = std::abs(m.weight(0) - 1.0 / 3) < 1e-12 &&
                           std::abs(m.weight(1) - 1.0 / 3) < 1e-12;
    EXPECT_NEAR(weight_sum(m), 1.0, 1e-9);
  }
  // Not guaranteed every draw, but with sigma=5 it should occur.
  EXPECT_TRUE(saw_uniform_fallback);
}

TEST(MixtureWeightsTest, SampleIndexFollowsDistribution) {
  common::Rng rng(5);
  MixtureWeights w(3);
  w.set_weights({0.7, 0.2, 0.1});
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[w.sample_index(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.02);
}

TEST(MixtureWeightsTest, ZeroWeightNeverSampled) {
  common::Rng rng(6);
  MixtureWeights w(3);
  w.set_weights({0.5, 0.0, 0.5});
  for (int i = 0; i < 5000; ++i) EXPECT_NE(w.sample_index(rng), 1u);
}

TEST(MixtureWeightsTest, SerializeRoundtrip) {
  MixtureWeights w(4);
  w.set_weights({0.1, 0.2, 0.3, 0.4});
  const MixtureWeights loaded = MixtureWeights::deserialize(w.serialize());
  ASSERT_EQ(loaded.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(loaded.weight(i), w.weight(i));
  }
}

TEST(MixtureWeightsDeathTest, NegativeWeightAborts) {
  MixtureWeights w(2);
  EXPECT_DEATH(w.set_weights({0.5, -0.1}), "precondition");
}

TEST(MixtureWeightsDeathTest, EmptyMixtureAborts) {
  EXPECT_DEATH(MixtureWeights(0), "precondition");
}

TEST(SampleMixtureTest, ProducesRequestedCount) {
  common::Rng rng(7);
  const nn::GanArch arch = nn::GanArch::tiny();
  nn::Sequential g1 = nn::make_generator(arch, rng);
  nn::Sequential g2 = nn::make_generator(arch, rng);
  MixtureWeights w(2);
  const tensor::Tensor samples =
      sample_mixture(w, {&g1, &g2}, arch.latent_dim, 17, rng);
  EXPECT_EQ(samples.rows(), 17u);
  EXPECT_EQ(samples.cols(), arch.image_dim);
  for (const float v : samples.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SampleMixtureTest, DegenerateWeightUsesOnlyThatGenerator) {
  common::Rng rng(8);
  const nn::GanArch arch = nn::GanArch::tiny();
  nn::Sequential g1 = nn::make_generator(arch, rng);
  nn::Sequential g2 = nn::make_generator(arch, rng);
  MixtureWeights w(2);
  w.set_weights({1.0, 0.0});
  // Same RNG state twice: mixture output must equal g1's direct output.
  common::Rng rng_a(99), rng_b(99);
  const tensor::Tensor via_mixture =
      sample_mixture(w, {&g1, &g2}, arch.latent_dim, 5, rng_a);
  // Reproduce: sample_index consumes one uniform per sample.
  for (int i = 0; i < 5; ++i) (void)rng_b.uniform();
  const tensor::Tensor z = tensor::Tensor::randn(5, arch.latent_dim, rng_b);
  const tensor::Tensor direct = g1.forward(z);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_FLOAT_EQ(via_mixture.data()[i], direct.data()[i]);
  }
}

}  // namespace
}  // namespace cellgan::core
