#include "core/cell_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/workload.hpp"

namespace cellgan::core {
namespace {

struct CellFixture : public ::testing::Test {
  void SetUp() override {
    config = TrainingConfig::tiny();
    config.grid_rows = config.grid_cols = 3;
    dataset = make_matched_dataset(config, 120, 5);
  }

  CellTrainer make_cell(const Grid& grid, int cell_id) {
    common::Rng master(config.seed);
    return CellTrainer(config, grid, cell_id, dataset, master.fork(cell_id),
                       context);
  }

  TrainingConfig config;
  data::Dataset dataset;
  ExecContext context;  // real-time: no cost model
};

TEST_F(CellFixture, StepWithEmptyInboxWorks) {
  Grid grid(3, 3);
  CellTrainer cell = make_cell(grid, 0);
  std::vector<std::vector<std::uint8_t>> empty(grid.size());
  cell.step(empty);
  EXPECT_EQ(cell.iteration(), 1u);
  EXPECT_TRUE(std::isfinite(cell.g_fitness()));
  EXPECT_TRUE(std::isfinite(cell.d_fitness()));
  EXPECT_EQ(cell.last_update_bytes(), 0.0);
  EXPECT_GT(cell.last_train_flops(), 0.0);
}

TEST_F(CellFixture, ExportedGenomeCarriesState) {
  Grid grid(3, 3);
  CellTrainer cell = make_cell(grid, 4);
  std::vector<std::vector<std::uint8_t>> empty(grid.size());
  cell.step(empty);
  const CellGenome genome = CellGenome::deserialize(cell.export_genome());
  EXPECT_EQ(genome.origin_cell, 4u);
  EXPECT_EQ(genome.iteration, 1u);
  EXPECT_EQ(genome.generator_params.size(),
            config.arch.generator_parameter_count());
  EXPECT_DOUBLE_EQ(genome.g_learning_rate, cell.g_learning_rate());
  EXPECT_DOUBLE_EQ(genome.g_fitness, cell.g_fitness());
}

TEST_F(CellFixture, NeighborGenomesAreInstalled) {
  Grid grid(3, 3);
  CellTrainer cell0 = make_cell(grid, 0);
  CellTrainer cell1 = make_cell(grid, 1);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  cell1.step(inbox);
  // Deliver cell 1's genome to cell 0 (1 is 0's east neighbor on 3x3).
  inbox[1] = cell1.export_genome();
  cell0.step(inbox);
  EXPECT_GT(cell0.last_update_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(cell0.last_update_bytes(),
                   static_cast<double>(inbox[1].size()));
}

TEST_F(CellFixture, SelectionAdoptsStrictlyBetterNeighborCenter) {
  // Pins the CELLULAR policy's selection rule: explicit so a
  // CELLGAN_EXCHANGE override cannot swap the policy under the test.
  config.exchange_policy = evolve::ExchangePolicyKind::kCellular;
  Grid grid(3, 3);
  CellTrainer cell = make_cell(grid, 0);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  cell.step(inbox);

  // Craft a neighbor genome that claims (and plausibly has) far better
  // fitness; selection must adopt its learning rate bookkeeping.
  CellGenome fake = CellGenome::deserialize(cell.export_genome());
  fake.origin_cell = 1;
  fake.g_fitness = cell.g_fitness() - 10.0;  // strictly better
  fake.d_fitness = cell.d_fitness() - 10.0;
  fake.g_learning_rate = 0.0123;
  fake.d_learning_rate = 0.0456;
  inbox[1] = fake.serialize();
  cell.step(inbox);
  // The adopted learning rates survive until mutation possibly nudges them
  // by ~1e-4; compare with loose tolerance.
  EXPECT_NEAR(cell.g_learning_rate(), 0.0123, 1e-3);
  EXPECT_NEAR(cell.d_learning_rate(), 0.0456, 1e-3);
}

TEST_F(CellFixture, WorseNeighborIsNotAdopted) {
  config.exchange_policy = evolve::ExchangePolicyKind::kCellular;
  Grid grid(3, 3);
  CellTrainer cell = make_cell(grid, 0);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  cell.step(inbox);
  CellGenome fake = CellGenome::deserialize(cell.export_genome());
  fake.g_fitness = cell.g_fitness() + 100.0;  // much worse
  fake.d_fitness = cell.d_fitness() + 100.0;
  fake.g_learning_rate = 0.0999;
  inbox[1] = fake.serialize();
  cell.step(inbox);
  EXPECT_NE(cell.g_learning_rate(), 0.0999);
}

TEST_F(CellFixture, FitnessStaysFiniteOverManySteps) {
  Grid grid(3, 3);
  CellTrainer cell = make_cell(grid, 0);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  for (int i = 0; i < 10; ++i) {
    cell.step(inbox);
    ASSERT_TRUE(std::isfinite(cell.g_fitness())) << "iteration " << i;
    ASSERT_TRUE(std::isfinite(cell.d_fitness())) << "iteration " << i;
    ASSERT_GT(cell.g_learning_rate(), 0.0);
  }
  EXPECT_EQ(cell.iteration(), 10u);
}

TEST_F(CellFixture, MixtureSizeTracksNeighborhood) {
  Grid big(3, 3);
  CellTrainer cell_big = make_cell(big, 0);
  EXPECT_EQ(cell_big.mixture().size(), 5u);

  Grid small(2, 2);
  config.grid_rows = config.grid_cols = 2;
  common::Rng master(config.seed);
  CellTrainer cell_small(config, small, 0, dataset, master.fork(0), context);
  EXPECT_EQ(cell_small.mixture().size(), 3u);
}

TEST_F(CellFixture, SampleFromMixtureShape) {
  Grid grid(3, 3);
  CellTrainer cell = make_cell(grid, 0);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  cell.step(inbox);
  const tensor::Tensor samples = cell.sample_from_mixture(9);
  EXPECT_EQ(samples.rows(), 9u);
  EXPECT_EQ(samples.cols(), config.arch.image_dim);
  for (const float v : samples.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST_F(CellFixture, DynamicTopologyShrinkAndGrow) {
  Grid grid(3, 3);
  CellTrainer cell = make_cell(grid, 0);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  cell.step(inbox);
  // Shrink to a single neighbor.
  grid.set_neighbors(0, {4});
  cell.step(inbox);
  EXPECT_EQ(cell.mixture().size(), 2u);
  // Grow back to the default five-cell neighborhood.
  grid.reset_default_neighborhoods();
  cell.step(inbox);
  EXPECT_EQ(cell.mixture().size(), 5u);
  EXPECT_TRUE(std::isfinite(cell.g_fitness()));
}

TEST_F(CellFixture, DeterministicGivenSeedAndInbox) {
  Grid grid(3, 3);
  CellTrainer a = make_cell(grid, 0);
  CellTrainer b = make_cell(grid, 0);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  for (int i = 0; i < 3; ++i) {
    a.step(inbox);
    b.step(inbox);
  }
  EXPECT_DOUBLE_EQ(a.g_fitness(), b.g_fitness());
  EXPECT_DOUBLE_EQ(a.d_fitness(), b.d_fitness());
  EXPECT_EQ(a.export_genome(), b.export_genome());
}

TEST_F(CellFixture, DifferentCellsDiverge) {
  Grid grid(3, 3);
  CellTrainer a = make_cell(grid, 0);
  CellTrainer b = make_cell(grid, 1);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  a.step(inbox);
  b.step(inbox);
  EXPECT_NE(a.export_genome(), b.export_genome());
}

TEST_F(CellFixture, ProfilerReceivesAllFourRoutines) {
  common::Profiler profiler;
  common::VirtualClock clock;
  ExecContext profiled;
  profiled.profiler = &profiler;
  profiled.clock = &clock;
  Grid grid(3, 3);
  common::Rng master(config.seed);
  CellTrainer cell(config, grid, 0, dataset, master.fork(0), profiled);
  std::vector<std::vector<std::uint8_t>> inbox(grid.size());
  cell.step(inbox);
  EXPECT_TRUE(profiler.has(common::routine::kTrain));
  EXPECT_TRUE(profiler.has(common::routine::kUpdateGenomes));
  EXPECT_TRUE(profiler.has(common::routine::kMutate));
  EXPECT_GT(profiler.cost(common::routine::kTrain).wall_s, 0.0);
}

}  // namespace
}  // namespace cellgan::core
