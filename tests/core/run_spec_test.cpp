// RunSpec: flag parsing over common::cli, the JSON text form, and the exact
// args -> spec -> text -> spec round trip the reproducible-run workflow
// relies on.
#include "core/run_spec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "testsupport/temp_dir.hpp"

namespace cellgan::core {
namespace {

/// Parse `args` through add_flags/from_cli with `defaults`.
std::optional<RunSpec> parse_args(std::vector<const char*> args,
                                  const RunSpec& defaults) {
  args.insert(args.begin(), "prog");
  common::CliParser cli("test");
  RunSpec::add_flags(cli, defaults);
  if (!cli.parse(static_cast<int>(args.size()), args.data())) return std::nullopt;
  return RunSpec::from_cli(cli, defaults);
}

TEST(RunSpecTest, BackendNamesRoundTrip) {
  for (const Backend backend : kAllBackends) {
    const auto parsed = backend_from_string(to_string(backend));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(backend_from_string("gpu").has_value());
  EXPECT_EQ(backend_from_string("seq"), Backend::kSequential);
  EXPECT_EQ(backend_from_string("parallel"), Backend::kThreads);
  EXPECT_EQ(backend_from_string("distributed-tcp"), Backend::kDistributedTcp);
  EXPECT_EQ(backend_from_string("tcp"), Backend::kDistributedTcp);
  EXPECT_STREQ(to_string(Backend::kDistributedTcp), "distributed-tcp");
}

TEST(RunSpecTest, UnknownBackendRejectedAtParseTimeWithRegistry) {
  // The parse-time gate: an unregistered backend name fails in from_text —
  // not later inside Session::run — and the diagnostic lists what IS
  // registered so the caller can fix the spec without reading code.
  std::string error;
  EXPECT_FALSE(RunSpec::from_text("{\"backend\": \"warp\"}", &error).has_value());
  EXPECT_NE(error.find("unknown backend 'warp'"), std::string::npos) << error;
  EXPECT_NE(error.find("registered:"), std::string::npos) << error;
  for (const char* name : {"sequential", "threads", "distributed", "distributed-tcp"}) {
    EXPECT_NE(error.find(name), std::string::npos) << "missing " << name;
  }
  // Every registered built-in parses, including the multi-process backend.
  const auto spec = RunSpec::from_text("{\"backend\": \"distributed-tcp\"}", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->backend, Backend::kDistributedTcp);
}

TEST(RunSpecTest, DatasetSpecParses) {
  const auto synthetic = DatasetSpec::parse("synthetic");
  ASSERT_TRUE(synthetic.has_value());
  EXPECT_EQ(synthetic->kind, DatasetSpec::Kind::kSynthetic);

  const auto sized = DatasetSpec::parse("synthetic:1234");
  ASSERT_TRUE(sized.has_value());
  EXPECT_EQ(sized->samples, 1234u);

  const auto seeded = DatasetSpec::parse("synthetic:64@99");
  ASSERT_TRUE(seeded.has_value());
  EXPECT_EQ(seeded->samples, 64u);
  EXPECT_EQ(seeded->seed, 99u);
  EXPECT_EQ(seeded->to_text(), "synthetic:64@99");

  const auto idx = DatasetSpec::parse("idx:/data/mnist");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(idx->kind, DatasetSpec::Kind::kIdx);
  EXPECT_EQ(idx->idx_dir, "/data/mnist");
  EXPECT_EQ(idx->to_text(), "idx:/data/mnist");

  std::string error;
  EXPECT_FALSE(DatasetSpec::parse("mnist", &error).has_value());
  EXPECT_NE(error.find("unknown dataset"), std::string::npos);
  EXPECT_FALSE(DatasetSpec::parse("idx:", &error).has_value());
  EXPECT_FALSE(DatasetSpec::parse("synthetic:zero", &error).has_value());
  EXPECT_FALSE(DatasetSpec::parse("synthetic:64@x", &error).has_value());
  // Negative counts must be rejected, not wrapped to 2^64 by strtoull.
  EXPECT_FALSE(DatasetSpec::parse("synthetic:-5", &error).has_value());
  EXPECT_FALSE(DatasetSpec::parse("synthetic:64@-1", &error).has_value());
  EXPECT_FALSE(DatasetSpec::parse("synthetic:0", &error).has_value());
}

TEST(RunSpecTest, BareSyntheticDatasetKeepsProgramDefaults) {
  // `--dataset synthetic` must not reset a program's sample count/seed.
  RunSpec defaults;
  defaults.config = TrainingConfig::tiny();
  defaults.dataset.samples = 1200;
  defaults.dataset.seed = 42;
  const auto spec = parse_args({"--dataset", "synthetic"}, defaults);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->dataset.kind, DatasetSpec::Kind::kSynthetic);
  EXPECT_EQ(spec->dataset.samples, 1200u);
  EXPECT_EQ(spec->dataset.seed, 42u);

  // Switching back from an idx base clears the directory too.
  defaults.dataset.kind = DatasetSpec::Kind::kIdx;
  defaults.dataset.idx_dir = "/data/mnist";
  const auto back = parse_args({"--dataset", "synthetic"}, defaults);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dataset.kind, DatasetSpec::Kind::kSynthetic);
  EXPECT_TRUE(back->dataset.idx_dir.empty());
}

TEST(RunSpecTest, FlagsOverrideDefaults) {
  RunSpec defaults;
  defaults.config = TrainingConfig::tiny();
  const auto spec = parse_args(
      {"--backend", "threads", "--threads", "4", "--grid", "3", "--iterations",
       "17", "--dataset", "synthetic:128@5", "--seed", "7", "--loss", "mustangs",
       "--exchange", "cellular", "--exchange-transport", "async-neighbors",
       "--dieting", "0.5", "--cost-profile", "table4", "--result-json", "out.json"},
      defaults);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->backend, Backend::kThreads);
  EXPECT_EQ(spec->threads, 4u);
  EXPECT_EQ(spec->config.grid_rows, 3u);
  EXPECT_EQ(spec->config.grid_cols, 3u);
  EXPECT_EQ(spec->config.iterations, 17u);
  EXPECT_EQ(spec->dataset.samples, 128u);
  EXPECT_EQ(spec->dataset.seed, 5u);
  EXPECT_EQ(spec->config.seed, 7u);
  EXPECT_EQ(spec->config.loss_mode, LossMode::kMustangs);
  EXPECT_EQ(spec->config.exchange_mode, ExchangeMode::kAsyncNeighbors);
  EXPECT_DOUBLE_EQ(spec->config.data_dieting_fraction, 0.5);
  EXPECT_EQ(spec->cost_profile, CostProfileKind::kTable4);
  EXPECT_EQ(spec->result_json, "out.json");
}

TEST(RunSpecTest, UnsetFlagsPreserveCustomDefaults) {
  // A program may pre-configure state no flag can express (a custom
  // architecture); flags the user did not pass must not clobber it.
  RunSpec defaults;
  defaults.config = TrainingConfig::tiny();
  defaults.config.arch.image_dim = 1024;
  defaults.config.arch.hidden_dim = 96;
  defaults.config.batches_per_iteration = 2;
  const auto spec = parse_args({"--iterations", "5"}, defaults);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->config.iterations, 5u);
  EXPECT_EQ(spec->config.arch.image_dim, 1024u);
  EXPECT_EQ(spec->config.arch.hidden_dim, 96u);
  EXPECT_EQ(spec->config.batches_per_iteration, 2u);
}

TEST(RunSpecTest, PaperArchFlag) {
  RunSpec defaults;
  defaults.config = TrainingConfig::tiny();
  const auto spec = parse_args({"--paper-arch", "true"}, defaults);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->config.arch, nn::GanArch::paper());
  EXPECT_EQ(spec->config.batch_size, 100u);

  // An explicit --batch-size wins over the paper-arch batch default.
  const auto sized =
      parse_args({"--paper-arch", "true", "--batch-size", "37"}, defaults);
  ASSERT_TRUE(sized.has_value());
  EXPECT_EQ(sized->config.batch_size, 37u);

  // Upgrade-only: a program already defaulting to the paper arch (with its
  // own batch size) is untouched by a redundant --paper-arch true.
  RunSpec paper_defaults;
  paper_defaults.config = TrainingConfig::tiny();
  paper_defaults.config.arch = nn::GanArch::paper();
  paper_defaults.config.batch_size = 50;
  const auto noop = parse_args({"--paper-arch", "true"}, paper_defaults);
  ASSERT_TRUE(noop.has_value());
  EXPECT_EQ(noop->config.batch_size, 50u);
}

TEST(RunSpecTest, DataPlaneFlagAndTextRoundTrip) {
  RunSpec defaults;
  EXPECT_EQ(defaults.config.data_plane, datastore::DataPlane::kAuto);
  const auto store = parse_args({"--data-plane", "store"}, defaults);
  ASSERT_TRUE(store.has_value());
  EXPECT_EQ(store->config.data_plane, datastore::DataPlane::kStore);
  const auto legacy = parse_args({"--data-plane", "legacy"}, defaults);
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->config.data_plane, datastore::DataPlane::kLegacy);

  // JSON text form round-trips the plane, so saved specs replay on it.
  std::string error;
  const auto reparsed = RunSpec::from_text(store->to_text(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->config.data_plane, datastore::DataPlane::kStore);
  EXPECT_EQ(*reparsed, *store);
}

TEST(RunSpecTest, BadValuesAreRejected) {
  RunSpec defaults;
  EXPECT_FALSE(parse_args({"--backend", "gpu"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--data-plane", "turbo"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--loss", "hinge"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--exchange", "ring"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--exchange-transport", "ring"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--exchange-every", "0"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--weight-clip", "0"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--weight-clip", "-0.5"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--weight-clip", "nan"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--dataset", "nope"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--cost-profile", "table9"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--threads", "0"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--grid", "0"}, defaults).has_value());
  // Negative integers must be rejected before any unsigned cast wraps them.
  EXPECT_FALSE(parse_args({"--threads", "-1"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--samples", "-1"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--iterations", "-3"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--seed", "-1"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--batch-size", "0"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--dieting", "0"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--dieting", "1.5"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--dieting", "nan"}, defaults).has_value());
}

TEST(RunSpecTest, ExchangePolicyFlagsParse) {
  RunSpec defaults;
  defaults.config = TrainingConfig::tiny();
  EXPECT_EQ(defaults.config.exchange_policy, evolve::ExchangePolicyKind::kAuto);
  const auto spec = parse_args(
      {"--exchange", "ltfb", "--exchange-every", "3", "--loss", "wasserstein",
       "--conditional", "true", "--weight-clip", "0.05"},
      defaults);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->config.exchange_policy, evolve::ExchangePolicyKind::kLtfb);
  EXPECT_EQ(spec->config.exchange_every, 3u);
  EXPECT_EQ(spec->config.loss_mode, LossMode::kWasserstein);
  EXPECT_EQ(spec->config.conditional, 1u);
  EXPECT_DOUBLE_EQ(spec->config.weight_clip, 0.05);

  const auto gap = parse_args({"--exchange", "gap"}, defaults);
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(gap->config.exchange_policy, evolve::ExchangePolicyKind::kGap);

  // The JSON text form round-trips every new field.
  std::string error;
  const auto reparsed = RunSpec::from_text(spec->to_text(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, *spec);
}

TEST(RunSpecTest, UnknownExchangePolicyListsRegisteredNames) {
  // Same UX as the backend-name validation: the from_text diagnostic names
  // what IS registered.
  std::string error;
  EXPECT_FALSE(RunSpec::from_text("{\"config\": {\"exchange_policy\": \"ring\"}}",
                                  &error)
                   .has_value());
  EXPECT_NE(error.find("unknown exchange_policy 'ring'"), std::string::npos)
      << error;
  for (const char* name : {"cellular", "ltfb", "gap"}) {
    EXPECT_NE(error.find(name), std::string::npos) << "missing " << name;
  }
}

TEST(RunSpecTest, NonCellularPolicyRejectsAsyncTransport) {
  RunSpec defaults;
  defaults.config = TrainingConfig::tiny();
  // ltfb and gap need non-neighbor genomes the async transport never moves.
  EXPECT_FALSE(parse_args({"--exchange", "ltfb", "--exchange-transport",
                           "async-neighbors"},
                          defaults)
                   .has_value());
  EXPECT_FALSE(parse_args({"--exchange", "gap", "--exchange-transport", "async"},
                          defaults)
                   .has_value());
  // Cellular (and auto, which resolves to it here) stays fine on async.
  const auto ok = parse_args({"--exchange", "cellular", "--exchange-transport",
                              "async-neighbors"},
                             defaults);
  EXPECT_TRUE(ok.has_value());

  TrainingConfig config = TrainingConfig::tiny();
  config.exchange_policy = evolve::ExchangePolicyKind::kGap;
  config.exchange_mode = ExchangeMode::kAsyncNeighbors;
  std::string error;
  EXPECT_FALSE(validate_exchange(config, &error));
  EXPECT_NE(error.find("gap"), std::string::npos) << error;
  EXPECT_NE(error.find("allgather"), std::string::npos) << error;
}

TEST(RunSpecTest, ObserverFlagsParse) {
  RunSpec defaults;
  defaults.config = TrainingConfig::tiny();
  const auto spec = parse_args(
      {"--eval-every", "5", "--eval-samples", "96", "--telemetry", "run.jsonl",
       "--checkpoint-every", "10", "--checkpoint-path", "grid.ckpt"},
      defaults);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->observers.eval_every, 5u);
  EXPECT_EQ(spec->observers.eval_samples, 96u);
  EXPECT_EQ(spec->observers.telemetry, "run.jsonl");
  EXPECT_EQ(spec->observers.checkpoint_every, 10u);
  EXPECT_EQ(spec->observers.checkpoint_path, "grid.ckpt");

  // A checkpoint cadence without a file to write is a flag error.
  EXPECT_FALSE(parse_args({"--checkpoint-every", "4"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--eval-every", "-2"}, defaults).has_value());
  EXPECT_FALSE(parse_args({"--eval-samples", "0"}, defaults).has_value());
}

TEST(RunSpecTest, ObserverSpecTextRoundTrip) {
  RunSpec spec;
  spec.config = TrainingConfig::tiny();
  spec.config.genome_record_every = 3;
  spec.observers.eval_every = 6;
  spec.observers.eval_samples = 512;
  spec.observers.telemetry = "telemetry.jsonl";
  spec.observers.checkpoint_every = 12;
  spec.observers.checkpoint_path = "rolling.ckpt";

  const std::string text = spec.to_text();
  std::string error;
  const auto reparsed = RunSpec::from_text(text, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, spec);
  EXPECT_EQ(reparsed->observers, spec.observers);
  EXPECT_EQ(reparsed->config.genome_record_every, 3u);
}

TEST(RunSpecTest, ArgsToTextToSpecRoundTrip) {
  // The reproducibility contract: parse args, serialize, parse the text —
  // the two specs must be exactly equal (operator==, covering every field).
  RunSpec defaults;
  defaults.config = TrainingConfig::tiny();
  const auto spec = parse_args(
      {"--backend", "distributed", "--grid", "3", "--iterations", "21",
       "--dataset", "idx:/data/mnist", "--loss", "lsq", "--exchange", "cellular",
       "--exchange-transport", "async-neighbors", "--dieting", "0.25", "--seed",
       "12345",
       "--cost-profile", "table3", "--batch-size", "37", "--paper-arch", "true"},
      defaults);
  ASSERT_TRUE(spec.has_value());

  const std::string text = spec->to_text();
  std::string error;
  const auto reparsed = RunSpec::from_text(text, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, *spec);
}

TEST(RunSpecTest, DefaultSpecTextRoundTrip) {
  const RunSpec spec;
  const auto reparsed = RunSpec::from_text(spec.to_text());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, spec);
}

TEST(RunSpecTest, FromTextRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(RunSpec::from_text("", &error).has_value());
  EXPECT_FALSE(RunSpec::from_text("{\"backend\": \"warp\"}", &error).has_value());
  EXPECT_NE(error.find("unknown backend"), std::string::npos);
  EXPECT_FALSE(RunSpec::from_text("{\"no_such_key\": 1}", &error).has_value());
  EXPECT_FALSE(RunSpec::from_text("{\"threads\": }", &error).has_value());
  EXPECT_FALSE(RunSpec::from_text("{\"threads\": -1}", &error).has_value());
  EXPECT_FALSE(
      RunSpec::from_text("{\"config\": {\"iterations\": -2}}", &error).has_value());
  EXPECT_FALSE(
      RunSpec::from_text("{\"config\": {\"bogus\": 3}}", &error).has_value());
}

TEST(RunSpecTest, SaveAndLoadFile) {
  testsupport::TempDir dir("run_spec");
  RunSpec spec;
  spec.backend = Backend::kThreads;
  spec.threads = 3;
  spec.config = TrainingConfig::tiny();
  spec.config.iterations = 9;
  const std::string path = dir.file("spec.json").string();
  ASSERT_TRUE(spec.save(path));
  std::string error;
  const auto loaded = RunSpec::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, spec);

  EXPECT_FALSE(RunSpec::load(dir.file("missing.json").string(), &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(RunSpecTest, SpecFileFlagLoadsAndExplicitFlagsWin) {
  testsupport::TempDir dir("run_spec_flag");
  RunSpec saved;
  saved.backend = Backend::kDistributed;
  saved.config = TrainingConfig::tiny();
  saved.config.iterations = 33;
  saved.config.grid_rows = saved.config.grid_cols = 3;
  const std::string path = dir.file("spec.json").string();
  ASSERT_TRUE(saved.save(path));

  RunSpec defaults;
  defaults.config = TrainingConfig::tiny();
  const auto spec = parse_args(
      {"--spec", path.c_str(), "--iterations", "5"}, defaults);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->backend, Backend::kDistributed);  // from the file
  EXPECT_EQ(spec->config.grid_rows, 3u);            // from the file
  EXPECT_EQ(spec->config.iterations, 5u);           // explicit flag wins
}

}  // namespace
}  // namespace cellgan::core
