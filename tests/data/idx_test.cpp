#include "data/idx.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "testsupport/temp_dir.hpp"

namespace cellgan::data {
namespace {

class IdxTest : public ::testing::Test {
 protected:
  std::string path(const char* name) const { return tmp_.file(name).string(); }
  testsupport::TempDir tmp_{"cellgan_idx"};
};

TEST_F(IdxTest, ImageRoundtrip) {
  IdxImages images;
  images.count = 3;
  images.rows = 4;
  images.cols = 5;
  images.pixels.resize(60);
  for (std::size_t i = 0; i < images.pixels.size(); ++i) {
    images.pixels[i] = static_cast<std::uint8_t>(i * 4);
  }
  ASSERT_TRUE(write_idx_images(path("imgs"), images));

  IdxImages loaded;
  ASSERT_TRUE(read_idx_images(path("imgs"), loaded));
  EXPECT_EQ(loaded.count, 3u);
  EXPECT_EQ(loaded.rows, 4u);
  EXPECT_EQ(loaded.cols, 5u);
  EXPECT_EQ(loaded.pixels, images.pixels);
}

TEST_F(IdxTest, LabelRoundtrip) {
  const std::vector<std::uint8_t> labels{0, 1, 2, 9, 5};
  ASSERT_TRUE(write_idx_labels(path("labels"), labels));
  std::vector<std::uint8_t> loaded;
  ASSERT_TRUE(read_idx_labels(path("labels"), loaded));
  EXPECT_EQ(loaded, labels);
}

TEST_F(IdxTest, MissingFileFails) {
  IdxImages images;
  EXPECT_FALSE(read_idx_images(path("nope"), images));
  std::vector<std::uint8_t> labels;
  EXPECT_FALSE(read_idx_labels(path("nope"), labels));
}

TEST_F(IdxTest, WrongMagicRejected) {
  // A labels file read as images must fail the magic check.
  ASSERT_TRUE(write_idx_labels(path("mixed"), {1, 2, 3}));
  IdxImages images;
  EXPECT_FALSE(read_idx_images(path("mixed"), images));
  // And vice versa.
  IdxImages imgs;
  imgs.count = 1;
  imgs.rows = 1;
  imgs.cols = 1;
  imgs.pixels = {7};
  ASSERT_TRUE(write_idx_images(path("mixed2"), imgs));
  std::vector<std::uint8_t> labels;
  EXPECT_FALSE(read_idx_labels(path("mixed2"), labels));
}

TEST_F(IdxTest, TruncatedFileFails) {
  IdxImages images;
  images.count = 10;
  images.rows = 28;
  images.cols = 28;
  images.pixels.resize(10 * 28 * 28, 1);
  ASSERT_TRUE(write_idx_images(path("full"), images));
  // Truncate the file to half size.
  const auto full_size = std::filesystem::file_size(path("full"));
  std::filesystem::resize_file(path("full"), full_size / 2);
  IdxImages loaded;
  EXPECT_FALSE(read_idx_images(path("full"), loaded));
}

TEST_F(IdxTest, HugeDeclaredCountRejectedBeforeAllocating) {
  // A corrupt header declaring ~4G images over a 16-byte file must fail the
  // size check up front — never resize the pixel vector to petabytes first.
  std::FILE* f = std::fopen(path("huge").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::uint8_t header[16] = {0, 0, 8, 3,              // idx3 magic
                                   0xFF, 0xFF, 0xFF, 0xFF,  // count
                                   0, 0, 0, 28, 0, 0, 0, 28};
  ASSERT_EQ(std::fwrite(header, 1, 16, f), 16u);
  std::fclose(f);
  IdxImages loaded;
  EXPECT_FALSE(read_idx_images(path("huge"), loaded));
  EXPECT_TRUE(loaded.pixels.empty());
}

TEST_F(IdxTest, TruncatedLabelFileFails) {
  ASSERT_TRUE(write_idx_labels(path("lab"), {1, 2, 3, 4, 5, 6, 7, 8}));
  const auto full_size = std::filesystem::file_size(path("lab"));
  std::filesystem::resize_file(path("lab"), full_size - 3);
  std::vector<std::uint8_t> loaded;
  EXPECT_FALSE(read_idx_labels(path("lab"), loaded));
}

TEST_F(IdxTest, HeaderOnlyImageFileFails) {
  IdxImages images;
  images.count = 2;
  images.rows = 3;
  images.cols = 3;
  images.pixels.resize(18, 9);
  ASSERT_TRUE(write_idx_images(path("hdr"), images));
  std::filesystem::resize_file(path("hdr"), 16);  // keep only the header
  IdxImages loaded;
  EXPECT_FALSE(read_idx_images(path("hdr"), loaded));
}

TEST_F(IdxTest, EmptyLabelsRoundtrip) {
  ASSERT_TRUE(write_idx_labels(path("empty"), {}));
  std::vector<std::uint8_t> loaded{1, 2, 3};
  ASSERT_TRUE(read_idx_labels(path("empty"), loaded));
  EXPECT_TRUE(loaded.empty());
}

}  // namespace
}  // namespace cellgan::data
