#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include "data/synthetic_mnist.hpp"

namespace cellgan::data {
namespace {

TEST(DatasetTest, SliceKeepsAlignment) {
  const Dataset ds = make_synthetic_mnist(50, 1);
  const Dataset s = ds.slice(10, 20);
  EXPECT_EQ(s.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(s.labels[i], ds.labels[10 + i]);
    EXPECT_EQ(s.images.at(i, 100), ds.images.at(10 + i, 100));
  }
}

TEST(DatasetTest, SubsampleWithoutReplacement) {
  common::Rng rng(2);
  const Dataset ds = make_synthetic_mnist(40, 1);
  const Dataset sub = ds.subsample(40, rng);  // full-size subsample = permutation
  EXPECT_EQ(sub.size(), 40u);
  auto hist_full = ds.class_histogram();
  auto hist_sub = sub.class_histogram();
  EXPECT_EQ(hist_full, hist_sub);
}

TEST(DatasetTest, SubsampleSmaller) {
  common::Rng rng(3);
  const Dataset ds = make_synthetic_mnist(40, 1);
  const Dataset sub = ds.subsample(10, rng);
  EXPECT_EQ(sub.size(), 10u);
  EXPECT_EQ(sub.images.cols(), kImageDim);
}

TEST(DatasetTest, ClassHistogramCountsAll) {
  const Dataset ds = make_synthetic_mnist(30, 4);
  const auto hist = ds.class_histogram();
  std::size_t total = 0;
  for (const auto c : hist) total += c;
  EXPECT_EQ(total, 30u);
}

TEST(DatasetTest, DownsampleHalvesSide) {
  const Dataset ds = make_synthetic_mnist(10, 5);
  const Dataset small = downsampled(ds, 14);
  EXPECT_EQ(small.size(), 10u);
  EXPECT_EQ(small.images.cols(), 14u * 14u);
  EXPECT_EQ(small.labels, ds.labels);
}

TEST(DatasetTest, DownsamplePreservesRange) {
  const Dataset ds = make_synthetic_mnist(10, 5);
  const Dataset small = downsampled(ds, 8);
  for (const float v : small.images.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(DatasetTest, DownsamplePreservesMeanRoughly) {
  const Dataset ds = make_synthetic_mnist(20, 6);
  const Dataset small = downsampled(ds, 7);
  double mean_full = 0.0, mean_small = 0.0;
  for (const float v : ds.images.data()) mean_full += v;
  for (const float v : small.images.data()) mean_small += v;
  mean_full /= ds.images.size();
  mean_small /= small.images.size();
  EXPECT_NEAR(mean_full, mean_small, 0.1);
}

TEST(DatasetTest, DownsampleSameSideIsIdentity) {
  const Dataset ds = make_synthetic_mnist(5, 7);
  const Dataset same = downsampled(ds, kImageSide);
  for (std::size_t i = 0; i < ds.images.size(); ++i) {
    EXPECT_EQ(same.images.data()[i], ds.images.data()[i]);
  }
}

TEST(DatasetDeathTest, UpsampleRejected) {
  const Dataset ds = make_synthetic_mnist(5, 7);
  EXPECT_DEATH((void)downsampled(ds, 56), "precondition");
}

TEST(DatasetTest, SyntheticFallbackWhenDirMissing) {
  auto [train, test] = load_mnist_or_synthetic("/definitely/not/here", 30, 10, 1);
  EXPECT_EQ(train.size(), 30u);
  EXPECT_EQ(test.size(), 10u);
  EXPECT_EQ(train.images.cols(), kImageDim);
}

TEST(DatasetTest, SyntheticFallbackTrainTestDiffer) {
  auto [train, test] = load_mnist_or_synthetic("", 20, 20, 1);
  double diff = 0.0;
  for (std::size_t i = 0; i < train.images.size(); ++i) {
    diff += std::abs(train.images.data()[i] - test.images.data()[i]);
  }
  EXPECT_GT(diff, 1.0);
}

}  // namespace
}  // namespace cellgan::data
