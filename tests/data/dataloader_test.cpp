#include "data/dataloader.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic_mnist.hpp"

namespace cellgan::data {
namespace {

TEST(DataLoaderTest, BatchShape) {
  const Dataset ds = make_synthetic_mnist(50, 1);
  DataLoader loader(ds, 10);
  EXPECT_EQ(loader.batches_per_epoch(), 5u);
  const tensor::Tensor batch = loader.batch(0);
  EXPECT_EQ(batch.rows(), 10u);
  EXPECT_EQ(batch.cols(), kImageDim);
}

TEST(DataLoaderTest, TailPartialBatchDropped) {
  const Dataset ds = make_synthetic_mnist(53, 1);
  DataLoader loader(ds, 10);
  EXPECT_EQ(loader.batches_per_epoch(), 5u);
}

TEST(DataLoaderTest, LabelsAlignWithImages) {
  const Dataset ds = make_synthetic_mnist(30, 2);
  DataLoader loader(ds, 5);
  common::Rng rng(1);
  loader.reshuffle(rng);
  for (std::size_t b = 0; b < loader.batches_per_epoch(); ++b) {
    const tensor::Tensor batch = loader.batch(b);
    const auto labels = loader.batch_labels(b);
    ASSERT_EQ(labels.size(), 5u);
    // Match each batch row back to a dataset row with the same content and
    // check the label agrees.
    for (std::size_t i = 0; i < 5; ++i) {
      bool found = false;
      for (std::size_t j = 0; j < ds.size() && !found; ++j) {
        bool equal = true;
        for (std::size_t c = 0; c < 20; ++c) {  // prefix comparison suffices
          if (batch.at(i, c) != ds.images.at(j, c)) {
            equal = false;
            break;
          }
        }
        if (equal && ds.labels[j] == labels[i]) found = true;
      }
      EXPECT_TRUE(found) << "batch " << b << " row " << i;
    }
  }
}

TEST(DataLoaderTest, EpochCoversEverySampleOnce) {
  const Dataset ds = make_synthetic_mnist(40, 3);
  DataLoader loader(ds, 8);
  common::Rng rng(5);
  loader.reshuffle(rng);
  // Identify samples by their first-pixel/label signature count.
  std::multiset<std::uint32_t> seen;
  for (std::size_t b = 0; b < loader.batches_per_epoch(); ++b) {
    for (const auto y : loader.batch_labels(b)) seen.insert(y);
  }
  EXPECT_EQ(seen.size(), 40u);
  const auto hist = ds.class_histogram();
  for (std::uint32_t c = 0; c < kNumClasses; ++c) {
    EXPECT_EQ(seen.count(c), hist[c]);
  }
}

TEST(DataLoaderTest, ReshuffleIsDeterministicGivenRng) {
  const Dataset ds = make_synthetic_mnist(30, 4);
  DataLoader a(ds, 10), b(ds, 10);
  common::Rng rng_a(9), rng_b(9);
  a.reshuffle(rng_a);
  b.reshuffle(rng_b);
  for (std::size_t i = 0; i < a.batches_per_epoch(); ++i) {
    EXPECT_EQ(a.batch_labels(i), b.batch_labels(i));
  }
}

TEST(DataLoaderTest, ReshuffleChangesOrder) {
  const Dataset ds = make_synthetic_mnist(100, 4);
  DataLoader loader(ds, 100);
  common::Rng rng(10);
  const auto before = loader.batch_labels(0);
  loader.reshuffle(rng);
  const auto after = loader.batch_labels(0);
  EXPECT_NE(before, after);
}

TEST(DataLoaderDeathTest, BatchLargerThanDatasetAborts) {
  const Dataset ds = make_synthetic_mnist(5, 1);
  EXPECT_DEATH(DataLoader(ds, 10), "precondition");
}

TEST(DataLoaderDeathTest, OutOfRangeBatchAborts) {
  const Dataset ds = make_synthetic_mnist(20, 1);
  DataLoader loader(ds, 10);
  EXPECT_DEATH((void)loader.batch(2), "precondition");
}

}  // namespace
}  // namespace cellgan::data
